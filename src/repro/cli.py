"""Command-line interface.

``infilter`` exposes the library's operational surface:

* ``infilter synth``      — synthesise traffic (normal or an attack) into a flow file;
* ``infilter report``     — flow-report style statistics over a flow file;
* ``infilter detect``     — run the Enhanced InFilter over a flow file and
  emit IDMEF alerts (plus a trace-back summary); ``--shards`` /
  ``--batch-size`` / ``--engine-mode`` / ``--fastpath`` route the run
  through the sharded batch ingest engine (:mod:`repro.engine`) with
  identical verdicts (``--no-fastpath`` disables the engine's
  cross-batch verdict memo for apples-to-apples baselines);
  ``--checkpoint-every N`` writes periodic atomic checkpoints to the
  ``--save-state`` path and ``--load-state … --resume`` continues a
  killed run from its checkpoint cursor; ``--detectors`` /
  ``--ensemble-policy`` compose a multi-detector ensemble (TTL
  profiles, bogon filtering) around the InFilter chain — both flags
  are shared with ``serve``;
* ``infilter serve``      — run the live serving daemon: an asyncio UDP
  listener for real NetFlow v5/v1 export datagrams, bounded-queue
  backpressure with a load-shedding policy, micro-batched commits,
  batch-boundary checkpoints (``--save-state``/``--checkpoint-every``),
  warm restart (``--load-state --resume``), graceful SIGTERM drain,
  SIGHUP hot reload, and an HTTP observability endpoint (``--http-port``);
  ``--workers N --state-dir DIR`` scales the same daemon across N
  shard-affine worker processes (:mod:`repro.cluster`): a flow director
  steers each datagram's records to the worker owning its source block,
  the supervisor restarts crashed workers from their own checkpoints,
  and the HTTP endpoint serves the federated (``worker``-labelled)
  cluster view;
* ``infilter state``      — checkpoint tooling: ``state inspect CKPT``
  summarizes a saved checkpoint (either format) without loading it;
* ``infilter validate``   — run the Section 3 hypothesis-validation studies;
* ``infilter experiment`` — run one Section 6.3 experiment point;
* ``infilter convert``    — convert flow files between binary and ASCII;
* ``infilter stats``      — render a metrics snapshot (from a
  ``--metrics-out`` file or the current process registry).

Every command is deterministic given ``--seed``.  EIA sets for ``detect``
come from a plain-text plan file with one ``<peer> <prefix>`` pair per
line (``#`` comments allowed).

``detect`` and ``experiment`` accept ``--metrics-out PATH``: the run's
observability registry (see ``docs/observability.md``) is written after
the run — a JSON snapshot when ``PATH`` ends in ``.json`` (re-renderable
with ``infilter stats``), Prometheus text otherwise.
"""

from __future__ import annotations

import argparse
import asyncio
import dataclasses
import sys
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

if TYPE_CHECKING:
    from repro.cluster import ClusterReport, ClusterSupervisor
    from repro.serve import ServeDaemon, ServeReport

from repro.core import (
    ENSEMBLE_POLICIES,
    EnhancedInFilter,
    PipelineConfig,
    TracebackAnalyzer,
    available_detectors,
)
from repro.flowgen import (
    ATTACK_NAMES,
    Dagflow,
    SubBlockSpace,
    eia_allocation,
    generate_attack,
    synthesize_trace,
)
from repro.netflow.files import (
    export_ascii,
    import_ascii,
    read_flow_file,
    write_flow_file,
)
from repro.netflow.records import FlowRecord
from repro.netflow.reports import build_report
from repro.obs import (
    MetricError,
    MetricsRegistry,
    load_snapshot_text,
    render_json,
    render_prometheus,
    use_registry,
)
from repro.util.errors import ReproError
from repro.util.ip import Prefix
from repro.util.rng import SeededRng
from repro.util.timebase import HOUR, MINUTE

__all__ = ["main", "build_parser"]


def _load_flows(path: str) -> List[FlowRecord]:
    """Read a flow file, auto-detecting binary vs ASCII."""
    data = Path(path).read_bytes()
    if data.startswith(b"RFL1"):
        return read_flow_file(path)
    return import_ascii(path)


def _save_flows(path: str, records: Sequence[FlowRecord], ascii_format: bool) -> int:
    if ascii_format:
        return export_ascii(path, records)
    return write_flow_file(path, records)


def _pipeline_config(args: argparse.Namespace) -> PipelineConfig:
    """Build the detect/serve pipeline config from the shared flags.

    ``--detectors`` is a comma-separated composition in vote order;
    ``--ensemble-policy`` picks the combiner.  Both default to the
    paper's InFilter-only chain, and both are validated by
    :class:`PipelineConfig` itself, so a typo'd detector name or policy
    surfaces as a single ``error:`` line rather than a traceback.
    """
    base = (
        PipelineConfig.basic() if args.basic
        else PipelineConfig.enhanced_default()
    )
    if args.detectors is None and args.ensemble_policy is None:
        return base
    detectors = (
        tuple(
            name.strip()
            for name in args.detectors.split(",")
            if name.strip()
        )
        if args.detectors is not None
        else base.detectors
    )
    policy = (
        args.ensemble_policy
        if args.ensemble_policy is not None
        else base.ensemble_policy
    )
    return dataclasses.replace(
        base, detectors=detectors, ensemble_policy=policy
    )


def _load_eia_plan(path: str) -> Dict[int, List[Prefix]]:
    """Parse a ``<peer> <prefix>`` plan file."""
    plan: Dict[int, List[Prefix]] = {}
    for line_number, line in enumerate(
        Path(path).read_text().splitlines(), start=1
    ):
        line = line.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        if len(parts) != 2:
            raise ReproError(
                f"{path}:{line_number}: expected '<peer> <prefix>', got {line!r}"
            )
        peer = int(parts[0])
        plan.setdefault(peer, []).append(Prefix.parse(parts[1]))
    if not plan:
        raise ReproError(f"{path}: no EIA entries found")
    return plan


# -- synth ----------------------------------------------------------------


def _cmd_synth(args: argparse.Namespace) -> int:
    rng = SeededRng(args.seed, "cli-synth")
    if args.attack is not None:
        flows = generate_attack(args.attack, rng=rng.fork("attack"))
    else:
        flows = synthesize_trace(args.flows, rng=rng.fork("trace"))
    space = SubBlockSpace()
    plan = eia_allocation(space)
    peer = args.peer % len(plan)
    if args.spoof:
        blocks = [
            block
            for other, owned in plan.items()
            if other != peer
            for block in owned
        ]
    else:
        blocks = plan[peer]
    dagflow = Dagflow(
        "cli",
        target_prefix=Prefix.parse(args.target),
        udp_port=9000,
        source_blocks=blocks,
        rng=rng.fork("dagflow"),
    )
    records = [
        lr.record.with_key(input_if=args.peer) for lr in dagflow.replay(flows)
    ]
    count = _save_flows(args.output, records, args.ascii)
    print(f"wrote {count} flow records to {args.output}")
    return 0


# -- report ------------------------------------------------------------------


def _cmd_report(args: argparse.Namespace) -> int:
    records = _load_flows(args.flow_file)
    group_by = tuple(args.group_by.split(","))
    report = build_report(records, group_by=group_by)
    if args.format == "csv":
        print(report.to_csv(limit=args.top), end="")
        return 0
    if args.format == "json":
        print(report.to_json(limit=args.top))
        return 0
    print(report.render(limit=args.top))
    totals = report.totals()
    print(
        f"\n{totals.flows} flows, {totals.packets} packets,"
        f" {totals.octets} octets across {len(report.groups)} groups"
    )
    return 0


# -- detect ---------------------------------------------------------------


def _write_metrics(registry: MetricsRegistry, path: str) -> None:
    """Write a registry snapshot: JSON for ``*.json``, Prometheus text
    otherwise."""
    if path.endswith(".json"):
        Path(path).write_text(render_json(registry) + "\n")
    else:
        Path(path).write_text(render_prometheus(registry))


def _cmd_detect(args: argparse.Namespace) -> int:
    # A fresh registry per run isolates the snapshot from anything else
    # the process counted; components pick it up as the default.
    registry = MetricsRegistry()
    with use_registry(registry):
        code = _run_detect(args)
    if code == 0 and args.metrics_out:
        _write_metrics(registry, args.metrics_out)
        print(f"metrics written to {args.metrics_out}",
              file=sys.stderr if args.idmef else sys.stdout)
    return code


def _run_detect(args: argparse.Namespace) -> int:
    out = sys.stderr if args.idmef else sys.stdout
    checkpoint_every = args.checkpoint_every or 0
    if args.checkpoint_every is not None and args.checkpoint_every < 1:
        print("error: --checkpoint-every must be >= 1", file=sys.stderr)
        return 2
    if checkpoint_every and not args.save_state:
        print(
            "error: --checkpoint-every needs --save-state for the"
            " checkpoint path",
            file=sys.stderr,
        )
        return 2
    if args.resume and not args.load_state:
        print("error: --resume needs --load-state", file=sys.stderr)
        return 2
    records = _load_flows(args.flow_file)
    resume_cursor = 0
    training: List[FlowRecord] = []
    if args.load_state:
        from repro.core.persistence import load_checkpoint

        detector, saved_cursor = load_checkpoint(args.load_state)
        if args.eia_plan:
            print(
                "note: --load-state supplied; ignoring the EIA plan file",
                file=sys.stderr,
            )
        if args.detectors is not None or args.ensemble_policy is not None:
            print(
                "note: --load-state supplied; the detector composition"
                " comes from the checkpoint",
                file=sys.stderr,
            )
        if args.resume:
            if saved_cursor is None:
                print(
                    "error: the checkpoint has no cursor to resume from",
                    file=sys.stderr,
                )
                return 2
            if saved_cursor > len(records):
                print(
                    f"error: checkpoint cursor {saved_cursor} is beyond the"
                    f" {len(records)}-record input",
                    file=sys.stderr,
                )
                return 2
            resume_cursor = saved_cursor
            print(
                f"resuming at record {resume_cursor} of {len(records)}",
                file=out,
            )
    else:
        if not args.eia_plan:
            print("error: an EIA plan file is required without --load-state",
                  file=sys.stderr)
            return 2
        plan = _load_eia_plan(args.eia_plan)
        config = _pipeline_config(args)
        detector = EnhancedInFilter(config, rng=SeededRng(args.seed, "cli-detect"))
        for peer, prefixes in plan.items():
            detector.preload_eia(peer, prefixes)
        if not args.basic:
            if args.training_file:
                training = _load_flows(args.training_file)
            else:
                # Self-train on the input's EIA-legal traffic.
                training = [
                    record
                    for record in records
                    if not detector.infilter.check(record).suspect
                ]
            if not training:
                print("error: no training flows available", file=sys.stderr)
                return 2
            detector.train(training)
    run_records = records[resume_cursor:]
    # Restored stats are cumulative across the detector's lifetime;
    # summarize *this run* by diffing against the starting snapshot.
    stats = detector.stats
    base_processed = stats.processed
    base_legal = stats.legal
    base_suspects = stats.suspects
    base_attacks = stats.attacks
    base_latency_s = stats.latency_total_s
    alerts_before = len(detector.alert_sink.alerts)
    engine_report = None
    use_engine = (
        args.shards is not None
        or args.batch_size is not None
        or args.engine_mode is not None
        or args.fastpath is not None
    )
    if use_engine:
        from repro.engine import EngineConfig, ShardedIngestEngine

        engine = ShardedIngestEngine(
            detector,
            EngineConfig(
                shards=args.shards if args.shards is not None else 1,
                batch_size=(
                    args.batch_size if args.batch_size is not None else 256
                ),
                mode=args.engine_mode if args.engine_mode is not None else "auto",
                checkpoint_every=checkpoint_every,
                fastpath=args.fastpath if args.fastpath is not None else True,
            ),
            checkpoint_path=args.save_state if checkpoint_every else None,
            cursor_base=resume_cursor,
        )
        with engine:
            engine_report = engine.run(run_records)
        if args.idmef:
            for alert in detector.alert_sink.alerts[alerts_before:]:
                print(alert.to_xml())
    else:
        from repro.core.persistence import save_detector

        for offset, record in enumerate(run_records, start=1):
            decision = detector.process(record)
            if decision.is_attack and args.idmef and decision.alert is not None:
                print(decision.alert.to_xml())
            if checkpoint_every and offset % checkpoint_every == 0:
                save_detector(
                    detector, args.save_state, cursor=resume_cursor + offset
                )
    run_processed = stats.processed - base_processed
    run_latency_s = stats.latency_total_s - base_latency_s
    mean_latency_s = run_latency_s / run_processed if run_processed else 0.0
    print(
        f"processed {run_processed} flows:"
        f" {stats.legal - base_legal} legal,"
        f" {stats.suspects - base_suspects} suspect,"
        f" {stats.attacks - base_attacks} flagged as attacks"
        f" (mean latency {mean_latency_s * 1e3:.3f} ms)",
        file=out,
    )
    if engine_report is not None:
        print(engine_report.describe(), file=out)
        if detector.fastpath is not None:
            memo = detector.fastpath.stats()
            print(
                f"fastpath: {memo['hits']} memo hits,"
                f" {memo['misses']} misses,"
                f" {memo['evictions']} evictions,"
                f" {memo['invalidations']} invalidations",
                file=out,
            )
    analyzer = TracebackAnalyzer()
    analyzer.consume_all(detector.alert_sink.alerts[alerts_before:])
    if len(analyzer):
        print(f"trace-back: {analyzer.report().summary()}", file=out)
    if args.save_state:
        from repro.core.persistence import save_detector

        # A periodic-checkpoint run records its final cursor so --resume
        # can skip the whole committed stream; a plain save carries none.
        final_cursor = (
            resume_cursor + len(run_records) if checkpoint_every else None
        )
        save_detector(detector, args.save_state, cursor=final_cursor)
        print(f"detector state saved to {args.save_state}", file=out)
    return 0


# -- serve --------------------------------------------------------------------


def _parse_listen(value: str) -> Tuple[str, int]:
    """Parse ``HOST:PORT`` (or bare ``PORT``) for --listen/--http."""
    host, _, port_text = value.rpartition(":")
    if not host:
        host = "127.0.0.1"
    try:
        port = int(port_text)
    except ValueError:
        raise ReproError(
            f"invalid listen address {value!r}; expected HOST:PORT"
        ) from None
    if not 0 <= port <= 65_535:
        raise ReproError(f"listen port {port} out of range [0, 65535]")
    return host, port


def _cmd_serve(args: argparse.Namespace) -> int:
    registry = MetricsRegistry()
    with use_registry(registry):
        code = _run_serve(args, registry)
    # The cluster path writes the federated (worker-labelled) snapshot
    # itself; only the single-daemon path snapshots this registry.
    if code == 0 and args.metrics_out and args.workers is None:
        _write_metrics(registry, args.metrics_out)
        print(f"metrics written to {args.metrics_out}")
    return code


def _run_serve(args: argparse.Namespace, registry: MetricsRegistry) -> int:
    from repro.serve import ServeConfig, ServeDaemon

    if args.workers is not None:
        return _run_cluster(args, registry)
    checkpoint_every = args.checkpoint_every or 0
    if args.checkpoint_every is not None and args.checkpoint_every < 1:
        print("error: --checkpoint-every must be >= 1", file=sys.stderr)
        return 2
    if checkpoint_every and not args.save_state:
        print(
            "error: --checkpoint-every needs --save-state for the"
            " checkpoint path",
            file=sys.stderr,
        )
        return 2
    if args.resume and not args.load_state:
        print("error: --resume needs --load-state", file=sys.stderr)
        return 2
    cursor_base = 0
    if args.load_state:
        from repro.core.persistence import load_checkpoint

        detector, saved_cursor = load_checkpoint(args.load_state)
        if args.eia_plan:
            print(
                "note: --load-state supplied; ignoring the EIA plan file",
                file=sys.stderr,
            )
        if args.detectors is not None or args.ensemble_policy is not None:
            print(
                "note: --load-state supplied; the detector composition"
                " comes from the checkpoint",
                file=sys.stderr,
            )
        if args.resume:
            if saved_cursor is None:
                print(
                    "error: the checkpoint has no cursor to resume from",
                    file=sys.stderr,
                )
                return 2
            cursor_base = saved_cursor
            print(f"resuming warm at cursor {cursor_base}")
    else:
        if not args.eia_plan:
            print(
                "error: an EIA plan file is required without --load-state",
                file=sys.stderr,
            )
            return 2
        plan = _load_eia_plan(args.eia_plan)
        config = _pipeline_config(args)
        detector = EnhancedInFilter(config, rng=SeededRng(args.seed, "cli-serve"))
        for peer, prefixes in plan.items():
            detector.preload_eia(peer, prefixes)
        if not args.basic:
            if not args.training_file:
                print(
                    "error: an EI serve daemon needs --training-file (or"
                    " --load-state); there is no input file to self-train on",
                    file=sys.stderr,
                )
                return 2
            training = _load_flows(args.training_file)
            if not training:
                print("error: no training flows available", file=sys.stderr)
                return 2
            detector.train(training)
    host, port = _parse_listen(args.listen)
    serve_config = ServeConfig(
        host=host,
        port=port,
        queue_capacity=args.queue_capacity,
        shed_policy=args.shed_policy,
        batch_size=args.batch_size,
        checkpoint_every=checkpoint_every,
        checkpoint_path=args.save_state,
        http_port=args.http_port,
        max_records=args.max_records,
        idle_exit_s=args.idle_exit_s,
        fastpath=args.fastpath,
    )
    daemon = ServeDaemon(
        detector, serve_config, registry=registry, cursor_base=cursor_base
    )
    alerts_before = 0 if args.resume else len(detector.alert_sink.alerts)
    report = asyncio.run(_serve_and_announce(daemon))
    print(report.describe())
    if args.alerts_out:
        alerts = daemon.detector.alert_sink.alerts[alerts_before:]
        Path(args.alerts_out).write_text(
            "".join(alert.to_xml() + "\n" for alert in alerts)
        )
        print(f"{len(alerts)} alerts written to {args.alerts_out}")
    if args.save_state:
        print(f"detector state saved to {args.save_state}")
    return 0


async def _serve_and_announce(daemon: "ServeDaemon") -> "ServeReport":
    """Run the daemon, printing the bound addresses once listening."""
    task = asyncio.ensure_future(daemon.run())
    await daemon.wait_started()
    assert daemon.address is not None
    print(f"listening on udp://{daemon.address[0]}:{daemon.address[1]}")
    if daemon.http_address is not None:
        print(
            f"observability on http://{daemon.http_address[0]}:"
            f"{daemon.http_address[1]} (/healthz /metrics /stats.json)"
        )
    sys.stdout.flush()
    return await task


def _run_cluster(args: argparse.Namespace, registry: MetricsRegistry) -> int:
    """``infilter serve --workers N``: the multi-process cluster path.

    A fresh ``--state-dir`` is seeded from the trained (or
    ``--load-state``-restored) detector; a state dir that already holds a
    cluster manifest resumes every worker from its own checkpoint, and a
    worker-count mismatch against the manifest is a ``ConfigError`` (the
    supervisor names both values).
    """
    from repro.cluster import (
        ClusterConfig,
        ClusterSupervisor,
        seed_cluster_state,
    )
    from repro.core.persistence import load_cluster_manifest
    from repro.util.errors import ConfigError

    if not args.state_dir:
        print(
            "error: --workers needs --state-dir for the per-worker"
            " checkpoints and the cluster manifest",
            file=sys.stderr,
        )
        return 2
    if args.save_state:
        print(
            "error: --save-state does not apply to a cluster; workers"
            " checkpoint into --state-dir",
            file=sys.stderr,
        )
        return 2
    host, port = _parse_listen(args.listen)
    manifest = load_cluster_manifest(args.state_dir)
    if manifest is None:
        if args.resume:
            print(
                "error: --resume needs an already-seeded --state-dir"
                " (no cluster manifest found)",
                file=sys.stderr,
            )
            return 2
        if args.load_state:
            from repro.core.persistence import load_checkpoint

            detector, _cursor = load_checkpoint(args.load_state)
            if args.eia_plan:
                print(
                    "note: --load-state supplied; ignoring the EIA plan"
                    " file",
                    file=sys.stderr,
                )
            if detector.alert_sink.alerts:
                print(
                    f"note: dropping {len(detector.alert_sink.alerts)}"
                    " stored alerts from the seed checkpoint (a cluster"
                    " seed is a trained model, not a serving history)",
                    file=sys.stderr,
                )
                detector.alert_sink.alerts.clear()
        else:
            if not args.eia_plan:
                print(
                    "error: an EIA plan file is required without"
                    " --load-state",
                    file=sys.stderr,
                )
                return 2
            plan = _load_eia_plan(args.eia_plan)
            config = _pipeline_config(args)
            detector = EnhancedInFilter(
                config, rng=SeededRng(args.seed, "cli-serve")
            )
            for peer, prefixes in plan.items():
                detector.preload_eia(peer, prefixes)
            if not args.basic:
                if not args.training_file:
                    print(
                        "error: an EI cluster needs --training-file (or"
                        " --load-state) to seed the workers",
                        file=sys.stderr,
                    )
                    return 2
                training = _load_flows(args.training_file)
                if not training:
                    print(
                        "error: no training flows available",
                        file=sys.stderr,
                    )
                    return 2
                detector.train(training)
        seed_cluster_state(detector, args.state_dir, workers=args.workers)
        print(f"seeded {args.state_dir} for {args.workers} workers")
    elif args.load_state:
        raise ConfigError(
            f"--load-state conflicts with the already-seeded state dir"
            f" {args.state_dir!r}; drop --load-state to resume its"
            " checkpoints, or remove the state dir to re-seed"
        )
    cluster_config = ClusterConfig(
        state_dir=args.state_dir,
        host=host,
        port=port,
        http_port=args.http_port,
        workers=args.workers,
        queue_capacity=args.queue_capacity,
        shed_policy=args.shed_policy,
        batch_size=args.batch_size,
        checkpoint_every=(
            args.checkpoint_every if args.checkpoint_every is not None else 1
        ),
        fastpath=args.fastpath,
        max_records=args.max_records,
        idle_exit_s=args.idle_exit_s,
        drain_timeout_s=args.drain_timeout_s,
    )
    supervisor = ClusterSupervisor(cluster_config, registry=registry)
    report = asyncio.run(_cluster_and_announce(supervisor))
    print(report.describe())
    if args.alerts_out:
        alerts = supervisor.merged_alerts()
        Path(args.alerts_out).write_text(
            "".join(alert.to_xml() + "\n" for alert in alerts)
        )
        print(f"{len(alerts)} alerts written to {args.alerts_out}")
    if args.metrics_out:
        _write_metrics(supervisor.federated_registry(), args.metrics_out)
        print(f"metrics written to {args.metrics_out}")
    return 0


async def _cluster_and_announce(
    supervisor: "ClusterSupervisor",
) -> "ClusterReport":
    """Run the cluster, printing the bound addresses once serving."""
    task = asyncio.ensure_future(supervisor.run())
    await supervisor.wait_started()
    assert supervisor.address is not None
    print(
        f"listening on udp://{supervisor.address[0]}:"
        f"{supervisor.address[1]}"
        f" ({supervisor.config.workers} workers)"
    )
    if supervisor.http_address is not None:
        print(
            f"observability on http://{supervisor.http_address[0]}:"
            f"{supervisor.http_address[1]} (/healthz /metrics /stats.json,"
            " federated)"
        )
    sys.stdout.flush()
    return await task


# -- state --------------------------------------------------------------------


def _cmd_state_inspect(args: argparse.Namespace) -> int:
    import json

    from repro.core.persistence import describe_state

    description = describe_state(args.checkpoint)
    if args.format == "json":
        print(json.dumps(description, indent=2, sort_keys=True))
        return 0
    print(f"checkpoint: {args.checkpoint}")
    print(f"format: v{description['format']}")
    cursor = description.get("cursor")
    print(f"cursor: {cursor if cursor is not None else '(none)'}")
    print(f"trained: {'yes' if description['trained'] else 'no'}")
    for name, info in description.get("classes", {}).items():
        print(
            f"  class {name}: {info['size']} flows,"
            f" threshold {info['threshold']}"
        )
    if "training_records" in description:
        print(
            f"training records (v1 replay):"
            f" {description['training_records']}"
        )
    peers = description["peers"]
    blocks = sum(peers.values())
    print(f"peers: {len(peers)} ({blocks} expected blocks)")
    print(f"pending absorptions: {description['pending_absorptions']}")
    if "scan_buffer" in description:
        print(f"scan buffer: {description['scan_buffer']} suspect flows")
    if "alerts" in description:
        print(f"alerts stored: {description['alerts']}")
    print(f"alert counter: {description['alert_counter']}")
    run_stats = description.get("stats")
    if run_stats:
        print(
            "stats: processed={processed} legal={legal} suspects={suspects}"
            " benign={benign} attacks={attacks}"
            " absorbed={absorbed}".format(**run_stats)
        )
    return 0


# -- validate -----------------------------------------------------------------


def _cmd_validate(args: argparse.Namespace) -> int:
    if args.study == "traceroute":
        from repro.validation import TracerouteStudyConfig, run_traceroute_study

        result = run_traceroute_study(
            TracerouteStudyConfig(
                n_sites=args.sites,
                n_targets=args.targets,
                period_s=args.period_minutes * MINUTE,
                duration_s=args.duration_hours * HOUR,
                seed=args.seed,
            )
        )
        print(result.summary())
    elif args.study == "bgp":
        from repro.validation import BgpStudyConfig, run_bgp_study

        result = run_bgp_study(
            BgpStudyConfig(
                n_targets=args.targets,
                duration_s=args.duration_hours * HOUR,
                seed=args.seed,
            )
        )
        print(result.summary())
        for peers, change in result.figure5_points():
            print(f"  {peers:3d} peers -> {change:.2%}")
    else:
        from repro.validation import StabilityConfig, run_route_stability_study

        result = run_route_stability_study(
            StabilityConfig(duration_s=args.duration_hours * HOUR, seed=args.seed)
        )
        for position, rate in result.curve():
            bar = "#" * int(rate * 60)
            print(f"  {position:4.2f} {rate:6.2%} {bar}")
    return 0


# -- experiment --------------------------------------------------------------


def _cmd_experiment(args: argparse.Namespace) -> int:
    registry = MetricsRegistry()
    with use_registry(registry):
        code = _run_experiment(args, registry)
    if code == 0 and args.metrics_out:
        _write_metrics(registry, args.metrics_out)
        print(f"metrics written to {args.metrics_out}")
    return code


def _run_experiment(args: argparse.Namespace, registry: MetricsRegistry) -> int:
    from repro.testbed import ExperimentParams, TestbedConfig, run_point

    params = ExperimentParams(
        attack_volume=args.attack_volume,
        attack_peers=tuple(range(10)) if args.stress else (0,),
        route_change_blocks=args.route_change,
        rotate_allocations=args.route_change > 0 and args.rotate,
        normal_flows_per_peer=args.flows,
        enhanced=not args.basic,
        runs=args.runs,
        seed=args.seed,
        suspect_capacity=25.0 if args.stress else None,
    )
    series = run_point(TestbedConfig(training_flows=args.training_flows), params)
    series.publish(registry)
    print(
        f"detection={series.detection_rate:.1%}"
        f" (std {series.detection_rate_std:.1%})"
        f" false_positives={series.false_positive_rate:.2%}"
        f" (std {series.false_positive_rate_std:.2%})"
        f" latency={series.latency_mean_s * 1e3:.3f} ms"
    )
    for name, (detected, total) in series.by_type().items():
        print(f"  {name}: {detected}/{total}")
    return 0


# -- convert ---------------------------------------------------------------


def _cmd_convert(args: argparse.Namespace) -> int:
    records = _load_flows(args.input)
    count = _save_flows(args.output, records, args.ascii)
    print(f"converted {count} records -> {args.output}")
    return 0


# -- sample -------------------------------------------------------------------


def _cmd_sample(args: argparse.Namespace) -> int:
    from repro.netflow.sampling import sample_records

    records = _load_flows(args.input)
    rng = SeededRng(args.seed, "cli-sample")
    sampled = list(sample_records(records, args.interval, rng=rng))
    count = _save_flows(args.output, sampled, args.ascii)
    print(
        f"1-in-{args.interval} sampling: kept {count} of"
        f" {len(records)} records -> {args.output}"
    )
    return 0


# -- expand / aggregate (DAG packet traces) -----------------------------------


def _cmd_expand(args: argparse.Namespace) -> int:
    from repro.flowgen.dagfile import packets_from_flows, write_dag
    from repro.flowgen.traces import TraceFlow

    records = _load_flows(args.input)
    # Records already carry concrete addresses; expand them verbatim.
    flows = [
        TraceFlow(
            start_ms=record.first,
            protocol=record.key.protocol,
            src_port=record.key.src_port,
            dst_port=record.key.dst_port,
            packets=record.packets,
            octets=record.octets,
            duration_ms=record.duration_ms(),
            dst_host=0,
            tcp_flags=record.tcp_flags,
        )
        for record in records
    ]
    addresses = [(r.key.src_addr, r.key.dst_addr) for r in records]
    index = {"i": -1}

    def src_for(_flow: object) -> int:
        index["i"] += 1
        return addresses[index["i"]][0]

    def dst_for(_flow: object) -> int:
        return addresses[index["i"]][1]

    packets = packets_from_flows(
        flows, src_addr_for=src_for, dst_addr_for=dst_for,
        rng=SeededRng(args.seed, "cli-expand"),
    )
    count = write_dag(args.output, packets)
    print(f"expanded {len(records)} flows into {count} packets -> {args.output}")
    return 0


def _cmd_aggregate(args: argparse.Namespace) -> int:
    from repro.flowgen.dagfile import flows_from_packets, read_dag

    packets = read_dag(args.input)
    records = flows_from_packets(packets, input_if=args.peer)
    count = _save_flows(args.output, records, args.ascii)
    print(f"aggregated {len(packets)} packets into {count} flows -> {args.output}")
    return 0


# -- filter -------------------------------------------------------------------


def _cmd_filter(args: argparse.Namespace) -> int:
    from repro.netflow.filters import parse_filter_expression

    records = _load_flows(args.input)
    flow_filter = parse_filter_expression(args.expression)
    kept = list(flow_filter.apply(records))
    count = _save_flows(args.output, kept, args.ascii)
    print(
        f"filter {flow_filter.description}:"
        f" kept {count} of {len(records)} records -> {args.output}"
    )
    return 0


# -- stats --------------------------------------------------------------------


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro.obs import get_registry

    if args.snapshot is not None:
        try:
            text = Path(args.snapshot).read_text()
        except OSError as error:
            raise MetricError(f"cannot read metrics snapshot: {error}") from error
        registry = load_snapshot_text(text)
    else:
        registry = get_registry()
    if args.format == "json":
        print(render_json(registry))
    else:
        print(render_prometheus(registry), end="")
    return 0


# -- lint ---------------------------------------------------------------------


def _cmd_lint(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.analysis import (
        ALL_RULES,
        PROJECT_RULES,
        render_sarif,
        run as run_lint,
    )

    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.id}  {rule.summary}")
        for project_rule in PROJECT_RULES:
            print(f"{project_rule.id}  {project_rule.summary}")
        return 0
    cache_dir: Path | None = None
    if args.cache_dir is not None:
        cache_dir = Path(args.cache_dir)
    elif args.cache:
        cache_dir = Path(".infilter-cache")
    findings = run_lint(
        args.paths,
        select=args.select,
        ignore=args.ignore,
        jobs=args.jobs,
        cache_dir=cache_dir,
    )
    if args.format == "json":
        print(json.dumps([finding.to_dict() for finding in findings], indent=2))
    elif args.format == "sarif":
        catalogue = [(rule.id, rule.summary) for rule in ALL_RULES]
        catalogue.extend((rule.id, rule.summary) for rule in PROJECT_RULES)
        catalogue.append(
            ("REP000", "Linter-internal: unreadable file or malformed pragma.")
        )
        print(json.dumps(render_sarif(findings, catalogue), indent=2))
    else:
        for finding in findings:
            print(finding.render())
        if findings:
            print(f"{len(findings)} finding(s)", file=sys.stderr)
    return 1 if findings else 0


# -- anonymize ---------------------------------------------------------------


def _cmd_anonymize(args: argparse.Namespace) -> int:
    from repro.netflow.anonymize import PrefixPreservingAnonymizer

    records = _load_flows(args.input)
    anonymizer = PrefixPreservingAnonymizer(args.key.encode("utf-8"))
    mapped = anonymizer.anonymize_all(records)
    count = _save_flows(args.output, mapped, args.ascii)
    print(
        f"anonymized {count} records -> {args.output}"
        f" (prefix-preserving, keyed)"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="infilter",
        description="InFilter: predictive ingress filtering (ICDCS 2005 reproduction)",
    )
    parser.add_argument("--seed", type=int, default=2005, help="global RNG seed")
    commands = parser.add_subparsers(dest="command", required=True)

    synth = commands.add_parser("synth", help="synthesise traffic into a flow file")
    synth.add_argument("output")
    synth.add_argument("--flows", type=int, default=1000)
    synth.add_argument("--attack", choices=sorted(ATTACK_NAMES), default=None)
    synth.add_argument("--peer", type=int, default=0)
    synth.add_argument(
        "--spoof",
        action="store_true",
        help="draw source addresses from the OTHER peers' blocks",
    )
    synth.add_argument("--target", default="198.18.0.0/16")
    synth.add_argument("--ascii", action="store_true")
    synth.set_defaults(handler=_cmd_synth)

    report = commands.add_parser("report", help="flow statistics over a flow file")
    report.add_argument("flow_file")
    report.add_argument("--group-by", default="dst_port")
    report.add_argument("--top", type=int, default=20)
    report.add_argument(
        "--format", choices=("table", "csv", "json"), default="table"
    )
    report.set_defaults(handler=_cmd_report)

    detect = commands.add_parser("detect", help="run the detector over a flow file")
    detect.add_argument("flow_file")
    detect.add_argument(
        "eia_plan", nargs="?", default=None, help="'<peer> <prefix>' per line"
    )
    detect.add_argument("--training-file", default=None)
    detect.add_argument("--basic", action="store_true", help="BI configuration")
    detect.add_argument(
        "--detectors",
        default=None,
        metavar="NAMES",
        help="comma-separated detector composition, in vote order"
        f" (available: {', '.join(available_detectors())};"
        " default: infilter alone)",
    )
    detect.add_argument(
        "--ensemble-policy",
        default=None,
        metavar="POLICY",
        help="multi-detector vote combiner:"
        f" {', '.join(ENSEMBLE_POLICIES)} (default: any)",
    )
    detect.add_argument("--idmef", action="store_true", help="print IDMEF XML per alert")
    detect.add_argument(
        "--save-state", default=None, help="save detector state (JSON) after the run"
    )
    detect.add_argument(
        "--load-state", default=None, help="restore detector state instead of training"
    )
    detect.add_argument(
        "--metrics-out",
        default=None,
        help="write the run's metrics snapshot (.json = JSON, else Prometheus text)",
    )
    detect.add_argument(
        "--shards",
        type=int,
        default=None,
        help="run through the sharded batch ingest engine with N shards",
    )
    detect.add_argument(
        "--batch-size",
        type=int,
        default=None,
        help="records per engine batch (implies the engine; default 256)",
    )
    detect.add_argument(
        "--engine-mode",
        choices=("auto", "inline", "process"),
        default=None,
        help="engine execution mode (implies the engine; default auto)",
    )
    detect.add_argument(
        "--fastpath",
        action=argparse.BooleanOptionalAction,
        default=None,
        help="vectorized zero-copy data plane (implies the engine; default"
        " on when the engine runs; --no-fastpath for the memo-free"
        " baseline)",
    )
    detect.add_argument(
        "--checkpoint-every",
        type=int,
        default=None,
        metavar="N",
        help="write an atomic checkpoint to --save-state every N records"
        " (inline) or N batches (engine)",
    )
    detect.add_argument(
        "--resume",
        action="store_true",
        help="skip the records a --load-state checkpoint already committed"
        " (its saved cursor)",
    )
    detect.set_defaults(handler=_cmd_detect)

    serve = commands.add_parser(
        "serve", help="run the live NetFlow serving daemon (Figure 9)"
    )
    serve.add_argument(
        "eia_plan", nargs="?", default=None, help="'<peer> <prefix>' per line"
    )
    serve.add_argument(
        "--listen",
        default="127.0.0.1:9995",
        metavar="HOST:PORT",
        help="UDP address for NetFlow v5/v1 export datagrams (port 0 ="
        " ephemeral; default %(default)s)",
    )
    serve.add_argument(
        "--training-file", default=None, help="flow file to train the EI model on"
    )
    serve.add_argument("--basic", action="store_true", help="BI configuration")
    serve.add_argument(
        "--detectors",
        default=None,
        metavar="NAMES",
        help="comma-separated detector composition, in vote order"
        f" (available: {', '.join(available_detectors())};"
        " default: infilter alone)",
    )
    serve.add_argument(
        "--ensemble-policy",
        default=None,
        metavar="POLICY",
        help="multi-detector vote combiner:"
        f" {', '.join(ENSEMBLE_POLICIES)} (default: any)",
    )
    serve.add_argument(
        "--load-state", default=None, help="restore detector state instead of training"
    )
    serve.add_argument(
        "--resume",
        action="store_true",
        help="continue from the --load-state checkpoint's committed-record"
        " cursor (warm restart)",
    )
    serve.add_argument(
        "--save-state",
        default=None,
        help="checkpoint path: periodic (with --checkpoint-every) plus a"
        " final atomic checkpoint after the drain",
    )
    serve.add_argument(
        "--checkpoint-every",
        type=int,
        default=None,
        metavar="N",
        help="checkpoint every N committed batches",
    )
    serve.add_argument(
        "--http-port",
        type=int,
        default=None,
        metavar="PORT",
        help="serve /healthz, /metrics and /stats.json on this port (0 ="
        " ephemeral)",
    )
    serve.add_argument(
        "--batch-size",
        type=int,
        default=256,
        help="records per commit micro-batch (default %(default)s)",
    )
    serve.add_argument(
        "--queue-capacity",
        type=int,
        default=65_536,
        help="ingest queue bound in records (default %(default)s)",
    )
    serve.add_argument(
        "--shed-policy",
        choices=("drop-oldest", "reject-newest"),
        default="drop-oldest",
        help="which record loses when the queue is full (default %(default)s)",
    )
    serve.add_argument(
        "--max-records",
        type=int,
        default=None,
        metavar="N",
        help="drain and exit after committing N records (bounded runs)",
    )
    serve.add_argument(
        "--idle-exit-s",
        type=float,
        default=None,
        metavar="S",
        help="drain and exit after S seconds without traffic",
    )
    serve.add_argument(
        "--fastpath",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="columnar zero-copy decode + cross-batch verdict memo"
        " (default on; --no-fastpath for the record-at-a-time baseline)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="run a multi-process cluster of N shard-affine workers"
        " behind one flow-director front (needs --state-dir)",
    )
    serve.add_argument(
        "--state-dir",
        default=None,
        metavar="DIR",
        help="cluster state directory: one checkpoint per worker plus"
        " the composition manifest; a fresh dir is seeded from the"
        " trained detector, an existing one is resumed",
    )
    serve.add_argument(
        "--drain-timeout-s",
        type=float,
        default=10.0,
        metavar="S",
        help="cluster drain: how long to wait for each worker to consume"
        " its routed stream (default %(default)s)",
    )
    serve.add_argument(
        "--alerts-out",
        default=None,
        metavar="PATH",
        help="write the run's IDMEF alert stream (one XML document per line)",
    )
    serve.add_argument(
        "--metrics-out",
        default=None,
        help="write the run's metrics snapshot (.json = JSON, else Prometheus text)",
    )
    serve.set_defaults(handler=_cmd_serve)

    state = commands.add_parser(
        "state", help="inspect saved detector checkpoints"
    )
    state_commands = state.add_subparsers(dest="state_command", required=True)
    state_inspect = state_commands.add_parser(
        "inspect", help="summarize a checkpoint file (either format)"
    )
    state_inspect.add_argument("checkpoint")
    state_inspect.add_argument(
        "--format", choices=("text", "json"), default="text"
    )
    state_inspect.set_defaults(handler=_cmd_state_inspect)

    validate = commands.add_parser("validate", help="Section 3 validation studies")
    validate.add_argument("study", choices=("traceroute", "bgp", "stability"))
    validate.add_argument("--sites", type=int, default=12)
    validate.add_argument("--targets", type=int, default=10)
    validate.add_argument("--period-minutes", type=float, default=30.0)
    validate.add_argument("--duration-hours", type=float, default=24.0)
    validate.set_defaults(handler=_cmd_validate)

    experiment = commands.add_parser("experiment", help="one Section 6.3 point")
    experiment.add_argument("--attack-volume", type=float, default=0.04)
    experiment.add_argument("--stress", action="store_true", help="attacks at all peers")
    experiment.add_argument("--route-change", type=int, default=2)
    experiment.add_argument("--rotate", action="store_true")
    experiment.add_argument("--basic", action="store_true")
    experiment.add_argument("--flows", type=int, default=1000)
    experiment.add_argument("--training-flows", type=int, default=2000)
    experiment.add_argument("--runs", type=int, default=2)
    experiment.add_argument(
        "--metrics-out",
        default=None,
        help="write the run's metrics snapshot (.json = JSON, else Prometheus text)",
    )
    experiment.set_defaults(handler=_cmd_experiment)

    convert = commands.add_parser("convert", help="convert flow file formats")
    convert.add_argument("input")
    convert.add_argument("output")
    convert.add_argument("--ascii", action="store_true", help="write ASCII output")
    convert.set_defaults(handler=_cmd_convert)

    sample = commands.add_parser(
        "sample", help="apply 1-in-N packet sampling to a flow file"
    )
    sample.add_argument("input")
    sample.add_argument("output")
    sample.add_argument("--interval", type=int, required=True)
    sample.add_argument("--ascii", action="store_true")
    sample.set_defaults(handler=_cmd_sample)

    expand = commands.add_parser(
        "expand", help="expand a flow file into a DAG packet trace"
    )
    expand.add_argument("input")
    expand.add_argument("output")
    expand.set_defaults(handler=_cmd_expand)

    aggregate = commands.add_parser(
        "aggregate", help="aggregate a DAG packet trace into a flow file"
    )
    aggregate.add_argument("input")
    aggregate.add_argument("output")
    aggregate.add_argument("--peer", type=int, default=0)
    aggregate.add_argument("--ascii", action="store_true")
    aggregate.set_defaults(handler=_cmd_aggregate)

    flow_filter = commands.add_parser(
        "filter", help="filter a flow file with key=value terms"
    )
    flow_filter.add_argument("input")
    flow_filter.add_argument("output")
    flow_filter.add_argument(
        "expression",
        help="space-separated key=value terms (AND; prefix ! negates),"
        " e.g. 'proto=17 dport=1434 dst=198.18.0.0/16'",
    )
    flow_filter.add_argument("--ascii", action="store_true")
    flow_filter.set_defaults(handler=_cmd_filter)

    stats = commands.add_parser(
        "stats", help="render a metrics snapshot (Prometheus text or JSON)"
    )
    stats.add_argument(
        "snapshot",
        nargs="?",
        default=None,
        help="JSON snapshot file from --metrics-out; omit for the"
        " current process registry",
    )
    stats.add_argument(
        "--format", choices=("prometheus", "json"), default="prometheus"
    )
    stats.set_defaults(handler=_cmd_stats)

    lint = commands.add_parser(
        "lint", help="check the codebase's determinism/robustness invariants"
    )
    lint.add_argument(
        "paths",
        nargs="*",
        default=["src", "tests"],
        help="files or directories to lint (default: src tests)",
    )
    lint.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text"
    )
    lint.add_argument(
        "--select",
        action="append",
        metavar="RULE",
        help="only run the listed rules (repeatable, comma-separable)",
    )
    lint.add_argument(
        "--ignore",
        action="append",
        metavar="RULE",
        help="drop findings from the listed rules (repeatable)",
    )
    lint.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="parallelise the per-file phase over N processes (0 = one per CPU)",
    )
    lint.add_argument(
        "--cache",
        action="store_true",
        help="enable the incremental cache under .infilter-cache/",
    )
    lint.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="incremental cache directory (implies --cache)",
    )
    lint.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue"
    )
    lint.set_defaults(handler=_cmd_lint)

    anonymize = commands.add_parser(
        "anonymize", help="prefix-preserving address anonymization"
    )
    anonymize.add_argument("input")
    anonymize.add_argument("output")
    anonymize.add_argument(
        "--key", required=True, help="anonymization key (>= 8 characters)"
    )
    anonymize.add_argument("--ascii", action="store_true")
    anonymize.set_defaults(handler=_cmd_anonymize)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
