"""Shared utilities: IPv4 arithmetic, deterministic RNG, simulated time."""

from __future__ import annotations

from repro.util.errors import (
    AddressError,
    ConfigError,
    EngineError,
    ExperimentError,
    NetFlowDecodeError,
    NetFlowError,
    NoRouteError,
    RecordError,
    ReproError,
    RoutingError,
    TrainingError,
)
from repro.util.ip import MAX_IPV4, Prefix, PrefixTrie, format_ipv4, parse_ipv4
from repro.util.rng import SeededRng, derive_seed
from repro.util.timebase import DAY, HOUR, MINUTE, SimClock, periodic

__all__ = [
    "AddressError",
    "ConfigError",
    "EngineError",
    "ExperimentError",
    "NetFlowDecodeError",
    "NetFlowError",
    "NoRouteError",
    "RecordError",
    "ReproError",
    "RoutingError",
    "TrainingError",
    "MAX_IPV4",
    "Prefix",
    "PrefixTrie",
    "format_ipv4",
    "parse_ipv4",
    "SeededRng",
    "derive_seed",
    "DAY",
    "HOUR",
    "MINUTE",
    "SimClock",
    "periodic",
]
