"""Deterministic randomness for experiments.

Every stochastic component in the library draws from a :class:`SeededRng`
created from an explicit seed, so an experiment run is reproducible
bit-for-bit.  ``fork`` derives independent child streams by name, which keeps
component randomness decoupled: adding draws to one component does not
perturb another.
"""

from __future__ import annotations

import hashlib
import random
from typing import Any, Dict, Iterable, List, Sequence, TypeVar

from repro.util.errors import ConfigError

__all__ = ["SeededRng", "derive_seed"]

_T = TypeVar("_T")


def derive_seed(seed: int, *names: str) -> int:
    """Derive a child seed from ``seed`` and a path of component names.

    The derivation hashes the full path, so ``derive_seed(s, "a", "b")`` and
    ``derive_seed(derive_seed(s, "a"), "b")`` intentionally differ only in
    spelling — both are stable across runs and Python versions.
    """
    digest = hashlib.sha256()
    digest.update(str(seed).encode("ascii"))
    for name in names:
        digest.update(b"/")
        digest.update(name.encode("utf-8"))
    return int.from_bytes(digest.digest()[:8], "big")


class SeededRng:
    """A named, forkable wrapper over :class:`random.Random`.

    The wrapper exposes only the primitives the library uses, which keeps
    call sites honest about what randomness they consume.
    """

    def __init__(self, seed: int, name: str = "root") -> None:
        self.seed = seed
        self.name = name
        self._random = random.Random(seed)

    def fork(self, name: str) -> "SeededRng":
        """An independent child stream identified by ``name``."""
        return SeededRng(derive_seed(self.seed, name), f"{self.name}/{name}")

    def state_dict(self) -> Dict[str, Any]:
        """Capture seed, name, and the stream cursor (warm-restart state).

        ``fork`` derives children from the *seed* alone, so the cursor
        only matters for draws made directly on this stream — but those
        are exactly what a warm restart must not replay.
        """
        version, internal, gauss_next = self._random.getstate()
        return {
            "seed": self.seed,
            "name": self.name,
            "cursor": {
                "version": version,
                "internal": list(internal),
                "gauss_next": gauss_next,
            },
        }

    def load_state(self, state: Dict[str, Any]) -> None:
        """Restore the stream to a captured cursor, in place."""
        self.seed = int(state["seed"])
        self.name = str(state["name"])
        cursor = state["cursor"]
        self._random.setstate(
            (
                int(cursor["version"]),
                tuple(int(word) for word in cursor["internal"]),
                cursor["gauss_next"],
            )
        )

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in the inclusive range [low, high]."""
        return self._random.randint(low, high)

    def randrange(self, stop: int) -> int:
        """Uniform integer in the half-open range [0, stop)."""
        return self._random.randrange(stop)

    def random(self) -> float:
        """Uniform float in [0, 1)."""
        return self._random.random()

    def uniform(self, low: float, high: float) -> float:
        """Uniform float in [low, high]."""
        return self._random.uniform(low, high)

    def expovariate(self, rate: float) -> float:
        """Exponential variate with the given rate (mean ``1/rate``)."""
        return self._random.expovariate(rate)

    def pareto(self, alpha: float, scale: float = 1.0) -> float:
        """Pareto variate: heavy-tailed sizes for flow byte/packet counts."""
        return scale * self._random.paretovariate(alpha)

    def gauss(self, mu: float, sigma: float) -> float:
        """Normal variate."""
        return self._random.gauss(mu, sigma)

    def choice(self, items: Sequence[_T]) -> _T:
        """Uniform choice from a non-empty sequence."""
        return self._random.choice(items)

    def choices(self, items: Sequence[_T], weights: Sequence[float], k: int) -> List[_T]:
        """``k`` weighted choices with replacement."""
        return self._random.choices(items, weights=weights, k=k)

    def sample(self, items: Sequence[_T], k: int) -> List[_T]:
        """``k`` distinct choices without replacement."""
        return self._random.sample(items, k)

    def shuffle(self, items: List[_T]) -> None:
        """In-place Fisher-Yates shuffle."""
        self._random.shuffle(items)

    def bernoulli(self, probability: float) -> bool:
        """True with the given probability."""
        return self._random.random() < probability

    def bit(self, probability_of_one: float) -> int:
        """A single {0,1} draw, used by the NNS test-vector construction."""
        return 1 if self._random.random() < probability_of_one else 0

    def weighted_index(self, weights: Iterable[float]) -> int:
        """Index drawn proportionally to ``weights``."""
        weight_list = list(weights)
        total = sum(weight_list)
        if total <= 0:
            raise ConfigError("weights must sum to a positive value")
        mark = self._random.random() * total
        cumulative = 0.0
        for index, weight in enumerate(weight_list):
            cumulative += weight
            if mark < cumulative:
                return index
        return len(weight_list) - 1

    def __repr__(self) -> str:
        return f"SeededRng(seed={self.seed}, name={self.name!r})"
