"""Simulated time.

Experiments run against a :class:`SimClock` rather than the wall clock so a
multi-day measurement study (the 4-day traceroute run, the 30-day BGP study)
completes in milliseconds and replays identically.  Times are float seconds
since an arbitrary epoch; NetFlow's millisecond ``SysUptime`` fields convert
at the encoding boundary.
"""

from __future__ import annotations

from typing import Iterator

from repro.util.errors import ConfigError

__all__ = ["SimClock", "periodic", "MINUTE", "HOUR", "DAY"]

MINUTE = 60.0
HOUR = 3600.0
DAY = 86400.0


class SimClock:
    """A monotonically advancing simulated clock.

    The clock only moves when a caller advances it, so ordering between
    components is explicit in the experiment script rather than racy.
    """

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ConfigError("clock cannot start before the epoch")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward; returns the new time."""
        if seconds < 0:
            raise ConfigError("time cannot move backwards")
        self._now += seconds
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Jump to an absolute time at or after the current time."""
        if timestamp < self._now:
            raise ConfigError(
                f"cannot rewind clock from {self._now} to {timestamp}"
            )
        self._now = float(timestamp)
        return self._now

    def millis(self) -> int:
        """Current time in integer milliseconds (NetFlow uptime units)."""
        return int(self._now * 1000.0)

    def __repr__(self) -> str:
        return f"SimClock(now={self._now:.3f})"


def periodic(start: float, period: float, end: float) -> Iterator[float]:
    """Yield sample instants ``start, start+period, ...`` up to ``end``.

    Used by the measurement studies: e.g. a 24-hour run at 30-minute
    periods is ``periodic(0, 30 * MINUTE, 24 * HOUR)``.  The endpoint is
    inclusive so a whole number of periods produces the expected count.
    """
    if period <= 0:
        raise ConfigError("period must be positive")
    instant = float(start)
    # Tolerate float accumulation: stop a hair past the endpoint.
    while instant <= end + period * 1e-9:
        yield instant
        instant += period
