"""Exception hierarchy shared by every repro subsystem.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch a single base class at API boundaries while still discriminating on the
specific failure when they need to.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "AddressError",
    "NetFlowError",
    "NetFlowDecodeError",
    "RecordError",
    "RoutingError",
    "NoRouteError",
    "ConfigError",
    "TrainingError",
    "ExperimentError",
    "EngineError",
    "StateError",
    "ServeError",
    "ClusterError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class AddressError(ReproError, ValueError):
    """An IPv4 address, prefix, or sub-block specification is invalid."""


class NetFlowError(ReproError):
    """Base class for NetFlow encoding/decoding/collection failures."""


class NetFlowDecodeError(NetFlowError, ValueError):
    """A byte buffer could not be parsed as a NetFlow v5 datagram."""


class RecordError(NetFlowError, ValueError):
    """A flow record or packet field value is out of its valid range."""


class RoutingError(ReproError):
    """Base class for topology / BGP / traceroute simulation failures."""


class NoRouteError(RoutingError, LookupError):
    """No route exists between the requested endpoints."""


class ConfigError(ReproError, ValueError):
    """A detector or experiment configuration value is out of range."""


class TrainingError(ReproError, RuntimeError):
    """The detector was asked to operate before training completed."""


class ExperimentError(ReproError, RuntimeError):
    """An experiment harness was driven with inconsistent parameters."""


class EngineError(ReproError, RuntimeError):
    """The sharded ingest engine violated or detected a usage contract."""


class StateError(ReproError, RuntimeError):
    """A detector checkpoint could not be written, read, or parsed."""


class ServeError(ReproError, RuntimeError):
    """The live serving daemon violated or detected a usage contract."""


class ClusterError(ReproError, RuntimeError):
    """The multi-process serving cluster violated or detected a contract."""
