"""IPv4 address and prefix arithmetic.

Everything in the repro library that touches an address goes through this
module: addresses are plain ``int`` values in ``[0, 2**32)`` internally, and
:class:`Prefix` models a CIDR block.  :class:`PrefixTrie` provides
longest-prefix matching, which both the BGP best-path selection and the EIA
set implementation rely on.

The integer representation keeps flow processing allocation-free on the hot
path; dotted-quad strings only appear at the presentation boundary
(``show ip bgp`` rendering, traceroute output, IDMEF alerts).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, TypeVar, Generic

from repro.util.errors import AddressError

__all__ = [
    "MAX_IPV4",
    "parse_ipv4",
    "format_ipv4",
    "Prefix",
    "PrefixTrie",
]

MAX_IPV4 = 2**32 - 1

_T = TypeVar("_T")


def parse_ipv4(text: str) -> int:
    """Parse a dotted-quad IPv4 address into its integer value.

    >>> parse_ipv4("4.2.101.20")
    67265812
    """
    parts = text.strip().split(".")
    if len(parts) != 4:
        raise AddressError(f"expected 4 octets in IPv4 address, got {text!r}")
    value = 0
    for part in parts:
        if not part.isdigit():
            raise AddressError(f"non-numeric octet in IPv4 address {text!r}")
        octet = int(part)
        if octet > 255:
            raise AddressError(f"octet {octet} out of range in {text!r}")
        value = (value << 8) | octet
    return value


def format_ipv4(value: int) -> str:
    """Render an integer as a dotted-quad IPv4 address.

    >>> format_ipv4(67265812)
    '4.2.101.20'
    """
    if not 0 <= value <= MAX_IPV4:
        raise AddressError(f"IPv4 value {value!r} out of range")
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


@dataclass(frozen=True, order=True)
class Prefix:
    """An IPv4 CIDR prefix such as ``4.2.101.0/24``.

    ``network`` is stored with host bits cleared; construction rejects
    prefixes whose host bits are set so two equal blocks always compare equal.
    """

    network: int
    length: int

    def __post_init__(self) -> None:
        if not 0 <= self.length <= 32:
            raise AddressError(f"prefix length {self.length} out of range")
        if not 0 <= self.network <= MAX_IPV4:
            raise AddressError(f"network {self.network!r} out of range")
        if self.network & ~self.mask():
            raise AddressError(
                f"host bits set in {format_ipv4(self.network)}/{self.length}"
            )

    @classmethod
    def parse(cls, text: str) -> "Prefix":
        """Parse ``"a.b.c.d/len"``; a bare address parses as a /32.

        Truncated classful forms like ``4.0.0.0`` (no mask) are treated as
        /32; use :meth:`parse_classful` for Routeviews-style bare networks.
        """
        if "/" in text:
            addr_part, _, len_part = text.partition("/")
            if not len_part.isdigit():
                raise AddressError(f"bad prefix length in {text!r}")
            length = int(len_part)
        else:
            addr_part, length = text, 32
        network = parse_ipv4(addr_part)
        mask = _mask_for(length)
        if network & ~mask:
            raise AddressError(f"host bits set in prefix {text!r}")
        return cls(network, length)

    @classmethod
    def parse_classful(cls, text: str) -> "Prefix":
        """Parse a Routeviews-style network that may omit its mask.

        ``show ip bgp`` output drops the mask for classful networks:
        ``4.0.0.0`` means ``4.0.0.0/8``.  With an explicit ``/len`` this is
        identical to :meth:`parse`.
        """
        if "/" in text:
            return cls.parse(text)
        network = parse_ipv4(text)
        first_octet = network >> 24
        if first_octet < 128:
            length = 8
        elif first_octet < 192:
            length = 16
        else:
            length = 24
        mask = _mask_for(length)
        if network & ~mask:
            raise AddressError(f"host bits set in classful network {text!r}")
        return cls(network, length)

    @classmethod
    def from_address(cls, address: int, length: int = 32) -> "Prefix":
        """Build the prefix of the given length containing ``address``."""
        mask = _mask_for(length)
        return cls(address & mask, length)

    def mask(self) -> int:
        """The netmask as an integer."""
        return _mask_for(self.length)

    def contains(self, address: int) -> bool:
        """True when ``address`` falls inside this block."""
        return (address & self.mask()) == self.network

    def covers(self, other: "Prefix") -> bool:
        """True when ``other`` is equal to or nested inside this block."""
        return self.length <= other.length and self.contains(other.network)

    def first_address(self) -> int:
        """Lowest address in the block (the network address)."""
        return self.network

    def last_address(self) -> int:
        """Highest address in the block (the broadcast address for subnets)."""
        return self.network | ~self.mask() & MAX_IPV4

    def size(self) -> int:
        """Number of addresses in the block."""
        return 1 << (32 - self.length)

    def subnets(self, new_length: int) -> Iterator["Prefix"]:
        """Iterate the ``new_length`` subnets of this block, in order."""
        if new_length < self.length or new_length > 32:
            raise AddressError(
                f"cannot split /{self.length} into /{new_length} subnets"
            )
        step = 1 << (32 - new_length)
        for network in range(self.network, self.last_address() + 1, step):
            yield Prefix(network, new_length)

    def nth_address(self, index: int) -> int:
        """The ``index``-th address of the block, for deterministic picks."""
        if not 0 <= index < self.size():
            raise AddressError(f"address index {index} outside /{self.length}")
        return self.network + index

    def __contains__(self, address: object) -> bool:
        if isinstance(address, int):
            return self.contains(address)
        if isinstance(address, Prefix):
            return self.covers(address)
        return NotImplemented  # type: ignore[return-value]

    def __str__(self) -> str:
        return f"{format_ipv4(self.network)}/{self.length}"


def _mask_for(length: int) -> int:
    if not 0 <= length <= 32:
        raise AddressError(f"prefix length {length} out of range")
    if length == 0:
        return 0
    return (MAX_IPV4 << (32 - length)) & MAX_IPV4


class _TrieNode(Generic[_T]):
    __slots__ = ("children", "value", "has_value")

    def __init__(self) -> None:
        self.children: List[Optional["_TrieNode[_T]"]] = [None, None]
        self.value: Optional[_T] = None
        self.has_value = False


class PrefixTrie(Generic[_T]):
    """A binary trie mapping CIDR prefixes to values.

    Supports exact insert/delete/lookup plus longest-prefix match, the
    primitive underlying both routing-table lookups and EIA-set membership.
    Iteration yields ``(prefix, value)`` pairs in network order.
    """

    def __init__(self) -> None:
        self._root: _TrieNode[_T] = _TrieNode()
        self._count = 0

    def __len__(self) -> int:
        return self._count

    def __bool__(self) -> bool:
        return self._count > 0

    def insert(self, prefix: Prefix, value: _T) -> None:
        """Insert or replace the value stored at ``prefix``."""
        node = self._root
        for bit in _bits(prefix):
            child = node.children[bit]
            if child is None:
                child = _TrieNode()
                node.children[bit] = child
            node = child
        if not node.has_value:
            self._count += 1
        node.value = value
        node.has_value = True

    def get(self, prefix: Prefix, default: Optional[_T] = None) -> Optional[_T]:
        """Exact-match lookup of ``prefix``."""
        node = self._find(prefix)
        if node is not None and node.has_value:
            return node.value
        return default

    def __contains__(self, prefix: Prefix) -> bool:
        node = self._find(prefix)
        return node is not None and node.has_value

    def remove(self, prefix: Prefix) -> bool:
        """Remove ``prefix``; returns True when it was present."""
        node = self._find(prefix)
        if node is None or not node.has_value:
            return False
        node.has_value = False
        node.value = None
        self._count -= 1
        return True

    def longest_match(self, address: int) -> Optional[Tuple[Prefix, _T]]:
        """The most specific stored prefix containing ``address``, if any."""
        if not 0 <= address <= MAX_IPV4:
            raise AddressError(f"address {address!r} out of range")
        node = self._root
        best: Optional[Tuple[Prefix, _T]] = None
        network = 0
        for depth in range(33):
            if node.has_value:
                best = (Prefix(network, depth), node.value)  # type: ignore[arg-type]
            if depth == 32:
                break
            bit = (address >> (31 - depth)) & 1
            child = node.children[bit]
            if child is None:
                break
            network |= bit << (31 - depth)
            node = child
        return best

    def covering_match(self, prefix: Prefix) -> Optional[Tuple[Prefix, _T]]:
        """The most specific stored prefix that covers ``prefix`` entirely."""
        node = self._root
        best: Optional[Tuple[Prefix, _T]] = None
        network = 0
        for depth in range(prefix.length + 1):
            if node.has_value:
                best = (Prefix(network, depth), node.value)  # type: ignore[arg-type]
            if depth == prefix.length:
                break
            bit = (prefix.network >> (31 - depth)) & 1
            child = node.children[bit]
            if child is None:
                break
            network |= bit << (31 - depth)
            node = child
        return best

    def items(self) -> Iterator[Tuple[Prefix, _T]]:
        """All stored (prefix, value) pairs in network order."""
        stack: List[Tuple[_TrieNode[_T], int, int]] = [(self._root, 0, 0)]
        while stack:
            node, network, depth = stack.pop()
            if node.has_value:
                yield Prefix(network, depth), node.value  # type: ignore[misc]
            # Push bit 1 first so bit 0 pops first => network order.
            if depth < 32:
                one = node.children[1]
                if one is not None:
                    stack.append((one, network | (1 << (31 - depth)), depth + 1))
                zero = node.children[0]
                if zero is not None:
                    stack.append((zero, network, depth + 1))

    def __iter__(self) -> Iterator[Tuple[Prefix, _T]]:
        return self.items()

    def prefixes(self) -> List[Prefix]:
        """All stored prefixes in network order."""
        return [prefix for prefix, _ in self.items()]

    def update(self, entries: Iterable[Tuple[Prefix, _T]]) -> None:
        """Bulk insert."""
        for prefix, value in entries:
            self.insert(prefix, value)

    def to_dict(self) -> Dict[Prefix, _T]:
        """Snapshot the trie contents as a plain dict."""
        return dict(self.items())

    def _find(self, prefix: Prefix) -> Optional[_TrieNode[_T]]:
        node = self._root
        for bit in _bits(prefix):
            child = node.children[bit]
            if child is None:
                return None
            node = child
        return node


def _bits(prefix: Prefix) -> Iterator[int]:
    for depth in range(prefix.length):
        yield (prefix.network >> (31 - depth)) & 1
