"""The complete Figure 9 deployment, wired end to end.

:class:`Deployment` assembles the operational system the paper draws:
NetFlow-enabled border routers (one :class:`FlowExporter` each) feeding
v5 datagrams — optionally through an impaired UDP path — into a
:class:`FlowCollector`, demultiplexed per peer AS by UDP port, assessed
by the :class:`EnhancedInFilter`, with IDMEF alerts accumulating in a
:class:`TracebackAnalyzer`.

Callers interact at the packet level (:meth:`observe_packet`) or the
record level (:meth:`ingest_records`), and read alerts/trace-back at any
point.  Periodic model refresh (the paper's "training phase could be
performed periodically") is available through :meth:`retrain`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from repro.core.alerts import IdmefAlert
from repro.core.config import PipelineConfig
from repro.core.pipeline import Decision, EnhancedInFilter, Verdict
from repro.core.traceback import IngressReport, TracebackAnalyzer
from repro.netflow.collector import FlowCollector, PortMux
from repro.netflow.exporter import ExporterConfig, FlowExporter, Packet
from repro.netflow.records import FlowRecord
from repro.netflow.transport import ChannelConfig, ChannelStats, UdpChannel
from repro.netflow.v5 import datagrams_for
from repro.util.errors import ConfigError, ExperimentError
from repro.util.ip import Prefix
from repro.util.rng import SeededRng

__all__ = ["BorderRouter", "Deployment"]


@dataclass
class BorderRouter:
    """One NetFlow-enabled BR: an exporter bound to a UDP export port."""

    name: str
    peer: int
    udp_port: int
    exporter: FlowExporter
    flow_sequence: int = 0


class Deployment:
    """An operational Enhanced InFilter installation."""

    def __init__(
        self,
        config: PipelineConfig = PipelineConfig(),
        *,
        rng: Optional[SeededRng] = None,
        exporter_config: Optional[ExporterConfig] = None,
        channel_config: Optional[ChannelConfig] = None,
        retrain_reservoir: int = 5_000,
    ) -> None:
        if retrain_reservoir < 0:
            raise ConfigError("retrain_reservoir cannot be negative")
        self._rng = rng if rng is not None else SeededRng(9_2005, "deployment")
        self.detector = EnhancedInFilter(config, rng=self._rng.fork("detector"))
        self.collector = FlowCollector()
        self.mux = PortMux()
        self.traceback = TracebackAnalyzer()
        self._routers: Dict[int, BorderRouter] = {}
        self._exporter_config = exporter_config or ExporterConfig()
        self._channel = (
            UdpChannel(channel_config, rng=self._rng.fork("channel"))
            if channel_config is not None
            else None
        )
        self._reservoir_limit = retrain_reservoir
        self._reservoir: List[FlowRecord] = []
        self.decisions: List[Decision] = []
        self.collector.add_sink(self._on_record)

    # -- provisioning ---------------------------------------------------------

    def add_border_router(
        self,
        name: str,
        peer: int,
        expected_sources: Iterable[Prefix],
        *,
        udp_port: Optional[int] = None,
    ) -> BorderRouter:
        """Provision one BR: its peer identity, export port, EIA blocks."""
        if peer in self._routers:
            raise ExperimentError(f"peer {peer} already has a border router")
        port = udp_port if udp_port is not None else 9_000 + peer
        router = BorderRouter(
            name=name,
            peer=peer,
            udp_port=port,
            exporter=FlowExporter(self._exporter_config),
        )
        self.mux.bind(port, peer)
        self.detector.preload_eia(peer, expected_sources)
        self._routers[peer] = router
        return router

    def routers(self) -> Sequence[BorderRouter]:
        return list(self._routers.values())

    def train(self, records: Sequence[FlowRecord]) -> None:
        """Initial model training (Section 5.1.3 (b)-(d))."""
        self.detector.train(records)
        self._reservoir.extend(records[-self._reservoir_limit :])

    # -- data plane --------------------------------------------------------------

    def observe_packet(self, peer: int, packet: Packet) -> None:
        """Account one packet at a BR; expired flows ship immediately."""
        router = self._router_for(peer)
        expired = router.exporter.observe(packet)
        if expired:
            self._ship(router, expired)

    def sweep(self, now_ms: int) -> None:
        """Run expiry at every BR (periodic housekeeping)."""
        for router in self._routers.values():
            expired = router.exporter.sweep(now_ms)
            if expired:
                self._ship(router, expired)

    def flush(self) -> None:
        """Force-export every BR's cache (end of run)."""
        for router in self._routers.values():
            expired = router.exporter.flush()
            if expired:
                self._ship(router, expired)

    def ingest_records(self, peer: int, records: Sequence[FlowRecord]) -> None:
        """Bypass packet accounting: ship pre-built records from a BR
        (the Dagflow-style path)."""
        self._ship(self._router_for(peer), list(records))

    def _router_for(self, peer: int) -> BorderRouter:
        try:
            return self._routers[peer]
        except KeyError:
            raise ExperimentError(f"no border router for peer {peer}") from None

    def _ship(self, router: BorderRouter, records: List[FlowRecord]) -> None:
        last = records[-1].last
        datagrams = datagrams_for(
            iter(records),
            sys_uptime=last,
            unix_secs=0,
            initial_sequence=router.flow_sequence,
        )
        router.flow_sequence += len(records)
        stream: Iterable[bytes] = datagrams
        if self._channel is not None:
            stream = self._channel.transmit(datagrams)
        self._current_port = router.udp_port
        for datagram in stream:
            self.collector.receive(datagram, source=router.udp_port)

    def _on_record(self, record: FlowRecord) -> None:
        record = self.mux.demux(record, self._current_port)
        decision = self.detector.process(record)
        self.decisions.append(decision)
        if decision.alert is not None:
            self.traceback.consume(decision.alert)
        elif decision.verdict == Verdict.LEGAL and self._reservoir_limit:
            self._reservoir.append(record)
            if len(self._reservoir) > self._reservoir_limit:
                del self._reservoir[: len(self._reservoir) - self._reservoir_limit]

    # -- control plane ---------------------------------------------------------

    def retrain(self) -> int:
        """Rebuild the cluster model from the benign reservoir.

        Returns the number of flows used.  Implements the paper's
        periodic re-training: the model tracks what "normal" currently
        looks like without operator-supplied traces.
        """
        if not self._reservoir:
            raise ExperimentError("nothing in the benign reservoir to retrain on")
        self.detector.train(list(self._reservoir))
        return len(self._reservoir)

    def alerts(self) -> List[IdmefAlert]:
        return list(self.detector.alert_sink.alerts)

    def ingress_report(self) -> IngressReport:
        return self.traceback.report()

    def channel_stats(self) -> Optional[ChannelStats]:
        """Transport impairment counters (None without a channel)."""
        return self._channel.stats if self._channel is not None else None
