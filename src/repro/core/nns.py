"""Approximate nearest-neighbour search in Hamming space (Section 4.2).

Implements the Kushilevitz–Ostrovsky–Rabani construction the paper uses
([KOR], Figures 6–8): per distance scale ``t`` in ``[1, d]`` a
substructure holds ``M1`` trace tables; each table is keyed by an
``M2``-bit *trace* — the GF(2) inner products of the flow's unary encoding
with ``M2`` random test vectors whose bits are one with probability
``b/2 = 1/(4t)``; a training flow occupies every table entry within
Hamming ball radius ``M3`` of its own trace.  The search (Figure 8) binary
searches the scale axis: a non-empty entry at scale ``t`` means a training
flow is probably within distance ~``t``, so the search continues on
smaller scales, and the flow in the last non-empty entry visited is
returned.

Two engineering notes, both behaviour-preserving:

* tables store each flow under its *exact* trace and the probe walks the
  radius-``M3`` ball around the query trace — set-equivalent to the
  paper's ball *insertion*, but O(1) instead of O(ball) per flow insert;
* scales are built lazily on first probe: a binary search touches
  O(log d) of the ``d`` scales, so eager construction of all 720 would be
  ~70x wasted work.  ``build_all_scales`` exists for exhaustive tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import NNSConfig
from repro.core.encoding import UnaryEncoder, hamming, parity_inner_product
from repro.core.state import StateDict, stateful
from repro.fastpath.bitpack import PackedCodes
from repro.netflow.records import FlowStats
from repro.util.errors import TrainingError
from repro.util.rng import SeededRng

__all__ = ["TrainingFlow", "SearchResult", "NNSStructure"]


@dataclass(frozen=True)
class TrainingFlow:
    """One training point: its statistics and unary encoding."""

    index: int
    stats: FlowStats
    encoded: int


@dataclass(frozen=True)
class SearchResult:
    """The neighbour the search returned, with its exact distance."""

    flow: TrainingFlow
    distance: int
    scale: int


def _ball_deltas(m2: int, m3: int) -> Tuple[int, ...]:
    """All m2-bit XOR masks with fewer than ``m3`` bits set.

    XORing the query trace with each delta enumerates exactly the table
    entries whose Hamming distance from the trace is < m3.
    """
    deltas: List[int] = [0]
    for weight in range(1, m3):
        for positions in combinations(range(m2), weight):
            mask = 0
            for position in positions:
                mask |= 1 << position
            deltas.append(mask)
    return tuple(deltas)


class _TraceTable:
    """One T_ij: M2 test vectors plus the trace-keyed flow table."""

    __slots__ = ("test_vectors", "table")

    def __init__(
        self,
        flows: Sequence[TrainingFlow],
        dimension: int,
        m2: int,
        b: float,
        rng: SeededRng,
    ) -> None:
        self.test_vectors = [
            _random_test_vector(dimension, b / 2.0, rng) for _ in range(m2)
        ]
        self.table: Dict[int, List[TrainingFlow]] = {}
        for flow in flows:
            trace = self._trace(flow.encoded)
            self.table.setdefault(trace, []).append(flow)

    def _trace(self, encoded: int) -> int:
        trace = 0
        for bit_index, vector in enumerate(self.test_vectors):
            if parity_inner_product(vector, encoded):
                trace |= 1 << bit_index
        return trace

    def probe(self, encoded: int, deltas: Tuple[int, ...]) -> List[TrainingFlow]:
        """Flows stored within the M3-ball of the query's trace."""
        trace = self._trace(encoded)
        hits: List[TrainingFlow] = []
        for delta in deltas:
            bucket = self.table.get(trace ^ delta)
            if bucket:
                hits.extend(bucket)
        return hits


def _random_test_vector(dimension: int, probability_of_one: float, rng: SeededRng) -> int:
    vector = 0
    for position in range(dimension):
        if rng.bernoulli(probability_of_one):
            vector |= 1 << position
    return vector


def _flow_from_state(entry: StateDict) -> TrainingFlow:
    values = entry["stats"]
    return TrainingFlow(
        index=int(entry["index"]),
        stats=FlowStats(
            octets=int(values[0]),
            packets=int(values[1]),
            duration_ms=int(values[2]),
            bit_rate=float(values[3]),
            packet_rate=float(values[4]),
        ),
        encoded=int(entry["encoded"]),
    )


@stateful("nns")
class NNSStructure:
    """The full KOR search structure over one training cluster."""

    def __init__(
        self,
        encoder: UnaryEncoder,
        config: NNSConfig,
        flows: Sequence[TrainingFlow],
        *,
        rng: SeededRng,
    ) -> None:
        if not flows:
            raise TrainingError("cannot build an NNS structure with no flows")
        self.encoder = encoder
        self.config = config
        self.flows = list(flows)
        self._rng = rng
        self._pick_rng = rng.fork("structure-pick")
        self._deltas = _ball_deltas(config.m2, config.m3)
        self._scales: Dict[int, List[_TraceTable]] = {}
        self.scales_built = 0
        # Derived cache: the training codes bit-packed for popcount
        # distance sweeps.  Built lazily, never checkpointed, dropped
        # whenever `flows` is replaced (load_state).
        self._packed: Optional[PackedCodes] = None

    @property
    def dimension(self) -> int:
        return self.encoder.dimension

    def _tables_for(self, scale: int) -> List[_TraceTable]:
        tables = self._scales.get(scale)
        if tables is None:
            b = 1.0 / (2.0 * scale)
            scale_rng = self._rng.fork(f"scale-{scale}")
            tables = [
                _TraceTable(
                    self.flows,
                    self.dimension,
                    self.config.m2,
                    b,
                    scale_rng.fork(f"table-{j}"),
                )
                for j in range(self.config.m1)
            ]
            self._scales[scale] = tables
            self.scales_built += 1
        return tables

    def build_all_scales(self) -> None:
        """Eagerly build every scale (exhaustive-test / offline mode)."""
        for scale in range(1, self.dimension + 1):
            self._tables_for(scale)

    def nearest(self, encoded: int) -> Optional[SearchResult]:
        """Figure 8: binary search over distance scales.

        Returns the flow from the last non-empty entry visited, or None
        when every probed scale came up empty (possible only for queries
        far from all training data at every scale).
        """
        low, high = 1, self.dimension
        best: Optional[Tuple[TrainingFlow, int]] = None
        while low <= high:
            scale = (low + high) // 2
            tables = self._tables_for(scale)
            table = (
                tables[0]
                if len(tables) == 1
                else self._pick_rng.choice(tables)
            )
            hits = table.probe(encoded, self._deltas)
            if hits:
                # Deterministic pick inside the entry: the closest by true
                # Hamming distance, ties to the earliest training index.
                chosen = min(
                    hits, key=lambda f: (hamming(f.encoded, encoded), f.index)
                )
                best = (chosen, scale)
                high = scale - 1
            else:
                low = scale + 1
        if best is None:
            return None
        flow, scale = best
        return SearchResult(
            flow=flow, distance=hamming(flow.encoded, encoded), scale=scale
        )

    # -- the stage-state protocol --------------------------------------------

    def state_dict(self) -> StateDict:
        """Training flows plus both RNG cursors.

        The trace tables are *not* stored: scales are a pure function of
        ``self._rng``'s seed (``fork`` derives children from seed and name
        alone, never the cursor), so a restored structure rebuilds the
        same tables lazily on first probe.  Only ``_pick_rng``'s cursor is
        consumed per search, and it is captured exactly.
        """
        return {
            "rng": self._rng.state_dict(),
            "pick_rng": self._pick_rng.state_dict(),
            "flows": [
                {
                    "index": flow.index,
                    "stats": list(flow.stats.as_tuple()),
                    "encoded": flow.encoded,
                }
                for flow in self.flows
            ],
        }

    def load_state(self, state: StateDict) -> None:
        self.flows = [_flow_from_state(entry) for entry in state["flows"]]
        if not self.flows:
            raise TrainingError("cannot restore an NNS structure with no flows")
        self._rng.load_state(state["rng"])
        self._pick_rng.load_state(state["pick_rng"])
        self._scales = {}
        self.scales_built = 0
        self._packed = None

    @classmethod
    def from_state(
        cls, encoder: UnaryEncoder, config: NNSConfig, state: StateDict
    ) -> "NNSStructure":
        """Rebuild a structure from a captured state section.

        The placeholder RNG is immediately overwritten by ``load_state``,
        which restores the saved seed, name, and cursor of both streams.
        """
        flows = [_flow_from_state(entry) for entry in state["flows"]]
        structure = cls(encoder, config, flows, rng=SeededRng(0, "restoring"))
        structure.load_state(state)
        return structure

    def packed_codes(self) -> PackedCodes:
        """The training codes packed for popcount distance sweeps.

        A derived cache over ``self.flows`` — positions match the flows
        list, so a ``distances()`` sweep lines up with it index for
        index.
        """
        if self._packed is None:
            self._packed = PackedCodes(
                [flow.encoded for flow in self.flows], self.dimension
            )
        return self._packed

    def nearest_exact(self, encoded: int) -> SearchResult:
        """Brute-force exact nearest neighbour (calibration & testing).

        One packed popcount sweep over the corpus; the winner (ties to
        the earliest training index) is identical to a per-flow
        ``min(..., key=(hamming, index))`` scan.
        """
        flows = self.flows
        distances = self.packed_codes().distances(encoded)
        position = min(
            range(len(distances)),
            key=lambda i: (distances[i], flows[i].index),
        )
        return SearchResult(
            flow=flows[position], distance=distances[position], scale=0
        )
