"""Expected-IP-Address (EIA) sets and the Basic InFilter check.

The Basic InFilter (Section 3) keeps, per peer AS, the set of source
address blocks whose traffic is expected to enter through that peer.  An
incoming flow is *legal* when the peer AS whose EIA set contains its
source address is the peer it actually arrived through; otherwise it is
*suspect* — either it arrived through the wrong peer (``WRONG_INGRESS``)
or no peer expects it at all (``UNKNOWN_SOURCE``).

EIA sets may be initialised from subnet lists, from a training run over
live flows, or from routing data (the traceroute/BGP mechanisms of
Section 3); and they adapt online through the learning rule of
Section 5.2: a source persistently observed (and assessed benign) at an
unexpected peer is absorbed into that peer's set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.config import EIAConfig
from repro.core.state import StateDict, stateful
from repro.netflow.records import FlowRecord
from repro.obs import MetricsRegistry, get_logger, get_registry
from repro.util.errors import ConfigError
from repro.util.ip import Prefix, PrefixTrie

__all__ = ["EIAVerdict", "EIACheck", "EIASet", "BasicInFilter"]

log = get_logger(__name__)


class EIAVerdict:
    """Outcome classes of the EIA check."""

    LEGAL = "legal"
    WRONG_INGRESS = "wrong_ingress"
    UNKNOWN_SOURCE = "unknown_source"


@dataclass(frozen=True)
class EIACheck:
    """Result of checking one flow against the EIA sets.

    ``expected_peer`` is the peer AS whose EIA set contains the source
    (None when no set does); ``observed_peer`` is where the flow actually
    entered.
    """

    verdict: str
    observed_peer: int
    expected_peer: Optional[int]

    @property
    def suspect(self) -> bool:
        return self.verdict != EIAVerdict.LEGAL


@stateful("eia_set")
class EIASet:
    """The expected source address blocks of one peer AS."""

    def __init__(self, peer: int) -> None:
        self.peer = peer
        self._trie: PrefixTrie[bool] = PrefixTrie()

    def add(self, prefix: Prefix) -> None:
        """Add an expected source block."""
        self._trie.insert(prefix, True)

    def discard(self, prefix: Prefix) -> bool:
        """Remove a block; True when it was present."""
        return self._trie.remove(prefix)

    def contains(self, address: int) -> bool:
        """True when some stored block covers ``address``."""
        return self._trie.longest_match(address) is not None

    def prefixes(self) -> List[Prefix]:
        return self._trie.prefixes()

    def __len__(self) -> int:
        return len(self._trie)

    def __contains__(self, address: int) -> bool:
        return self.contains(address)

    def state_dict(self) -> StateDict:
        return {
            "peer": self.peer,
            "prefixes": sorted(str(prefix) for prefix in self.prefixes()),
        }

    def load_state(self, state: StateDict) -> None:
        self.peer = int(state["peer"])
        self._trie = PrefixTrie()
        for text in state["prefixes"]:
            self._trie.insert(Prefix.parse(text), True)


@stateful("eia")
class BasicInFilter:
    """Per-peer EIA sets plus the Section 5.2 check and learning rules.

    The reverse index (source block → owning peer) makes the check O(32)
    per flow regardless of how many peers exist.
    """

    def __init__(
        self,
        config: Optional[EIAConfig] = None,
        *,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.config = config if config is not None else EIAConfig()
        self._sets: Dict[int, EIASet] = {}
        self._owner: PrefixTrie[int] = PrefixTrie()
        # (peer, block) -> benign observations, for the learning rule.
        self._pending: Dict[Tuple[int, Prefix], int] = {}
        #: Monotonic counter bumped by every mutation that can change a
        #: ``check()`` outcome (preload, training init, absorption,
        #: checkpoint restore).  Derived bookkeeping for epoch-guarded
        #: caches (``repro.fastpath``); never checkpointed.
        self.mutation_epoch = 0
        #: Upper bound on the length of any stored prefix.  Within an
        #: address block of this length every address shares the same
        #: longest-match result, so ``address >> memo_shift`` is a sound
        #: verdict-memo key.  Also derived; never checkpointed.
        self.max_prefix_len = 0
        registry = registry if registry is not None else get_registry()
        self._m_blocks = registry.gauge(
            "infilter_eia_blocks",
            "Expected source blocks currently in one peer AS's EIA set.",
            ("peer",),
        )
        self._m_absorptions = registry.counter(
            "infilter_eia_absorptions_total",
            "Section 5.2 learning-rule absorptions of route-changed blocks.",
        )

    # -- initialisation ----------------------------------------------------

    def ensure_peer(self, peer: int) -> EIASet:
        """The EIA set for ``peer``, created empty on first reference."""
        eia = self._sets.get(peer)
        if eia is None:
            self._sets[peer] = eia = EIASet(peer)
        return eia

    def peers(self) -> List[int]:
        return sorted(self._sets)

    def eia_set(self, peer: int) -> EIASet:
        try:
            return self._sets[peer]
        except KeyError:
            raise ConfigError(f"no EIA set exists for peer AS {peer}") from None

    def preload(self, peer: int, prefixes: Iterable[Prefix]) -> None:
        """Initialise a peer's EIA set by hand from subnet masks (5.1.3a)."""
        eia = self.ensure_peer(peer)
        for prefix in prefixes:
            self._insert(eia, prefix)

    def initialize_from_flows(self, records: Iterable[FlowRecord]) -> None:
        """Training-phase initialisation from observed traffic (5.1.3a).

        Each record's source block (at the configured granularity) is
        added to the EIA set of the peer it arrived through — the
        flow-data variant of the training phase.
        """
        for record in records:
            peer = record.key.input_if
            block = Prefix.from_address(record.key.src_addr, self.config.granularity)
            eia = self.ensure_peer(peer)
            if not eia.contains(record.key.src_addr):
                self._insert(eia, block)

    def initialize_from_ingress_map(self, mapping: Dict[Prefix, int]) -> None:
        """Initialisation from routing-derived data (Sections 3.1/3.2):
        a map of source blocks to their expected ingress peer."""
        for prefix, peer in mapping.items():
            self._insert(self.ensure_peer(peer), prefix)

    def _insert(self, eia: EIASet, prefix: Prefix) -> None:
        eia.add(prefix)
        self._owner.insert(prefix, eia.peer)
        self.mutation_epoch += 1
        if prefix.length > self.max_prefix_len:
            self.max_prefix_len = prefix.length
        self._m_blocks.labels(peer=eia.peer).set(len(eia))

    # -- the check ----------------------------------------------------------

    @property
    def memo_shift(self) -> int:
        """Right-shift collapsing an address onto its verdict-sharing block.

        All stored prefixes are at most ``max_prefix_len`` bits, so two
        addresses agreeing on their top ``max_prefix_len`` bits get
        identical :meth:`check` results for a given ingress — the
        invariant the fastpath verdict memo keys on.  With no prefixes
        stored the shift is 32 and every address shares one key, which is
        exactly right (every check is ``UNKNOWN_SOURCE``).
        """
        return 32 - self.max_prefix_len

    def expected_peer_for(self, address: int) -> Optional[int]:
        """The peer AS whose EIA set covers ``address`` (``ASIP(φ)``)."""
        match = self._owner.longest_match(address)
        return match[1] if match is not None else None

    def check(self, record: FlowRecord) -> EIACheck:
        """The Basic InFilter assessment of one flow (Section 5.2)."""
        observed = record.key.input_if
        expected = self.expected_peer_for(record.key.src_addr)
        if expected is None:
            verdict = EIAVerdict.UNKNOWN_SOURCE
        elif expected == observed:
            verdict = EIAVerdict.LEGAL
        else:
            verdict = EIAVerdict.WRONG_INGRESS
        return EIACheck(verdict=verdict, observed_peer=observed, expected_peer=expected)

    # -- online learning ----------------------------------------------------

    def note_benign(self, record: FlowRecord) -> bool:
        """Record a benign-assessed suspect flow; absorb after threshold.

        Implements Section 5.2(a): ``IP(φ)`` is added to the EIA set of
        ``ASφ`` once the number of (benign) flows from that source block
        at that peer exceeds the learning threshold.  Returns True when
        the absorption happened on this call.
        """
        peer = record.key.input_if
        block = Prefix.from_address(record.key.src_addr, self.config.granularity)
        key = (peer, block)
        count = self._pending.get(key, 0) + 1
        if count >= self.config.learning_threshold:
            self._pending.pop(key, None)
            self.apply_absorption(peer, block)
            return True
        self._pending[key] = count
        return False

    def apply_absorption(self, peer: int, block: Prefix) -> Optional[int]:
        """Absorb ``block`` into ``peer``'s EIA set, returning the old owner.

        Absorption *moves* the block: the old owner no longer expects it,
        reflecting that the route genuinely changed.  Exposed so shard
        replicas (``repro.engine``) can replay absorption deltas decided
        by the authoritative detector without re-running the learning
        rule.
        """
        eia = self.ensure_peer(peer)
        previous = self.expected_peer_for(block.network)
        if previous is not None and previous != peer:
            self._sets[previous].discard(block)
            self._m_blocks.labels(peer=previous).set(
                len(self._sets[previous])
            )
        self._insert(eia, block)
        self._m_absorptions.inc()
        log.info(
            "EIA absorption: block moved to peer",
            extra={
                "block": str(block),
                "peer": peer,
                "previous_peer": previous,
            },
        )
        return previous

    def pending_counts(self) -> Dict[Tuple[int, Prefix], int]:
        """Snapshot of not-yet-absorbed source observations (for tests)."""
        return dict(self._pending)

    # -- the stage-state protocol --------------------------------------------

    def state_dict(self) -> StateDict:
        """EIA sets plus the learning rule's pending counters.

        The reverse owner index is derived (every block in every set owns
        its entry) and is rebuilt on load rather than stored.  The
        mutation epoch and prefix-length bound are likewise derived cache
        bookkeeping and deliberately excluded: a checkpoint must be
        byte-identical whether or not a fastpath memo was attached, and
        a restored detector always starts its caches cold.
        """
        return {
            "peers": {
                str(peer): self._sets[peer].state_dict()
                for peer in self.peers()
            },
            "pending": [
                {"peer": peer, "prefix": str(prefix), "count": count}
                for (peer, prefix), count in sorted(
                    self._pending.items(),
                    key=lambda item: (item[0][0], str(item[0][1])),
                )
            ],
        }

    def load_state(self, state: StateDict) -> None:
        self._sets = {}
        self._owner = PrefixTrie()
        self._pending = {}
        # A restore rewrites everything check() depends on: advance the
        # epoch so any attached verdict memo self-invalidates.
        self.mutation_epoch += 1
        self.max_prefix_len = 0
        for peer_text, section in state["peers"].items():
            peer = int(peer_text)
            eia = self.ensure_peer(peer)
            eia.load_state(section)
            for prefix in eia.prefixes():
                self._owner.insert(prefix, peer)
                if prefix.length > self.max_prefix_len:
                    self.max_prefix_len = prefix.length
            self._m_blocks.labels(peer=peer).set(len(eia))
        for entry in state["pending"]:
            key = (int(entry["peer"]), Prefix.parse(entry["prefix"]))
            self._pending[key] = int(entry["count"])
