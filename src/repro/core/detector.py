"""The pluggable detector protocol and the detector ensemble.

The paper's InFilter verdict is one signal: EIA ingress membership
backed by Scan Analysis and the NNS search.  A production ingress filter
hosts *many* complementary signals, so the detection core speaks one
uniform interface:

* :class:`Detector` — ``observe(record) -> DetectorVerdict`` plus
  ``train(records)`` and the stage-state contract
  (``state_dict``/``load_state``), with a registered
  ``infilter_detector_*`` metric namespace per implementation;
* :class:`TTLProfileDetector` — per-source-prefix TTL baselines with
  distance-based anomaly scoring ("Carrier-Grade Anomaly Detection Using
  Time-to-Live Header Information"): a spoofed packet's TTL reflects the
  *attacker's* path, not the impersonated source's;
* :class:`BogonDetector` — martian/reserved source check against a
  prefix trie ("Martians Among Us"): traffic sourced from space that
  cannot legitimately originate anywhere;
* :class:`Ensemble` — combines per-detector votes under a configurable
  policy (``any``/``majority``/``weighted``) and renders the
  per-detector attribution attached to every alert.

The paper's own chain — :class:`~repro.core.eia.BasicInFilter`,
:class:`~repro.core.scan.ScanAnalyzer` + NNS, and the fastpath verdict
memo — is the protocol's ``"infilter"`` member, implemented by
:class:`~repro.core.pipeline.InFilterDetector` next to the pipeline that
owns those stages.  The default composition is InFilter alone, which
bypasses the combiner entirely: the refactor is behaviour-preserving
until additional detectors are switched on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Dict,
    Iterable,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    runtime_checkable,
)

from repro.core.state import StateDict, stateful
from repro.netflow.records import FlowRecord
from repro.obs import MetricsRegistry, get_registry
from repro.util.errors import ConfigError
from repro.util.ip import Prefix, PrefixTrie

__all__ = [
    "INFILTER_DETECTOR",
    "AUX_DETECTOR_NAMES",
    "ENSEMBLE_POLICIES",
    "DEFAULT_DETECTOR_WEIGHTS",
    "DetectorVerdict",
    "Detector",
    "available_detectors",
    "validate_composition",
    "build_aux_detectors",
    "TTLProfileDetector",
    "BogonDetector",
    "EnsembleDecision",
    "Ensemble",
]

#: The paper's own EIA+Scan+NNS chain, always the ensemble's anchor
#: member (see :class:`repro.core.pipeline.InFilterDetector`).
INFILTER_DETECTOR = "infilter"

#: Additional protocol implementations this module provides, in the
#: order the pipeline instantiates them.
AUX_DETECTOR_NAMES: Tuple[str, ...] = ("ttl_profile", "bogon")

ENSEMBLE_POLICIES: Tuple[str, ...] = ("any", "majority", "weighted")

#: Per-detector vote weights for the ``weighted`` policy.  A weighted
#: sum of flagging detectors at or above 1.0 is an attack: InFilter or
#: the bogon check alone suffice, a TTL anomaly needs corroboration.
DEFAULT_DETECTOR_WEIGHTS: Dict[str, float] = {
    INFILTER_DETECTOR: 1.0,
    "bogon": 1.0,
    "ttl_profile": 0.5,
}

_WEIGHTED_THRESHOLD = 1.0


@dataclass(frozen=True)
class DetectorVerdict:
    """One detector's assessment of one flow.

    ``abstained`` marks a detector that could not assess the flow at all
    (no TTL measured, source prefix never trained); abstentions are
    excluded from the ensemble electorate rather than counted as clear.
    ``score`` is a detector-specific anomaly magnitude (0 when clear);
    ``reason`` is the classification an alert carries when this verdict
    is the one that fired.
    """

    detector: str
    suspicious: bool
    score: float = 0.0
    reason: str = ""
    abstained: bool = False

    @property
    def outcome(self) -> str:
        """The attribution token: ``hit``, ``clear`` or ``abstain``."""
        if self.abstained:
            return "abstain"
        return "hit" if self.suspicious else "clear"


@runtime_checkable
class Detector(Protocol):
    """The uniform detector contract.

    Implementations expose a stable ``name`` (their registry identity
    and metric label), assess one flow at a time through ``observe``,
    build baselines in ``train``, and checkpoint through the stage-state
    protocol of :mod:`repro.core.state`.
    """

    name: str

    def observe(self, record: FlowRecord) -> DetectorVerdict:
        """Assess one flow.  Must not mutate trained baselines."""

    def train(self, records: Sequence[FlowRecord]) -> None:
        """Build or extend baselines from a training record stream."""

    def state_dict(self) -> StateDict:
        """Capture all mutable state as a JSON-serialisable dict."""

    def load_state(self, state: StateDict) -> None:
        """Restore the detector, in place, from a captured state dict."""


def available_detectors() -> Tuple[str, ...]:
    """Every selectable detector name, anchor first."""
    return (INFILTER_DETECTOR,) + AUX_DETECTOR_NAMES


def validate_composition(names: Sequence[str], policy: str) -> None:
    """Reject malformed detector compositions with actionable messages.

    Called from ``PipelineConfig.__post_init__``, so the CLI's
    ``--detectors``/``--ensemble-policy`` flags surface these as
    ``error: ...`` lines without extra plumbing.
    """
    known = available_detectors()
    if not names:
        raise ConfigError(
            "detector composition is empty; include at least"
            f" {INFILTER_DETECTOR!r}"
        )
    seen: Dict[str, int] = {}
    for name in names:
        seen[name] = seen.get(name, 0) + 1
    duplicates = sorted(name for name, count in seen.items() if count > 1)
    if duplicates:
        raise ConfigError(
            f"duplicate detector name(s) {', '.join(duplicates)}:"
            " each detector may appear at most once"
        )
    for name in names:
        if name not in known:
            raise ConfigError(
                f"unknown detector {name!r}; available: {', '.join(known)}"
            )
    if INFILTER_DETECTOR not in names:
        raise ConfigError(
            f"detector composition must include {INFILTER_DETECTOR!r}"
            " (the paper's EIA+Scan+NNS chain)"
        )
    if policy not in ENSEMBLE_POLICIES:
        raise ConfigError(
            f"unknown ensemble policy {policy!r}; expected one of"
            f" {', '.join(ENSEMBLE_POLICIES)}"
        )


def build_aux_detectors(
    names: Sequence[str], *, registry: Optional[MetricsRegistry] = None
) -> List["Detector"]:
    """Instantiate the non-anchor detectors of a composition, in order."""
    registry = registry if registry is not None else get_registry()
    detectors: List[Detector] = []
    for name in names:
        if name == INFILTER_DETECTOR:
            continue
        if name == "ttl_profile":
            detectors.append(TTLProfileDetector(registry=registry))
        elif name == "bogon":
            detectors.append(BogonDetector(registry=registry))
        else:
            raise ConfigError(
                f"unknown detector {name!r}; available:"
                f" {', '.join(available_detectors())}"
            )
    return detectors


class _DetectorMetrics:
    """The shared per-detector registry handles (docs/observability.md)."""

    def __init__(self, registry: MetricsRegistry, name: str) -> None:
        verdicts = registry.counter(
            "infilter_detector_verdicts_total",
            "Per-detector observe() outcomes, by detector and verdict.",
            ("detector", "verdict"),
        )
        self.hit = verdicts.labels(detector=name, verdict="hit")
        self.clear = verdicts.labels(detector=name, verdict="clear")
        self.abstain = verdicts.labels(detector=name, verdict="abstain")
        self.trained = registry.counter(
            "infilter_detector_train_records_total",
            "Training records consumed, per detector.",
            ("detector",),
        ).labels(detector=name)


@stateful("ttl_profile")
class TTLProfileDetector:
    """Per-source-prefix TTL baselines with distance anomaly scoring.

    Training collects the distinct TTL values observed per source prefix
    (at ``prefix_len`` granularity).  A live flow whose TTL sits more
    than ``tolerance`` hops from every baseline value of its prefix is
    suspicious: the packets plausibly originated somewhere else entirely
    (a spoofed source traverses the *attacker's* path, so its received
    TTL rarely matches the impersonated prefix's profile).  Flows with
    no measured TTL (``record.ttl == 0``) and prefixes never seen in
    training abstain — absent evidence is the EIA check's business, not
    this detector's.
    """

    name = "ttl_profile"

    def __init__(
        self,
        *,
        prefix_len: int = 8,
        tolerance: int = 3,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if not 0 < prefix_len <= 32:
            raise ConfigError("prefix_len must be a valid prefix length")
        if tolerance < 0:
            raise ConfigError("tolerance cannot be negative")
        self.prefix_len = prefix_len
        self.tolerance = tolerance
        self._profiles: Dict[Prefix, Tuple[int, ...]] = {}
        registry = registry if registry is not None else get_registry()
        self._metrics = _DetectorMetrics(registry, self.name)
        self._m_prefixes = registry.gauge(
            "infilter_detector_ttl_prefixes",
            "Source prefixes with a trained TTL baseline.",
        )
        self._m_anomalies = registry.counter(
            "infilter_detector_ttl_anomalies_total",
            "Flows whose TTL fell outside their source prefix baseline.",
        )

    def train(self, records: Sequence[FlowRecord]) -> None:
        """Extend the per-prefix baselines with observed TTL values."""
        for record in records:
            if record.ttl == 0:
                continue
            prefix = Prefix.from_address(record.key.src_addr, self.prefix_len)
            baseline = self._profiles.get(prefix)
            if baseline is None:
                self._profiles[prefix] = (record.ttl,)
            elif record.ttl not in baseline:
                self._profiles[prefix] = tuple(
                    sorted(baseline + (record.ttl,))
                )
        self._m_prefixes.set(len(self._profiles))
        self._metrics.trained.inc(len(records))

    def observe(self, record: FlowRecord) -> DetectorVerdict:
        if record.ttl == 0:
            self._metrics.abstain.inc()
            return DetectorVerdict(self.name, False, abstained=True)
        prefix = Prefix.from_address(record.key.src_addr, self.prefix_len)
        baseline = self._profiles.get(prefix)
        if baseline is None:
            self._metrics.abstain.inc()
            return DetectorVerdict(self.name, False, abstained=True)
        distance = min(abs(record.ttl - value) for value in baseline)
        if distance > self.tolerance:
            self._metrics.hit.inc()
            self._m_anomalies.inc()
            return DetectorVerdict(
                self.name, True, score=float(distance), reason="ttl-anomaly"
            )
        self._metrics.clear.inc()
        return DetectorVerdict(self.name, False)

    # -- the stage-state protocol --------------------------------------------

    def state_dict(self) -> StateDict:
        """Baselines plus the knobs they were built under.

        Profiles key on the prefix's canonical string form, sorted, so
        checkpoints stay byte-identical across save/load cycles.
        """
        return {
            "prefix_len": self.prefix_len,
            "tolerance": self.tolerance,
            "profiles": {
                str(prefix): list(self._profiles[prefix])
                for prefix in sorted(self._profiles, key=str)
            },
        }

    def load_state(self, state: StateDict) -> None:
        self.prefix_len = int(state["prefix_len"])
        self.tolerance = int(state["tolerance"])
        self._profiles = {
            Prefix.parse(text): tuple(int(value) for value in values)
            for text, values in state["profiles"].items()
        }
        self._m_prefixes.set(len(self._profiles))


#: Builtin martian categories.  Only space that cannot appear in the
#: Section 6.2 synthetic public universe (whose /8 list deliberately
#: includes blocks that are RFC-special in the real Internet, e.g. 172
#: and 192) — deployment-specific bogons join via ``extra_prefixes``.
_BUILTIN_BOGONS: Tuple[Tuple[str, str], ...] = (
    ("0.0.0.0/8", "this-network"),
    ("10.0.0.0/8", "private"),
    ("100.64.0.0/10", "shared-cgn"),
    ("127.0.0.0/8", "loopback"),
    ("224.0.0.0/4", "multicast"),
    ("240.0.0.0/4", "reserved"),
)


@stateful("bogon")
class BogonDetector:
    """Martian/reserved/unallocated source check against a prefix trie.

    A flow sourced from space that cannot legitimately originate
    anywhere is spoofed regardless of which peer it entered through, so
    this detector never abstains.  ``train`` is a no-op: the builtin
    list is protocol-level fact, and deployment-specific additions
    (unallocated space at the observation epoch) come in through
    ``extra_prefixes``.
    """

    name = "bogon"

    def __init__(
        self,
        *,
        extra_prefixes: Iterable[Prefix] = (),
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        registry = registry if registry is not None else get_registry()
        self._metrics = _DetectorMetrics(registry, self.name)
        self._m_matches = registry.counter(
            "infilter_detector_bogon_matches_total",
            "Flows sourced from martian/reserved space, by category.",
            ("category",),
        )
        self._extra: Tuple[Prefix, ...] = ()
        self._trie: PrefixTrie[str] = PrefixTrie()
        self._rebuild(tuple(extra_prefixes))

    def _rebuild(self, extra: Tuple[Prefix, ...]) -> None:
        self._extra = tuple(sorted(extra))
        self._trie = PrefixTrie()
        for text, category in _BUILTIN_BOGONS:
            self._trie.insert(Prefix.parse(text), category)
        for prefix in self._extra:
            self._trie.insert(prefix, "unallocated")

    def train(self, records: Sequence[FlowRecord]) -> None:
        """No baselines to learn; counts the records for uniformity."""
        self._metrics.trained.inc(len(records))

    def observe(self, record: FlowRecord) -> DetectorVerdict:
        match = self._trie.longest_match(record.key.src_addr)
        if match is not None:
            category = match[1]
            self._metrics.hit.inc()
            self._m_matches.labels(category=category).inc()
            return DetectorVerdict(
                self.name, True, score=1.0, reason="bogon-source"
            )
        self._metrics.clear.inc()
        return DetectorVerdict(self.name, False)

    # -- the stage-state protocol --------------------------------------------

    def state_dict(self) -> StateDict:
        """Only the deployment-specific additions; builtins are code."""
        return {"extra": [str(prefix) for prefix in self._extra]}

    def load_state(self, state: StateDict) -> None:
        self._rebuild(tuple(Prefix.parse(text) for text in state["extra"]))


@dataclass(frozen=True)
class EnsembleDecision:
    """The combiner's conclusion for one flow.

    ``attribution`` carries one ``name:outcome`` token per composed
    detector, in composition order — the provenance trail every
    ensemble alert embeds.  ``trigger`` is the first flagging auxiliary
    verdict, used to classify alerts the InFilter chain itself did not
    raise.
    """

    attack: bool
    attribution: Tuple[str, ...]
    trigger: Optional[DetectorVerdict] = None


class Ensemble:
    """Combines per-detector votes under a configurable policy.

    * ``any`` — one flagging detector makes the flow an attack;
    * ``majority`` — strictly more than half of the non-abstaining
      detectors must flag;
    * ``weighted`` — the flagging detectors' weights must sum to at
      least 1.0 (see :data:`DEFAULT_DETECTOR_WEIGHTS`).

    Abstaining detectors leave the electorate entirely; the InFilter
    chain always votes, so the electorate is never empty.
    """

    def __init__(
        self,
        policy: str,
        names: Sequence[str],
        *,
        weights: Optional[Dict[str, float]] = None,
    ) -> None:
        if policy not in ENSEMBLE_POLICIES:
            raise ConfigError(
                f"unknown ensemble policy {policy!r}; expected one of"
                f" {', '.join(ENSEMBLE_POLICIES)}"
            )
        self.policy = policy
        self.names = tuple(names)
        table = weights if weights is not None else DEFAULT_DETECTOR_WEIGHTS
        self._weights = {name: table.get(name, 1.0) for name in self.names}

    def combine(
        self, chain_attack: bool, aux: Sequence[DetectorVerdict]
    ) -> EnsembleDecision:
        """Fold the chain verdict and auxiliary verdicts into one answer."""
        chain = DetectorVerdict(
            INFILTER_DETECTOR, chain_attack, score=1.0 if chain_attack else 0.0
        )
        verdicts = (chain,) + tuple(aux)
        attribution = tuple(
            f"{verdict.detector}:{verdict.outcome}" for verdict in verdicts
        )
        voters = [verdict for verdict in verdicts if not verdict.abstained]
        hits = [verdict for verdict in voters if verdict.suspicious]
        if self.policy == "any":
            attack = bool(hits)
        elif self.policy == "majority":
            attack = 2 * len(hits) > len(voters)
        else:
            weight = sum(self._weights[verdict.detector] for verdict in hits)
            attack = weight >= _WEIGHTED_THRESHOLD
        trigger = next(
            (verdict for verdict in aux if verdict.suspicious), None
        )
        return EnsembleDecision(
            attack=attack, attribution=attribution, trigger=trigger
        )
