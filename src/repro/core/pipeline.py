"""The Enhanced InFilter pipeline (Section 5).

Wires the stages together in the paper's normal-processing order
(Figure 12):

1. **EIA set analysis** — a flow whose source is expected at the peer it
   arrived through is legal; anything else is a *suspect flow*;
2. **Scan Analysis** — suspect flows feed the scan buffer; a completed
   network/host-scan pattern is an attack;
3. **NNS Search** — remaining suspects are compared with their protocol
   class's normal subcluster; beyond the distance threshold is an attack,
   within it the flow is assessed benign and contributes toward EIA
   absorption of its (route-changed) source block.

``PipelineConfig(enhanced=False)`` stops after stage 1 and flags every
suspect — the paper's BI configuration.  Attacks produce IDMEF alerts.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.alerts import AlertSink, IdmefAlert
from repro.core.clusters import ClusterModel, protocol_class
from repro.core.config import PipelineConfig
from repro.core.detector import (
    INFILTER_DETECTOR,
    Detector,
    DetectorVerdict,
    Ensemble,
    EnsembleDecision,
    build_aux_detectors,
)
from repro.core.eia import BasicInFilter, EIACheck
from repro.core.nns import SearchResult
from repro.core.scan import ScanAnalyzer, ScanVerdict
from repro.core.state import StateDict, stateful
from repro.fastpath.plane import DEFAULT_MEMO_CAPACITY, FastPath
from repro.netflow.records import FlowRecord
from repro.obs import MetricsRegistry, Stopwatch, get_logger, get_registry
from repro.util.errors import ConfigError, EngineError, TrainingError
from repro.util.ip import Prefix
from repro.util.rng import SeededRng

__all__ = [
    "Verdict",
    "Stage",
    "Decision",
    "NnsAssessment",
    "BatchResult",
    "PipelineStats",
    "EnhancedInFilter",
    "InFilterDetector",
]

#: Seed of the reservoir-sampling RNG in :class:`PipelineStats`.  A fixed
#: constant keeps two identical runs byte-identical while still sampling
#: the whole stream uniformly.
_RESERVOIR_SEED = 0x1FF17E5

log = get_logger(__name__)


class Verdict:
    """Final assessment of one flow."""

    LEGAL = "legal"            # expected ingress: never entered analysis
    BENIGN = "benign"          # suspect, but analysis cleared it
    ATTACK = "attack"


class Stage:
    """Pipeline stage that produced the decision."""

    EIA = "eia"
    SCAN = "scan"
    NNS = "nns"
    OVERLOAD = "overload"
    #: The multi-detector combiner overruled (or originated) the verdict.
    ENSEMBLE = "ensemble"


@dataclass(frozen=True)
class Decision:
    """Everything the pipeline concluded about one flow."""

    verdict: str
    stage: str
    eia: EIACheck
    scan: Optional[ScanVerdict] = None
    neighbour: Optional[SearchResult] = None
    protocol_class: Optional[str] = None
    alert: Optional[IdmefAlert] = None
    absorbed: bool = False
    latency_s: float = 0.0

    @property
    def is_attack(self) -> bool:
        return self.verdict == Verdict.ATTACK


@dataclass(frozen=True)
class NnsAssessment:
    """A precomputed NNS-stage result for one flow.

    ``ClusterModel.assess`` is a pure function of (trained model, flow),
    so its result may be computed ahead of time — by a shard worker in
    :mod:`repro.engine` — and handed to :meth:`EnhancedInFilter.process_batch`,
    which then skips the expensive search for that flow.
    """

    is_normal: Optional[bool]
    neighbour: Optional[SearchResult]
    protocol_class: str


@dataclass
class BatchResult:
    """What :meth:`EnhancedInFilter.process_batch` concluded about a batch."""

    decisions: List[Decision]
    #: (peer, block) EIA absorptions triggered while committing the batch,
    #: in commit order — the delta stream shard replicas replay.
    absorbed: List[Tuple[int, Prefix]]
    elapsed_s: float = 0.0
    #: NNS-stage demand met by caller-supplied speculation vs computed here.
    speculation_hits: int = 0
    speculation_misses: int = 0


@stateful("stats")
@dataclass
class PipelineStats:
    """Operational counters, including per-flow processing latency."""

    processed: int = 0
    legal: int = 0
    suspects: int = 0
    benign: int = 0
    attacks: int = 0
    absorbed: int = 0
    attacks_by_stage: Dict[str, int] = field(default_factory=dict)
    overload_dropped: int = 0
    overload_flagged: int = 0
    latency_total_s: float = 0.0
    latency_max_s: float = 0.0
    #: per-flow latency samples for percentile queries.  A bounded
    #: uniform reservoir (algorithm R) over the whole run, so percentiles
    #: reflect the entire stream, not its first ``latency_sample_cap``
    #: flows (the mean/max above are exact regardless).
    latency_samples: List[float] = field(default_factory=list)
    latency_sample_cap: int = 100_000
    #: flows offered to the reservoir so far (== processed unless stats
    #: objects were merged from shards).
    latency_samples_seen: int = 0
    # SeededRng(seed) draws the same stream as the random.Random(seed)
    # used before the REP002 migration, so reservoir contents (and the
    # serial-equivalence tests over them) are unchanged.
    _reservoir_rng: SeededRng = field(
        default_factory=lambda: SeededRng(_RESERVOIR_SEED, "latency-reservoir"),
        repr=False,
        compare=False,
    )

    def sample_latency(self, latency_s: float) -> None:
        """Offer one per-flow latency to the bounded uniform reservoir."""
        self.latency_samples_seen += 1
        if len(self.latency_samples) < self.latency_sample_cap:
            self.latency_samples.append(latency_s)
            return
        slot = self._reservoir_rng.randrange(self.latency_samples_seen)
        if slot < self.latency_sample_cap:
            self.latency_samples[slot] = latency_s

    def note(self, decision: Decision) -> None:
        self.processed += 1
        self.latency_total_s += decision.latency_s
        self.latency_max_s = max(self.latency_max_s, decision.latency_s)
        self.sample_latency(decision.latency_s)
        if decision.verdict == Verdict.LEGAL:
            self.legal += 1
            return
        self.suspects += 1
        if decision.absorbed:
            self.absorbed += 1
        if decision.verdict == Verdict.BENIGN:
            self.benign += 1
        else:
            self.attacks += 1
            self.attacks_by_stage[decision.stage] = (
                self.attacks_by_stage.get(decision.stage, 0) + 1
            )

    @property
    def mean_latency_s(self) -> float:
        return self.latency_total_s / self.processed if self.processed else 0.0

    def latency_percentile(self, quantile: float) -> float:
        """Latency at the given quantile in [0, 1] over the sampled flows."""
        if not 0.0 <= quantile <= 1.0:
            raise ConfigError("quantile must be in [0, 1]")
        if not self.latency_samples:
            return 0.0
        ordered = sorted(self.latency_samples)
        index = min(len(ordered) - 1, int(quantile * len(ordered)))
        return ordered[index]

    # -- the stage-state protocol --------------------------------------------

    def state_dict(self) -> StateDict:
        """Every counter plus the reservoir and its RNG cursor.

        The reservoir samples (and their seen count) travel with the
        stats so restored percentiles keep reflecting the whole stream,
        and the RNG cursor makes post-restart sampling decisions match an
        uninterrupted run draw for draw.
        """
        return {
            "processed": self.processed,
            "legal": self.legal,
            "suspects": self.suspects,
            "benign": self.benign,
            "attacks": self.attacks,
            "absorbed": self.absorbed,
            "attacks_by_stage": {
                stage: self.attacks_by_stage[stage]
                for stage in sorted(self.attacks_by_stage)
            },
            "overload_dropped": self.overload_dropped,
            "overload_flagged": self.overload_flagged,
            "latency_total_s": self.latency_total_s,
            "latency_max_s": self.latency_max_s,
            "latency_samples": list(self.latency_samples),
            "latency_sample_cap": self.latency_sample_cap,
            "latency_samples_seen": self.latency_samples_seen,
            "reservoir_rng": self._reservoir_rng.state_dict(),
        }

    def load_state(self, state: StateDict) -> None:
        self.processed = int(state["processed"])
        self.legal = int(state["legal"])
        self.suspects = int(state["suspects"])
        self.benign = int(state["benign"])
        self.attacks = int(state["attacks"])
        self.absorbed = int(state["absorbed"])
        self.attacks_by_stage = {
            str(stage): int(count)
            for stage, count in state["attacks_by_stage"].items()
        }
        self.overload_dropped = int(state["overload_dropped"])
        self.overload_flagged = int(state["overload_flagged"])
        self.latency_total_s = float(state["latency_total_s"])
        self.latency_max_s = float(state["latency_max_s"])
        self.latency_samples = [float(sample) for sample in state["latency_samples"]]
        self.latency_sample_cap = int(state["latency_sample_cap"])
        self.latency_samples_seen = int(state["latency_samples_seen"])
        self._reservoir_rng.load_state(state["reservoir_rng"])


class _PipelineMetrics:
    """The pipeline's registry handles (see docs/observability.md).

    Label children are resolved once here rather than per flow: the
    verdict/stage combinations are a small fixed set and ``process`` is
    the hot path.
    """

    def __init__(self, registry: MetricsRegistry) -> None:
        self.flows = registry.counter(
            "infilter_pipeline_flows_total",
            "Flows assessed, by final verdict and deciding stage.",
            ("verdict", "stage"),
        )
        self.flow_latency = registry.histogram(
            "infilter_pipeline_flow_latency_seconds",
            "End-to-end per-flow processing latency (the Section 6.4 metric).",
        )
        stage_latency = registry.histogram(
            "infilter_pipeline_stage_latency_seconds",
            "Time spent inside one analysis stage, per suspect flow.",
            ("stage",),
        )
        self.eia_latency = stage_latency.labels(stage=Stage.EIA)
        self.scan_latency = stage_latency.labels(stage=Stage.SCAN)
        self.nns_latency = stage_latency.labels(stage=Stage.NNS)
        self.overload = registry.counter(
            "infilter_pipeline_overload_total",
            "Suspect flows that hit the Section 6.3.2 saturation gate.",
            ("action",),
        )
        self.overload_dropped = self.overload.labels(action="dropped")
        self.overload_flagged = self.overload.labels(action="flagged")
        # Ensemble-active runs only; the default InFilter-only composition
        # never touches these (same help text as repro.core.detector so
        # the get-or-create registry treats them as one family).
        chain = registry.counter(
            "infilter_detector_verdicts_total",
            "Per-detector observe() outcomes, by detector and verdict.",
            ("detector", "verdict"),
        )
        self.chain_hit = chain.labels(
            detector=INFILTER_DETECTOR, verdict="hit"
        )
        self.chain_clear = chain.labels(
            detector=INFILTER_DETECTOR, verdict="clear"
        )
        ensemble = registry.counter(
            "infilter_detector_ensemble_decisions_total",
            "Multi-detector combine outcomes, per assessed flow.",
            ("outcome",),
        )
        self.ensemble_confirmed = ensemble.labels(outcome="confirmed")
        self.ensemble_promoted = ensemble.labels(outcome="promoted")
        self.ensemble_suppressed = ensemble.labels(outcome="suppressed")
        self.ensemble_clear = ensemble.labels(outcome="clear")

    def note(self, decision: Decision) -> None:
        self.flows.labels(verdict=decision.verdict, stage=decision.stage).inc()
        self.flow_latency.observe(decision.latency_s)


@stateful("pipeline")
class EnhancedInFilter:
    """The complete detector.

    Typical lifecycle::

        detector = EnhancedInFilter(PipelineConfig())
        detector.initialize_eia_from_flows(training_records)   # mode (a)
        detector.train(training_records)                       # modes (b)-(d)
        for record in live_records:                            # mode (e)
            decision = detector.process(record)

    ``alert_sink`` receives an IDMEF alert per attack decision.
    """

    def __init__(
        self,
        config: Optional[PipelineConfig] = None,
        *,
        alert_sink: Optional[AlertSink] = None,
        rng: Optional[SeededRng] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        config = config if config is not None else PipelineConfig()
        self.config = config
        registry = registry if registry is not None else get_registry()
        self.registry = registry
        self._metrics = _PipelineMetrics(registry)
        self.infilter = BasicInFilter(config.eia, registry=registry)
        self.scan = ScanAnalyzer(config.scan, registry=registry)
        self.model: Optional[ClusterModel] = None
        self.alert_sink = (
            alert_sink
            if alert_sink is not None
            else AlertSink(registry=registry)
        )
        self.stats = PipelineStats()
        # The composed auxiliary detectors, in composition (= vote) order.
        # With the default InFilter-only composition both are inert and
        # every ensemble hook below reduces to the pre-ensemble pipeline.
        self.aux_detectors: List[Detector] = build_aux_detectors(
            config.detectors, registry=registry
        )
        self._ensemble: Optional[Ensemble] = (
            Ensemble(config.ensemble_policy, config.detectors)
            if len(config.detectors) > 1
            else None
        )
        self._rng = rng if rng is not None else SeededRng(config.nns.seed, "pipeline")
        self._alert_counter = 0
        # Overload model state: recent suspect timestamps (flow-time ms)
        # and a counter driving the deterministic drop/flag split.
        self._suspect_times: deque = deque()
        self._overload_counter = 0
        # Batch-path memo of NNS assessments, keyed by (protocol class,
        # unary encoding).  Valid across batches because the trained model
        # is immutable; bounded by _NNS_MEMO_CAP.
        self._nns_memo: Dict[Tuple[str, int], NnsAssessment] = {}
        # Raw-field front memo over _nns_memo: (protocol, dst_port,
        # packets, octets, duration) fully determine the protocol class
        # and the unary encoding (stats() derives every feature from
        # packets/octets/duration), so a repeated flow shape skips
        # stats() + encode() entirely.  Same purity argument, lifetime,
        # and cap as _nns_memo.
        self._nns_raw_memo: Dict[
            Tuple[int, int, int, int, int], NnsAssessment
        ] = {}
        #: Optional cross-batch EIA verdict memo (repro.fastpath).  A
        #: derived cache like the NNS memo: excluded from state_dict,
        #: cold after load_state, and epoch-invalidated on EIA mutation.
        self.fastpath: Optional[FastPath[Tuple[int, int], EIACheck]] = None

    _NNS_MEMO_CAP = 65_536

    # -- training-phase entry points (Section 5.1.3 modes a-d) -------------

    def preload_eia(self, peer: int, prefixes: Iterable[Prefix]) -> None:
        """Mode (a), by hand: assign expected blocks to a peer AS."""
        self.infilter.preload(peer, prefixes)

    def initialize_eia_from_flows(self, records: Iterable[FlowRecord]) -> None:
        """Mode (a), from live traffic."""
        self.infilter.initialize_from_flows(records)

    def train(self, records: Sequence[FlowRecord]) -> None:
        """Modes (b)-(d): build the normal cluster model.

        Only needed for the EI configuration; a BI detector may skip it.
        """
        self.model = ClusterModel.train(
            records, self.config.nns, rng=self._rng.fork("model")
        )
        for aux in self.aux_detectors:
            aux.train(records)
        self._nns_memo.clear()
        self._nns_raw_memo.clear()

    # -- the fastpath memo ---------------------------------------------------

    def enable_fastpath(
        self, capacity: int = DEFAULT_MEMO_CAPACITY
    ) -> "FastPath[Tuple[int, int], EIACheck]":
        """Attach the cross-batch EIA verdict memo (idempotent).

        With the memo attached, :meth:`process_batch` keys EIA checks by
        ``(source block, ingress)`` — where the block width tracks the
        longest stored EIA prefix — and reuses verdicts *across* batches
        until the :class:`~repro.core.eia.BasicInFilter` mutation epoch
        moves (absorption, preload, restore).  Decision-equivalence to
        the serial path is unchanged; only where the check is computed
        changes.  The serial :meth:`process` path never consults the
        memo: it stays the measured per-flow baseline.
        """
        if self.fastpath is None:
            self.fastpath = FastPath(capacity, registry=self.registry)
        return self.fastpath

    def disable_fastpath(self) -> None:
        """Detach (and drop) the cross-batch EIA verdict memo."""
        self.fastpath = None

    # -- online operation (mode e) ------------------------------------------

    def process(self, record: FlowRecord) -> Decision:
        """Assess one incoming flow and update detector state."""
        watch = Stopwatch()
        stage_watch = Stopwatch()
        eia = self.infilter.check(record)
        stage_watch.lap_into(self._metrics.eia_latency)
        if not eia.suspect:
            decision = Decision(
                verdict=Verdict.LEGAL,
                stage=Stage.EIA,
                eia=eia,
                latency_s=watch.elapsed_s(),
            )
            return self._record(self._maybe_promote(record, decision))

        if not self.config.enhanced:
            decision = self._attack(
                record, eia, Stage.EIA, "spoofed-source", watch
            )
            return self._record(decision)

        if self._over_capacity(record.last):
            decision = self._degraded(record, eia, watch)
            return self._record(decision)

        stage_watch.restart()
        scan_verdict = self.scan.observe(record)
        stage_watch.lap_into(self._metrics.scan_latency)
        if scan_verdict.is_scan:
            decision = self._attack(
                record,
                eia,
                Stage.SCAN,
                scan_verdict.kind or "scan",
                watch,
                scan=scan_verdict,
            )
            return self._record(decision)

        if self.model is None:
            raise TrainingError(
                "enhanced pipeline processed a suspect flow before train()"
            )
        stage_watch.restart()
        is_normal, neighbour, class_name = self.model.assess(record)
        stage_watch.lap_into(self._metrics.nns_latency)
        if is_normal is None:
            is_normal = not self.config.flag_unmodelled_classes
        if is_normal:
            absorbed = self.infilter.note_benign(record)
            decision = self._maybe_promote(
                record,
                Decision(
                    verdict=Verdict.BENIGN,
                    stage=Stage.NNS,
                    eia=eia,
                    scan=scan_verdict,
                    neighbour=neighbour,
                    protocol_class=class_name,
                    absorbed=absorbed,
                    latency_s=watch.elapsed_s(),
                ),
            )
        else:
            decision = self._attack(
                record,
                eia,
                Stage.NNS,
                "nns-anomaly",
                watch,
                scan=scan_verdict,
                neighbour=neighbour,
                protocol_class=class_name,
            )
        return self._record(decision)

    def process_all(self, records: Iterable[FlowRecord]) -> List[Decision]:
        """Convenience: assess a record stream, returning all decisions."""
        return [self.process(record) for record in records]

    def process_batch(
        self,
        records: Sequence[FlowRecord],
        *,
        speculation: Optional[Sequence[Optional[NnsAssessment]]] = None,
    ) -> BatchResult:
        """Assess a batch of flows with amortised overhead.

        Decision-equivalent to calling :meth:`process` on each record in
        order — same verdicts, stages, absorptions, and alerts — but the
        bookkeeping differs in three deliberate ways:

        * one stopwatch brackets the batch; every decision carries the
          batch's *mean* per-flow latency instead of its own measurement
          (the Section 6.4 per-flow numbers come from :meth:`process`);
        * per-stage latency histograms receive no samples (their per-flow
          laps are exactly the overhead this path removes);
        * the EIA check is memoised per (source, ingress) within the
          batch — invalidated whenever an absorption rewrites the sets —
          and NNS assessments are memoised across batches per (protocol
          class, unary encoding), both of which are pure given the state
          they key on.  With :meth:`enable_fastpath` the EIA memo is
          instead the bounded cross-batch LRU of :mod:`repro.fastpath`,
          keyed per (source *block*, ingress) and invalidated by the
          EIA mutation epoch — same verdicts, fewer trie walks.

        ``speculation``, when given, must align with ``records``; entries
        are :class:`NnsAssessment` results precomputed by shard workers
        (see :mod:`repro.engine`) and are trusted because the trained
        model is immutable.  Missing entries fall back to the memo or an
        inline search, so speculation quality affects speed, never
        outcomes.
        """
        if speculation is not None and len(speculation) != len(records):
            raise EngineError(
                f"speculation length {len(speculation)} does not match"
                f" batch length {len(records)}"
            )
        watch = Stopwatch()
        decisions: List[Decision] = []
        absorbed: List[Tuple[int, Prefix]] = []
        eia_memo: Dict[Tuple[int, int], EIACheck] = {}
        spec_hits = 0
        spec_misses = 0
        granularity = self.config.eia.granularity
        infilter = self.infilter
        fastpath = self.fastpath
        # Epoch and key shift are hoisted out of the loop and refreshed
        # only when an absorption mutates the EIA state mid-batch.
        fp_epoch = infilter.mutation_epoch if fastpath is not None else 0
        fp_shift = infilter.memo_shift if fastpath is not None else 0
        for index, record in enumerate(records):
            if fastpath is not None:
                fp_key = (record.key.src_addr >> fp_shift, record.key.input_if)
                fp_hit = fastpath.lookup(fp_key, fp_epoch)
                if fp_hit is None:
                    eia = infilter.check(record)
                    fastpath.store(fp_key, eia, fp_epoch)
                else:
                    eia = fp_hit
            else:
                memo_hit = eia_memo.get(
                    (record.key.src_addr, record.key.input_if)
                )
                if memo_hit is None:
                    eia = infilter.check(record)
                    eia_memo[(record.key.src_addr, record.key.input_if)] = eia
                else:
                    eia = memo_hit
            if not eia.suspect:
                decisions.append(
                    self._maybe_promote(
                        record,
                        Decision(verdict=Verdict.LEGAL, stage=Stage.EIA, eia=eia),
                    )
                )
                continue
            if not self.config.enhanced:
                decisions.append(
                    self._attack(record, eia, Stage.EIA, "spoofed-source", None)
                )
                continue
            if self._over_capacity(record.last):
                decisions.append(self._degraded(record, eia, None))
                continue
            scan_verdict = self.scan.observe(record)
            if scan_verdict.is_scan:
                decisions.append(
                    self._attack(
                        record,
                        eia,
                        Stage.SCAN,
                        scan_verdict.kind or "scan",
                        None,
                        scan=scan_verdict,
                    )
                )
                continue
            if self.model is None:
                raise TrainingError(
                    "enhanced pipeline processed a suspect flow before train()"
                )
            assessment = speculation[index] if speculation is not None else None
            if assessment is not None:
                spec_hits += 1
            else:
                spec_misses += 1
                assessment = self.assess_memoised(record)
            is_normal = assessment.is_normal
            if is_normal is None:
                is_normal = not self.config.flag_unmodelled_classes
            if is_normal:
                absorbed_now = self.infilter.note_benign(record)
                if absorbed_now:
                    absorbed.append(
                        (
                            record.key.input_if,
                            Prefix.from_address(record.key.src_addr, granularity),
                        )
                    )
                    # Ownership moved; every memoised check may be stale.
                    eia_memo.clear()
                    if fastpath is not None:
                        fp_epoch = infilter.mutation_epoch
                        fp_shift = infilter.memo_shift
                decisions.append(
                    self._maybe_promote(
                        record,
                        Decision(
                            verdict=Verdict.BENIGN,
                            stage=Stage.NNS,
                            eia=eia,
                            scan=scan_verdict,
                            neighbour=assessment.neighbour,
                            protocol_class=assessment.protocol_class,
                            absorbed=absorbed_now,
                        ),
                    )
                )
            else:
                decisions.append(
                    self._attack(
                        record,
                        eia,
                        Stage.NNS,
                        "nns-anomaly",
                        None,
                        scan=scan_verdict,
                        neighbour=assessment.neighbour,
                        protocol_class=assessment.protocol_class,
                    )
                )
        elapsed = watch.elapsed_s()
        share = elapsed / len(records) if records else 0.0
        verdict_stage_counts: Dict[Tuple[str, str], int] = {}
        for decision in decisions:
            object.__setattr__(decision, "latency_s", share)
            self.stats.note(decision)
            key = (decision.verdict, decision.stage)
            verdict_stage_counts[key] = verdict_stage_counts.get(key, 0) + 1
        for (verdict, stage), count in verdict_stage_counts.items():
            self._metrics.flows.labels(verdict=verdict, stage=stage).inc(count)
        self._metrics.flow_latency.observe_many(share, len(records))
        return BatchResult(
            decisions=decisions,
            absorbed=absorbed,
            elapsed_s=elapsed,
            speculation_hits=spec_hits,
            speculation_misses=spec_misses,
        )

    def assess_memoised(self, record: FlowRecord) -> NnsAssessment:
        """NNS assessment through the (class, encoding) memo.

        Equivalent to ``self.model.assess(record)``: the search is a pure
        function of the immutable trained model and the flow's unary
        encoding, so two flows that bin identically share one search.
        Public because shard workers (:mod:`repro.engine.worker`) run it
        on their replicas to speculate NNS results ahead of commit.
        """
        if self.model is None:
            raise TrainingError(
                "enhanced pipeline processed a suspect flow before train()"
            )
        raw_key = (
            record.key.protocol,
            record.key.dst_port,
            record.packets,
            record.octets,
            record.last - record.first,
        )
        cached = self._nns_raw_memo.get(raw_key)
        if cached is not None:
            return cached
        name = protocol_class(record)
        subcluster = self.model.subclusters.get(name)
        if subcluster is None:
            assessment = NnsAssessment(None, None, name)
        else:
            encoded = self.model.encoder.encode(record.stats())
            key = (name, encoded)
            memoised = self._nns_memo.get(key)
            if memoised is None:
                if len(self._nns_memo) >= self._NNS_MEMO_CAP:
                    self._nns_memo.clear()
                is_normal, neighbour = subcluster.assess(encoded)
                memoised = NnsAssessment(is_normal, neighbour, name)
                self._nns_memo[key] = memoised
            assessment = memoised
        if len(self._nns_raw_memo) >= self._NNS_MEMO_CAP:
            self._nns_raw_memo.clear()
        self._nns_raw_memo[raw_key] = assessment
        return assessment

    def as_detector(self) -> "InFilterDetector":
        """This pipeline's detection chain as a :class:`Detector` member."""
        return InFilterDetector(self)

    # -- the stage-state protocol --------------------------------------------

    @property
    def alert_counter(self) -> int:
        """Monotonic IDMEF ident counter; survives warm restarts so a
        resumed run continues the same ident sequence."""
        return self._alert_counter

    @alert_counter.setter
    def alert_counter(self, value: int) -> None:
        self._alert_counter = int(value)

    def state_dict(self) -> StateDict:
        """The composed state of every stage, one section per component.

        The NNS memo and the fastpath EIA verdict memo are derived
        caches and are rebuilt lazily (checkpoints are byte-identical
        with those caches hot or cold); everything else a resumed run
        could observe — EIA sets, scan suspicion, the trained model,
        stats, alert history, RNG cursors, overload window — is
        captured.
        """
        return {
            "eia": self.infilter.state_dict(),
            "scan": self.scan.state_dict(),
            "model": self.model.state_dict() if self.model is not None else None,
            "stats": self.stats.state_dict(),
            "alerts": self.alert_sink.state_dict(),
            "alert_counter": self._alert_counter,
            "rng": self._rng.state_dict(),
            "overload": {
                "counter": self._overload_counter,
                "suspect_times": list(self._suspect_times),
            },
            # One namespaced section per composed auxiliary detector, in
            # composition order (empty for the default composition).
            "detectors": {
                aux.name: aux.state_dict() for aux in self.aux_detectors
            },
        }

    def load_state(self, state: StateDict) -> None:
        self.infilter.load_state(state["eia"])
        self.scan.load_state(state["scan"])
        model_state = state["model"]
        self.model = (
            ClusterModel.from_state(self.config.nns, model_state)
            if model_state is not None
            else None
        )
        self.stats.load_state(state["stats"])
        self.alert_sink.load_state(state["alerts"])
        self._alert_counter = int(state["alert_counter"])
        self._rng.load_state(state["rng"])
        overload = state["overload"]
        self._overload_counter = int(overload["counter"])
        self._suspect_times = deque(int(stamp) for stamp in overload["suspect_times"])
        # Checkpoints written before the ensemble refactor (or by other
        # compositions) may lack a section; such detectors keep their
        # constructor state, matching the legacy-format retrain rule.
        detector_sections = state.get("detectors", {})
        for aux in self.aux_detectors:
            section = detector_sections.get(aux.name)
            if section is not None:
                aux.load_state(section)
        self._nns_memo.clear()
        self._nns_raw_memo.clear()
        # The EIA epoch moved during the restore, so the memo would
        # self-invalidate on first probe anyway; dropping it now keeps
        # restored memory footprints predictable.
        if self.fastpath is not None:
            self.fastpath.invalidate()

    # -- internals ------------------------------------------------------------

    def _record(self, decision: Decision) -> Decision:
        """Account one decision in both stats and the metrics registry."""
        self.stats.note(decision)
        self._metrics.note(decision)
        return decision

    def _over_capacity(self, now_ms: int) -> bool:
        """The Section 6.3.2 saturation check, in flow time.

        Counts suspects inside the sliding window and compares the implied
        rate with the configured analysis capacity.
        """
        overload = self.config.overload
        if not overload.enabled:
            return False
        window_start = now_ms - overload.window_ms
        times = self._suspect_times
        times.append(now_ms)
        while times and times[0] < window_start:
            times.popleft()
        rate = len(times) * 1000.0 / overload.window_ms
        return rate > overload.suspect_capacity_per_s

    def _degraded(
        self, record: FlowRecord, eia: EIACheck, watch: Optional[Stopwatch]
    ) -> Decision:
        """Handle an over-capacity suspect: drop or flag unanalysed."""
        overload = self.config.overload
        self._overload_counter += 1
        threshold = int(overload.drop_fraction * 1000)
        # A low-discrepancy sweep over [0, 1000) so the drop/flag split
        # tracks drop_fraction deterministically even for short bursts.
        if (self._overload_counter * 619) % 1000 < threshold:
            self.stats.overload_dropped += 1
            self._metrics.overload_dropped.inc()
            log.debug(
                "overload: suspect dropped unanalysed",
                extra={"flow_time_ms": record.last, "action": "dropped"},
            )
            return self._maybe_promote(
                record,
                Decision(
                    verdict=Verdict.BENIGN,
                    stage=Stage.OVERLOAD,
                    eia=eia,
                    latency_s=watch.elapsed_s() if watch is not None else 0.0,
                ),
            )
        self.stats.overload_flagged += 1
        self._metrics.overload_flagged.inc()
        log.debug(
            "overload: suspect flagged unanalysed",
            extra={"flow_time_ms": record.last, "action": "flagged"},
        )
        return self._attack(
            record, eia, Stage.OVERLOAD, "unanalysed-suspect", watch
        )

    def _attack(
        self,
        record: FlowRecord,
        eia: EIACheck,
        stage: str,
        classification: str,
        watch: Optional[Stopwatch],
        *,
        scan: Optional[ScanVerdict] = None,
        neighbour: Optional[SearchResult] = None,
        protocol_class: Optional[str] = None,
    ) -> Decision:
        """An InFilter-chain attack verdict, subject to ensemble review.

        With the default composition this emits the alert directly; with
        an ensemble, the chain's verdict is one vote and the combiner may
        confirm (alert, with attribution) or suppress (benign, stage
        ``ensemble``) it.
        """
        if self._ensemble is None:
            return self._emit_attack(
                record,
                eia,
                stage,
                classification,
                latency_s=watch.elapsed_s() if watch is not None else 0.0,
                scan=scan,
                neighbour=neighbour,
                protocol_class=protocol_class,
            )
        self._metrics.chain_hit.inc()
        combined = self._combine(record, chain_attack=True)
        if combined.attack:
            self._metrics.ensemble_confirmed.inc()
            return self._emit_attack(
                record,
                eia,
                stage,
                classification,
                latency_s=watch.elapsed_s() if watch is not None else 0.0,
                scan=scan,
                neighbour=neighbour,
                protocol_class=protocol_class,
                attribution=combined.attribution,
            )
        self._metrics.ensemble_suppressed.inc()
        return Decision(
            verdict=Verdict.BENIGN,
            stage=Stage.ENSEMBLE,
            eia=eia,
            scan=scan,
            neighbour=neighbour,
            protocol_class=protocol_class,
            latency_s=watch.elapsed_s() if watch is not None else 0.0,
        )

    def _maybe_promote(self, record: FlowRecord, decision: Decision) -> Decision:
        """Give the ensemble a chance to overrule a non-attack verdict.

        A no-op (returning ``decision`` untouched) unless more than one
        detector is composed.  A promoted flow becomes an attack at stage
        ``ensemble``, classified by the triggering detector's reason, and
        its alert carries the full attribution; EIA absorption bookkeeping
        from the chain's own (benign) assessment stands either way — set
        learning stays the chain's business.
        """
        if self._ensemble is None:
            return decision
        self._metrics.chain_clear.inc()
        combined = self._combine(record, chain_attack=False)
        if not combined.attack:
            self._metrics.ensemble_clear.inc()
            return decision
        self._metrics.ensemble_promoted.inc()
        trigger = combined.trigger
        classification = (
            trigger.reason if trigger is not None and trigger.reason else "ensemble-vote"
        )
        return self._emit_attack(
            record,
            decision.eia,
            Stage.ENSEMBLE,
            classification,
            latency_s=decision.latency_s,
            scan=decision.scan,
            neighbour=decision.neighbour,
            protocol_class=decision.protocol_class,
            absorbed=decision.absorbed,
            attribution=combined.attribution,
        )

    def _combine(self, record: FlowRecord, *, chain_attack: bool) -> EnsembleDecision:
        """Collect the auxiliary votes for one flow and fold them."""
        assert self._ensemble is not None
        aux_verdicts: List[DetectorVerdict] = [
            aux.observe(record) for aux in self.aux_detectors
        ]
        return self._ensemble.combine(chain_attack, aux_verdicts)

    def _emit_attack(
        self,
        record: FlowRecord,
        eia: EIACheck,
        stage: str,
        classification: str,
        *,
        latency_s: float,
        scan: Optional[ScanVerdict] = None,
        neighbour: Optional[SearchResult] = None,
        protocol_class: Optional[str] = None,
        absorbed: bool = False,
        attribution: Tuple[str, ...] = (),
    ) -> Decision:
        self._alert_counter += 1
        alert = IdmefAlert.for_flow(
            f"infilter-{self._alert_counter:08d}",
            record,
            classification=classification,
            stage=stage,
            expected_peer=eia.expected_peer,
            detect_time_ms=record.last,
            severity="high" if stage == Stage.SCAN else "medium",
            attribution=attribution,
        )
        self.alert_sink.consume(alert)
        return Decision(
            verdict=Verdict.ATTACK,
            stage=stage,
            eia=eia,
            scan=scan,
            neighbour=neighbour,
            protocol_class=protocol_class,
            alert=alert,
            absorbed=absorbed,
            latency_s=latency_s,
        )


class InFilterDetector:
    """The paper's EIA + Scan Analysis + NNS chain as a protocol member.

    Adapts one :class:`EnhancedInFilter`'s stages — including the
    PR-6 fastpath-backed NNS memo (:meth:`EnhancedInFilter.assess_memoised`)
    — to the uniform :class:`~repro.core.detector.Detector` interface, the
    same observe chain shard workers speculate on their replicas
    (:mod:`repro.engine.worker`).  ``observe`` feeds the scan buffer, so
    use it on a dedicated pipeline (or replica), not interleaved with
    ``process`` calls on the same one; it deliberately skips the
    pipeline's own alerting, stats, and overload bookkeeping — those
    belong to the pipeline that hosts the ensemble, and double-counting
    is exactly what this split avoids.
    """

    name = INFILTER_DETECTOR

    def __init__(self, pipeline: EnhancedInFilter) -> None:
        self._pipeline = pipeline

    def observe(self, record: FlowRecord) -> DetectorVerdict:
        """The chain's verdict for one flow, without pipeline side effects."""
        pipeline = self._pipeline
        eia = pipeline.infilter.check(record)
        if not eia.suspect:
            return DetectorVerdict(self.name, False)
        if not pipeline.config.enhanced:
            return DetectorVerdict(
                self.name, True, score=1.0, reason="spoofed-source"
            )
        scan_verdict = pipeline.scan.observe(record)
        if scan_verdict.is_scan:
            return DetectorVerdict(
                self.name, True, score=1.0, reason=scan_verdict.kind or "scan"
            )
        assessment = pipeline.assess_memoised(record)
        is_normal = assessment.is_normal
        if is_normal is None:
            is_normal = not pipeline.config.flag_unmodelled_classes
        if is_normal:
            return DetectorVerdict(self.name, False)
        return DetectorVerdict(self.name, True, score=1.0, reason="nns-anomaly")

    def train(self, records: Sequence[FlowRecord]) -> None:
        self._pipeline.train(records)

    # -- the stage-state protocol --------------------------------------------

    def state_dict(self) -> StateDict:
        """The chain's three analysis stages, one section each."""
        pipeline = self._pipeline
        return {
            "eia": pipeline.infilter.state_dict(),
            "scan": pipeline.scan.state_dict(),
            "model": (
                pipeline.model.state_dict()
                if pipeline.model is not None
                else None
            ),
        }

    def load_state(self, state: StateDict) -> None:
        pipeline = self._pipeline
        pipeline.infilter.load_state(state["eia"])
        pipeline.scan.load_state(state["scan"])
        model_state = state["model"]
        pipeline.model = (
            ClusterModel.from_state(pipeline.config.nns, model_state)
            if model_state is not None
            else None
        )
