"""Versioned, atomic detector checkpoints (the v2 state format).

Section 4.2: "the search data structure may be constructed off-line;
without requiring access to network traffic" — an operational deployment
trains once and restarts many times.  A checkpoint is a JSON document:

* ``format`` — the format version (currently 2);
* ``config`` — the full configuration (every dataclass knob);
* ``cursor`` — how many records of the input stream were committed when
  the checkpoint was taken (``None`` for plain save/load round trips);
* ``components`` — the detector's composed :meth:`state_dict`, one
  namespaced section per stage-state component (see
  :mod:`repro.core.state`).

Three guarantees the v1 format lacked:

* **lossless** — every component round-trips through its own
  ``state_dict``/``load_state`` pair, so scan suspicion, pending
  absorptions, stats, alert history, and RNG cursors all survive a
  restart; the trained model serializes its *derived* statistics, so
  loading never replays training records;
* **byte-identical** — :func:`render_state` emits canonical JSON
  (sorted keys, compact separators, deterministically ordered derived
  collections), so ``save(load(save(d)))`` equals ``save(d)`` byte for
  byte;
* **atomic** — file writes go through a temp file and ``os.replace``,
  so a crash mid-write leaves the previous checkpoint intact.

v1 documents still load: the reader rebuilds the model by replaying the
embedded training records — slower, but the upgrade path costs nothing.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict
from pathlib import Path
from typing import Any, Dict, Optional, TextIO, Tuple, Union

from repro.core.config import (
    EIAConfig,
    FeatureSpec,
    NNSConfig,
    OverloadConfig,
    PipelineConfig,
    ScanConfig,
)
from repro.core.pipeline import EnhancedInFilter
from repro.netflow.records import FlowKey, FlowRecord
from repro.util.errors import StateError
from repro.util.rng import SeededRng

__all__ = [
    "STATE_FORMAT_VERSION",
    "CLUSTER_MANIFEST_VERSION",
    "render_state",
    "save_detector",
    "load_checkpoint",
    "load_detector",
    "describe_state",
    "worker_checkpoint_path",
    "cluster_manifest_path",
    "save_cluster_manifest",
    "load_cluster_manifest",
]

STATE_FORMAT_VERSION = 2
CLUSTER_MANIFEST_VERSION = 1


def _config_to_dict(config: PipelineConfig) -> Dict[str, Any]:
    return {
        "eia": asdict(config.eia),
        "scan": asdict(config.scan),
        "nns": {
            "features": [asdict(spec) for spec in config.nns.features],
            "m1": config.nns.m1,
            "m2": config.nns.m2,
            "m3": config.nns.m3,
            "threshold_quantile": config.nns.threshold_quantile,
            "threshold_slack": config.nns.threshold_slack,
            "seed": config.nns.seed,
        },
        "overload": asdict(config.overload),
        "enhanced": config.enhanced,
        "flag_unmodelled_classes": config.flag_unmodelled_classes,
        "detectors": list(config.detectors),
        "ensemble_policy": config.ensemble_policy,
    }


def _config_from_dict(data: Dict[str, Any]) -> PipelineConfig:
    return PipelineConfig(
        eia=EIAConfig(**data["eia"]),
        scan=ScanConfig(**data["scan"]),
        nns=NNSConfig(
            features=tuple(
                FeatureSpec(**spec) for spec in data["nns"]["features"]
            ),
            m1=data["nns"]["m1"],
            m2=data["nns"]["m2"],
            m3=data["nns"]["m3"],
            threshold_quantile=data["nns"]["threshold_quantile"],
            threshold_slack=data["nns"]["threshold_slack"],
            seed=data["nns"]["seed"],
        ),
        overload=OverloadConfig(**data["overload"]),
        enhanced=data["enhanced"],
        flag_unmodelled_classes=data["flag_unmodelled_classes"],
        # Checkpoints from before the ensemble refactor carry neither key
        # and load as the (behaviour-identical) InFilter-only composition.
        detectors=tuple(data.get("detectors", ("infilter",))),
        ensemble_policy=data.get("ensemble_policy", "any"),
    )


def render_state(
    detector: EnhancedInFilter, *, cursor: Optional[int] = None
) -> str:
    """The canonical v2 checkpoint text for a detector.

    Canonical means byte-stable: sorted keys and compact separators here,
    deterministic ordering of derived collections inside each component's
    ``state_dict``.
    """
    document = {
        "format": STATE_FORMAT_VERSION,
        "config": _config_to_dict(detector.config),
        "cursor": cursor,
        "components": detector.state_dict(),
    }
    return json.dumps(document, sort_keys=True, separators=(",", ":"))


def _write_atomic(path: Path, text: str) -> None:
    """Write ``text`` to ``path`` crash-safely (temp file + rename).

    ``os.replace`` is atomic on POSIX and Windows alike, so a reader — or
    a crash — either sees the previous complete checkpoint or the new
    complete checkpoint, never a torn write.
    """
    tmp = path.with_name(path.name + ".tmp")
    try:
        tmp.write_text(text)
        os.replace(tmp, path)
    except OSError as error:
        try:
            tmp.unlink()
        except OSError:
            pass
        raise StateError(
            f"could not write checkpoint {path}: {error}"
        ) from error


def save_detector(
    detector: EnhancedInFilter,
    destination: Union[str, Path, TextIO],
    *,
    cursor: Optional[int] = None,
) -> None:
    """Checkpoint detector state as canonical v2 JSON.

    Path destinations are written atomically; stream destinations are the
    caller's to make crash-safe.  ``cursor`` records how many input
    records were committed at checkpoint time, which is what
    ``infilter detect --resume`` skips on restart.
    """
    text = render_state(detector, cursor=cursor)
    if isinstance(destination, (str, Path)):
        _write_atomic(Path(destination), text)
    else:
        destination.write(text)


def _read_document(source: Union[str, Path, TextIO]) -> Dict[str, Any]:
    if isinstance(source, (str, Path)):
        try:
            text = Path(source).read_text()
        except OSError as error:
            raise StateError(
                f"could not read checkpoint {source}: {error}"
            ) from error
    else:
        text = source.read()
    try:
        document = json.loads(text)
    except json.JSONDecodeError as error:
        raise StateError(f"malformed detector state: {error}") from error
    if not isinstance(document, dict):
        raise StateError("detector state must be a JSON object")
    return document


def load_checkpoint(
    source: Union[str, Path, TextIO]
) -> Tuple[EnhancedInFilter, Optional[int]]:
    """Restore a checkpoint: ``(detector, cursor)``.

    ``cursor`` is the committed-record count saved with the checkpoint
    (``None`` when the checkpoint was a plain save, or v1).  Reads both
    the v2 format and the legacy v1 format.
    """
    document = _read_document(source)
    version = document.get("format")
    try:
        if version == 1:
            return _load_v1(document), None
        if version != STATE_FORMAT_VERSION:
            raise StateError(f"unsupported detector state format {version!r}")
        config = _config_from_dict(document["config"])
        detector = EnhancedInFilter(config)
        detector.load_state(document["components"])
    except StateError:
        raise
    except (KeyError, TypeError, ValueError) as error:
        raise StateError(f"corrupt detector state: {error}") from error
    cursor = document.get("cursor")
    return detector, (int(cursor) if cursor is not None else None)


def load_detector(source: Union[str, Path, TextIO]) -> EnhancedInFilter:
    """Restore just the detector from a checkpoint (either format)."""
    detector, _ = load_checkpoint(source)
    return detector


def _load_v1(state: Dict[str, Any]) -> EnhancedInFilter:
    """The legacy reader: rebuild from v1's raw-training-records format.

    v1 stored EIA sets, pending counters, the alert counter, and the
    training records themselves; the model is rebuilt by retraining —
    deterministic given the saved seed, just not retrain-free.  All live
    state v1 never captured (scan buffer, stats, alert history) starts
    empty, exactly as it did before the v2 format existed.
    """
    config = _config_from_dict(state["config"])
    rng = SeededRng(int(state["rng"]["seed"]), str(state["rng"]["name"]))
    detector = EnhancedInFilter(config, rng=rng)
    detector.infilter.load_state(
        {
            "peers": {
                str(peer_text): {
                    "peer": int(peer_text),
                    "prefixes": list(prefixes),
                }
                for peer_text, prefixes in state["eia_sets"].items()
            },
            "pending": state["pending"],
        }
    )
    if state["trained"]:
        records = [
            FlowRecord(
                key=FlowKey(
                    src_addr=entry["src"],
                    dst_addr=entry["dst"],
                    protocol=entry["proto"],
                    src_port=entry["sport"],
                    dst_port=entry["dport"],
                    input_if=entry["iface"],
                ),
                packets=entry["packets"],
                octets=entry["octets"],
                first=entry["first"],
                last=entry["last"],
            )
            for entry in state["training"]
        ]
        detector.train(records)
    detector.alert_counter = int(state["alert_counter"])
    return detector


def worker_checkpoint_path(
    state_dir: Union[str, Path], worker: int, workers: int
) -> Path:
    """The canonical per-worker checkpoint path inside a cluster state dir.

    Encoding the composition in the file name (``worker-01-of-04.json``)
    makes a state directory self-describing on disk and keeps a worker
    from ever opening a checkpoint written under a different shard count.
    """
    if workers <= 0:
        raise StateError(f"cluster composition must be positive: {workers}")
    if not 0 <= worker < workers:
        raise StateError(
            f"worker index {worker} out of range for {workers} workers"
        )
    return Path(state_dir) / f"worker-{worker:02d}-of-{workers:02d}.json"


def cluster_manifest_path(state_dir: Union[str, Path]) -> Path:
    """Where a cluster state directory keeps its composition manifest."""
    return Path(state_dir) / "cluster.json"


def save_cluster_manifest(
    state_dir: Union[str, Path], *, workers: int, granularity: int
) -> None:
    """Atomically record the cluster composition alongside its checkpoints.

    The manifest pins the two values that make per-worker checkpoints
    mutually compatible: the worker count (== shard count) and the router
    granularity.  Resuming under a different composition is refused by the
    CLI with a :class:`~repro.util.errors.ConfigError` naming both sides.
    """
    if workers <= 0:
        raise StateError(f"cluster composition must be positive: {workers}")
    document = {
        "format": CLUSTER_MANIFEST_VERSION,
        "granularity": granularity,
        "workers": workers,
    }
    _write_atomic(
        cluster_manifest_path(state_dir),
        json.dumps(document, sort_keys=True, separators=(",", ":")),
    )


def load_cluster_manifest(
    state_dir: Union[str, Path]
) -> Optional[Dict[str, int]]:
    """Read a state directory's composition manifest, or ``None`` if absent.

    Raises :class:`StateError` when a manifest exists but is malformed —
    a half-written or foreign ``cluster.json`` should never be mistaken
    for "no prior composition".
    """
    path = cluster_manifest_path(state_dir)
    try:
        text = path.read_text()
    except FileNotFoundError:
        return None
    except OSError as error:
        raise StateError(
            f"could not read cluster manifest {path}: {error}"
        ) from error
    try:
        document = json.loads(text)
    except json.JSONDecodeError as error:
        raise StateError(f"malformed cluster manifest: {error}") from error
    if not isinstance(document, dict):
        raise StateError("cluster manifest must be a JSON object")
    try:
        version = int(document["format"])
        if version != CLUSTER_MANIFEST_VERSION:
            raise StateError(
                f"unsupported cluster manifest format {version!r}"
            )
        return {
            "format": version,
            "granularity": int(document["granularity"]),
            "workers": int(document["workers"]),
        }
    except (KeyError, TypeError, ValueError) as error:
        raise StateError(f"corrupt cluster manifest: {error}") from error


def describe_state(source: Union[str, Path, TextIO]) -> Dict[str, Any]:
    """A cheap, human-oriented summary of a checkpoint document.

    Reads the JSON directly — no detector is constructed — so inspection
    works even when loading would be expensive.  Handles both formats.
    """
    document = _read_document(source)
    version = document.get("format")
    try:
        if version == 1:
            return {
                "format": 1,
                "cursor": None,
                "trained": bool(document["trained"]),
                "training_records": len(document["training"]),
                "peers": {
                    str(peer): len(prefixes)
                    for peer, prefixes in sorted(document["eia_sets"].items())
                },
                "pending_absorptions": len(document["pending"]),
                "alert_counter": int(document["alert_counter"]),
            }
        if version != STATE_FORMAT_VERSION:
            raise StateError(f"unsupported detector state format {version!r}")
        components = document["components"]
        model = components["model"]
        stats = components["stats"]
        return {
            "format": STATE_FORMAT_VERSION,
            "cursor": document.get("cursor"),
            "trained": model is not None,
            "classes": {
                name: {
                    "size": int(section["size"]),
                    "threshold": int(section["threshold"]),
                }
                for name, section in sorted(
                    (model["classes"] if model is not None else {}).items()
                )
            },
            "peers": {
                str(peer): len(section["prefixes"])
                for peer, section in sorted(components["eia"]["peers"].items())
            },
            "pending_absorptions": len(components["eia"]["pending"]),
            "scan_buffer": len(components["scan"]["buffer"]),
            "detectors": {
                "composition": list(
                    document["config"].get("detectors", ["infilter"])
                ),
                "policy": document["config"].get("ensemble_policy", "any"),
                "sections": sorted(components.get("detectors", {})),
            },
            "alerts": len(components["alerts"]["alerts"]),
            "alert_counter": int(components["alert_counter"]),
            "stats": {
                "processed": int(stats["processed"]),
                "legal": int(stats["legal"]),
                "suspects": int(stats["suspects"]),
                "benign": int(stats["benign"]),
                "attacks": int(stats["attacks"]),
                "absorbed": int(stats["absorbed"]),
            },
        }
    except StateError:
        raise
    except (KeyError, TypeError, ValueError) as error:
        raise StateError(f"corrupt detector state: {error}") from error
