"""Detector state persistence.

Section 4.2: "the search data structure may be constructed off-line;
without requiring access to network traffic" — an operational deployment
trains once and restarts many times.  This module saves and restores an
:class:`EnhancedInFilter` as a JSON document:

* the full configuration (every dataclass knob),
* the EIA sets (peer → prefix list) and pending absorption counters,
* the training flows' statistic vectors.

On load, the cluster model is *rebuilt deterministically* from the saved
statistics and the saved RNG seed — the KOR structures' test vectors are
a pure function of (seed, config), so the restored model is identical to
the saved one without serializing the (lazily built, potentially large)
per-scale tables.  The one non-restored detail: with ``m1 > 1`` the
random table pick of in-flight searches restarts from the stream's
origin (with the default ``m1 = 1`` searches are fully deterministic
anyway).
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path
from typing import Any, Dict, List, Optional, TextIO, Union

from repro.core.config import (
    EIAConfig,
    FeatureSpec,
    NNSConfig,
    OverloadConfig,
    PipelineConfig,
    ScanConfig,
)
from repro.core.pipeline import EnhancedInFilter
from repro.netflow.records import FlowKey, FlowRecord
from repro.util.errors import ConfigError, ReproError
from repro.util.ip import Prefix
from repro.util.rng import SeededRng

__all__ = ["save_detector", "load_detector", "STATE_FORMAT_VERSION"]

STATE_FORMAT_VERSION = 1


def _config_to_dict(config: PipelineConfig) -> Dict[str, Any]:
    return {
        "eia": asdict(config.eia),
        "scan": asdict(config.scan),
        "nns": {
            "features": [asdict(spec) for spec in config.nns.features],
            "m1": config.nns.m1,
            "m2": config.nns.m2,
            "m3": config.nns.m3,
            "threshold_quantile": config.nns.threshold_quantile,
            "threshold_slack": config.nns.threshold_slack,
            "seed": config.nns.seed,
        },
        "overload": asdict(config.overload),
        "enhanced": config.enhanced,
        "flag_unmodelled_classes": config.flag_unmodelled_classes,
    }


def _config_from_dict(data: Dict[str, Any]) -> PipelineConfig:
    return PipelineConfig(
        eia=EIAConfig(**data["eia"]),
        scan=ScanConfig(**data["scan"]),
        nns=NNSConfig(
            features=tuple(
                FeatureSpec(**spec) for spec in data["nns"]["features"]
            ),
            m1=data["nns"]["m1"],
            m2=data["nns"]["m2"],
            m3=data["nns"]["m3"],
            threshold_quantile=data["nns"]["threshold_quantile"],
            threshold_slack=data["nns"]["threshold_slack"],
            seed=data["nns"]["seed"],
        ),
        overload=OverloadConfig(**data["overload"]),
        enhanced=data["enhanced"],
        flag_unmodelled_classes=data["flag_unmodelled_classes"],
    )


def save_detector(
    detector: EnhancedInFilter,
    destination: Union[str, Path, TextIO],
    *,
    training_records: Optional[List[FlowRecord]] = None,
) -> None:
    """Serialize detector state to JSON.

    ``training_records`` must be the records the detector was trained
    with when the detector has a model (the model itself stores only
    derived statistics; the records' key fields are what `load` needs to
    rebuild it deterministically).
    """
    if detector.model is not None and training_records is None:
        training_records = getattr(detector, "_persisted_training", None)
    if detector.model is not None and training_records is None:
        raise ConfigError(
            "a trained detector needs its training_records to be saved"
        )
    state = {
        "format": STATE_FORMAT_VERSION,
        "config": _config_to_dict(detector.config),
        "rng": {"seed": detector._rng.seed, "name": detector._rng.name},
        "eia_sets": {
            str(peer): [str(prefix) for prefix in detector.infilter.eia_set(peer).prefixes()]
            for peer in detector.infilter.peers()
        },
        "pending": [
            {"peer": peer, "prefix": str(prefix), "count": count}
            for (peer, prefix), count in detector.infilter.pending_counts().items()
        ],
        "alert_counter": detector._alert_counter,
        "trained": detector.model is not None,
        "training": [
            {
                "src": record.key.src_addr,
                "dst": record.key.dst_addr,
                "proto": record.key.protocol,
                "sport": record.key.src_port,
                "dport": record.key.dst_port,
                "iface": record.key.input_if,
                "packets": record.packets,
                "octets": record.octets,
                "first": record.first,
                "last": record.last,
            }
            for record in (training_records or [])
        ],
    }
    text = json.dumps(state)
    if isinstance(destination, (str, Path)):
        Path(destination).write_text(text)
    else:
        destination.write(text)


def load_detector(source: Union[str, Path, TextIO]) -> EnhancedInFilter:
    """Restore a detector saved by :func:`save_detector`."""
    if isinstance(source, (str, Path)):
        text = Path(source).read_text()
    else:
        text = source.read()
    try:
        state = json.loads(text)
    except json.JSONDecodeError as error:
        raise ReproError(f"malformed detector state: {error}") from error
    if state.get("format") != STATE_FORMAT_VERSION:
        raise ReproError(
            f"unsupported detector state format {state.get('format')!r}"
        )
    config = _config_from_dict(state["config"])
    rng = SeededRng(state["rng"]["seed"], state["rng"]["name"])
    detector = EnhancedInFilter(config, rng=rng)
    for peer_text, prefixes in state["eia_sets"].items():
        detector.preload_eia(
            int(peer_text), [Prefix.parse(p) for p in prefixes]
        )
    if state["trained"]:
        records = [
            FlowRecord(
                key=FlowKey(
                    src_addr=entry["src"],
                    dst_addr=entry["dst"],
                    protocol=entry["proto"],
                    src_port=entry["sport"],
                    dst_port=entry["dport"],
                    input_if=entry["iface"],
                ),
                packets=entry["packets"],
                octets=entry["octets"],
                first=entry["first"],
                last=entry["last"],
            )
            for entry in state["training"]
        ]
        detector.train(records)
        # Stash for a later save_detector on the restored instance.
        detector._persisted_training = records
    for entry in state["pending"]:
        key = (int(entry["peer"]), Prefix.parse(entry["prefix"]))
        detector.infilter._pending[key] = int(entry["count"])
    detector._alert_counter = int(state["alert_counter"])
    return detector
