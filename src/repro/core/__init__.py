"""The Enhanced InFilter detector: EIA sets, Scan Analysis, NNS, pipeline."""

from __future__ import annotations

from repro.core.alerts import AlertSink, IdmefAlert, parse_idmef
from repro.core.deployment import BorderRouter, Deployment
from repro.core.persistence import (
    STATE_FORMAT_VERSION,
    describe_state,
    load_checkpoint,
    load_detector,
    render_state,
    save_detector,
)
from repro.core.state import (
    STATEFUL_COMPONENTS,
    StateDict,
    StatefulComponent,
    stateful,
)
from repro.core.bootstrap import eia_from_bgp, eia_from_traceroutes, remap_peers
from repro.core.traceback import IngressReport, TracebackAnalyzer
from repro.core.clusters import (
    PROTOCOL_CLASSES,
    ClusterModel,
    NormalCluster,
    SubCluster,
    protocol_class,
)
from repro.core.config import (
    EIAConfig,
    FeatureSpec,
    NNSConfig,
    OverloadConfig,
    PipelineConfig,
    ScanConfig,
)
from repro.core.detector import (
    AUX_DETECTOR_NAMES,
    ENSEMBLE_POLICIES,
    INFILTER_DETECTOR,
    BogonDetector,
    Detector,
    DetectorVerdict,
    Ensemble,
    EnsembleDecision,
    TTLProfileDetector,
    available_detectors,
    build_aux_detectors,
    validate_composition,
)
from repro.core.eia import BasicInFilter, EIACheck, EIASet, EIAVerdict
from repro.core.encoding import UnaryEncoder, hamming, parity_inner_product
from repro.core.nns import NNSStructure, SearchResult, TrainingFlow
from repro.core.pipeline import (
    Decision,
    EnhancedInFilter,
    InFilterDetector,
    PipelineStats,
    Stage,
    Verdict,
)
from repro.core.scan import ScanAnalyzer, ScanVerdict

__all__ = [
    "AlertSink",
    "BorderRouter",
    "Deployment",
    "STATE_FORMAT_VERSION",
    "describe_state",
    "load_checkpoint",
    "load_detector",
    "render_state",
    "save_detector",
    "STATEFUL_COMPONENTS",
    "StateDict",
    "StatefulComponent",
    "stateful",
    "eia_from_bgp",
    "eia_from_traceroutes",
    "remap_peers",
    "IngressReport",
    "TracebackAnalyzer",
    "OverloadConfig",
    "IdmefAlert",
    "parse_idmef",
    "PROTOCOL_CLASSES",
    "ClusterModel",
    "NormalCluster",
    "SubCluster",
    "protocol_class",
    "EIAConfig",
    "FeatureSpec",
    "NNSConfig",
    "PipelineConfig",
    "ScanConfig",
    "AUX_DETECTOR_NAMES",
    "ENSEMBLE_POLICIES",
    "INFILTER_DETECTOR",
    "BogonDetector",
    "Detector",
    "DetectorVerdict",
    "Ensemble",
    "EnsembleDecision",
    "InFilterDetector",
    "TTLProfileDetector",
    "available_detectors",
    "build_aux_detectors",
    "validate_composition",
    "BasicInFilter",
    "EIACheck",
    "EIASet",
    "EIAVerdict",
    "UnaryEncoder",
    "hamming",
    "parity_inner_product",
    "NNSStructure",
    "SearchResult",
    "TrainingFlow",
    "Decision",
    "EnhancedInFilter",
    "PipelineStats",
    "Stage",
    "Verdict",
    "ScanAnalyzer",
    "ScanVerdict",
]
