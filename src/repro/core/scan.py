"""Scan Analysis (Section 4.1).

Keeps a bounded buffer of the most recent *suspect* flows (those the EIA
check flagged) and two counting structures over it:

* **network scan** — many distinct destination hosts hit on the *same
  destination port* (the Slammer pattern: one vulnerability, random
  targets);
* **host scan** — many distinct destination ports hit on the *same
  destination host* (the nmap Idlescan pattern).

When either count crosses its threshold the flow that completed the
pattern is flagged, short-circuiting the more expensive NNS stage.  The
counters are maintained incrementally as flows enter and leave the ring
buffer, so a check is O(1) amortised.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Optional, Tuple

from repro.core.config import ScanConfig
from repro.core.state import StateDict, stateful
from repro.netflow.records import FlowRecord
from repro.obs import MetricsRegistry, get_logger, get_registry

__all__ = ["ScanVerdict", "ScanAnalyzer"]

log = get_logger(__name__)


@dataclass(frozen=True)
class ScanVerdict:
    """The scan assessment of one suspect flow."""

    is_scan: bool
    kind: Optional[str] = None  # "network_scan" | "host_scan"
    count: int = 0

    NETWORK = "network_scan"
    HOST = "host_scan"


class _MultiCounter:
    """Counts distinct members per group with reference counting.

    ``add``/``remove`` take (group, member) pairs; ``distinct`` is the
    number of distinct members currently present in a group.  Used twice:
    group=dst_port, member=dst_host for network scans, and group=dst_host,
    member=dst_port for host scans.
    """

    def __init__(self) -> None:
        self._groups: Dict[int, Dict[int, int]] = {}

    def add(self, group: int, member: int) -> int:
        members = self._groups.setdefault(group, {})
        members[member] = members.get(member, 0) + 1
        return len(members)

    def remove(self, group: int, member: int) -> None:
        members = self._groups.get(group)
        if members is None:
            return
        count = members.get(member, 0)
        if count <= 1:
            members.pop(member, None)
            if not members:
                self._groups.pop(group, None)
        else:
            members[member] = count - 1

    def distinct(self, group: int) -> int:
        members = self._groups.get(group)
        return len(members) if members else 0


@stateful("scan")
class ScanAnalyzer:
    """The Section 4.1 scan detector over a suspect-flow buffer."""

    def __init__(
        self,
        config: Optional[ScanConfig] = None,
        *,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.config = config if config is not None else ScanConfig()
        self._buffer: Deque[Tuple[int, int]] = deque()  # (dst_addr, dst_port)
        self._by_port = _MultiCounter()   # port -> hosts
        self._by_host = _MultiCounter()   # host -> ports
        self.network_scans_flagged = 0
        self.host_scans_flagged = 0
        registry = registry if registry is not None else get_registry()
        self._m_occupancy = registry.gauge(
            "infilter_scan_buffer_occupancy",
            "Suspect flows currently held in the scan analysis buffer.",
        )
        completions = registry.counter(
            "infilter_scan_completions_total",
            "Scan patterns completed (the flow that crossed the threshold).",
            ("kind",),
        )
        self._m_network = completions.labels(kind=ScanVerdict.NETWORK)
        self._m_host = completions.labels(kind=ScanVerdict.HOST)

    def __len__(self) -> int:
        return len(self._buffer)

    def observe(self, record: FlowRecord) -> ScanVerdict:
        """Add a suspect flow to the buffer and check both patterns."""
        dst_addr = record.key.dst_addr
        dst_port = record.key.dst_port
        if len(self._buffer) >= self.config.buffer_size:
            old_addr, old_port = self._buffer.popleft()
            self._by_port.remove(old_port, old_addr)
            self._by_host.remove(old_addr, old_port)
        self._buffer.append((dst_addr, dst_port))
        self._m_occupancy.set(len(self._buffer))
        hosts_on_port = self._by_port.add(dst_port, dst_addr)
        ports_on_host = self._by_host.add(dst_addr, dst_port)
        if hosts_on_port >= self.config.network_scan_threshold:
            self.network_scans_flagged += 1
            self._m_network.inc()
            log.info(
                "network scan completed",
                extra={"dst_port": dst_port, "distinct_hosts": hosts_on_port},
            )
            return ScanVerdict(
                is_scan=True, kind=ScanVerdict.NETWORK, count=hosts_on_port
            )
        if ports_on_host >= self.config.host_scan_threshold:
            self.host_scans_flagged += 1
            self._m_host.inc()
            log.info(
                "host scan completed",
                extra={"dst_addr": dst_addr, "distinct_ports": ports_on_host},
            )
            return ScanVerdict(
                is_scan=True, kind=ScanVerdict.HOST, count=ports_on_host
            )
        return ScanVerdict(is_scan=False)

    def reset(self) -> None:
        """Clear the buffer and counters."""
        self._buffer.clear()
        self._by_port = _MultiCounter()
        self._by_host = _MultiCounter()
        self._m_occupancy.set(0)

    # -- the stage-state protocol --------------------------------------------

    def state_dict(self) -> StateDict:
        """The buffer contents (oldest first) and completion counters.

        The two multi-counters are derived from the buffer and rebuilt on
        load — a restart must not lose in-flight scan suspicion, and the
        buffer is exactly that suspicion.
        """
        return {
            "buffer": [[addr, port] for addr, port in self._buffer],
            "network_scans_flagged": self.network_scans_flagged,
            "host_scans_flagged": self.host_scans_flagged,
        }

    def load_state(self, state: StateDict) -> None:
        self.reset()
        for entry in state["buffer"]:
            dst_addr, dst_port = int(entry[0]), int(entry[1])
            self._buffer.append((dst_addr, dst_port))
            self._by_port.add(dst_port, dst_addr)
            self._by_host.add(dst_addr, dst_port)
        self.network_scans_flagged = int(state["network_scans_flagged"])
        self.host_scans_flagged = int(state["host_scans_flagged"])
        self._m_occupancy.set(len(self._buffer))
