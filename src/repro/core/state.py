"""The stage-state protocol: uniform component checkpointing.

Every stateful detection component — EIA sets, the scan buffer, the
trained cluster model, pipeline stats, the alert sink, and the seeded
RNGs themselves — implements one two-method contract:

* ``state_dict()`` returns a JSON-serialisable dict capturing *all* of
  the component's mutable state (derived caches excluded: anything that
  is a pure function of the captured state may be rebuilt lazily);
* ``load_state(state)`` restores a component, in place, to exactly the
  captured state, such that every subsequent observable behaves as if
  the process had never restarted.

:mod:`repro.core.persistence` composes these sections into a versioned,
atomically-written checkpoint document; nothing outside a component ever
reaches into its underscore attributes (linter rule REP009 enforces
both halves of that bargain).

Components register under a stable section name with the
:func:`stateful` decorator, which is what the warm-restart tests sweep
to prove every registered component round-trips losslessly.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Protocol, TypeVar, runtime_checkable

from repro.util.errors import ConfigError
from repro.util.rng import SeededRng

__all__ = ["StateDict", "StatefulComponent", "STATEFUL_COMPONENTS", "stateful"]

#: The JSON-serialisable state section one component saves and restores.
StateDict = Dict[str, Any]


@runtime_checkable
class StatefulComponent(Protocol):
    """The uniform checkpoint contract (see the module docstring)."""

    def state_dict(self) -> StateDict:
        """Capture all mutable state as a JSON-serialisable dict."""

    def load_state(self, state: StateDict) -> None:
        """Restore the component, in place, from a captured state dict."""


#: Section name -> implementing class, for every registered component.
STATEFUL_COMPONENTS: Dict[str, type] = {}

_C = TypeVar("_C", bound=type)


def stateful(name: str) -> Callable[[_C], _C]:
    """Class decorator registering a component under a checkpoint name.

    The name is a stable identifier tests and tooling use to enumerate
    the protocol's implementations; it is not itself written into
    checkpoints (sections are namespaced by their *owner*, so one class
    may appear many times in a document — one RNG per reservoir, say).
    """

    def register(cls: _C) -> _C:
        existing = STATEFUL_COMPONENTS.get(name)
        if existing is not None and existing is not cls:
            raise ConfigError(
                f"stateful component name {name!r} is already registered"
                f" by {existing.__name__}"
            )
        STATEFUL_COMPONENTS[name] = cls
        return cls

    return register


# SeededRng lives below the core layer (repro.util must not import
# repro.core), so it registers here rather than decorating itself.
stateful("rng")(SeededRng)
