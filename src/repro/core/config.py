"""Configuration objects for the Enhanced InFilter detector.

Defaults reproduce the paper's experimental settings: the NNS parameters
d=720, M1=1, M2=12, M3=3 (Section 4.2), a ~200-flow scan-analysis buffer
(Section 4.1), and /11 EIA granularity matching the testbed's address
sub-blocks (Section 6.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.core.detector import INFILTER_DETECTOR, validate_composition
from repro.util.errors import ConfigError

__all__ = [
    "FeatureSpec",
    "NNSConfig",
    "ScanConfig",
    "EIAConfig",
    "OverloadConfig",
    "PipelineConfig",
]


@dataclass(frozen=True)
class FeatureSpec:
    """One flow characteristic and its unary-encoding interval.

    Values in ``[low, high]`` are divided into ``bits`` equal intervals;
    values outside the range clamp to the nearest end (a flow bigger than
    anything seen in training is "maximally far" in that dimension, which
    is the behaviour anomaly detection wants).
    """

    name: str
    low: float
    high: float
    bits: int

    def __post_init__(self) -> None:
        if self.high <= self.low:
            raise ConfigError(f"feature {self.name}: empty range")
        if self.bits < 1:
            raise ConfigError(f"feature {self.name}: need at least one bit")


def _default_features() -> Tuple[FeatureSpec, ...]:
    # 5 features x 144 bits = d = 720, the paper's dimension.  Ranges are
    # log-scale-free caps chosen to cover the synthetic trace mix; the
    # encoder clamps outliers.
    return (
        FeatureSpec("octets", 0.0, 1_500_000.0, 144),
        FeatureSpec("packets", 0.0, 1_000.0, 144),
        FeatureSpec("duration_ms", 0.0, 120_000.0, 144),
        FeatureSpec("bit_rate", 0.0, 10_000_000.0, 144),
        FeatureSpec("packet_rate", 0.0, 10_000.0, 144),
    )


@dataclass(frozen=True)
class NNSConfig:
    """Parameters of the KOR nearest-neighbour structure (Section 4.2).

    ``m1`` structures per distance scale, ``m2`` test vectors (trace bits)
    per structure, ``m3`` the Hamming ball radius for table placement.
    ``threshold_quantile`` sets each subcluster's distance threshold at
    that quantile of intra-cluster nearest-neighbour distances, scaled by
    ``threshold_slack``.
    """

    features: Tuple[FeatureSpec, ...] = field(default_factory=_default_features)
    m1: int = 1
    m2: int = 12
    m3: int = 3
    threshold_quantile: float = 0.99
    threshold_slack: float = 1.25
    seed: int = 20050605

    def __post_init__(self) -> None:
        if self.m1 < 1:
            raise ConfigError("m1 must be at least 1")
        if not 1 <= self.m2 <= 24:
            raise ConfigError("m2 must be in [1, 24] (table has 2^m2 entries)")
        if not 0 < self.m3 <= self.m2:
            raise ConfigError("m3 must be in (0, m2]")
        if not 0.0 < self.threshold_quantile <= 1.0:
            raise ConfigError("threshold_quantile must be in (0, 1]")
        if self.threshold_slack <= 0:
            raise ConfigError("threshold_slack must be positive")

    @property
    def dimension(self) -> int:
        """Total unary dimension d (720 with the default features)."""
        return sum(spec.bits for spec in self.features)


@dataclass(frozen=True)
class ScanConfig:
    """Scan Analysis parameters (Section 4.1).

    The buffer holds the most recent suspect flows; a network scan fires
    when one destination port is targeted on at least
    ``network_scan_threshold`` distinct hosts, a host scan when one host is
    targeted on at least ``host_scan_threshold`` distinct ports.
    """

    buffer_size: int = 200
    network_scan_threshold: int = 8
    host_scan_threshold: int = 8

    def __post_init__(self) -> None:
        if self.buffer_size < 1:
            raise ConfigError("buffer_size must be positive")
        if self.network_scan_threshold < 2 or self.host_scan_threshold < 2:
            raise ConfigError("scan thresholds below 2 would fire on any flow")


@dataclass(frozen=True)
class EIAConfig:
    """Expected-IP-Address set parameters (Sections 3 and 5).

    ``granularity`` is the prefix length at which sources are remembered
    (/11 matches the testbed's address sub-blocks).  ``learning_threshold``
    is the number of benign-assessed flows from an unexpected source after
    which the source is absorbed into the observing peer AS's EIA set —
    the route-change adaptation rule of Section 5.2(a).
    """

    granularity: int = 11
    learning_threshold: int = 10

    def __post_init__(self) -> None:
        if not 0 < self.granularity <= 32:
            raise ConfigError("granularity must be a valid prefix length")
        if self.learning_threshold < 1:
            raise ConfigError("learning_threshold must be positive")


@dataclass(frozen=True)
class OverloadConfig:
    """Saturation model of the analysis software (Section 6.3.2).

    The paper's stress experiment drives the prototype past its capacity;
    detection degrades and false positives rise.  This model reproduces
    that: when the *suspect* arrival rate exceeds
    ``suspect_capacity_per_s`` (measured over ``window_ms`` of flow
    time), excess suspects are handled in degraded mode — a
    ``drop_fraction`` share is dropped unanalysed (missed if hostile),
    the rest is flagged without Scan/NNS analysis (a false positive if
    benign).  ``suspect_capacity_per_s=None`` disables the model, which
    is the library default.
    """

    suspect_capacity_per_s: Optional[float] = None
    drop_fraction: float = 0.5
    window_ms: int = 1_000

    def __post_init__(self) -> None:
        if self.suspect_capacity_per_s is not None and self.suspect_capacity_per_s <= 0:
            raise ConfigError("suspect capacity must be positive or None")
        if not 0.0 <= self.drop_fraction <= 1.0:
            raise ConfigError("drop_fraction is a fraction")
        if self.window_ms < 1:
            raise ConfigError("window_ms must be positive")

    @property
    def enabled(self) -> bool:
        return self.suspect_capacity_per_s is not None


@dataclass(frozen=True)
class PipelineConfig:
    """Top-level detector configuration.

    ``enhanced=False`` is the paper's BI configuration (EIA analysis
    alone); ``enhanced=True`` adds Scan Analysis and NNS Search (EI).

    ``detectors`` names the ensemble composition, in vote order; the
    default — the InFilter chain alone — bypasses the ensemble combiner
    entirely and reproduces the pre-ensemble pipeline decision for
    decision and alert for alert.  ``ensemble_policy`` picks how a multi-detector
    composition folds votes (see :data:`repro.core.detector.ENSEMBLE_POLICIES`).
    """

    eia: EIAConfig = EIAConfig()
    scan: ScanConfig = ScanConfig()
    nns: NNSConfig = NNSConfig()
    overload: OverloadConfig = OverloadConfig()
    enhanced: bool = True
    #: Flag flows whose protocol class has no training data (conservative).
    flag_unmodelled_classes: bool = True
    #: Ensemble composition; must include ``"infilter"``.
    detectors: Tuple[str, ...] = (INFILTER_DETECTOR,)
    #: Vote-folding policy for multi-detector compositions.
    ensemble_policy: str = "any"

    def __post_init__(self) -> None:
        validate_composition(self.detectors, self.ensemble_policy)

    @classmethod
    def basic(cls) -> "PipelineConfig":
        """The BI configuration of Section 6.3."""
        return cls(enhanced=False)

    @classmethod
    def enhanced_default(cls) -> "PipelineConfig":
        """The EI configuration of Section 6.3."""
        return cls(enhanced=True)
