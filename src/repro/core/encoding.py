"""Unary flow encoding (Section 4.2).

The NNS algorithms require each flow to be one point in Hamming space: a
characteristic with value in ``[a, b]`` gets ``d_C`` bits, the value's
interval index ``I`` encoded as ``I`` ones followed by ``d_C - I`` zeros,
and the per-feature strings concatenate into a single d-bit vector.  The
Hamming distance between two unary encodings is then the L1 distance
between interval indices — the metric the nearest-neighbour search
operates in.

Encodings are Python ints used as bitmasks: bit ``k`` of the integer is
position ``k`` of the vector, so inner products and Hamming distances are
single ``&``/``^`` + ``bit_count`` operations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.core.config import FeatureSpec
from repro.netflow.records import FlowStats
from repro.util.errors import ConfigError

__all__ = ["UnaryEncoder", "hamming", "parity_inner_product"]


def hamming(a: int, b: int) -> int:
    """Hamming distance between two encoded vectors."""
    return (a ^ b).bit_count()


def parity_inner_product(u: int, v: int) -> int:
    """The GF(2) inner product used by the KOR ``Test`` procedure."""
    return (u & v).bit_count() & 1


@dataclass(frozen=True)
class _Lane:
    spec: FeatureSpec
    offset: int


class UnaryEncoder:
    """Encodes :class:`FlowStats` into d-bit unary vectors.

    The feature tuple fixes both the order of concatenation and the
    per-feature bit budget; with the paper defaults the total dimension is
    720.  Values outside a feature's range clamp to its ends, so an
    off-the-chart flow lands in the extreme interval rather than raising.
    """

    def __init__(self, features: Sequence[FeatureSpec]) -> None:
        if not features:
            raise ConfigError("at least one feature is required")
        expected = list(FlowStats.FEATURE_NAMES)
        got = [spec.name for spec in features]
        if got != expected:
            raise ConfigError(
                f"feature order must match FlowStats.FEATURE_NAMES"
                f" {expected}, got {got}"
            )
        lanes: List[_Lane] = []
        offset = 0
        for spec in features:
            lanes.append(_Lane(spec=spec, offset=offset))
            offset += spec.bits
        self._lanes: Tuple[_Lane, ...] = tuple(lanes)
        self.dimension = offset

    def interval_index(self, spec: FeatureSpec, value: float) -> int:
        """The unary interval ``I`` in [0, bits] a value falls into.

        Following the paper's worked example (value 3 of [0, 5] over 5
        bits encodes as ``11100``), intervals are half-open on the left:
        a value on an interval boundary belongs to the interval it
        closes, so ``I = ceil((value - low) * bits / (high - low))``.
        The minimum encodes as all zeros, the maximum as all ones.
        """
        if value <= spec.low:
            return 0
        if value >= spec.high:
            return spec.bits
        scaled = (value - spec.low) * spec.bits / (spec.high - spec.low)
        index = math.ceil(scaled - 1e-9)
        return min(max(index, 1), spec.bits)

    def encode(self, stats: FlowStats) -> int:
        """Encode a statistic vector as a d-bit integer bitmask."""
        values = stats.as_tuple()
        encoded = 0
        for lane, value in zip(self._lanes, values):
            index = self.interval_index(lane.spec, value)
            if index:
                # `index` ones in the low positions of this lane.
                encoded |= ((1 << index) - 1) << lane.offset
        return encoded

    def decode_indices(self, encoded: int) -> Tuple[int, ...]:
        """Recover per-feature interval indices (for tests/diagnostics)."""
        indices = []
        for lane in self._lanes:
            lane_bits = (encoded >> lane.offset) & ((1 << lane.spec.bits) - 1)
            indices.append(lane_bits.bit_count())
        return tuple(indices)

    def is_valid_unary(self, encoded: int) -> bool:
        """True when every lane is a proper prefix-of-ones pattern."""
        if encoded < 0 or encoded >> self.dimension:
            return False
        for lane in self._lanes:
            lane_bits = (encoded >> lane.offset) & ((1 << lane.spec.bits) - 1)
            ones = lane_bits.bit_count()
            if lane_bits != (1 << ones) - 1:
                return False
        return True

    def max_distance(self) -> int:
        """The largest possible Hamming distance between two encodings."""
        return self.dimension
