"""EIA-set initialisation from routing data (Section 5.2, training phase).

The paper offers three ways to compute the Expected-IP-Address sets; two
of them derive from routing measurements rather than observed traffic:

* **BGP** (Section 3.2): parse the target network's ``show ip bgp`` view,
  derive the peer-AS → source-AS mapping per the best-path-suffix
  argument, then translate source ASes into the prefixes they originate;
* **traceroute** (Section 3.1): run traceroutes from cooperating vantage
  networks toward the target, record which peer/border-router pair each
  vantage's traffic arrives through, and credit the vantage's prefixes to
  that peer.

Both functions return a ``prefix → peer`` mapping consumable by
:meth:`repro.core.eia.BasicInFilter.initialize_from_ingress_map`, keyed
by the *peer ASN*; callers with interface-indexed detectors can remap
with ``peer_interfaces``.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence

from repro.routing.bgp import RouteCollector
from repro.routing.table import derive_ingress_map, parse_show_ip_bgp, render_show_ip_bgp
from repro.routing.topology import ASTopology
from repro.routing.traceroute import TracerouteSimulator
from repro.util.errors import RoutingError
from repro.util.ip import Prefix

__all__ = ["eia_from_bgp", "eia_from_traceroutes", "remap_peers"]


def eia_from_bgp(
    topology: ASTopology,
    collector: RouteCollector,
    target_address: int,
    *,
    origin: Optional[int] = None,
) -> Dict[Prefix, int]:
    """Derive an EIA initialisation map from a collector's BGP view.

    The per-source-AS ingress peers come from the parsed ``show ip bgp``
    table (the full textual pipeline runs, exactly as an operational
    deployment consuming Routeviews data would); each source AS then
    contributes every prefix it originates.
    """
    if origin is None:
        located = topology.origin_of(target_address)
        if located is None:
            raise RoutingError("target address is not originated by any AS")
        origin = located[0]
    prefixes = [
        (prefix, origin) for prefix in topology.nodes[origin].prefixes
    ]
    if not prefixes:
        raise RoutingError(f"target AS {origin} originates no prefixes")
    entries = collector.snapshot(prefixes)
    routes = parse_show_ip_bgp(render_show_ip_bgp(entries))
    mapping = derive_ingress_map(routes, origin, target_address)
    result: Dict[Prefix, int] = {}
    for source_as, peer in mapping.peer_of_source.items():
        node = topology.nodes.get(source_as)
        if node is None:
            continue
        for prefix in node.prefixes:
            result[prefix] = peer
    return result


def eia_from_traceroutes(
    topology: ASTopology,
    simulator: TracerouteSimulator,
    target_address: int,
    vantages: Sequence[int],
    *,
    samples_per_vantage: int = 3,
) -> Dict[Prefix, int]:
    """Derive an EIA initialisation map from cooperative traceroutes.

    Each vantage runs a few traceroutes to the target; the modal last
    AS-level hop (the hop before the target's border router) identifies
    the peer its traffic uses, and the vantage's prefixes are credited to
    that peer.  Vantages whose traces never complete are skipped.
    """
    if samples_per_vantage < 1:
        raise RoutingError("need at least one sample per vantage")
    result: Dict[Prefix, int] = {}
    for vantage in vantages:
        votes: Dict[int, int] = {}
        for _ in range(samples_per_vantage):
            trace = simulator.trace(vantage, target_address)
            last = trace.last_hop()
            if last is None:
                continue
            votes[last.peer.asn] = votes.get(last.peer.asn, 0) + 1
        if not votes:
            continue
        peer = max(votes.items(), key=lambda item: (item[1], -item[0]))[0]
        node = topology.nodes.get(vantage)
        if node is None:
            continue
        for prefix in node.prefixes:
            result[prefix] = peer
    return result


def remap_peers(
    mapping: Mapping[Prefix, int], peer_interfaces: Mapping[int, int]
) -> Dict[Prefix, int]:
    """Translate peer ASNs to local interface indices.

    A deployment's NetFlow records carry ``input_if`` (an ifIndex), not
    peer ASNs; ``peer_interfaces`` maps each peer ASN to the interface it
    is attached on.  Prefixes whose peer has no interface entry are
    dropped (the target has no direct adjacency to flag them against).
    """
    return {
        prefix: peer_interfaces[peer]
        for prefix, peer in mapping.items()
        if peer in peer_interfaces
    }
