"""Training clusters: partition, thresholds, and per-class NNS structures.

Section 5.1.3(b)–(d): the *Normal cluster* (all training flows) is
partitioned into protocol-specific subclusters — http, smtp, ftp, dns,
udp (non-dns), tcp (everything tcp without its own subcluster), icmp —
because flows to a single application vary less than flows in general.
Each subcluster gets a Hamming-distance threshold (a high quantile of its
intra-cluster nearest-neighbour distances, times a slack factor) and its
own KOR search structure.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.config import NNSConfig
from repro.core.encoding import UnaryEncoder
from repro.core.nns import NNSStructure, SearchResult, TrainingFlow
from repro.core.state import StateDict, stateful
from repro.fastpath.bitpack import PackedCodes
from repro.netflow.records import (
    PORT_DNS,
    PORT_FTP,
    PORT_HTTP,
    PORT_SMTP,
    PROTO_ICMP,
    PROTO_TCP,
    PROTO_UDP,
    FlowRecord,
)
from repro.util.errors import TrainingError
from repro.util.rng import SeededRng

__all__ = [
    "PROTOCOL_CLASSES",
    "protocol_class",
    "NormalCluster",
    "SubCluster",
    "ClusterModel",
]

PROTOCOL_CLASSES: Tuple[str, ...] = (
    "http",
    "smtp",
    "ftp",
    "dns",
    "udp",
    "tcp",
    "icmp",
    "other",
)

_TCP_SERVICES = {PORT_HTTP: "http", PORT_SMTP: "smtp", PORT_FTP: "ftp"}


def protocol_class(record: FlowRecord) -> str:
    """The subcluster a flow belongs to (Section 5.1.3(c))."""
    protocol = record.key.protocol
    if protocol == PROTO_TCP:
        return _TCP_SERVICES.get(record.key.dst_port, "tcp")
    if protocol == PROTO_UDP:
        return "dns" if record.key.dst_port == PORT_DNS else "udp"
    if protocol == PROTO_ICMP:
        return "icmp"
    return "other"


class NormalCluster:
    """The unpartitioned training cluster (Section 5.1.3(b))."""

    def __init__(self) -> None:
        self._records: List[FlowRecord] = []

    def add(self, record: FlowRecord) -> None:
        self._records.append(record)

    def extend(self, records: Iterable[FlowRecord]) -> None:
        self._records.extend(records)

    def __len__(self) -> int:
        return len(self._records)

    def partition(self) -> Dict[str, List[FlowRecord]]:
        """Split into protocol-specific groups; empty classes are absent."""
        groups: Dict[str, List[FlowRecord]] = {}
        for record in self._records:
            groups.setdefault(protocol_class(record), []).append(record)
        return groups


@dataclass
class SubCluster:
    """One protocol class: its NNS structure and distance threshold."""

    name: str
    structure: NNSStructure
    threshold: int
    size: int

    def assess(self, encoded: int) -> Tuple[bool, Optional[SearchResult]]:
        """(is_normal, neighbour): normal iff within the threshold."""
        result = self.structure.nearest(encoded)
        if result is None:
            return False, None
        return result.distance <= self.threshold, result


@stateful("model")
class ClusterModel:
    """Everything the NNS analysis needs at search time.

    Build with :meth:`train`; afterwards :meth:`assess` classifies a flow
    against its protocol class's subcluster.  Flows of a class with no
    training data are reported as having no model (the pipeline decides
    whether that means "attack").
    """

    def __init__(
        self,
        encoder: UnaryEncoder,
        subclusters: Dict[str, SubCluster],
        config: NNSConfig,
    ) -> None:
        self.encoder = encoder
        self.subclusters = subclusters
        self.config = config

    @classmethod
    def train(
        cls,
        records: Sequence[FlowRecord],
        config: NNSConfig = NNSConfig(),
        *,
        rng: Optional[SeededRng] = None,
        threshold_sample_cap: int = 400,
    ) -> "ClusterModel":
        """Section 5.1.3(b)–(d): partition, thresholds, structures.

        ``threshold_sample_cap`` bounds the O(n²) exact-NN threshold
        calibration; beyond it a deterministic stride sample is used.
        """
        if not records:
            raise TrainingError("training requires at least one flow")
        if rng is None:
            rng = SeededRng(config.seed, "nns")
        encoder = UnaryEncoder(config.features)
        cluster = NormalCluster()
        cluster.extend(records)
        subclusters: Dict[str, SubCluster] = {}
        for name, group in sorted(cluster.partition().items()):
            flows = [
                TrainingFlow(
                    index=i, stats=r.stats(), encoded=encoder.encode(r.stats())
                )
                for i, r in enumerate(group)
            ]
            threshold = _calibrate_threshold(
                flows, config, cap=threshold_sample_cap
            )
            structure = NNSStructure(
                encoder, config, flows, rng=rng.fork(f"cluster-{name}")
            )
            subclusters[name] = SubCluster(
                name=name,
                structure=structure,
                threshold=threshold,
                size=len(flows),
            )
        return cls(encoder=encoder, subclusters=subclusters, config=config)

    def has_model_for(self, record: FlowRecord) -> bool:
        return protocol_class(record) in self.subclusters

    def assess(
        self, record: FlowRecord
    ) -> Tuple[Optional[bool], Optional[SearchResult], str]:
        """(is_normal | None, neighbour, class_name) for one flow.

        ``is_normal`` is None when the flow's class has no subcluster.
        """
        name = protocol_class(record)
        subcluster = self.subclusters.get(name)
        if subcluster is None:
            return None, None, name
        encoded = self.encoder.encode(record.stats())
        is_normal, result = subcluster.assess(encoded)
        return is_normal, result, name

    def thresholds(self) -> Dict[str, int]:
        return {name: sc.threshold for name, sc in self.subclusters.items()}

    # -- the stage-state protocol --------------------------------------------

    def state_dict(self) -> StateDict:
        """The *derived* model: per-class thresholds, sizes, structures.

        This is what makes warm restarts retrain-free — loading this
        section rebuilds the trained model directly, never replaying
        training records through :meth:`train`.
        """
        return {
            "classes": {
                name: {
                    "threshold": sc.threshold,
                    "size": sc.size,
                    "structure": sc.structure.state_dict(),
                }
                for name, sc in sorted(self.subclusters.items())
            }
        }

    def load_state(self, state: StateDict) -> None:
        self.subclusters = {
            name: SubCluster(
                name=name,
                structure=NNSStructure.from_state(
                    self.encoder, self.config, section["structure"]
                ),
                threshold=int(section["threshold"]),
                size=int(section["size"]),
            )
            for name, section in state["classes"].items()
        }

    @classmethod
    def from_state(cls, config: NNSConfig, state: StateDict) -> "ClusterModel":
        """Rebuild a trained model from its captured state section."""
        model = cls(UnaryEncoder(config.features), {}, config)
        model.load_state(state)
        return model


def _calibrate_threshold(
    flows: Sequence[TrainingFlow], config: NNSConfig, *, cap: int
) -> int:
    """Quantile of leave-one-out nearest-neighbour distances, with slack.

    A single-flow cluster gets a small floor threshold: anything not very
    close to the lone exemplar is anomalous.
    """
    if len(flows) < 2:
        return max(1, int(0.02 * config.dimension))
    sample: Sequence[TrainingFlow] = flows
    if len(flows) > cap:
        stride = len(flows) / cap
        sample = [flows[int(i * stride)] for i in range(cap)]
    # One packed popcount sweep per probe instead of a per-flow hamming()
    # call: identical distances, a fraction of the interpreter traffic.
    packed = PackedCodes([flow.encoded for flow in flows], config.dimension)
    distances: List[int] = []
    for probe in sample:
        sweep = packed.distances(probe.encoded)
        nearest = min(
            distance
            for distance, other in zip(sweep, flows)
            if other.index != probe.index
        )
        distances.append(nearest)
    distances.sort()
    position = min(
        len(distances) - 1,
        max(0, math.ceil(config.threshold_quantile * len(distances)) - 1),
    )
    base = distances[position]
    return max(1, int(base * config.threshold_slack))
