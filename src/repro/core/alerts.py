"""IDMEF alert generation (Section 5.1.4).

When the analysis flags a flow it emits an alert in the Intrusion
Detection Message Exchange Format.  :class:`IdmefAlert` carries the fields
a consumer needs (analyzer identity, classification, source/target,
assessment) and renders to IDMEF XML; :func:`parse_idmef` reads the XML
back, which is what the Alert UI / downstream trace-back systems would do.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from dataclasses import asdict, dataclass
from typing import List, Optional, Tuple

from repro.core.state import StateDict, stateful
from repro.netflow.records import FlowRecord
from repro.obs import MetricsRegistry, get_logger, get_registry
from repro.util.errors import ReproError
from repro.util.ip import format_ipv4, parse_ipv4

__all__ = ["IdmefAlert", "AlertSink", "parse_idmef"]

log = get_logger(__name__)

_ANALYZER_ID = "enhanced-infilter"


@dataclass(frozen=True)
class IdmefAlert:
    """One IDMEF alert.

    ``classification`` names the detection ("spoofed-source",
    "network_scan", "host_scan", "nns-anomaly"); ``stage`` records which
    pipeline stage fired; ``detect_time_ms`` is detector clock time.
    ``attribution`` carries one ``detector:outcome`` token per composed
    detector when the ensemble is active (empty for the default
    InFilter-only composition, keeping its XML byte-identical to the
    pre-ensemble format).
    """

    ident: str
    classification: str
    stage: str
    source_address: int
    target_address: int
    target_port: int
    protocol: int
    observed_peer: int
    expected_peer: Optional[int]
    detect_time_ms: int
    severity: str = "medium"
    attribution: Tuple[str, ...] = ()

    @classmethod
    def for_flow(
        cls,
        ident: str,
        record: FlowRecord,
        *,
        classification: str,
        stage: str,
        expected_peer: Optional[int],
        detect_time_ms: int,
        severity: str = "medium",
        attribution: Tuple[str, ...] = (),
    ) -> "IdmefAlert":
        """Build an alert describing one flagged flow."""
        return cls(
            ident=ident,
            classification=classification,
            stage=stage,
            source_address=record.key.src_addr,
            target_address=record.key.dst_addr,
            target_port=record.key.dst_port,
            protocol=record.key.protocol,
            observed_peer=record.key.input_if,
            expected_peer=expected_peer,
            detect_time_ms=detect_time_ms,
            severity=severity,
            attribution=attribution,
        )

    def to_xml(self) -> str:
        """Render as an IDMEF-Message document."""
        message = ET.Element("IDMEF-Message", {"version": "1.0"})
        alert = ET.SubElement(message, "Alert", {"messageid": self.ident})
        analyzer = ET.SubElement(
            alert, "Analyzer", {"analyzerid": _ANALYZER_ID, "class": self.stage}
        )
        ET.SubElement(analyzer, "Node")
        detect = ET.SubElement(alert, "DetectTime")
        detect.text = str(self.detect_time_ms)
        source = ET.SubElement(alert, "Source")
        src_node = ET.SubElement(source, "Node")
        src_addr = ET.SubElement(src_node, "Address", {"category": "ipv4-addr"})
        ET.SubElement(src_addr, "address").text = format_ipv4(self.source_address)
        target = ET.SubElement(alert, "Target")
        tgt_node = ET.SubElement(target, "Node")
        tgt_addr = ET.SubElement(tgt_node, "Address", {"category": "ipv4-addr"})
        ET.SubElement(tgt_addr, "address").text = format_ipv4(self.target_address)
        service = ET.SubElement(target, "Service")
        ET.SubElement(service, "port").text = str(self.target_port)
        ET.SubElement(service, "protocol").text = str(self.protocol)
        classification = ET.SubElement(
            alert, "Classification", {"text": self.classification}
        )
        ET.SubElement(
            classification,
            "Reference",
            {"origin": "vendor-specific", "meaning": "pipeline-stage"},
        ).text = self.stage
        assessment = ET.SubElement(alert, "Assessment")
        ET.SubElement(assessment, "Impact", {"severity": self.severity})
        additional = ET.SubElement(
            alert, "AdditionalData", {"type": "integer", "meaning": "observed-peer"}
        )
        additional.text = str(self.observed_peer)
        if self.expected_peer is not None:
            expected = ET.SubElement(
                alert,
                "AdditionalData",
                {"type": "integer", "meaning": "expected-peer"},
            )
            expected.text = str(self.expected_peer)
        for token in self.attribution:
            entry = ET.SubElement(
                alert,
                "AdditionalData",
                {"type": "string", "meaning": "detector-attribution"},
            )
            entry.text = token
        return ET.tostring(message, encoding="unicode")


def parse_idmef(xml_text: str) -> IdmefAlert:
    """Parse an IDMEF-Message back into an :class:`IdmefAlert`."""
    try:
        root = ET.fromstring(xml_text)
    except ET.ParseError as error:
        raise ReproError(f"malformed IDMEF document: {error}") from error
    alert = root.find("Alert")
    if alert is None:
        raise ReproError("IDMEF document has no Alert element")
    classification = alert.find("Classification")
    stage_el = alert.find("Analyzer")
    source_addr = alert.findtext("Source/Node/Address/address")
    target_addr = alert.findtext("Target/Node/Address/address")
    if classification is None or source_addr is None or target_addr is None:
        raise ReproError("IDMEF alert missing required elements")
    observed_peer: Optional[int] = None
    expected_peer: Optional[int] = None
    attribution: List[str] = []
    for extra in alert.findall("AdditionalData"):
        meaning = extra.get("meaning")
        if meaning == "observed-peer" and extra.text is not None:
            observed_peer = int(extra.text)
        elif meaning == "expected-peer" and extra.text is not None:
            expected_peer = int(extra.text)
        elif meaning == "detector-attribution" and extra.text is not None:
            attribution.append(extra.text)
    severity_el = alert.find("Assessment/Impact")
    return IdmefAlert(
        ident=alert.get("messageid", ""),
        classification=classification.get("text", ""),
        stage=(stage_el.get("class", "") if stage_el is not None else ""),
        source_address=parse_ipv4(source_addr),
        target_address=parse_ipv4(target_addr),
        target_port=int(alert.findtext("Target/Service/port") or 0),
        protocol=int(alert.findtext("Target/Service/protocol") or 0),
        observed_peer=observed_peer if observed_peer is not None else 0,
        expected_peer=expected_peer,
        detect_time_ms=int(alert.findtext("DetectTime") or 0),
        severity=(severity_el.get("severity", "medium") if severity_el is not None else "medium"),
        attribution=tuple(attribution),
    )


@stateful("alerts")
class AlertSink:
    """An in-memory IDMEF consumer (the Alert UI role).

    Stores alerts and exposes simple queries; a real deployment would
    forward the XML to a SIEM or trace-back system instead.
    """

    def __init__(self, *, registry: Optional[MetricsRegistry] = None) -> None:
        self.alerts: List[IdmefAlert] = []
        registry = registry if registry is not None else get_registry()
        self._m_alerts = registry.counter(
            "infilter_alerts_total",
            "IDMEF alerts consumed, by pipeline stage and classification.",
            ("stage", "classification"),
        )

    def consume(self, alert: IdmefAlert) -> None:
        self.alerts.append(alert)
        self._m_alerts.labels(
            stage=alert.stage, classification=alert.classification
        ).inc()
        log.debug(
            "alert consumed",
            extra={
                "ident": alert.ident,
                "classification": alert.classification,
                "stage": alert.stage,
                "severity": alert.severity,
            },
        )

    def consume_xml(self, xml_text: str) -> IdmefAlert:
        alert = parse_idmef(xml_text)
        self.consume(alert)
        return alert

    def __len__(self) -> int:
        return len(self.alerts)

    def by_classification(self, classification: str) -> List[IdmefAlert]:
        return [a for a in self.alerts if a.classification == classification]

    # -- the stage-state protocol --------------------------------------------

    def state_dict(self) -> StateDict:
        """Alert history, in arrival order.

        Monotonic consumption *metrics* are deliberately not restored on
        load: counters describe this process's lifetime, state describes
        the detector's.
        """
        return {"alerts": [asdict(alert) for alert in self.alerts]}

    def load_state(self, state: StateDict) -> None:
        # JSON round-trips the attribution tuple as a list; normalise it
        # back so restored alerts compare equal to freshly emitted ones.
        self.alerts = [
            IdmefAlert(
                **{
                    key: tuple(value) if key == "attribution" else value
                    for key, value in entry.items()
                }
            )
            for entry in state["alerts"]
        ]
