"""Attack trace-back from IDMEF alerts (the Section 7 extension).

The paper notes the InFilter approach "can be easily extended to provide
traceback capability to detect the ingress point of attack traffic into
large IP networks": unlike source addresses (spoofed), the *observed
ingress peer* on each alert is ground truth the attacker cannot forge.

:class:`TracebackAnalyzer` consumes alerts and answers the operational
questions: which border routers is the attack actually using, which
victims is it converging on, and how do the claimed (spoofed) origins
compare with the real ingress evidence.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.alerts import IdmefAlert
from repro.util.ip import Prefix, format_ipv4

__all__ = ["IngressReport", "TracebackAnalyzer"]


@dataclass(frozen=True)
class IngressReport:
    """Trace-back conclusions over a window of alerts."""

    total_alerts: int
    #: peer -> alert count (the real ingress distribution).
    by_ingress: Dict[int, int]
    #: peer -> alert count implied by the *claimed* source addresses.
    by_claimed_origin: Dict[int, int]
    #: target address -> alert count (victim concentration).
    by_victim: Dict[int, int]
    #: classification -> alert count.
    by_classification: Dict[str, int]

    def attack_ingresses(self, min_share: float = 0.05) -> List[int]:
        """Peers carrying at least ``min_share`` of the alert volume —
        the border routers where upstream filtering would help."""
        if not self.total_alerts:
            return []
        return sorted(
            peer
            for peer, count in self.by_ingress.items()
            if count / self.total_alerts >= min_share
        )

    def top_victims(self, count: int = 5) -> List[Tuple[str, int]]:
        """The most-alerted destination addresses, dotted-quad rendered."""
        ranked = sorted(
            self.by_victim.items(), key=lambda item: (-item[1], item[0])
        )
        return [(format_ipv4(address), hits) for address, hits in ranked[:count]]

    def spoofing_spread(self) -> int:
        """How many peers the *claimed* sources pretend to come from.

        A large spread with a small :meth:`attack_ingresses` set is the
        signature of spoofing: the addresses lie, the ingress does not.
        """
        return len(self.by_claimed_origin)

    def summary(self) -> str:
        ingresses = self.attack_ingresses()
        return (
            f"{self.total_alerts} alerts;"
            f" real ingress peers: {ingresses};"
            f" claimed-origin peers: {self.spoofing_spread()};"
            f" top victims: {self.top_victims(3)}"
        )


class TracebackAnalyzer:
    """Aggregates IDMEF alerts into ingress attribution."""

    def __init__(self) -> None:
        self._alerts: List[IdmefAlert] = []

    def consume(self, alert: IdmefAlert) -> None:
        self._alerts.append(alert)

    def consume_all(self, alerts: Iterable[IdmefAlert]) -> None:
        self._alerts.extend(alerts)

    def __len__(self) -> int:
        return len(self._alerts)

    def report(
        self,
        *,
        since_ms: Optional[int] = None,
        classification: Optional[str] = None,
    ) -> IngressReport:
        """Build a report, optionally windowed by detect time or filtered
        to one alert classification."""
        selected = [
            alert
            for alert in self._alerts
            if (since_ms is None or alert.detect_time_ms >= since_ms)
            and (classification is None or alert.classification == classification)
        ]
        by_ingress: Counter = Counter()
        by_claimed: Counter = Counter()
        by_victim: Counter = Counter()
        by_class: Counter = Counter()
        for alert in selected:
            by_ingress[alert.observed_peer] += 1
            if alert.expected_peer is not None:
                by_claimed[alert.expected_peer] += 1
            by_victim[alert.target_address] += 1
            by_class[alert.classification] += 1
        return IngressReport(
            total_alerts=len(selected),
            by_ingress=dict(by_ingress),
            by_claimed_origin=dict(by_claimed),
            by_victim=dict(by_victim),
            by_classification=dict(by_class),
        )

    def victim_prefix_report(self, granularity: int = 24) -> Dict[Prefix, int]:
        """Victim concentration at subnet granularity (scan footprints)."""
        counts: Dict[Prefix, int] = defaultdict(int)
        for alert in self._alerts:
            counts[Prefix.from_address(alert.target_address, granularity)] += 1
        return dict(counts)
