"""Live serving: the always-on NetFlow daemon behind ``infilter serve``.

Everything under :mod:`repro.serve` exists to run the Enhanced InFilter
*online* — real NetFlow v5/v1 datagrams on a real UDP socket, a bounded
ingest queue with explicit load shedding, a micro-batching commit loop
over :meth:`~repro.core.pipeline.EnhancedInFilter.process_batch`,
batch-boundary checkpoints for warm restart, and graceful
drain/reload signal semantics.  See ``docs/operations.md`` for the
serving runbook and ``docs/architecture.md`` for the layer diagram.
"""

from __future__ import annotations

from repro.serve.config import (
    SHED_DROP_OLDEST,
    SHED_POLICIES,
    SHED_REJECT_NEWEST,
    ServeConfig,
)
from repro.serve.daemon import ServeDaemon, ServeReport
from repro.serve.http import ObservabilityEndpoint
from repro.serve.listener import (
    DatagramRouter,
    NetFlowDatagramProtocol,
    RouterStats,
)
from repro.serve.queue import IngestQueue, QueuedRecord, QueueStats
from repro.serve.worker import CommitWorker

__all__ = [
    "SHED_DROP_OLDEST",
    "SHED_REJECT_NEWEST",
    "SHED_POLICIES",
    "ServeConfig",
    "ServeDaemon",
    "ServeReport",
    "ObservabilityEndpoint",
    "DatagramRouter",
    "NetFlowDatagramProtocol",
    "RouterStats",
    "IngestQueue",
    "QueuedRecord",
    "QueueStats",
    "CommitWorker",
]
