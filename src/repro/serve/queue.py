"""The bounded ingest queue between the UDP listener and the committer.

UDP delivers datagrams at whatever rate the network produces them; the
commit plane drains at whatever rate the detector sustains.  The queue
is the only coupling between the two, and it is explicitly *bounded*:
when ingest outruns commit the queue sheds load by policy instead of
growing without limit, and every shed is counted so operators can see
exactly what was sacrificed (``infilter_serve_shed_total``).

The queue is single-loop: producers call :meth:`put` from event-loop
callbacks (the datagram protocol), the one consumer awaits
:meth:`get_batch`.  No locks are needed because asyncio callbacks and
coroutine steps interleave only at await points.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional

import asyncio

from repro.netflow.records import FlowRecord
from repro.obs import MetricsRegistry, get_registry
from repro.serve.config import SHED_DROP_OLDEST, SHED_POLICIES
from repro.util.errors import ConfigError, ServeError

__all__ = ["QueuedRecord", "QueueStats", "IngestQueue"]


@dataclass(frozen=True)
class QueuedRecord:
    """One admitted flow record plus its ingest timestamp.

    ``enqueued_s`` is a monotonic (``perf_counter``) instant, used only
    to measure ingest-to-verdict latency — observability, not simulation
    input, so it never feeds a detector decision.
    """

    record: FlowRecord
    enqueued_s: float


@dataclass
class QueueStats:
    """What the queue admitted and what it sacrificed."""

    enqueued: int = 0
    dequeued: int = 0
    shed: int = 0
    #: Highest depth ever observed, for capacity tuning.
    high_watermark: int = 0


class IngestQueue:
    """Bounded record queue with an explicit load-shedding policy.

    ``drop-oldest`` evicts the head to admit the newest record (the
    detector tracks the live edge of the traffic); ``reject-newest``
    refuses the incoming record (everything already admitted commits in
    order).  Both count into ``stats.shed`` and the shed counter metric,
    labelled by policy.
    """

    def __init__(
        self,
        capacity: int,
        *,
        shed_policy: str = SHED_DROP_OLDEST,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if capacity < 1:
            raise ConfigError(f"capacity must be >= 1, got {capacity}")
        if shed_policy not in SHED_POLICIES:
            raise ConfigError(
                f"shed_policy must be one of {'/'.join(SHED_POLICIES)},"
                f" got {shed_policy!r}"
            )
        self.capacity = capacity
        self.shed_policy = shed_policy
        self.stats = QueueStats()
        self._items: Deque[QueuedRecord] = deque()
        self._closed = False
        self._wakeup: Optional[asyncio.Event] = None
        registry = registry if registry is not None else get_registry()
        self._m_enqueued = registry.counter(
            "infilter_serve_records_enqueued_total",
            "Flow records admitted to the ingest queue.",
        )
        self._m_shed = registry.counter(
            "infilter_serve_shed_total",
            "Flow records sacrificed by the bounded-queue shed policy.",
            ("policy",),
        ).labels(policy=shed_policy)
        self._m_depth = registry.gauge(
            "infilter_serve_queue_depth",
            "Flow records currently queued between listener and committer.",
        )

    def __len__(self) -> int:
        return len(self._items)

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has been called (drain mode)."""
        return self._closed

    def _event(self) -> asyncio.Event:
        # Created lazily so the queue can be built outside a running
        # loop (asyncio.Event binds to the loop it is first awaited on).
        if self._wakeup is None:
            self._wakeup = asyncio.Event()
        return self._wakeup

    def put(self, record: FlowRecord) -> bool:
        """Admit one record; returns False when it was shed.

        A full queue invokes the shed policy: ``drop-oldest`` evicts the
        head and admits ``record`` (returns True — the *new* record was
        admitted); ``reject-newest`` counts ``record`` as shed and
        returns False.  Putting into a closed queue is a contract
        violation — the listener must be stopped before the drain.
        """
        if self._closed:
            raise ServeError("cannot enqueue into a closed ingest queue")
        if len(self._items) >= self.capacity:
            self.stats.shed += 1
            self._m_shed.inc()
            if self.shed_policy == SHED_DROP_OLDEST:
                self._items.popleft()
            else:
                return False
        self._items.append(QueuedRecord(record, time.perf_counter()))
        self.stats.enqueued += 1
        self._m_enqueued.inc()
        depth = len(self._items)
        if depth > self.stats.high_watermark:
            self.stats.high_watermark = depth
        self._m_depth.set(depth)
        self._event().set()
        return True

    def close(self) -> None:
        """Enter drain mode: no new records, consumers see the rest.

        After close, :meth:`get_batch` keeps returning queued records
        until the queue is empty, then returns an empty batch — the
        consumer's signal that the drain is complete.
        """
        self._closed = True
        self._event().set()

    def take_nowait(self, limit: int) -> List[QueuedRecord]:
        """Dequeue up to ``limit`` records without waiting."""
        taken: List[QueuedRecord] = []
        while self._items and len(taken) < limit:
            taken.append(self._items.popleft())
        if taken:
            self.stats.dequeued += len(taken)
            self._m_depth.set(len(self._items))
        if not self._items and not self._closed:
            self._event().clear()
        return taken

    async def get_batch(
        self, max_batch: int, *, linger_s: float = 0.0
    ) -> List[QueuedRecord]:
        """Await the next micro-batch (empty batch = closed and drained).

        Waits until at least one record is queued (or the queue closes),
        then — if the batch is short of ``max_batch`` and the queue is
        still open — lingers once for up to ``linger_s`` to let the
        batch fill.  The linger is what amortises per-batch overhead at
        low traffic rates without adding latency at high rates, where
        batches fill instantly.
        """
        if max_batch < 1:
            raise ConfigError(f"max_batch must be >= 1, got {max_batch}")
        while not self._items:
            if self._closed:
                return []
            event = self._event()
            event.clear()
            await event.wait()
        if (
            linger_s > 0
            and len(self._items) < max_batch
            and not self._closed
        ):
            await asyncio.sleep(linger_s)
        return self.take_nowait(max_batch)
