"""The live serving daemon: the paper's Figure 9 deployment, online.

:class:`ServeDaemon` wires the serve subsystem together around one
event loop:

* a UDP endpoint (:mod:`repro.serve.listener`) receives real NetFlow
  v5/v1 datagrams and feeds decoded records into
* a bounded :class:`~repro.serve.queue.IngestQueue` with explicit
  backpressure and load shedding, drained by
* a :class:`~repro.serve.worker.CommitWorker` that micro-batches records
  through the authoritative detector and takes batch-boundary
  checkpoints, while
* an optional :class:`~repro.serve.http.ObservabilityEndpoint` serves
  ``/healthz``, ``/metrics``, and ``/stats.json``.

Lifecycle signals follow daemon conventions: **SIGTERM/SIGINT** trigger
a graceful drain (stop the listener, commit everything queued, write a
final atomic checkpoint, exit); **SIGHUP** hot-reloads the detector
from the configured reload path at the next batch boundary.  All three
are also exposed as methods (:meth:`request_shutdown`,
:meth:`request_reload`) so embedding code — and tests — can drive the
same transitions without a kernel in the loop.
"""

from __future__ import annotations

import signal
import socket
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import asyncio

from repro.core.pipeline import EnhancedInFilter
from repro.obs import MetricsRegistry, get_logger, get_registry
from repro.serve.config import ServeConfig
from repro.serve.http import ObservabilityEndpoint
from repro.serve.listener import DatagramRouter, NetFlowDatagramProtocol
from repro.serve.queue import IngestQueue
from repro.serve.worker import CommitWorker
from repro.util.errors import ServeError

__all__ = ["ServeReport", "ServeDaemon"]

log = get_logger(__name__)

#: How often the idle watchdog looks at the activity clock, in seconds.
_IDLE_POLL_S = 0.05


@dataclass(frozen=True)
class ServeReport:
    """What one daemon run received, committed, and sacrificed."""

    datagrams_v5: int
    datagrams_v1: int
    datagrams_invalid: int
    records_collected: int
    records_enqueued: int
    records_shed: int
    records_committed: int
    cursor: int
    batches: int
    checkpoints: int
    reloads: int
    lost_flows: int
    duplicate_datagrams: int
    alerts: int

    def describe(self) -> str:
        """One operator-facing summary line."""
        return (
            f"serve: {self.records_committed} committed in {self.batches}"
            f" batches (cursor {self.cursor});"
            f" {self.records_shed} shed, {self.lost_flows} lost in"
            f" transport, {self.duplicate_datagrams} duplicate datagrams;"
            f" {self.checkpoints} checkpoints, {self.reloads} reloads,"
            f" {self.alerts} alerts"
        )


class ServeDaemon:
    """An always-on NetFlow collector + Enhanced InFilter commit loop.

    The detector is built (or restored) by the caller; the daemon owns
    its online lifetime.  ``cursor_base`` is the committed-record count
    a restored checkpoint already accounts for, carried into every
    checkpoint the daemon writes.
    """

    def __init__(
        self,
        detector: EnhancedInFilter,
        config: Optional[ServeConfig] = None,
        *,
        registry: Optional[MetricsRegistry] = None,
        cursor_base: int = 0,
    ) -> None:
        self.config = config if config is not None else ServeConfig()
        if cursor_base < 0:
            raise ServeError(f"cursor_base must be >= 0, got {cursor_base}")
        registry = registry if registry is not None else detector.registry
        self.registry = registry
        self.queue = IngestQueue(
            self.config.queue_capacity,
            shed_policy=self.config.shed_policy,
            registry=registry,
        )
        fastpath = (
            detector.enable_fastpath() if self.config.fastpath else None
        )
        self.router = DatagramRouter(
            self.queue,
            registry=registry,
            on_activity=self._note_activity,
            fastpath=fastpath,
        )
        self.worker = CommitWorker(
            detector,
            self.queue,
            self.config,
            registry=registry,
            cursor_base=cursor_base,
            on_progress=self._on_progress,
        )
        self.http = (
            ObservabilityEndpoint(health=self.health, registry=registry)
            if self.config.http_port is not None
            else None
        )
        #: Bound UDP address, available once :meth:`run` is listening.
        self.address: Optional[Tuple[str, int]] = None
        #: Bound HTTP address, when the endpoint is enabled.
        self.http_address: Optional[Tuple[str, int]] = None
        self._transport: Optional[asyncio.DatagramTransport] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._started = asyncio.Event()
        self._draining = False
        self._last_activity = 0.0
        self._state = "created"

    @property
    def detector(self) -> EnhancedInFilter:
        """The authoritative detector (tracks hot reloads)."""
        return self.worker.detector

    # -- health / reporting --------------------------------------------------

    def health(self) -> Dict[str, object]:
        """The ``/healthz`` document: liveness plus drain visibility.

        ``detectors``/``ensemble_policy`` describe the live composition
        and track hot reloads (a SIGHUP checkpoint swap may recompose
        the ensemble).
        """
        return {
            "state": self._state,
            "detectors": list(self.detector.config.detectors),
            "ensemble_policy": self.detector.config.ensemble_policy,
            "queue_depth": len(self.queue),
            "queue_capacity": self.config.queue_capacity,
            "shed_policy": self.config.shed_policy,
            "records_enqueued": self.queue.stats.enqueued,
            "records_shed": self.queue.stats.shed,
            "records_committed": self.worker.committed,
            "cursor": self.worker.cursor,
            "batches": self.worker.batches,
            "checkpoints": self.worker.checkpoints,
            "reloads": self.worker.reloads,
        }

    def report(self) -> ServeReport:
        """The run so far, as one immutable summary."""
        collector = self.router.collector.stats
        return ServeReport(
            datagrams_v5=self.router.stats.v5_datagrams,
            datagrams_v1=self.router.stats.v1_datagrams,
            datagrams_invalid=self.router.stats.invalid_datagrams,
            records_collected=collector.records,
            records_enqueued=self.queue.stats.enqueued,
            records_shed=self.queue.stats.shed,
            records_committed=self.worker.committed,
            cursor=self.worker.cursor,
            batches=self.worker.batches,
            checkpoints=self.worker.checkpoints,
            reloads=self.worker.reloads,
            lost_flows=collector.lost_flows,
            duplicate_datagrams=collector.duplicates,
            alerts=len(self.detector.alert_sink.alerts),
        )

    # -- control -------------------------------------------------------------

    async def wait_started(self) -> None:
        """Block until the UDP endpoint is bound and serving."""
        await self._started.wait()

    def request_shutdown(self) -> None:
        """The SIGTERM path: stop ingest, drain the queue, exit.

        Idempotent and callable from signal handlers: it closes the UDP
        transport (no new datagrams), then closes the queue, which lets
        the commit worker drain everything already admitted and write
        the final checkpoint before :meth:`run` returns.
        """
        if self._draining:
            return
        self._draining = True
        self._state = "draining"
        log.info(
            "shutdown requested: draining",
            extra={"queued": len(self.queue)},
        )
        if self._transport is not None:
            self._transport.close()
        self.queue.close()

    def request_reload(self) -> None:
        """The SIGHUP path: hot-reload the detector between batches."""
        log.info("reload requested")
        self.worker.request_reload()

    def _note_activity(self) -> None:
        if self._loop is not None:
            self._last_activity = self._loop.time()

    def _on_progress(self) -> None:
        self._note_activity()
        limit = self.config.max_records
        if limit is not None and self.worker.committed >= limit:
            self.request_shutdown()

    # -- the run -------------------------------------------------------------

    async def run(self) -> ServeReport:
        """Serve until drained; returns the run report.

        Binds the UDP endpoint (and the HTTP endpoint when configured),
        installs signal handlers where the platform allows, and then
        awaits the commit worker — which only returns once
        :meth:`request_shutdown` has closed the queue and every admitted
        record is committed.
        """
        if self._state not in ("created",):
            raise ServeError(f"daemon cannot run from state {self._state!r}")
        loop = asyncio.get_running_loop()
        self._loop = loop
        self._last_activity = loop.time()
        transport, _protocol = await loop.create_datagram_endpoint(
            lambda: NetFlowDatagramProtocol(self.router),
            local_addr=(self.config.host, self.config.port),
        )
        self._transport = transport
        if self.config.recv_buffer_bytes is not None:
            sock = transport.get_extra_info("socket")
            if sock is not None:
                sock.setsockopt(
                    socket.SOL_SOCKET,
                    socket.SO_RCVBUF,
                    self.config.recv_buffer_bytes,
                )
        bound = transport.get_extra_info("sockname")
        self.address = (str(bound[0]), int(bound[1]))
        if self.http is not None and self.config.http_port is not None:
            self.http_address = await self.http.start(
                self.config.host, self.config.http_port
            )
        handled_signals = self._install_signal_handlers(loop)
        watchdog: Optional[asyncio.Task[None]] = None
        if self.config.idle_exit_s is not None:
            watchdog = loop.create_task(self._idle_watchdog())
        self._state = "serving"
        self._started.set()
        log.info(
            "serving NetFlow",
            extra={
                "host": self.address[0],
                "port": self.address[1],
                "batch_size": self.config.batch_size,
                "queue_capacity": self.config.queue_capacity,
                "shed_policy": self.config.shed_policy,
            },
        )
        try:
            await self.worker.run()
        finally:
            self._state = "stopped"
            if watchdog is not None:
                watchdog.cancel()
            for signum in handled_signals:
                loop.remove_signal_handler(signum)
            if self._transport is not None:
                self._transport.close()
            if self.http is not None:
                await self.http.stop()
        report = self.report()
        log.info("drained and stopped", extra={"cursor": report.cursor})
        return report

    def _install_signal_handlers(
        self, loop: asyncio.AbstractEventLoop
    ) -> List[signal.Signals]:
        installed: List[signal.Signals] = []
        wiring = (
            (signal.SIGTERM, self.request_shutdown),
            (signal.SIGINT, self.request_shutdown),
            (signal.SIGHUP, self.request_reload),
        )
        for signum, handler in wiring:
            try:
                loop.add_signal_handler(signum, handler)
            except (NotImplementedError, RuntimeError, ValueError):
                # Non-main threads and non-POSIX platforms cannot install
                # loop signal handlers; the method API still works.
                continue
            installed.append(signum)
        return installed

    async def _idle_watchdog(self) -> None:
        idle_limit = self.config.idle_exit_s
        assert idle_limit is not None
        assert self._loop is not None
        while True:
            await asyncio.sleep(_IDLE_POLL_S)
            idle_for = self._loop.time() - self._last_activity
            if idle_for >= idle_limit and not len(self.queue):
                log.info(
                    "idle limit reached; draining",
                    extra={"idle_s": round(idle_for, 3)},
                )
                self.request_shutdown()
                return
