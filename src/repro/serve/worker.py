"""The micro-batching commit plane of the serving daemon.

One :class:`CommitWorker` coroutine owns the authoritative detector: it
awaits micro-batches from the ingest queue and commits each through
:meth:`~repro.core.pipeline.EnhancedInFilter.process_batch` — the same
memoised batch path the offline sharded engine drives, so verdicts,
absorptions, alerts and stats are exactly what serial processing would
produce.  Because the commit plane is a single task, batch boundaries
are also safe points for everything else that touches detector state:
periodic checkpoints, the final drain checkpoint, and SIGHUP hot
reloads all happen *between* batches, never inside one.

The worker keeps a committed-record cursor (counting from
``cursor_base``, the resume offset of a restored checkpoint) and writes
it into every checkpoint, so a killed-and-resumed daemon knows exactly
how much traffic its restored state already accounts for.
"""

from __future__ import annotations

import time
from typing import Callable, List, Optional, Tuple

from repro.core.persistence import load_checkpoint, save_detector
from repro.core.pipeline import EnhancedInFilter
from repro.obs import MetricsRegistry, Stopwatch, get_logger, get_registry
from repro.serve.config import ServeConfig
from repro.serve.queue import IngestQueue, QueuedRecord
from repro.util.errors import ReproError, ServeError
from repro.util.rng import SeededRng

__all__ = ["CommitWorker"]

log = get_logger(__name__)

#: Ingest-to-verdict latency buckets: queueing dominates, so the range
#: runs wider than the per-flow processing buckets.
_INGEST_LATENCY_BUCKETS_S: Tuple[float, ...] = (
    0.000_5, 0.001, 0.002_5, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Size of the ingest-latency reservoir kept for percentile reporting.
_LATENCY_RESERVOIR = 4_096


class CommitWorker:
    """Drains the ingest queue through the authoritative detector.

    The worker exits its :meth:`run` loop only when the queue is closed
    *and* fully drained — the graceful-shutdown contract: everything
    admitted before the drain began is committed and captured by the
    final checkpoint.
    """

    def __init__(
        self,
        detector: EnhancedInFilter,
        queue: IngestQueue,
        config: ServeConfig,
        *,
        registry: Optional[MetricsRegistry] = None,
        cursor_base: int = 0,
        on_progress: Optional[Callable[[], None]] = None,
    ) -> None:
        self.detector = detector
        self.queue = queue
        self.config = config
        self._cursor = cursor_base
        self._on_progress = on_progress
        self._batches = 0
        self._committed = 0
        self._checkpoints = 0
        self._reloads = 0
        self._pending_reload = False
        self._latency_reservoir: List[float] = []
        self._latency_seen = 0
        self._latency_rng = SeededRng(20050609, "serve-latency-reservoir")
        registry = registry if registry is not None else get_registry()
        self._m_batches = registry.counter(
            "infilter_serve_batches_total",
            "Micro-batches committed through the detector.",
        )
        self._m_committed = registry.counter(
            "infilter_serve_committed_total",
            "Flow records committed through the detector.",
        )
        self._m_commit_s = registry.histogram(
            "infilter_serve_commit_seconds",
            "Commit-stage latency per micro-batch.",
        )
        self._m_ingest_latency = registry.histogram(
            "infilter_serve_ingest_latency_seconds",
            "Enqueue-to-verdict latency per committed record.",
            buckets=_INGEST_LATENCY_BUCKETS_S,
        )
        self._m_checkpoints = registry.counter(
            "infilter_serve_checkpoints_total",
            "Detector checkpoints written at serve batch boundaries.",
        )
        self._m_reloads = registry.counter(
            "infilter_serve_reloads_total",
            "Hot detector reloads applied at batch boundaries (SIGHUP).",
        )

    # -- read-side accessors -------------------------------------------------

    @property
    def cursor(self) -> int:
        """Committed-record cursor (counts from ``cursor_base``)."""
        return self._cursor

    @property
    def committed(self) -> int:
        """Records committed by *this* worker (excludes the base)."""
        return self._committed

    @property
    def batches(self) -> int:
        return self._batches

    @property
    def checkpoints(self) -> int:
        return self._checkpoints

    @property
    def reloads(self) -> int:
        return self._reloads

    def latency_percentile(self, quantile: float) -> float:
        """Ingest-to-verdict latency percentile from the reservoir."""
        if not 0.0 <= quantile <= 1.0:
            raise ServeError(f"quantile must be in [0, 1], got {quantile}")
        if not self._latency_reservoir:
            return 0.0
        ordered = sorted(self._latency_reservoir)
        index = min(len(ordered) - 1, int(quantile * len(ordered)))
        return ordered[index]

    # -- control -------------------------------------------------------------

    def request_reload(self) -> None:
        """Arm a hot reload; applied at the next batch boundary."""
        self._pending_reload = True

    # -- the loop ------------------------------------------------------------

    async def run(self) -> None:
        """Commit batches until the queue is closed and drained.

        On exit — and only after the drain is complete — a final
        checkpoint is written (when checkpointing is configured), so a
        restart resumes with every committed record accounted for.
        """
        while True:
            if self._pending_reload:
                self._apply_reload()
            batch = await self.queue.get_batch(
                self.config.batch_size, linger_s=self.config.batch_linger_s
            )
            if not batch:
                break
            self.commit(batch)
        if self.config.checkpoint_path is not None:
            self.checkpoint()

    def commit(self, batch: List[QueuedRecord]) -> None:
        """Commit one micro-batch synchronously (a batch boundary)."""
        watch = Stopwatch()
        self.detector.process_batch([queued.record for queued in batch])
        elapsed = watch.elapsed_s()
        done = time.perf_counter()
        for queued in batch:
            self._sample_latency(done - queued.enqueued_s)
        self._batches += 1
        self._committed += len(batch)
        self._cursor += len(batch)
        self._m_batches.inc()
        self._m_committed.inc(len(batch))
        self._m_commit_s.observe(elapsed)
        if (
            self.config.checkpoint_every > 0
            and self._batches % self.config.checkpoint_every == 0
        ):
            self.checkpoint()
        if self._on_progress is not None:
            self._on_progress()

    def _sample_latency(self, latency_s: float) -> None:
        self._m_ingest_latency.observe(latency_s)
        self._latency_seen += 1
        if len(self._latency_reservoir) < _LATENCY_RESERVOIR:
            self._latency_reservoir.append(latency_s)
            return
        slot = self._latency_rng.randrange(self._latency_seen)
        if slot < _LATENCY_RESERVOIR:
            self._latency_reservoir[slot] = latency_s

    def checkpoint(self) -> int:
        """Write an atomic checkpoint at the current cursor."""
        if self.config.checkpoint_path is None:
            raise ServeError("serve worker has no checkpoint_path configured")
        save_detector(
            self.detector, self.config.checkpoint_path, cursor=self._cursor
        )
        self._checkpoints += 1
        self._m_checkpoints.inc()
        log.info(
            "serve checkpoint written",
            extra={
                "path": self.config.checkpoint_path,
                "cursor": self._cursor,
                "batches": self._batches,
            },
        )
        return self._cursor

    def _apply_reload(self) -> None:
        self._pending_reload = False
        path = self.config.effective_reload_path
        if path is None:
            log.warning(
                "reload requested but no reload_path/checkpoint_path is"
                " configured; ignoring"
            )
            return
        try:
            detector, _cursor = load_checkpoint(path)
        except ReproError as error:
            # A bad reload source must not take the daemon down mid-run;
            # keep serving on the current detector and say so.
            log.warning(
                "hot reload failed; keeping the current detector",
                extra={"path": path, "reason": str(error)},
            )
            return
        fastpath = self.detector.fastpath
        self.detector = detector
        if fastpath is not None:
            # Carry the verdict memo object (and its counters) over to
            # the reloaded detector, but drop its contents explicitly:
            # epoch counters are per-BasicInFilter-instance and could
            # collide across the swap.
            fastpath.invalidate()
            detector.fastpath = fastpath
        self._reloads += 1
        self._m_reloads.inc()
        log.info("detector hot-reloaded", extra={"path": path})
