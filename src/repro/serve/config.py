"""Configuration of the live serving daemon.

One frozen dataclass holds every operational knob of ``infilter serve``:
where to listen, how deep the ingest queue may grow and what to do when
it overflows, how records are micro-batched into the detector, when
checkpoints are taken, and which auxiliary endpoints (HTTP metrics,
SIGHUP reload source) are enabled.  Validation happens at construction
so a daemon never starts with a contradictory configuration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.util.errors import ConfigError

__all__ = [
    "SHED_DROP_OLDEST",
    "SHED_REJECT_NEWEST",
    "SHED_POLICIES",
    "ServeConfig",
]

#: Overflow policy: evict the oldest queued record to admit the newest.
SHED_DROP_OLDEST = "drop-oldest"
#: Overflow policy: refuse the incoming record, keep the queue as is.
SHED_REJECT_NEWEST = "reject-newest"
SHED_POLICIES: Tuple[str, ...] = (SHED_DROP_OLDEST, SHED_REJECT_NEWEST)


@dataclass(frozen=True)
class ServeConfig:
    """Knobs of the live NetFlow serving daemon.

    ``port`` (and ``http_port``) may be 0 to bind an ephemeral port; the
    daemon reports the bound addresses once it is listening.  The shed
    policy decides which record loses when the bounded ingest queue is
    full: ``drop-oldest`` favours fresh traffic (the detector sees the
    most recent flows, at the cost of a gap), ``reject-newest`` favours
    in-order completeness of what was already admitted.
    """

    host: str = "127.0.0.1"
    port: int = 9995
    #: Bound of the ingest queue, in flow records.
    queue_capacity: int = 65_536
    shed_policy: str = SHED_DROP_OLDEST
    #: Records per commit batch (the micro-batching unit).
    batch_size: int = 256
    #: How long a partial batch may wait for more records, in seconds.
    batch_linger_s: float = 0.02
    #: Checkpoint the detector every N committed batches (0 disables).
    checkpoint_every: int = 0
    checkpoint_path: Optional[str] = None
    #: Where SIGHUP reloads the detector from; defaults to
    #: ``checkpoint_path`` when unset.
    reload_path: Optional[str] = None
    #: Enable the HTTP health/metrics endpoint on this port (0 = any).
    http_port: Optional[int] = None
    #: Stop (with a drain) after committing this many records.
    max_records: Optional[int] = None
    #: Stop (with a drain) after this long with no traffic and an empty
    #: queue — how examples and CI runs bound an otherwise-forever loop.
    idle_exit_s: Optional[float] = None
    #: Drive ingest through the vectorized zero-copy plane
    #: (``repro.fastpath``): columnar datagram decode at the router and
    #: the cross-batch EIA verdict memo on the commit detector.
    #: Decision-equivalent either way; off is the benchmarking/escape
    #: hatch.
    fastpath: bool = True
    #: Ask the kernel for this much UDP receive buffer (``SO_RCVBUF``)
    #: on the ingest socket; ``None`` keeps the system default.  Bursty
    #: exporters overrun small kernel buffers long before the queue's
    #: shed policy ever gets a say, so cluster workers raise this.
    recv_buffer_bytes: Optional[int] = None

    def __post_init__(self) -> None:
        if not 0 <= self.port <= 65_535:
            raise ConfigError(f"port must be in [0, 65535], got {self.port}")
        if self.queue_capacity < 1:
            raise ConfigError(
                f"queue_capacity must be >= 1, got {self.queue_capacity}"
            )
        if self.shed_policy not in SHED_POLICIES:
            raise ConfigError(
                f"shed_policy must be one of {'/'.join(SHED_POLICIES)},"
                f" got {self.shed_policy!r}"
            )
        if self.batch_size < 1:
            raise ConfigError(
                f"batch_size must be >= 1, got {self.batch_size}"
            )
        if self.batch_linger_s < 0:
            raise ConfigError(
                f"batch_linger_s must be >= 0, got {self.batch_linger_s}"
            )
        if self.checkpoint_every < 0:
            raise ConfigError(
                f"checkpoint_every must be >= 0, got {self.checkpoint_every}"
            )
        if self.checkpoint_every > 0 and self.checkpoint_path is None:
            raise ConfigError(
                "checkpoint_every needs a checkpoint_path to write to"
            )
        if self.http_port is not None and not 0 <= self.http_port <= 65_535:
            raise ConfigError(
                f"http_port must be in [0, 65535], got {self.http_port}"
            )
        if self.max_records is not None and self.max_records < 1:
            raise ConfigError(
                f"max_records must be >= 1, got {self.max_records}"
            )
        if self.idle_exit_s is not None and self.idle_exit_s <= 0:
            raise ConfigError(
                f"idle_exit_s must be > 0, got {self.idle_exit_s}"
            )
        if self.recv_buffer_bytes is not None and self.recv_buffer_bytes < 1:
            raise ConfigError(
                f"recv_buffer_bytes must be >= 1, got {self.recv_buffer_bytes}"
            )

    @property
    def effective_reload_path(self) -> Optional[str]:
        """The SIGHUP reload source: ``reload_path`` or the checkpoint."""
        if self.reload_path is not None:
            return self.reload_path
        return self.checkpoint_path
