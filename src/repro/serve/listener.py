"""The UDP ingress of the serving daemon.

:class:`NetFlowDatagramProtocol` is the asyncio ``DatagramProtocol``
bound to the export socket; it does nothing but hand raw datagrams to a
:class:`DatagramRouter`.  The router sniffs the NetFlow version word,
sends v5 datagrams through the :class:`~repro.netflow.collector.
FlowCollector` (sequence tracking, duplicate suppression, loss
accounting — the same accounting the offline path uses), decodes v1
datagrams directly, and pushes every resulting record into the bounded
ingest queue.

Keeping the router a plain synchronous object makes the whole ingress
testable without a socket: tests feed ``route()`` bytes and assert on
queue and collector state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Tuple, cast

import asyncio

from repro.fastpath.columnar import decode_v1_columnar, decode_v5_columnar
from repro.fastpath.plane import FastPath
from repro.netflow.collector import FlowCollector
from repro.netflow.records import FlowRecord
from repro.netflow.v1 import NETFLOW_V1_VERSION, decode_v1_datagram
from repro.netflow.v5 import NETFLOW_V5_VERSION
from repro.obs import MetricsRegistry, Stopwatch, get_logger, get_registry
from repro.serve.queue import IngestQueue
from repro.util.errors import NetFlowError

__all__ = ["RouterStats", "DatagramRouter", "NetFlowDatagramProtocol"]

log = get_logger(__name__)


@dataclass
class RouterStats:
    """Datagram fates at the ingress, by wire format."""

    v5_datagrams: int = 0
    v1_datagrams: int = 0
    invalid_datagrams: int = 0


class DatagramRouter:
    """Version-sniff NetFlow datagrams and feed records to the queue.

    ``on_activity`` (when given) is invoked once per datagram — the
    idle-exit watchdog's pulse.  Records shed by the queue are already
    counted there; the router only counts datagram-level fates.
    """

    def __init__(
        self,
        queue: IngestQueue,
        *,
        collector: Optional[FlowCollector] = None,
        registry: Optional[MetricsRegistry] = None,
        on_activity: Optional[Callable[[], None]] = None,
        fastpath: Optional["FastPath[Any, Any]"] = None,
    ) -> None:
        registry = registry if registry is not None else get_registry()
        self.queue = queue
        #: When set, datagrams decode through the columnar zero-copy
        #: path (identical records and error handling, timed into the
        #: fastpath decode metrics); None keeps the record-at-a-time
        #: decoders.
        self.fastpath = fastpath
        self.collector = (
            collector if collector is not None else FlowCollector(registry=registry)
        )
        self.collector.add_sink(self._sink)
        self.stats = RouterStats()
        self._on_activity = on_activity
        datagrams = registry.counter(
            "infilter_serve_datagrams_total",
            "NetFlow datagrams arriving at the serve UDP listener.",
            ("version",),
        )
        self._m_v5 = datagrams.labels(version="v5")
        self._m_v1 = datagrams.labels(version="v1")
        self._m_invalid = datagrams.labels(version="invalid")

    def _sink(self, record: FlowRecord) -> None:
        self.queue.put(record)

    def route(self, data: bytes, source: int = 0) -> int:
        """Ingest one datagram; returns the number of records queued for
        assessment (before any shed accounting).

        Malformed input is counted and dropped, never raised: a daemon
        on an open UDP port must survive arbitrary bytes.
        """
        if self._on_activity is not None:
            self._on_activity()
        if len(data) >= 2:
            version = int.from_bytes(data[:2], "big")
        else:
            version = -1
        if version == NETFLOW_V5_VERSION:
            if self.fastpath is None:
                records = self.collector.receive(data, source=source)
            else:
                records = self._receive_v5_columnar(data, source)
            self.stats.v5_datagrams += 1
            self._m_v5.inc()
            return len(records)
        if version == NETFLOW_V1_VERSION:
            try:
                if self.fastpath is None:
                    _uptime, records = decode_v1_datagram(data)
                else:
                    watch = Stopwatch()
                    _uptime, batch = decode_v1_columnar(data)
                    records = batch.records()
                    self.fastpath.observe_decode(watch.elapsed_s(), len(records))
            except NetFlowError as error:
                self.stats.invalid_datagrams += 1
                self._m_invalid.inc()
                log.warning(
                    "dropped undecodable v1 datagram",
                    extra={"source": source, "reason": str(error)},
                )
                return 0
            self.stats.v1_datagrams += 1
            self._m_v1.inc()
            # v1 has no flow_sequence: records bypass loss accounting and
            # go through the collector's decoded-record entry point.
            self.collector.ingest_records(records)
            return len(records)
        self.stats.invalid_datagrams += 1
        self._m_invalid.inc()
        log.warning(
            "dropped datagram with unsupported version word",
            extra={"source": source, "version": version, "length": len(data)},
        )
        return 0

    def _receive_v5_columnar(self, data: bytes, source: int) -> List[FlowRecord]:
        """The zero-copy v5 ingest: columnar decode, then the collector's
        decoded-datagram entry point (sequence tracking and duplicate
        suppression unchanged).  Decode failures land in the collector's
        decode-error accounting exactly as :meth:`FlowCollector.receive`."""
        assert self.fastpath is not None
        watch = Stopwatch()
        try:
            header, batch = decode_v5_columnar(data)
        except NetFlowError as error:
            self.collector.note_decode_error(source, str(error))
            return []
        records = batch.records()
        self.fastpath.observe_decode(watch.elapsed_s(), len(records))
        return self.collector.receive_decoded(header, records, source=source)


class NetFlowDatagramProtocol(asyncio.DatagramProtocol):
    """The asyncio protocol bound to the NetFlow export socket.

    The UDP source port is forwarded as the collector's exporter
    identity, so per-exporter sequence tracking works exactly as it does
    for the simulated transport (where the testbed uses port numbers
    too).
    """

    def __init__(self, router: DatagramRouter) -> None:
        self.router = router
        self.transport: Optional[asyncio.DatagramTransport] = None

    def connection_made(self, transport: asyncio.BaseTransport) -> None:
        # The event loop hands the concrete selector/proactor transport;
        # it implements the DatagramTransport surface without always
        # inheriting the ABC, so an isinstance check would misfire.
        self.transport = cast(asyncio.DatagramTransport, transport)

    def datagram_received(self, data: bytes, addr: Tuple[str, int]) -> None:
        self.router.route(data, source=addr[1])

    def error_received(self, exc: Exception) -> None:
        log.warning("UDP socket error", extra={"reason": str(exc)})
