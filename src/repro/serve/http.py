"""Minimal HTTP health/metrics endpoint for the serving daemon.

Three read-only paths, served straight from the process:

* ``/healthz``     — JSON liveness document (state, queue depth, cursor);
* ``/metrics``     — the observability registry as Prometheus text;
* ``/stats.json``  — the same registry as the JSON snapshot format
  (re-renderable offline with ``infilter stats``).

This is deliberately not a web framework: one ``asyncio.start_server``
handler parses the request line, discards headers, answers, and closes.
It exists so a scrape target and a load-balancer health check cost the
deployment nothing beyond the stdlib.
"""

from __future__ import annotations

import json
from typing import Callable, Dict, Optional, Tuple

import asyncio

from repro.obs import (
    MetricsRegistry,
    get_logger,
    get_registry,
    render_json,
    render_prometheus,
)
from repro.util.errors import ServeError

__all__ = ["ObservabilityEndpoint"]

log = get_logger(__name__)

#: Paths the request counter is labelled with; anything else is "other".
_KNOWN_PATHS = ("/healthz", "/metrics", "/stats.json")

HealthProvider = Callable[[], Dict[str, object]]
RegistryProvider = Callable[[], MetricsRegistry]


class ObservabilityEndpoint:
    """The daemon's HTTP side-channel (health, metrics, stats)."""

    def __init__(
        self,
        *,
        health: HealthProvider,
        registry: Optional[MetricsRegistry] = None,
        registry_provider: Optional[RegistryProvider] = None,
    ) -> None:
        self._health = health
        self._registry = registry if registry is not None else get_registry()
        # When set, /metrics and /stats.json render whatever registry the
        # provider returns at scrape time (the cluster supervisor hands in
        # its latest federated merge); request accounting stays on the
        # endpoint's own registry either way.
        self._registry_provider = registry_provider
        self._server: Optional[asyncio.AbstractServer] = None
        self.address: Optional[Tuple[str, int]] = None
        self._m_requests = self._registry.counter(
            "infilter_serve_http_requests_total",
            "HTTP requests answered by the serve observability endpoint.",
            ("path",),
        )

    async def start(self, host: str, port: int) -> Tuple[str, int]:
        """Bind and serve; returns the bound ``(host, port)``."""
        if self._server is not None:
            raise ServeError("observability endpoint already started")
        self._server = await asyncio.start_server(self._handle, host, port)
        sockets = self._server.sockets
        if not sockets:  # pragma: no cover - start_server always binds one
            raise ServeError("observability endpoint bound no sockets")
        bound = sockets[0].getsockname()
        self.address = (str(bound[0]), int(bound[1]))
        log.info(
            "observability endpoint listening",
            extra={"host": self.address[0], "port": self.address[1]},
        )
        return self.address

    async def stop(self) -> None:
        """Stop accepting and close the listening socket."""
        if self._server is None:
            return
        self._server.close()
        await self._server.wait_closed()
        self._server = None

    # -- request handling ----------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request_line = await reader.readline()
            # Drain headers; the response depends only on the path.
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
            status, content_type, body = self._respond(request_line)
            head = (
                f"HTTP/1.1 {status}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(body)}\r\n"
                "Connection: close\r\n"
                "\r\n"
            )
            writer.write(head.encode("ascii") + body)
            await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # the scraper went away; nothing to answer
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:  # pragma: no cover - peer reset on close
                pass

    def _respond(self, request_line: bytes) -> Tuple[str, str, bytes]:
        parts = request_line.decode("latin-1", "replace").split()
        if len(parts) < 2:
            return "400 Bad Request", "text/plain", b"bad request\n"
        method, path = parts[0], parts[1]
        label = path if path in _KNOWN_PATHS else "other"
        self._m_requests.labels(path=label).inc()
        if method not in ("GET", "HEAD"):
            return "405 Method Not Allowed", "text/plain", b"GET only\n"
        if path == "/healthz":
            document = self._health()
            body = (json.dumps(document, sort_keys=True) + "\n").encode("utf-8")
            return "200 OK", "application/json", body
        if path == "/metrics":
            text = render_prometheus(self._scrape_registry())
            return "200 OK", "text/plain; version=0.0.4", text.encode("utf-8")
        if path == "/stats.json":
            text = render_json(self._scrape_registry()) + "\n"
            return "200 OK", "application/json", text.encode("utf-8")
        return "404 Not Found", "text/plain", b"unknown path\n"

    def _scrape_registry(self) -> MetricsRegistry:
        if self._registry_provider is not None:
            return self._registry_provider()
        return self._registry
