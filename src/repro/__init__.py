"""InFilter: predictive ingress filtering to detect spoofed IP traffic.

A full reproduction of Ghosh, Wong, Di Crescenzo and Talpade, *InFilter:
Predictive Ingress Filtering to Detect Spoofed IP Traffic* (ICDCS 2005),
including every substrate the paper's system and evaluation depend on:

- :mod:`repro.core` — the Enhanced InFilter detector (EIA sets, Scan
  Analysis, KOR nearest-neighbour search, IDMEF alerting);
- :mod:`repro.netflow` — NetFlow v5 wire format, exporter, collector,
  reporting (the NetFlow/Flow-tools substrate);
- :mod:`repro.routing` — AS-level Internet topology, BGP best paths,
  ``show ip bgp`` tables, traceroute and Looking-Glass simulation;
- :mod:`repro.flowgen` — the Section 6.2 address plan, synthetic traces,
  the 12-attack catalog, and the Dagflow replay tool;
- :mod:`repro.testbed` — the Figure 13/14 testbed and the Section 6.3
  experiment sets;
- :mod:`repro.validation` — the Section 3 hypothesis-validation studies;
- :mod:`repro.baselines` — uRPF, history-based filtering, signature IDS;
- :mod:`repro.cluster` — the multi-process serving cluster: a flow
  director steering NetFlow to shard-affine worker processes under one
  supervisor with federated observability and supervised restart.

Quick start::

    from repro import EnhancedInFilter, PipelineConfig

    detector = EnhancedInFilter(PipelineConfig())
    detector.preload_eia(peer_as, expected_blocks)
    detector.train(training_records)
    decision = detector.process(flow_record)
"""

from __future__ import annotations

from repro.core import (
    AlertSink,
    BasicInFilter,
    Decision,
    EIAConfig,
    EnhancedInFilter,
    IdmefAlert,
    NNSConfig,
    PipelineConfig,
    ScanConfig,
    Verdict,
)
from repro.netflow import FlowKey, FlowRecord, FlowStats

__version__ = "1.0.0"

__all__ = [
    "AlertSink",
    "BasicInFilter",
    "Decision",
    "EIAConfig",
    "EnhancedInFilter",
    "IdmefAlert",
    "NNSConfig",
    "PipelineConfig",
    "ScanConfig",
    "Verdict",
    "FlowKey",
    "FlowRecord",
    "FlowStats",
    "__version__",
]
