"""AS-level Internet topology with router-level boundary detail.

The validation studies (Section 3) need an Internet whose *inter-AS*
structure changes rarely (BGP policy) while *intra-AS* paths and
parallel-link selection change often (IGP churn, load sharing).  This
module builds such a topology:

* a three-tier AS hierarchy (fully-meshed tier-1 core, multi-homed tier-2
  transits, stub edge networks) with Gao–Rexford relationships
  (customer→provider and peer—peer edges);
* per-adjacency *boundary links*: one to three parallel physical links
  between border routers, each with its own interface subnet and FQDNs —
  the redundancy/load-sharing the paper's aggregated analysis smooths out;
* :class:`TopologyDynamics`, a Poisson event process that flips load-shared
  link selection (often), churns IGP epochs (very often), and re-prefers
  BGP policies (rarely).

The same topology drives both the traceroute study (router-level paths via
:mod:`repro.routing.traceroute`) and the BGP study (AS-level paths via
:mod:`repro.routing.bgp`).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Tuple

from repro.routing.names import NameRegistry, RouterName
from repro.util.errors import RoutingError
from repro.util.ip import Prefix, PrefixTrie
from repro.util.rng import SeededRng

__all__ = [
    "Relationship",
    "ASNode",
    "BoundaryLink",
    "Adjacency",
    "ASTopology",
    "TopologyParams",
    "generate_internet",
    "TopologyDynamics",
    "DynamicsRates",
]


class Relationship:
    """Edge roles in the Gao–Rexford model."""

    CUSTOMER = "customer"  # the tagged AS pays the other (other is provider)
    PROVIDER = "provider"  # the tagged AS is paid by the other
    PEER = "peer"          # settlement-free


@dataclass
class ASNode:
    """One autonomous system."""

    asn: int
    tier: int
    prefixes: List[Prefix] = field(default_factory=list)
    igp_epoch: int = 0
    #: local-pref tweak per neighbor ASN; higher wins within a class.
    local_pref: Dict[int, int] = field(default_factory=dict)

    def pref_for(self, neighbor_asn: int) -> int:
        return self.local_pref.get(neighbor_asn, 100)


@dataclass
class BoundaryLink:
    """One physical link of an inter-AS adjacency.

    ``a_addr``/``b_addr`` are the interface addresses of the two ends;
    ``a_router``/``b_router`` their routers.  Parallel links of one
    adjacency may or may not share a /24, which is exactly the ambiguity
    the traceroute study's aggregation rules must handle.
    """

    a_router: RouterName
    b_router: RouterName
    a_addr: int
    b_addr: int


@dataclass
class Adjacency:
    """An AS-level adjacency: relationship + parallel boundary links.

    ``relationship`` is the role of ``a`` relative to ``b``: ``CUSTOMER``
    means *a is a customer of b*.  ``active_link`` is the index of the
    currently-selected parallel link (sticky load-sharing state that
    :class:`TopologyDynamics` occasionally flips).
    """

    a: int
    b: int
    relationship: str
    links: List[BoundaryLink]
    active_link: int = 0

    def role_of(self, asn: int) -> str:
        """The relationship as seen from ``asn``'s side."""
        if asn == self.a:
            return self.relationship
        if asn == self.b:
            if self.relationship == Relationship.CUSTOMER:
                return Relationship.PROVIDER
            if self.relationship == Relationship.PROVIDER:
                return Relationship.CUSTOMER
            return Relationship.PEER
        raise RoutingError(f"AS {asn} is not on adjacency {self.a}-{self.b}")

    def other(self, asn: int) -> int:
        if asn == self.a:
            return self.b
        if asn == self.b:
            return self.a
        raise RoutingError(f"AS {asn} is not on adjacency {self.a}-{self.b}")

    def current_link(self) -> BoundaryLink:
        return self.links[self.active_link]


@dataclass(frozen=True)
class TopologyParams:
    """Knobs for :func:`generate_internet`."""

    n_tier1: int = 8
    n_tier2: int = 40
    n_stub: int = 120
    providers_per_tier2: Tuple[int, int] = (2, 4)
    providers_per_stub: Tuple[int, int] = (1, 3)
    tier2_peer_fraction: float = 0.25
    parallel_link_fraction: float = 0.6
    same_subnet_fraction: float = 0.7
    prefixes_per_stub: Tuple[int, int] = (1, 2)
    first_asn: int = 1


class ASTopology:
    """The AS graph plus boundary-link details and interface naming."""

    def __init__(self) -> None:
        self.nodes: Dict[int, ASNode] = {}
        self._adjacency: Dict[FrozenSet[int], Adjacency] = {}
        self._neighbors: Dict[int, List[int]] = {}
        self.names = NameRegistry()
        self._link_pool = _LinkAddressPool()
        #: bumped whenever a policy change can alter best paths; consumers
        #: (traceroute simulator, route collector) key caches on it.
        self.policy_epoch = 0
        self._origin_cache: Optional[PrefixTrie[int]] = None

    # -- construction -----------------------------------------------------

    def add_as(self, node: ASNode) -> None:
        if node.asn in self.nodes:
            raise RoutingError(f"duplicate AS {node.asn}")
        self.nodes[node.asn] = node
        self._neighbors[node.asn] = []

    def connect(
        self,
        a: int,
        b: int,
        relationship: str,
        *,
        n_links: int = 1,
        same_subnet: bool = True,
    ) -> Adjacency:
        """Create an adjacency; ``relationship`` is a's role toward b."""
        if a not in self.nodes or b not in self.nodes:
            raise RoutingError(f"both ASes must exist before connecting {a}-{b}")
        key = frozenset((a, b))
        if key in self._adjacency:
            raise RoutingError(f"adjacency {a}-{b} already exists")
        links = [
            self._make_link(a, b, index, same_subnet)
            for index in range(max(1, n_links))
        ]
        adjacency = Adjacency(a=a, b=b, relationship=relationship, links=links)
        self._adjacency[key] = adjacency
        self._neighbors[a].append(b)
        self._neighbors[b].append(a)
        return adjacency

    def _make_link(self, a: int, b: int, index: int, same_subnet: bool) -> BoundaryLink:
        # Parallel links of one adjacency land on the same border-router
        # pair (ECMP bundle); only the interface — and hence the interface
        # address and the interface component of the FQDN — differs.  This
        # is the property FQDN smoothing exploits in Section 3.1.
        a_router = RouterName(asn=a, router_id=1 + (b % 3))
        b_router = RouterName(asn=b, router_id=1 + (a % 3))
        a_addr, b_addr = self._link_pool.allocate_pair(
            group=(min(a, b), max(a, b)), index=index, same_subnet=same_subnet
        )
        self.names.interface_fqdn(a_router, index, a_addr)
        self.names.interface_fqdn(b_router, index, b_addr)
        return BoundaryLink(a_router=a_router, b_router=b_router, a_addr=a_addr, b_addr=b_addr)

    # -- queries ----------------------------------------------------------

    def adjacency(self, a: int, b: int) -> Adjacency:
        try:
            return self._adjacency[frozenset((a, b))]
        except KeyError:
            raise RoutingError(f"no adjacency between AS {a} and AS {b}") from None

    def adjacencies(self) -> Iterator[Adjacency]:
        return iter(self._adjacency.values())

    def neighbors(self, asn: int) -> List[int]:
        return list(self._neighbors.get(asn, ()))

    def neighbors_by_role(self, asn: int, role: str) -> List[int]:
        """Neighbors toward which ``asn`` holds the given role.

        ``role == CUSTOMER`` returns asn's *providers* (asn is their
        customer); ``PROVIDER`` returns asn's customers; ``PEER`` its peers.
        """
        result = []
        for other in self._neighbors.get(asn, ()):
            if self.adjacency(asn, other).role_of(asn) == role:
                result.append(other)
        return result

    def providers_of(self, asn: int) -> List[int]:
        return self.neighbors_by_role(asn, Relationship.CUSTOMER)

    def customers_of(self, asn: int) -> List[int]:
        return self.neighbors_by_role(asn, Relationship.PROVIDER)

    def peers_of(self, asn: int) -> List[int]:
        return self.neighbors_by_role(asn, Relationship.PEER)

    def origin_of(self, address: int) -> Optional[Tuple[int, Prefix]]:
        """The (ASN, most specific prefix) originating ``address``.

        Backed by a longest-prefix-match trie built on first use; callers
        that add prefixes after querying must call
        :meth:`invalidate_origins`.
        """
        if self._origin_cache is None:
            trie: PrefixTrie[int] = PrefixTrie()
            for node in self.nodes.values():
                for prefix in node.prefixes:
                    trie.insert(prefix, node.asn)
            self._origin_cache = trie
        match = self._origin_cache.longest_match(address)
        if match is None:
            return None
        prefix, asn = match
        return asn, prefix

    def invalidate_origins(self) -> None:
        """Drop the origin lookup cache after prefix changes."""
        self._origin_cache = None

    def all_prefixes(self) -> List[Tuple[Prefix, int]]:
        """Every originated (prefix, origin ASN) pair."""
        result = []
        for node in self.nodes.values():
            for prefix in node.prefixes:
                result.append((prefix, node.asn))
        return result


class _LinkAddressPool:
    """Deterministic allocator for boundary-link interface addresses.

    Addresses come from 146.0.0.0/8 (an arbitrary routable block reserved
    here for infrastructure).  Parallel links of one adjacency either share
    a /24 (consecutive /30s) or sit in separate /24s, matching the two
    cases Section 3.1 describes.
    """

    BASE = Prefix.parse("146.0.0.0/8")

    def __init__(self) -> None:
        self._next_s24 = 0
        self._group_s24: Dict[Tuple[int, int], int] = {}

    def allocate_pair(
        self, group: Tuple[int, int], index: int, same_subnet: bool
    ) -> Tuple[int, int]:
        if same_subnet:
            s24 = self._group_s24.get(group)
            if s24 is None:
                s24 = self._fresh_s24()
                self._group_s24[group] = s24
        else:
            s24 = self._fresh_s24()
        base = self.BASE.network + (s24 << 8) + (index % 64) * 4
        return base + 1, base + 2

    def _fresh_s24(self) -> int:
        s24 = self._next_s24
        self._next_s24 += 1
        if self._next_s24 >= (1 << 16):
            raise RoutingError("boundary-link address pool exhausted")
        return s24


def generate_internet(
    params: TopologyParams = TopologyParams(), *, rng: SeededRng
) -> ASTopology:
    """Generate a three-tier Internet-like topology.

    Tier-1 ASes form a full peer mesh; tier-2 ASes buy transit from 2–4
    tier-1s and peer with a fraction of each other; stubs buy transit from
    1–3 tier-2s (occasionally a tier-1).  Prefix space for edge networks is
    carved from 4.0.0.0/8 upward, one or two /16s (sometimes with a more
    specific /24) per stub, mirroring the paper's Genuity example where a
    /24 more specific than a /8 redirects ingress.
    """
    topology = ASTopology()
    asn_counter = itertools.count(params.first_asn)
    tier1 = [next(asn_counter) for _ in range(params.n_tier1)]
    tier2 = [next(asn_counter) for _ in range(params.n_tier2)]
    stubs = [next(asn_counter) for _ in range(params.n_stub)]

    for asn in tier1:
        topology.add_as(ASNode(asn=asn, tier=1))
    for asn in tier2:
        topology.add_as(ASNode(asn=asn, tier=2))
    for asn in stubs:
        topology.add_as(ASNode(asn=asn, tier=3))

    link_rng = rng.fork("links")

    def link_kwargs() -> Dict[str, object]:
        parallel = link_rng.bernoulli(params.parallel_link_fraction)
        n_links = link_rng.choice((2, 2, 3)) if parallel else 1
        return {
            "n_links": n_links,
            "same_subnet": link_rng.bernoulli(params.same_subnet_fraction),
        }

    # Tier-1 full peer mesh.
    for a, b in itertools.combinations(tier1, 2):
        topology.connect(a, b, Relationship.PEER, **link_kwargs())

    # Tier-2 transit and peering.
    pick = rng.fork("attach")
    for asn in tier2:
        n_providers = pick.randint(*params.providers_per_tier2)
        for provider in pick.sample(tier1, min(n_providers, len(tier1))):
            topology.connect(asn, provider, Relationship.CUSTOMER, **link_kwargs())
    for a, b in itertools.combinations(tier2, 2):
        if pick.bernoulli(params.tier2_peer_fraction / max(len(tier2) / 12.0, 1.0)):
            topology.connect(a, b, Relationship.PEER, **link_kwargs())

    # Stub attachment.
    for asn in stubs:
        n_providers = pick.randint(*params.providers_per_stub)
        pool = tier2 if pick.random() < 0.85 else tier1 + tier2
        for provider in pick.sample(pool, min(n_providers, len(pool))):
            try:
                topology.connect(asn, provider, Relationship.CUSTOMER, **link_kwargs())
            except RoutingError:
                continue  # sampled the same provider twice across pools

    # Prefix origination for edge networks.
    prefix_rng = rng.fork("prefixes")
    s16 = itertools.count(0)
    for asn in stubs + tier2:
        node = topology.nodes[asn]
        n_prefixes = prefix_rng.randint(*params.prefixes_per_stub)
        for _ in range(n_prefixes):
            index = next(s16)
            network = (4 << 24) + (index << 16)
            if network >= (32 << 24):
                raise RoutingError("prefix space exhausted; shrink the topology")
            prefix = Prefix(network & ~0xFFFF, 16)
            node.prefixes.append(prefix)
            if prefix_rng.bernoulli(0.2):
                node.prefixes.append(Prefix(prefix.network, 24))
    return topology


@dataclass(frozen=True)
class DynamicsRates:
    """Poisson event rates (per hour) for the three churn processes.

    Defaults are calibrated so a 30-minute traceroute sampling run sees a
    few percent raw last-hop change (load-share flips), near-zero
    aggregated change (policy events only), and heavy mid-path churn
    (IGP epochs) — the Figure 1 stability profile.
    """

    link_flip_per_adjacency: float = 0.11
    igp_churn_per_as: float = 0.5
    policy_change_per_as: float = 0.02

    def __post_init__(self) -> None:
        if min(
            self.link_flip_per_adjacency,
            self.igp_churn_per_as,
            self.policy_change_per_as,
        ) < 0:
            raise RoutingError("event rates must be non-negative")


class TopologyDynamics:
    """Applies time-driven churn to a topology.

    Every entity (adjacency, AS) owns an independent event stream with
    exponential inter-arrival times, so a run with a given seed replays
    the same event sequence no matter how the caller slices time.
    """

    def __init__(
        self,
        topology: ASTopology,
        rates: DynamicsRates = DynamicsRates(),
        *,
        rng: SeededRng,
    ) -> None:
        self.topology = topology
        self.rates = rates
        self._rng = rng.fork("dynamics")
        self._now = 0.0
        self.policy_events = 0
        self.flip_events = 0
        self.igp_events = 0
        # Per-entity state: (next event time, private RNG stream).
        self._flip_state: Dict[FrozenSet[int], Tuple[float, SeededRng]] = {}
        self._igp_state: Dict[int, Tuple[float, SeededRng]] = {}
        self._policy_state: Dict[int, Tuple[float, SeededRng]] = {}
        self._schedule_initial()

    def _schedule_initial(self) -> None:
        hours = 3600.0
        for adjacency in self.topology.adjacencies():
            if len(adjacency.links) > 1 and self.rates.link_flip_per_adjacency > 0:
                key = frozenset((adjacency.a, adjacency.b))
                stream = self._rng.fork(f"flip-{min(key)}-{max(key)}")
                self._flip_state[key] = (
                    stream.expovariate(self.rates.link_flip_per_adjacency / hours),
                    stream,
                )
        for asn in self.topology.nodes:
            if self.rates.igp_churn_per_as > 0:
                stream = self._rng.fork(f"igp-{asn}")
                self._igp_state[asn] = (
                    stream.expovariate(self.rates.igp_churn_per_as / hours),
                    stream,
                )
            if self.rates.policy_change_per_as > 0 and self._is_multihomed(asn):
                stream = self._rng.fork(f"policy-{asn}")
                self._policy_state[asn] = (
                    stream.expovariate(self.rates.policy_change_per_as / hours),
                    stream,
                )

    def _is_multihomed(self, asn: int) -> bool:
        return len(self.topology.providers_of(asn)) >= 2

    def advance_to(self, timestamp: float) -> None:
        """Apply every event scheduled at or before ``timestamp``."""
        if timestamp < self._now:
            raise RoutingError("dynamics cannot move backwards in time")
        hours = 3600.0
        flip_rate = self.rates.link_flip_per_adjacency / hours
        for key, (due, stream) in self._flip_state.items():
            while due <= timestamp:
                self._flip_link(key, stream)
                due += stream.expovariate(flip_rate)
            self._flip_state[key] = (due, stream)
        igp_rate = self.rates.igp_churn_per_as / hours
        for asn, (due, stream) in self._igp_state.items():
            count = 0
            while due <= timestamp:
                count += 1
                due += stream.expovariate(igp_rate)
            if count:
                self.topology.nodes[asn].igp_epoch += count
                self.igp_events += count
            self._igp_state[asn] = (due, stream)
        policy_rate = self.rates.policy_change_per_as / hours
        for asn, (due, stream) in self._policy_state.items():
            while due <= timestamp:
                self._change_policy(asn, stream)
                due += stream.expovariate(policy_rate)
            self._policy_state[asn] = (due, stream)
        self._now = timestamp

    def _flip_link(self, key: FrozenSet[int], stream: SeededRng) -> None:
        a, b = tuple(key)
        adjacency = self.topology.adjacency(a, b)
        if len(adjacency.links) > 1:
            step = stream.randint(1, len(adjacency.links) - 1)
            adjacency.active_link = (adjacency.active_link + step) % len(adjacency.links)
            self.flip_events += 1

    def _change_policy(self, asn: int, stream: SeededRng) -> None:
        """Re-prefer one of the AS's transit providers.

        Bumping one provider's local-pref above the default redirects the
        AS's outbound best paths — and, symmetrically in our studies, the
        ingress used by traffic it sources.
        """
        node = self.topology.nodes[asn]
        providers = self.topology.providers_of(asn)
        if len(providers) < 2:
            return
        chosen = stream.choice(providers)
        for provider in providers:
            node.local_pref[provider] = 100
        node.local_pref[chosen] = 110
        self.policy_events += 1
        self.topology.policy_epoch += 1
