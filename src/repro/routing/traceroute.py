"""Router-level path expansion and traceroute emulation.

Expands an AS-level best path into the hop sequence a traceroute would
observe:

* inside each transit AS, one to three internal hops whose addresses are a
  deterministic function of the AS's current ``igp_epoch`` — so IGP churn
  changes mid-path hops without touching the inter-AS boundary;
* at each AS boundary, the two interface addresses of the adjacency's
  *currently active* parallel link — so load-share flips change the
  last-hop addresses (raw change) while the routers, and hence FQDNs,
  stay put;
* optional probe loss producing incomplete traceroutes.

The final two responding hops before the destination are the (Peer AS,
Border Router) pair the InFilter validation study tracks (Figure 3).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.routing.bgp import Route, best_paths
from repro.routing.names import RouterName, router_of_fqdn
from repro.routing.topology import ASTopology
from repro.util.errors import NoRouteError, RoutingError
from repro.util.ip import Prefix, format_ipv4
from repro.util.rng import SeededRng

__all__ = ["Hop", "TracerouteResult", "TracerouteSimulator", "LastHop"]

_INTERNAL_BASE = Prefix.parse("150.0.0.0/8")


@dataclass(frozen=True)
class Hop:
    """One responding hop: TTL index, address, FQDN, RTT."""

    ttl: int
    address: int
    fqdn: str
    rtt_ms: float
    asn: int

    def subnet24(self) -> Prefix:
        """The /24 containing this hop, for the study's subnet smoothing."""
        return Prefix.from_address(self.address, 24)

    def router(self) -> str:
        """Router identity from the FQDN, for FQDN smoothing."""
        return router_of_fqdn(self.fqdn)


@dataclass(frozen=True)
class LastHop:
    """The (Peer AS hop, Border Router hop) pair preceding the target."""

    peer: Hop
    border: Hop

    def raw_key(self) -> Tuple[int, int]:
        """Identity at raw IP granularity (the non-aggregated case)."""
        return (self.peer.address, self.border.address)

    def subnet_key(self) -> Tuple[Prefix, Prefix]:
        """Identity at /24 granularity."""
        return (self.peer.subnet24(), self.border.subnet24())

    def fqdn_key(self) -> Tuple[str, str]:
        """Identity at router-FQDN granularity (the aggregated case)."""
        return (self.peer.router(), self.border.router())


@dataclass(frozen=True)
class TracerouteResult:
    """A complete or truncated traceroute."""

    source_asn: int
    target: int
    hops: Tuple[Hop, ...]
    complete: bool

    def last_hop(self) -> Optional[LastHop]:
        """The (peer, border-router) pair, when the trace completed.

        The final hop is the destination itself; the two before it are the
        target network's border router and the peer AS's border router.
        """
        if not self.complete or len(self.hops) < 3:
            return None
        return LastHop(peer=self.hops[-3], border=self.hops[-2])

    def render(self) -> str:
        """Classic traceroute text output."""
        lines = [
            f"traceroute to {format_ipv4(self.target)}"
            f" ({format_ipv4(self.target)}), 30 hops max, 40 byte packets"
        ]
        for hop in self.hops:
            lines.append(
                f" {hop.ttl:2d}  {hop.fqdn} ({format_ipv4(hop.address)})"
                f"  {hop.rtt_ms:.3f} ms"
            )
        if not self.complete:
            next_ttl = (self.hops[-1].ttl + 1) if self.hops else 1
            lines.append(f" {next_ttl:2d}  * * *")
        return "\n".join(lines) + "\n"


class TracerouteSimulator:
    """Issues simulated traceroutes over a (possibly churning) topology."""

    def __init__(
        self,
        topology: ASTopology,
        *,
        rng: SeededRng,
        loss_probability: float = 0.03,
    ) -> None:
        if not 0.0 <= loss_probability < 1.0:
            raise RoutingError("loss probability must be in [0, 1)")
        self.topology = topology
        self._rng = rng.fork("traceroute")
        self.loss_probability = loss_probability
        # Best paths are invariant between policy events; cache per origin
        # keyed on the topology's policy epoch.
        self._route_cache: Dict[int, Dict[int, Route]] = {}
        self._route_epoch = -1

    def trace(self, source_asn: int, target_address: int) -> TracerouteResult:
        """One traceroute from a vantage AS to a target address."""
        if source_asn not in self.topology.nodes:
            raise RoutingError(f"source AS {source_asn} not in topology")
        located = self.topology.origin_of(target_address)
        if located is None:
            raise NoRouteError(
                f"no AS originates {format_ipv4(target_address)}"
            )
        origin_asn, _prefix = located
        if origin_asn == source_asn:
            raise RoutingError("source and target are in the same AS")
        if self._route_epoch != self.topology.policy_epoch:
            self._route_cache.clear()
            self._route_epoch = self.topology.policy_epoch
        routes = self._route_cache.get(origin_asn)
        if routes is None:
            routes = best_paths(self.topology, origin_asn)
            self._route_cache[origin_asn] = routes
        route = routes.get(source_asn)
        if route is None:
            raise NoRouteError(
                f"AS {source_asn} has no route to AS {origin_asn}"
            )
        as_path = (source_asn,) + route.path
        hops = self._expand(as_path, target_address)
        complete = not self._rng.bernoulli(self.loss_probability)
        if not complete and len(hops) > 1:
            cut = self._rng.randint(1, len(hops) - 1)
            hops = hops[:cut]
        return TracerouteResult(
            source_asn=source_asn,
            target=target_address,
            hops=tuple(hops),
            complete=complete,
        )

    def _expand(self, as_path: Tuple[int, ...], target: int) -> List[Hop]:
        hops: List[Hop] = []
        ttl = 0
        rtt = 0.0

        def emit(address: int, fqdn: str, asn: int) -> None:
            nonlocal ttl, rtt
            ttl += 1
            rtt += self._rng.uniform(0.2, 9.0)
            hops.append(
                Hop(ttl=ttl, address=address, fqdn=fqdn, rtt_ms=round(rtt, 3), asn=asn)
            )

        for position in range(len(as_path) - 1):
            here, there = as_path[position], as_path[position + 1]
            # Internal hops of the AS we are currently crossing (skip the
            # vantage's own internals: traceroute starts at its edge).
            if position > 0:
                for address, fqdn in self._internal_hops(here):
                    emit(address, fqdn, here)
            link = self.topology.adjacency(here, there).current_link()
            # Both border routers of the crossing respond with their
            # interface on the *active* parallel link, so a load-share
            # flip changes both addresses of the pair — the paper's
            # observation that a change shows up "in either the Peer AS
            # or the BR IP address".
            if link.a_router.asn == here:
                near_addr, near_router = link.a_addr, link.a_router
                far_addr, far_router = link.b_addr, link.b_router
            else:
                near_addr, near_router = link.b_addr, link.b_router
                far_addr, far_router = link.a_addr, link.a_router
            emit(near_addr, self._fqdn_of(near_addr, near_router), here)
            emit(far_addr, self._fqdn_of(far_addr, far_router), there)
        # Destination answers last.
        origin = as_path[-1]
        emit(target, f"target.{RouterName(origin, 0).domain()}", origin)
        return hops

    def _fqdn_of(self, address: int, router: RouterName) -> str:
        fqdn = self.topology.names.resolve(address)
        if fqdn is None:
            fqdn = self.topology.names.interface_fqdn(router, 0, address)
        return fqdn

    def _internal_hops(self, asn: int) -> List[Tuple[int, str]]:
        """Internal hops for crossing ``asn`` at its current IGP epoch.

        The count and the concrete routers are a hash of (asn, epoch), so
        an IGP event reshuffles them while a quiet AS reproduces the same
        internal path on every probe.
        """
        node = self.topology.nodes[asn]
        digest = hashlib.sha256(f"{asn}:{node.igp_epoch}".encode()).digest()
        count = 1 + digest[0] % 3
        result = []
        for index in range(count):
            router_id = 10 + digest[1 + index] % 6
            router = RouterName(asn=asn, router_id=router_id)
            address = (
                _INTERNAL_BASE.network
                + ((asn % 4096) << 12)
                + ((node.igp_epoch % 16) << 8)
                + digest[4 + index]
            )
            fqdn = f"be-{digest[8 + index] % 9}-0-0.{router.fqdn_suffix()}"
            result.append((address, fqdn))
        return result
