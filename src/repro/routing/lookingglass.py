"""Looking-Glass sites: remote traceroute execution plus output parsing.

A Looking-Glass site lets anyone run traceroute from an ISP's vantage
point and read back the textual output.  :class:`LookingGlassSite` models
one site; the Section 3.1 study drives a fleet of them and parses the text
they return — the same scrape-and-parse pipeline the paper's Java script
implemented.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.routing.names import router_of_fqdn
from repro.routing.traceroute import Hop, TracerouteResult, TracerouteSimulator
from repro.util.errors import RoutingError
from repro.util.ip import parse_ipv4

__all__ = ["LookingGlassSite", "ParsedTraceroute", "parse_traceroute"]

_HOP_LINE = re.compile(
    r"^\s*(?P<ttl>\d+)\s+(?P<fqdn>\S+)\s+\((?P<addr>[\d.]+)\)\s+(?P<rtt>[\d.]+) ms"
)
_LOSS_LINE = re.compile(r"^\s*(?P<ttl>\d+)\s+\* \* \*\s*$")
_HEADER_LINE = re.compile(r"^traceroute to .*\((?P<target>[\d.]+)\)")


@dataclass(frozen=True)
class ParsedTraceroute:
    """Hops recovered from textual traceroute output."""

    target: int
    hops: Tuple[Hop, ...]
    complete: bool

    def last_hop_raw(self) -> Optional[Tuple[int, int]]:
        """(peer address, border address) at raw granularity."""
        if not self.complete or len(self.hops) < 3:
            return None
        return (self.hops[-3].address, self.hops[-2].address)

    def last_hop_fqdn(self) -> Optional[Tuple[str, str]]:
        """(peer router, border router) after FQDN smoothing."""
        if not self.complete or len(self.hops) < 3:
            return None
        return (
            router_of_fqdn(self.hops[-3].fqdn),
            router_of_fqdn(self.hops[-2].fqdn),
        )


def parse_traceroute(text: str) -> ParsedTraceroute:
    """Parse classic traceroute text into hops.

    A trailing ``* * *`` line marks an incomplete run; the final resolved
    hop of a complete run is the destination itself.
    """
    target: Optional[int] = None
    hops: List[Hop] = []
    complete = True
    for line in text.splitlines():
        header = _HEADER_LINE.match(line)
        if header:
            target = parse_ipv4(header.group("target"))
            continue
        loss = _LOSS_LINE.match(line)
        if loss:
            complete = False
            continue
        match = _HOP_LINE.match(line)
        if match:
            hops.append(
                Hop(
                    ttl=int(match.group("ttl")),
                    address=parse_ipv4(match.group("addr")),
                    fqdn=match.group("fqdn"),
                    rtt_ms=float(match.group("rtt")),
                    asn=-1,  # text output does not carry the ASN
                )
            )
    if target is None:
        raise RoutingError("traceroute output missing its header line")
    if complete and hops and hops[-1].address != target:
        # The run ended without reaching the destination (e.g. max TTL).
        complete = False
    return ParsedTraceroute(target=target, hops=tuple(hops), complete=complete)


class LookingGlassSite:
    """One Looking-Glass vantage point.

    ``name`` is presentational; ``asn`` anchors the vantage in the
    topology.  :meth:`traceroute` returns the textual output a scraper
    would fetch from the site's web form.
    """

    def __init__(self, name: str, asn: int, simulator: TracerouteSimulator) -> None:
        self.name = name
        self.asn = asn
        self._simulator = simulator

    def traceroute(self, target_address: int) -> str:
        """Run traceroute to ``target_address`` and return its text."""
        result: TracerouteResult = self._simulator.trace(self.asn, target_address)
        return result.render()

    def __repr__(self) -> str:
        return f"LookingGlassSite(name={self.name!r}, asn={self.asn})"
