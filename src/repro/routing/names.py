"""FQDN assignment for router interfaces.

The traceroute study's *aggregated* analysis (Section 3.1) collapses
redundant/load-shared parallel links by noticing that their interface
addresses reverse-resolve to names on the same router.  This module models
that: every AS gets a stable domain, every router in it a stable router
label, and every interface a name of the form
``<ifname>.<router>.<domain>``.  Two interfaces on the same router share
the router/domain portion even when their subnets differ, which is exactly
the property FQDN smoothing exploits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

__all__ = ["RouterName", "NameRegistry", "router_of_fqdn"]

_DOMAIN_WORDS = (
    "lumen", "verio", "sprint", "ebone", "telia", "ntt", "gblx", "seabone",
    "cogent", "tata", "zayo", "pccw", "telstra", "rostel", "claro", "hanaro",
)
_CITY_CODES = (
    "nyc", "chi", "dfw", "sjc", "lax", "iad", "atl", "sea", "mia", "den",
    "lon", "par", "fra", "ams", "tok", "syd", "hkg", "sin", "yyz", "gru",
)
_IF_PREFIXES = ("ge", "so", "xe", "te", "et")


@dataclass(frozen=True)
class RouterName:
    """The stable identity of a router for naming purposes."""

    asn: int
    router_id: int

    def domain(self) -> str:
        word = _DOMAIN_WORDS[self.asn % len(_DOMAIN_WORDS)]
        return f"{word}{self.asn}.net"

    def label(self) -> str:
        city = _CITY_CODES[(self.asn * 7 + self.router_id) % len(_CITY_CODES)]
        return f"cr{self.router_id}.{city}"

    def fqdn_suffix(self) -> str:
        return f"{self.label()}.{self.domain()}"


class NameRegistry:
    """Assigns and remembers interface FQDNs.

    Interface names are deterministic in (router, interface index) so a
    re-run of a study sees identical names, and distinct interfaces on one
    router differ only in the interface component.
    """

    def __init__(self) -> None:
        self._by_address: Dict[int, str] = {}

    def interface_fqdn(self, router: RouterName, if_index: int, address: int) -> str:
        """Register (or return the existing) FQDN for an interface address."""
        existing = self._by_address.get(address)
        if existing is not None:
            return existing
        prefix = _IF_PREFIXES[if_index % len(_IF_PREFIXES)]
        slot = if_index // len(_IF_PREFIXES)
        fqdn = f"{prefix}-{slot}-{if_index % 4}-0.{router.fqdn_suffix()}"
        self._by_address[address] = fqdn
        return fqdn

    def resolve(self, address: int) -> Optional[str]:
        """Reverse lookup: the FQDN registered for an address, if any."""
        return self._by_address.get(address)


def router_of_fqdn(fqdn: str) -> str:
    """Strip the interface component, leaving the router identity.

    ``ge-1-2-0.cr1.nyc.lumen7018.net`` → ``cr1.nyc.lumen7018.net``.  Two
    parallel-link interfaces on one router smooth to the same value.
    """
    _interface, _, router = fqdn.partition(".")
    return router
