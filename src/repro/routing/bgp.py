"""BGP best-path computation under Gao–Rexford policies.

Given an :class:`~repro.routing.topology.ASTopology`, this module computes
each AS's best path toward an origin AS, respecting the standard
valley-free export rules:

* a route learned from a **customer** is exported to every neighbor;
* a route learned from a **peer** or a **provider** is exported only to
  customers;
* preference at each AS: customer-learned > peer-learned >
  provider-learned, then higher local-pref for the announcing neighbor,
  then shorter AS path, then lowest neighbor ASN.

:class:`RouteCollector` emulates a Routeviews-style collector that peers
with many vantage ASes and records each one's best path per prefix — the
data source for the Section 3.2 validation study.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.routing.topology import ASTopology
from repro.util.errors import RoutingError
from repro.util.ip import Prefix

__all__ = ["Route", "best_paths", "CollectorEntry", "RouteCollector"]

_CLASS_RANK = {"customer": 0, "peer": 1, "provider": 2, "origin": -1}


@dataclass(frozen=True)
class Route:
    """A selected route at some AS toward an origin.

    ``path`` is the AS path from (but excluding) the holder to the origin
    inclusive: at the origin itself the path is empty; at a neighbor of the
    origin it is ``(origin,)``.
    """

    learned_from: str
    path: Tuple[int, ...]

    @property
    def length(self) -> int:
        return len(self.path)


def best_paths(
    topology: ASTopology,
    origin: int,
    *,
    allowed_first_hops: Optional[FrozenSet[int]] = None,
) -> Dict[int, Route]:
    """Best valley-free path from every AS to ``origin``.

    ``allowed_first_hops`` restricts which of the origin's neighbors the
    origin announces to — the selective-announcement traffic engineering
    that makes a more-specific prefix take a different ingress than its
    covering block (the paper's 4.2.101.0/24 vs 4.0.0.0/8 example).

    Returns a mapping ASN → :class:`Route` for every AS that has a route;
    unreachable ASes are absent.
    """
    if origin not in topology.nodes:
        raise RoutingError(f"origin AS {origin} not in topology")

    def announces_to(neighbor: int) -> bool:
        return allowed_first_hops is None or neighbor in allowed_first_hops

    # --- Stage 1: customer routes (propagate up provider chains) --------
    customer_route: Dict[int, Route] = {origin: Route("origin", ())}
    changed = True
    guard = 0
    while changed:
        changed = False
        guard += 1
        if guard > len(topology.nodes) + 2:
            raise RoutingError("customer-route relaxation failed to converge")
        for asn, node in topology.nodes.items():
            if asn == origin:
                continue
            best: Optional[Tuple[Tuple[int, int, int], Route]] = None
            for customer in topology.customers_of(asn):
                offered = customer_route.get(customer)
                if offered is None or asn in offered.path or asn == customer:
                    continue
                if customer == origin and not announces_to(asn):
                    continue
                candidate = Route("customer", (customer,) + offered.path)
                rank = (-node.pref_for(customer), candidate.length, customer)
                if best is None or rank < best[0]:
                    best = (rank, candidate)
            if best is not None:
                current = customer_route.get(asn)
                if current is None or current.path != best[1].path:
                    customer_route[asn] = best[1]
                    changed = True

    # --- Stage 2: peer routes (one lateral hop off a customer chain) ----
    peer_route: Dict[int, Route] = {}
    for asn, node in topology.nodes.items():
        if asn == origin:
            continue
        best = None
        for peer in topology.peers_of(asn):
            offered = customer_route.get(peer)
            if offered is None or asn in offered.path:
                continue
            if peer == origin and not announces_to(asn):
                continue
            candidate = Route("peer", (peer,) + offered.path)
            rank = (-node.pref_for(peer), candidate.length, peer)
            if best is None or rank < best[0]:
                best = (rank, candidate)
        if best is not None:
            peer_route[asn] = best[1]

    # --- Stage 3: provider routes (propagate down customer chains) ------
    provider_route: Dict[int, Route] = {}

    def exportable(asn: int) -> Optional[Route]:
        """What ``asn`` offers its customers: its overall best route."""
        if asn == origin:
            return customer_route[origin]
        for table in (customer_route, peer_route, provider_route):
            route = table.get(asn)
            if route is not None:
                return route
        return None

    changed = True
    guard = 0
    while changed:
        changed = False
        guard += 1
        if guard > len(topology.nodes) + 2:
            raise RoutingError("provider-route relaxation failed to converge")
        for asn, node in topology.nodes.items():
            if asn == origin or asn in customer_route:
                # A customer-class route always wins; skip to keep the
                # relaxation cheap (selection below would ignore this
                # provider route anyway).
                continue
            best = None
            for provider in topology.providers_of(asn):
                offered = exportable(provider)
                if offered is None or asn in offered.path or provider == asn:
                    continue
                if provider == origin:
                    if not announces_to(asn):
                        continue
                    candidate = Route("provider", (origin,))
                else:
                    candidate = Route("provider", (provider,) + offered.path)
                if asn in candidate.path[1:]:
                    continue
                rank = (-node.pref_for(provider), candidate.length, provider)
                if best is None or rank < best[0]:
                    best = (rank, candidate)
            if best is not None:
                current = provider_route.get(asn)
                if current is None or current.path != best[1].path:
                    provider_route[asn] = best[1]
                    changed = True

    # --- Final selection -------------------------------------------------
    selected: Dict[int, Route] = {}
    for asn in topology.nodes:
        route = (
            customer_route.get(asn)
            or peer_route.get(asn)
            or provider_route.get(asn)
        )
        if route is not None:
            selected[asn] = route
    return selected


@dataclass(frozen=True)
class CollectorEntry:
    """One line of collector state: a vantage session's best path."""

    prefix: Prefix
    next_hop: int
    path: Tuple[int, ...]
    best: bool = False

    @property
    def vantage(self) -> int:
        return self.path[0]

    @property
    def origin(self) -> int:
        return self.path[-1]

    @property
    def peer_of_origin(self) -> int:
        """The AS adjacent to the origin on this path (its ingress peer)."""
        if len(self.path) == 1:
            return self.path[0]
        return self.path[-2]


class RouteCollector:
    """A Routeviews-style route collector.

    The collector holds BGP sessions with ``vantages``; each session
    contributes that AS's *best* path for every prefix, mirroring the
    paper's observation that "each AS only advertises to its peers the
    best AS-level path it knows".
    """

    def __init__(self, topology: ASTopology, vantages: Sequence[int]) -> None:
        unknown = [asn for asn in vantages if asn not in topology.nodes]
        if unknown:
            raise RoutingError(f"vantage ASes not in topology: {unknown}")
        self.topology = topology
        self.vantages = list(vantages)
        self._route_cache: Dict[Tuple[int, Optional[FrozenSet[int]]], Dict[int, Route]] = {}
        self._route_epoch = -1

    def _session_address(self, vantage: int) -> int:
        # Deterministic per-session address in 141.142.0.0/16, matching the
        # flavor of real collector output.
        return Prefix.parse("141.142.0.0/16").network + (vantage % 65_000) + 1

    def table_for(
        self,
        prefix: Prefix,
        origin: int,
        *,
        allowed_first_hops: Optional[FrozenSet[int]] = None,
    ) -> List[CollectorEntry]:
        """Collector entries for one prefix."""
        if self._route_epoch != self.topology.policy_epoch:
            self._route_cache.clear()
            self._route_epoch = self.topology.policy_epoch
        cache_key = (origin, allowed_first_hops)
        routes = self._route_cache.get(cache_key)
        if routes is None:
            routes = best_paths(
                self.topology, origin, allowed_first_hops=allowed_first_hops
            )
            self._route_cache[cache_key] = routes
        entries: List[CollectorEntry] = []
        for vantage in self.vantages:
            route = routes.get(vantage)
            if route is None:
                continue
            if vantage == origin:
                continue
            entries.append(
                CollectorEntry(
                    prefix=prefix,
                    next_hop=self._session_address(vantage),
                    path=(vantage,) + route.path,
                )
            )
        if entries:
            # The collector's own best: shortest path, lowest vantage.
            best_index = min(
                range(len(entries)),
                key=lambda i: (len(entries[i].path), entries[i].path[0]),
            )
            entries[best_index] = CollectorEntry(
                prefix=entries[best_index].prefix,
                next_hop=entries[best_index].next_hop,
                path=entries[best_index].path,
                best=True,
            )
        return entries

    def snapshot(
        self,
        targets: Iterable[Tuple[Prefix, int]],
        *,
        announcements: Optional[Dict[Prefix, FrozenSet[int]]] = None,
    ) -> List[CollectorEntry]:
        """Full-table snapshot over the given (prefix, origin) pairs."""
        entries: List[CollectorEntry] = []
        for prefix, origin in targets:
            allowed = None
            if announcements is not None:
                allowed = announcements.get(prefix)
            entries.extend(
                self.table_for(prefix, origin, allowed_first_hops=allowed)
            )
        return entries
