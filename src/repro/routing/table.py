"""Rendering and parsing of ``show ip bgp`` tables, and ingress-map
derivation.

The Section 3.2 validation pipeline is textual on purpose: the collector
renders its state the way Routeviews dumps do, the study parses that text
back, and only then derives the peer-AS → source-AS-set mapping — the same
code path the paper ran against real ``show ip bgp`` output.

The derivation implements the paper's rule: given a best AS path
``a1 a2 ... ak origin`` for a prefix, every source AS ``ai`` on it reaches
the origin via peer AS ``ak`` (the AS adjacent to the origin), because each
AS advertises only its best path; and a more-specific prefix overrides a
covering one per source (the 4.2.101.0/24 vs 4.0.0.0/8 example).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.routing.bgp import CollectorEntry
from repro.util.errors import RoutingError
from repro.util.ip import Prefix, format_ipv4

__all__ = [
    "ParsedRoute",
    "render_show_ip_bgp",
    "parse_show_ip_bgp",
    "IngressMap",
    "derive_ingress_map",
]


@dataclass(frozen=True)
class ParsedRoute:
    """One parsed table line."""

    prefix: Prefix
    next_hop: str
    path: Tuple[int, ...]
    best: bool = False

    @property
    def origin(self) -> int:
        return self.path[-1]


def render_show_ip_bgp(entries: Sequence[CollectorEntry]) -> str:
    """Render collector entries as a ``show ip bgp`` style table.

    Lines for one prefix share the Network cell (printed only on the first
    line), as real IOS output does; every path ends with the IGP origin
    code ``i``.
    """
    lines = ["   Network            Next Hop            Path"]
    last_prefix: Optional[Prefix] = None
    for entry in entries:
        marker = "*>" if entry.best else "* "
        network_cell = str(entry.prefix) if entry.prefix != last_prefix else ""
        last_prefix = entry.prefix
        path_text = " ".join(str(asn) for asn in entry.path)
        lines.append(
            f"{marker} {network_cell:<18} {format_ipv4(entry.next_hop):<19} "
            f"{path_text} i"
        )
    return "\n".join(lines) + "\n"


def parse_show_ip_bgp(text: str) -> List[ParsedRoute]:
    """Parse a ``show ip bgp`` style table back into routes.

    Handles the continuation convention (an empty Network cell inherits the
    previous line's prefix), both ``/len`` and classful bare networks, and
    the trailing origin code (``i``/``e``/``?``).
    """
    routes: List[ParsedRoute] = []
    current_prefix: Optional[Prefix] = None
    for raw_line in text.splitlines():
        line = raw_line.rstrip()
        if not line or line.lstrip().startswith("Network"):
            continue
        if not line.startswith("*"):
            continue
        best = line.startswith("*>")
        body = line[2:].strip()
        tokens = body.split()
        if not tokens:
            continue
        index = 0
        if "." in tokens[0] and not tokens[0].isdigit():
            # A Network cell is present (otherwise the line starts at the
            # Next Hop column, which is also dotted — disambiguate by
            # column position: a continuation line's first dotted token is
            # the next hop, so check whether a second dotted token follows).
            if len(tokens) > 1 and "." in tokens[1]:
                current_prefix = Prefix.parse_classful(tokens[0])
                index = 1
        if current_prefix is None:
            raise RoutingError("table line before any Network cell")
        if index >= len(tokens) or "." not in tokens[index]:
            raise RoutingError(f"missing next hop in line {raw_line!r}")
        next_hop = tokens[index]
        path_tokens = tokens[index + 1 :]
        if path_tokens and path_tokens[-1] in {"i", "e", "?"}:
            path_tokens = path_tokens[:-1]
        if not path_tokens:
            continue  # a local route with an empty path — not a vantage line
        try:
            path = tuple(int(tok) for tok in path_tokens)
        except ValueError:
            raise RoutingError(f"non-numeric AS in path of line {raw_line!r}") from None
        routes.append(
            ParsedRoute(
                prefix=current_prefix, next_hop=next_hop, path=path, best=best
            )
        )
    return routes


@dataclass
class IngressMap:
    """The peer-AS → source-AS-set mapping for one target network."""

    origin: int
    #: source ASN → the peer AS its traffic enters the target through.
    peer_of_source: Dict[int, int]

    def peer_ases(self) -> Set[int]:
        return set(self.peer_of_source.values())

    def sources_via(self, peer: int) -> Set[int]:
        return {
            source
            for source, mapped in self.peer_of_source.items()
            if mapped == peer
        }

    def fractional_change(self, other: "IngressMap") -> float:
        """Fraction of source ASes whose ingress peer differs vs ``other``.

        Sources present in only one reading count as changed; the
        denominator is the union of sources, so the value is in [0, 1].
        """
        sources = set(self.peer_of_source) | set(other.peer_of_source)
        if not sources:
            return 0.0
        changed = sum(
            1
            for source in sources
            if self.peer_of_source.get(source) != other.peer_of_source.get(source)
        )
        return changed / len(sources)


def derive_ingress_map(
    routes: Iterable[ParsedRoute],
    origin: int,
    target_address: int,
) -> IngressMap:
    """Derive the ingress mapping for ``target_address`` of AS ``origin``.

    Only prefixes covering the target address participate.  For each
    source AS the most specific covering prefix on which it appears wins;
    within one prefix the suffix of any best-advertised path through that
    source determines its peer (ties broken toward the longer observed
    suffix, i.e. the vantage closest to the collector, deterministically).
    """
    by_prefix: Dict[Prefix, Dict[int, int]] = {}
    for route in routes:
        if route.origin != origin or not route.prefix.contains(target_address):
            continue
        mapping = by_prefix.setdefault(route.prefix, {})
        if len(route.path) < 2:
            continue
        peer = route.path[-2]
        # Every AS on the path upstream of the peer is a source that, per
        # the best-path advertisement argument, reaches the origin via
        # `peer` for this prefix.  The peer itself is not a source (the
        # paper's worked example keeps the two sets disjoint).
        for source in route.path[:-2]:
            mapping.setdefault(source, peer)
    merged: Dict[int, int] = {}
    for prefix in sorted(by_prefix, key=lambda p: p.length):
        # Increasing specificity: later (more specific) prefixes override.
        merged.update(by_prefix[prefix])
    return IngressMap(origin=origin, peer_of_source=merged)
