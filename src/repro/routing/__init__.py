"""Internet routing substrate: topology, BGP, traceroute, Looking Glass."""

from __future__ import annotations

from repro.routing.bgp import CollectorEntry, Route, RouteCollector, best_paths
from repro.routing.lookingglass import (
    LookingGlassSite,
    ParsedTraceroute,
    parse_traceroute,
)
from repro.routing.names import NameRegistry, RouterName, router_of_fqdn
from repro.routing.table import (
    IngressMap,
    ParsedRoute,
    derive_ingress_map,
    parse_show_ip_bgp,
    render_show_ip_bgp,
)
from repro.routing.topology import (
    Adjacency,
    ASNode,
    ASTopology,
    BoundaryLink,
    DynamicsRates,
    Relationship,
    TopologyDynamics,
    TopologyParams,
    generate_internet,
)
from repro.routing.traceroute import (
    Hop,
    LastHop,
    TracerouteResult,
    TracerouteSimulator,
)

__all__ = [
    "CollectorEntry",
    "Route",
    "RouteCollector",
    "best_paths",
    "LookingGlassSite",
    "ParsedTraceroute",
    "parse_traceroute",
    "NameRegistry",
    "RouterName",
    "router_of_fqdn",
    "IngressMap",
    "ParsedRoute",
    "derive_ingress_map",
    "parse_show_ip_bgp",
    "render_show_ip_bgp",
    "Adjacency",
    "ASNode",
    "ASTopology",
    "BoundaryLink",
    "DynamicsRates",
    "Relationship",
    "TopologyDynamics",
    "TopologyParams",
    "generate_internet",
    "Hop",
    "LastHop",
    "TracerouteResult",
    "TracerouteSimulator",
]
