"""Vectorized zero-copy data plane for the batch hot path.

E11/E19 showed the per-flow cost of the reproduction is dominated by
pure-Python EIA lookups and d=720 unary Hamming distances.  This
package is the documented, benchmarked answer (bench E15, tuning guide
``docs/performance.md``): columnar zero-copy NetFlow decoding
(:mod:`repro.fastpath.columnar`), bit-packed popcount structures for
NNS codes and EIA membership (:mod:`repro.fastpath.bitpack`), and an
epoch-invalidated bounded verdict memo (:mod:`repro.fastpath.lru`,
:mod:`repro.fastpath.plane`) that the sharded engine and the serving
daemon drive behind the ``--fastpath`` flag.

Layering: imports :mod:`repro.util`, :mod:`repro.obs`, and
:mod:`repro.netflow` only — never :mod:`repro.core`; the detector
pipeline consumes this package, not the other way around.  Everything
here is derived/cache data and is excluded from stage-state
checkpoints by construction.
"""

from __future__ import annotations

from repro.fastpath.bitpack import (
    BlockBitset,
    BlockOwnerIndex,
    PackedCodes,
    hamming_per_bit,
)
from repro.fastpath.columnar import (
    ColumnarBatch,
    decode_v1_columnar,
    decode_v5_columnar,
)
from repro.fastpath.lru import VerdictLRU
from repro.fastpath.plane import DEFAULT_MEMO_CAPACITY, FastPath

__all__ = [
    "BlockBitset",
    "BlockOwnerIndex",
    "PackedCodes",
    "hamming_per_bit",
    "ColumnarBatch",
    "decode_v1_columnar",
    "decode_v5_columnar",
    "VerdictLRU",
    "DEFAULT_MEMO_CAPACITY",
    "FastPath",
]
