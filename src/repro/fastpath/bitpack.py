"""Bit-packed hot-path data structures (popcount Hamming, EIA membership).

The data plane's two inner loops are Hamming-distance evaluation over
d=720-bit unary codes (the [KOR] NNS search, Section 4.2) and EIA
membership resolution per source block (Section 3).  Both reduce to
integer bit algebra:

* :class:`PackedCodes` lays a corpus of fixed-width codes side by side in
  one ``bytes`` buffer; a distance sweep is then one XOR + one
  ``int.bit_count()`` popcount per code, with no per-code object or
  attribute traffic.  :func:`hamming_per_bit` is the deliberately naive
  bit-at-a-time reference the property tests compare against.
* :class:`BlockBitset` packs a set of address-block indices into a single
  Python int over a shared compact universe, so membership algebra
  (union, intersection, cardinality) is word-parallel.
* :class:`BlockOwnerIndex` flattens same-length EIA prefix tries into an
  O(1) ``block index -> owning peer`` probe — the constant-time set
  membership check that replaces the O(32) trie walk on the batch path.

Everything here is *derived* data: rebuildable from the authoritative
structures, never checkpointed, and invalidated wholesale when the
source state mutates (see :mod:`repro.fastpath.plane`).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.util.errors import ConfigError

__all__ = [
    "hamming_per_bit",
    "PackedCodes",
    "BlockBitset",
    "BlockOwnerIndex",
]


def hamming_per_bit(a: int, b: int, dimension: int) -> int:
    """Hamming distance computed one bit position at a time.

    The reference implementation of the distance the NNS stage uses:
    equivalent to ``(a ^ b).bit_count()`` but walking positions
    explicitly, exactly as a naive per-bit loop over the unary vectors
    would.  Exists so the fastpath popcount can be property-tested
    against an independent formulation.
    """
    if a < 0 or b < 0:
        raise ConfigError("unary codes are non-negative bitmasks")
    distance = 0
    for position in range(dimension):
        if ((a >> position) & 1) != ((b >> position) & 1):
            distance += 1
    return distance


class PackedCodes:
    """A corpus of fixed-width bit codes packed into one ``bytes`` buffer.

    Code ``i`` occupies bytes ``[i * width, (i + 1) * width)`` in
    little-endian order, so a probe reconstructs it with one
    ``int.from_bytes`` slice — no per-code Python objects survive
    construction.  Distances are popcounts of XORs, identical to
    :func:`repro.core.encoding.hamming` on the unpacked ints.
    """

    __slots__ = ("dimension", "width", "_buffer", "_count")

    def __init__(self, codes: Sequence[int], dimension: int) -> None:
        if dimension < 1:
            raise ConfigError(f"dimension must be >= 1, got {dimension}")
        self.dimension = dimension
        self.width = (dimension + 7) // 8
        parts: List[bytes] = []
        for code in codes:
            if code < 0 or code >> dimension:
                raise ConfigError(
                    f"code does not fit in {dimension} bits: {code:#x}"
                )
            parts.append(code.to_bytes(self.width, "little"))
        self._buffer = b"".join(parts)
        self._count = len(parts)

    def __len__(self) -> int:
        return self._count

    def code_at(self, index: int) -> int:
        """Unpack code ``index`` back into an int bitmask."""
        if not 0 <= index < self._count:
            raise ConfigError(f"code index {index} out of range")
        start = index * self.width
        return int.from_bytes(self._buffer[start : start + self.width], "little")

    def distances(self, query: int) -> List[int]:
        """Hamming distance from ``query`` to every packed code, in order."""
        width = self.width
        buffer = self._buffer
        return [
            (int.from_bytes(buffer[start : start + width], "little") ^ query).bit_count()
            for start in range(0, len(buffer), width)
        ]

    def argmin(self, query: int) -> Tuple[int, int]:
        """(index, distance) of the closest code; ties go to the lowest index."""
        if not self._count:
            raise ConfigError("argmin over an empty code corpus")
        best_index = 0
        best_distance = self.dimension + 1
        width = self.width
        buffer = self._buffer
        for index in range(self._count):
            start = index * width
            distance = (
                int.from_bytes(buffer[start : start + width], "little") ^ query
            ).bit_count()
            if distance < best_distance:
                best_index, best_distance = index, distance
        return best_index, best_distance


class BlockBitset:
    """A set of block indices bit-packed into one int over a universe.

    The *universe* maps each admissible block index to a bit position; a
    set is then a single Python int with those positions set, and the
    usual set algebra becomes word-parallel integer ops.  Two bitsets
    must share a universe (by identity of contents) to combine.
    """

    __slots__ = ("_universe", "mask")

    def __init__(self, universe: Mapping[int, int], mask: int = 0) -> None:
        self._universe = universe
        self.mask = mask

    @classmethod
    def build_universe(cls, indices: Iterable[int]) -> Dict[int, int]:
        """A shared universe: sorted block indices -> dense bit positions."""
        return {index: pos for pos, index in enumerate(sorted(set(indices)))}

    @classmethod
    def from_indices(
        cls, universe: Mapping[int, int], indices: Iterable[int]
    ) -> "BlockBitset":
        mask = 0
        for index in indices:
            position = universe.get(index)
            if position is None:
                raise ConfigError(f"block index {index} outside the universe")
            mask |= 1 << position
        return cls(universe, mask)

    def contains(self, index: int) -> bool:
        position = self._universe.get(index)
        return position is not None and bool((self.mask >> position) & 1)

    def __contains__(self, index: int) -> bool:
        return self.contains(index)

    def __len__(self) -> int:
        return self.mask.bit_count()

    def union(self, other: "BlockBitset") -> "BlockBitset":
        return BlockBitset(self._universe, self.mask | other.mask)

    def intersection(self, other: "BlockBitset") -> "BlockBitset":
        return BlockBitset(self._universe, self.mask & other.mask)

    def indices(self) -> List[int]:
        """The member block indices, ascending."""
        mask = self.mask
        by_position = {pos: index for index, pos in self._universe.items()}
        members = []
        while mask:
            low = mask & -mask
            members.append(by_position[low.bit_length() - 1])
            mask ^= low
        return sorted(members)


class BlockOwnerIndex:
    """Flat ``source block -> owning peer AS`` probe over uniform prefixes.

    When every EIA prefix has the same length ``L``, the longest-match
    trie walk collapses to ``owner[address >> (32 - L)]`` — the
    constant-time set probe.  Construction takes the per-block owner
    verdicts from an oracle (the authoritative trie), so the index is
    exact by construction; per-peer membership also lands in
    :class:`BlockBitset` form for word-parallel set algebra.

    The index is a derived cache: it must be rebuilt (not patched) after
    any EIA mutation — the plane's epoch tracking enforces that.
    """

    __slots__ = ("length", "shift", "_owner_by_block", "_peer_bitsets")

    def __init__(self, length: int, owner_by_block: Mapping[int, int]) -> None:
        if not 0 < length <= 32:
            raise ConfigError(f"prefix length {length} out of range")
        self.length = length
        self.shift = 32 - length
        self._owner_by_block = dict(owner_by_block)
        universe = BlockBitset.build_universe(self._owner_by_block)
        members: Dict[int, List[int]] = {}
        for block, peer in self._owner_by_block.items():
            members.setdefault(peer, []).append(block)
        self._peer_bitsets = {
            peer: BlockBitset.from_indices(universe, blocks)
            for peer, blocks in members.items()
        }

    def owner_of(self, address: int) -> Optional[int]:
        """The peer whose EIA set covers ``address`` (None: unknown source)."""
        return self._owner_by_block.get(address >> self.shift)

    def peers(self) -> List[int]:
        return sorted(self._peer_bitsets)

    def peer_blocks(self, peer: int) -> BlockBitset:
        """The bit-packed membership of one peer's expected blocks."""
        bitset = self._peer_bitsets.get(peer)
        if bitset is None:
            raise ConfigError(f"no blocks indexed for peer AS {peer}")
        return bitset

    def __len__(self) -> int:
        return len(self._owner_by_block)
