"""A bounded LRU memo for per-block verdicts.

The batch data plane sees the same (source block, ingress interface)
pair thousands of times per second during an attack or a heavy legal
transfer; the EIA verdict for the pair is constant between EIA
mutations.  :class:`VerdictLRU` is the bounded memo that exploits that:
ordered-dict recency tracking, O(1) get/put, and a wholesale
``invalidate_all`` that the owning plane calls whenever the
authoritative state mutates (absorption, route churn, checkpoint
restore).

The memo is derived data and is deliberately *not* a
:class:`~repro.core.state.Stateful` participant: it never appears in a
``state_dict`` and a restored detector always starts cold.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Generic, Optional, Tuple, TypeVar

from repro.util.errors import ConfigError

__all__ = ["VerdictLRU"]

K = TypeVar("K")
V = TypeVar("V")


class VerdictLRU(Generic[K, V]):
    """Bounded least-recently-used map with hit/miss/eviction accounting."""

    __slots__ = ("capacity", "_entries", "hits", "misses", "evictions", "invalidations")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ConfigError(f"LRU capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[K, V]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: K) -> bool:
        return key in self._entries

    def get(self, key: K) -> Optional[V]:
        """The memoised value for ``key``, refreshing its recency; None on miss.

        A miss is counted here, a hit refreshes the entry to
        most-recently-used — the standard LRU contract.
        """
        value = self._entries.get(key)
        if value is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: K, value: V) -> None:
        """Memoise ``key`` -> ``value``, evicting the LRU entry when full."""
        entries = self._entries
        if key in entries:
            entries[key] = value
            entries.move_to_end(key)
            return
        if len(entries) >= self.capacity:
            entries.popitem(last=False)
            self.evictions += 1
        entries[key] = value

    def invalidate_all(self) -> int:
        """Drop every entry (state mutated under us); returns the count dropped."""
        dropped = len(self._entries)
        self._entries.clear()
        if dropped:
            self.invalidations += 1
        return dropped

    def counters(self) -> Tuple[int, int, int, int]:
        """(hits, misses, evictions, invalidations) — for stats surfaces."""
        return (self.hits, self.misses, self.evictions, self.invalidations)
