"""The fastpath facade: memoised verdicts with epoch invalidation.

:class:`FastPath` ties the pieces of :mod:`repro.fastpath` together for
the batch data plane: a bounded :class:`~repro.fastpath.lru.VerdictLRU`
of per-(source block, ingress) verdicts, an *epoch* guard that drops
the whole memo the moment the authoritative EIA state reports a
mutation (learning-rule absorption, preload, checkpoint restore, route
churn), and the observability counters the tuning guide
(``docs/performance.md``) is written around.

Deliberately generic and dependency-light: the plane never imports
:mod:`repro.core` — the pipeline hands in opaque keys and cached
values (its own :class:`~repro.core.eia.EIACheck` objects) plus the
epoch integer, so there is no import cycle and no chance of the cache
layer second-guessing detection semantics.  It also deliberately does
**not** implement the stage-state protocol: a memo is derived data, a
restored detector always starts cold, and checkpoints stay
byte-identical whether the cache is hot or cold.
"""

from __future__ import annotations

from typing import Dict, Generic, Optional, TypeVar

from repro.fastpath.lru import VerdictLRU
from repro.obs import MetricsRegistry, get_registry

__all__ = ["DEFAULT_MEMO_CAPACITY", "FastPath"]

K = TypeVar("K")
V = TypeVar("V")

#: Default verdict-memo bound.  At two ints per key and one frozen
#: EIACheck per value this is a few tens of MB worst case — sized so a
#: serving daemon absorbing the Figure 15 attack mix never evicts the
#: legal working set (see docs/performance.md for the sizing argument).
DEFAULT_MEMO_CAPACITY = 131_072


class FastPath(Generic[K, V]):
    """Epoch-guarded verdict memo + decode instrumentation.

    ``lookup`` must be passed the authoritative state's current
    mutation epoch on every probe; a mismatch invalidates the whole
    memo before the probe, so a stale verdict can never be served
    across an EIA mutation.  This is the "explicit invalidation on
    absorption and route-churn epochs" contract from the design issue —
    the owner does not need to remember to call anything when state
    changes, it only needs to keep bumping its epoch.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_MEMO_CAPACITY,
        *,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.memo: VerdictLRU[K, V] = VerdictLRU(capacity)
        self._epoch: Optional[int] = None
        registry = registry if registry is not None else get_registry()
        self._m_hits = registry.counter(
            "infilter_fastpath_cache_hits_total",
            "Verdict-memo hits on the fastpath batch plane.",
        )
        self._m_misses = registry.counter(
            "infilter_fastpath_cache_misses_total",
            "Verdict-memo misses on the fastpath batch plane.",
        )
        self._m_invalidations = registry.counter(
            "infilter_fastpath_invalidations_total",
            "Wholesale memo invalidations (EIA mutation epochs).",
        )
        self._m_decode_s = registry.histogram(
            "infilter_fastpath_batch_decode_seconds",
            "Columnar datagram decode latency.",
        )
        self._m_decode_ns = registry.counter(
            "infilter_fastpath_batch_decode_ns_total",
            "Cumulative columnar decode time in nanoseconds.",
        )
        self._m_decoded_records = registry.counter(
            "infilter_fastpath_decoded_records_total",
            "Flow records decoded through the columnar fastpath.",
        )

    # -- verdict memo --------------------------------------------------------

    @property
    def epoch(self) -> Optional[int]:
        """The state epoch the memo contents are valid for."""
        return self._epoch

    def lookup(self, key: K, epoch: int) -> Optional[V]:
        """The memoised verdict for ``key`` at ``epoch``; None on miss.

        Crossing into a new epoch drops every entry first — the memo
        can only ever answer for the epoch it was filled under.
        """
        if epoch != self._epoch:
            self.invalidate()
            self._epoch = epoch
        value = self.memo.get(key)
        if value is None:
            self._m_misses.inc()
            return None
        self._m_hits.inc()
        return value

    def store(self, key: K, value: V, epoch: int) -> None:
        """Memoise a freshly computed verdict for ``epoch``.

        A store that disagrees with the memo's epoch is dropped rather
        than poisoning a future epoch's probes.
        """
        if epoch != self._epoch:
            return
        self.memo.put(key, value)

    def invalidate(self) -> int:
        """Drop the memo wholesale; returns the number of entries dropped."""
        dropped = self.memo.invalidate_all()
        if dropped:
            self._m_invalidations.inc()
        return dropped

    # -- decode instrumentation ----------------------------------------------

    def observe_decode(self, elapsed_s: float, n_records: int) -> None:
        """Record one columnar datagram decode (latency + record count)."""
        self._m_decode_s.observe(elapsed_s)
        self._m_decode_ns.inc(elapsed_s * 1e9)
        self._m_decoded_records.inc(n_records)

    # -- stats surface -------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        """Memo counters for CLI/report surfaces (not the obs registry)."""
        hits, misses, evictions, invalidations = self.memo.counters()
        return {
            "size": len(self.memo),
            "capacity": self.memo.capacity,
            "hits": hits,
            "misses": misses,
            "evictions": evictions,
            "invalidations": invalidations,
        }
