"""Columnar zero-copy NetFlow datagram decoding.

The record-at-a-time decoders in :mod:`repro.netflow.v5` and
:mod:`repro.netflow.v1` pay per-record Python overhead: one
``unpack_from`` call, one try/except, and one tuple unpacking per
48-byte record.  The columnar decoders here unpack the whole record
region in a single :meth:`struct.Struct.iter_unpack` sweep over a
``memoryview`` (no payload copy), transpose once with ``zip`` (C speed),
and validate *columns* — ``min()`` over the packets/octets columns and
one generator sweep over first/last — instead of validating each record
as it is built.

Equivalence contract (property-tested in ``tests/test_fastpath.py``):
for every byte string, ``decode_v5_columnar``/``decode_v1_columnar``
either returns exactly the records the record-at-a-time decoder
returns, or raises :class:`~repro.util.errors.NetFlowDecodeError` with
the *identical* message.  When a column check trips, the decoder falls
back to the per-record walk so the first offending record reports in
the same field order (packets, then octets, then timestamps).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List, Tuple, cast

from repro.netflow.records import FlowKey, FlowRecord
from repro.netflow.v1 import (
    MAX_V1_RECORDS,
    NETFLOW_V1_VERSION,
    V1_HEADER_LEN,
    V1_HEADER_STRUCT,
    V1_RECORD_LEN,
    V1_RECORD_STRUCT,
)
from repro.netflow.v5 import (
    HEADER_LEN,
    HEADER_STRUCT,
    MAX_RECORDS_PER_DATAGRAM,
    NETFLOW_V5_VERSION,
    RECORD_LEN,
    RECORD_STRUCT,
    V5Header,
)
from repro.util.errors import NetFlowDecodeError

__all__ = ["ColumnarBatch", "decode_v5_columnar", "decode_v1_columnar"]

_IntColumn = Tuple[int, ...]


@dataclass(frozen=True)
class ColumnarBatch:
    """One decoded datagram's records, stored column-wise.

    Every :class:`~repro.netflow.records.FlowRecord` field is a parallel
    tuple; record ``i`` is the ``i``-th element of each column.  v1
    datagrams zero-fill the v5-only columns (AS numbers and masks), the
    same normalisation the record-at-a-time v1 decoder applies.
    """

    src_addr: _IntColumn
    dst_addr: _IntColumn
    protocol: _IntColumn
    src_port: _IntColumn
    dst_port: _IntColumn
    tos: _IntColumn
    input_if: _IntColumn
    packets: _IntColumn
    octets: _IntColumn
    first: _IntColumn
    last: _IntColumn
    next_hop: _IntColumn
    tcp_flags: _IntColumn
    src_as: _IntColumn
    dst_as: _IntColumn
    src_mask: _IntColumn
    dst_mask: _IntColumn
    output_if: _IntColumn
    ttl: _IntColumn

    def __len__(self) -> int:
        return len(self.src_addr)

    def records(self) -> List[FlowRecord]:
        """Materialise row-wise :class:`FlowRecord` objects.

        The batch is validated at decode time, so construction here
        cannot raise; the output is element-for-element identical to the
        record-at-a-time decoder's list.
        """
        return [
            FlowRecord(
                key=FlowKey(
                    src_addr=src_addr,
                    dst_addr=dst_addr,
                    protocol=protocol,
                    src_port=src_port,
                    dst_port=dst_port,
                    tos=tos,
                    input_if=input_if,
                ),
                packets=packets,
                octets=octets,
                first=first,
                last=last,
                next_hop=next_hop,
                tcp_flags=tcp_flags,
                src_as=src_as,
                dst_as=dst_as,
                src_mask=src_mask,
                dst_mask=dst_mask,
                output_if=output_if,
                ttl=ttl,
            )
            for (
                src_addr,
                dst_addr,
                protocol,
                src_port,
                dst_port,
                tos,
                input_if,
                packets,
                octets,
                first,
                last,
                next_hop,
                tcp_flags,
                src_as,
                dst_as,
                src_mask,
                dst_mask,
                output_if,
                ttl,
            ) in zip(
                self.src_addr,
                self.dst_addr,
                self.protocol,
                self.src_port,
                self.dst_port,
                self.tos,
                self.input_if,
                self.packets,
                self.octets,
                self.first,
                self.last,
                self.next_hop,
                self.tcp_flags,
                self.src_as,
                self.dst_as,
                self.src_mask,
                self.dst_mask,
                self.output_if,
                self.ttl,
            )
        ]


def _columns_valid(
    packets: _IntColumn, octets: _IntColumn, first: _IntColumn, last: _IntColumn
) -> bool:
    """Batch semantic validation: C-speed sweeps instead of per-record checks."""
    return (
        min(packets) > 0
        and min(octets) > 0
        and all(l >= f for f, l in zip(first, last))
    )


def decode_v5_columnar(data: bytes) -> Tuple[V5Header, ColumnarBatch]:
    """Decode one v5 export datagram column-wise (zero payload copy).

    Framing and semantic validation match
    :func:`repro.netflow.v5.decode_datagram` exactly, including error
    messages.
    """
    if len(data) < HEADER_LEN:
        raise NetFlowDecodeError(
            f"datagram too short for a v5 header: {len(data)} bytes"
        )
    (
        version,
        count,
        sys_uptime,
        unix_secs,
        unix_nsecs,
        flow_sequence,
        engine_type,
        engine_id,
        sampling_interval,
    ) = HEADER_STRUCT.unpack_from(data, 0)
    if version != NETFLOW_V5_VERSION:
        raise NetFlowDecodeError(f"unsupported NetFlow version {version}")
    if count == 0 or count > MAX_RECORDS_PER_DATAGRAM:
        raise NetFlowDecodeError(f"record count {count} out of range")
    expected = HEADER_LEN + count * RECORD_LEN
    if len(data) != expected:
        raise NetFlowDecodeError(
            f"datagram length mismatch: header claims {count} records"
            f" ({expected} bytes) but payload is {len(data)} bytes"
        )
    header = V5Header(
        version=version,
        count=count,
        sys_uptime=sys_uptime,
        unix_secs=unix_secs,
        unix_nsecs=unix_nsecs,
        flow_sequence=flow_sequence,
        engine_type=engine_type,
        engine_id=engine_id,
        sampling_interval=sampling_interval,
    )
    rows = list(RECORD_STRUCT.iter_unpack(memoryview(data)[HEADER_LEN:expected]))
    columns = cast(Tuple[_IntColumn, ...], tuple(zip(*rows)))
    # Wire layout (ttl in the pad1 slot at 11, pad at 19):
    # src dst nexthop input output packets octets first last sport dport
    # ttl flags proto tos src_as dst_as src_mask dst_mask pad2
    if not _columns_valid(columns[5], columns[6], columns[7], columns[8]):
        _raise_first_invalid(rows, _build_v5_record, "datagram")
    batch = ColumnarBatch(
        src_addr=columns[0],
        dst_addr=columns[1],
        protocol=columns[13],
        src_port=columns[9],
        dst_port=columns[10],
        tos=columns[14],
        input_if=columns[3],
        packets=columns[5],
        octets=columns[6],
        first=columns[7],
        last=columns[8],
        next_hop=columns[2],
        tcp_flags=columns[12],
        src_as=columns[15],
        dst_as=columns[16],
        src_mask=columns[17],
        dst_mask=columns[18],
        output_if=columns[4],
        ttl=columns[11],
    )
    return header, batch


def decode_v1_columnar(data: bytes) -> Tuple[int, ColumnarBatch]:
    """Decode one v1 export datagram column-wise; returns (sys_uptime, batch).

    Framing and semantic validation match
    :func:`repro.netflow.v1.decode_v1_datagram` exactly, including error
    messages.
    """
    if len(data) < V1_HEADER_LEN:
        raise NetFlowDecodeError(
            f"datagram too short for a v1 header: {len(data)} bytes"
        )
    version, count, sys_uptime, _secs, _nsecs = V1_HEADER_STRUCT.unpack_from(data, 0)
    if version != NETFLOW_V1_VERSION:
        raise NetFlowDecodeError(f"unsupported NetFlow version {version}")
    if count == 0 or count > MAX_V1_RECORDS:
        raise NetFlowDecodeError(f"record count {count} out of range")
    expected = V1_HEADER_LEN + count * V1_RECORD_LEN
    if len(data) != expected:
        raise NetFlowDecodeError(
            f"datagram length mismatch: header claims {count} records"
            f" ({expected} bytes) but payload is {len(data)} bytes"
        )
    rows = list(V1_RECORD_STRUCT.iter_unpack(memoryview(data)[V1_HEADER_LEN:expected]))
    columns = cast(Tuple[_IntColumn, ...], tuple(zip(*rows)))
    # Wire layout (pad at 11, reserved tail skipped by the format string):
    # src dst nexthop input output packets octets first last sport dport
    # pad proto tos flags
    if not _columns_valid(columns[5], columns[6], columns[7], columns[8]):
        _raise_first_invalid(rows, _build_v1_record, "v1 datagram")
    zeros = (0,) * count
    batch = ColumnarBatch(
        src_addr=columns[0],
        dst_addr=columns[1],
        protocol=columns[12],
        src_port=columns[9],
        dst_port=columns[10],
        tos=columns[13],
        input_if=columns[3],
        packets=columns[5],
        octets=columns[6],
        first=columns[7],
        last=columns[8],
        next_hop=columns[2],
        tcp_flags=columns[14],
        src_as=zeros,
        dst_as=zeros,
        src_mask=zeros,
        dst_mask=zeros,
        output_if=columns[4],
        ttl=zeros,
    )
    return sys_uptime, batch


def _build_v5_record(row: Tuple[Any, ...]) -> FlowRecord:
    """Row-wise v5 record construction (error fallback path)."""
    return FlowRecord(
        key=FlowKey(
            src_addr=row[0],
            dst_addr=row[1],
            protocol=row[13],
            src_port=row[9],
            dst_port=row[10],
            tos=row[14],
            input_if=row[3],
        ),
        packets=row[5],
        octets=row[6],
        first=row[7],
        last=row[8],
        next_hop=row[2],
        tcp_flags=row[12],
        src_as=row[15],
        dst_as=row[16],
        src_mask=row[17],
        dst_mask=row[18],
        output_if=row[4],
        ttl=row[11],
    )


def _build_v1_record(row: Tuple[Any, ...]) -> FlowRecord:
    """Row-wise v1 record construction (error fallback path)."""
    return FlowRecord(
        key=FlowKey(
            src_addr=row[0],
            dst_addr=row[1],
            protocol=row[12],
            src_port=row[9],
            dst_port=row[10],
            tos=row[13],
            input_if=row[3],
        ),
        packets=row[5],
        octets=row[6],
        first=row[7],
        last=row[8],
        next_hop=row[2],
        tcp_flags=row[14],
        output_if=row[4],
    )


def _raise_first_invalid(
    rows: List[Tuple[Any, ...]],
    build: Callable[[Tuple[Any, ...]], FlowRecord],
    label: str,
) -> None:
    """Re-raise the first per-record validation error, serial-identical.

    Column validation only says *some* record is bad; the serial decoder
    reports the first bad record's first bad field.  Walking rows in
    order through the real :class:`FlowRecord` constructor reproduces
    that message byte for byte.
    """
    for row in rows:
        try:
            build(row)
        except ValueError as error:
            raise NetFlowDecodeError(
                f"invalid flow record in {label}: {error}"
            ) from error
    raise NetFlowDecodeError(
        f"invalid flow record in {label}: column validation failed"
    )
