"""History-based IP filtering (the [Peng] comparison point).

Peng, Leckie and Kotagiri's defence keeps, at the edge router, a history
of source addresses that previously appeared legitimately; during
overload it admits only sources present in the history.  Two properties
distinguish it from InFilter (Section 2):

* it is **not peer-aware** — the history is network-wide, so a spoofed
  source that is a perfectly legitimate address *somewhere* on the
  Internet passes the filter as long as it has been seen before;
* it only activates under **overload**, so low-volume stealthy attacks
  slide through entirely.

Both properties are modelled here so the baseline benchmark can show
where each scheme wins.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Iterable

from repro.netflow.records import FlowRecord
from repro.util.errors import ConfigError
from repro.util.ip import Prefix, PrefixTrie

__all__ = ["HistoryFilterConfig", "HistoryFilter"]


@dataclass(frozen=True)
class HistoryFilterConfig:
    """Tuning of the history filter.

    ``granularity`` is the prefix length at which sources are remembered
    (the paper's implementation used address aggregates).  ``admission_
    count`` is how many appearances make a source "previously seen".
    Overload is declared when more than ``overload_flows`` flows arrive
    within ``overload_window_ms``.
    """

    granularity: int = 11
    admission_count: int = 1
    overload_flows: int = 500
    overload_window_ms: int = 1_000

    def __post_init__(self) -> None:
        if not 0 < self.granularity <= 32:
            raise ConfigError("granularity must be a valid prefix length")
        if self.admission_count < 1:
            raise ConfigError("admission_count must be positive")
        if self.overload_flows < 1 or self.overload_window_ms < 1:
            raise ConfigError("overload parameters must be positive")


class HistoryFilter:
    """The history-based admission filter."""

    def __init__(self, config: HistoryFilterConfig = HistoryFilterConfig()) -> None:
        self.config = config
        self._counts: PrefixTrie = PrefixTrie()
        self._arrivals: Deque[int] = deque()
        self.overload_activations = 0

    # -- history maintenance -------------------------------------------------

    def learn(self, record: FlowRecord) -> None:
        """Record a legitimate appearance of the flow's source."""
        block = Prefix.from_address(
            record.key.src_addr, self.config.granularity
        )
        self._counts.insert(block, (self._counts.get(block) or 0) + 1)

    def learn_all(self, records: Iterable[FlowRecord]) -> None:
        for record in records:
            self.learn(record)

    def in_history(self, address: int) -> bool:
        match = self._counts.longest_match(address)
        return match is not None and match[1] >= self.config.admission_count

    # -- online check ----------------------------------------------------------

    def is_overloaded(self, now_ms: int) -> bool:
        window_start = now_ms - self.config.overload_window_ms
        while self._arrivals and self._arrivals[0] < window_start:
            self._arrivals.popleft()
        return len(self._arrivals) > self.config.overload_flows

    def is_suspect(self, record: FlowRecord) -> bool:
        """Admission decision for one flow.

        Outside overload everything is admitted (and learned).  Under
        overload, sources absent from the history are suspect.
        """
        now_ms = record.last
        self._arrivals.append(now_ms)
        if not self.is_overloaded(now_ms):
            self.learn(record)
            return False
        self.overload_activations += 1
        return not self.in_history(record.key.src_addr)
