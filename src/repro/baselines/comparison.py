"""Side-by-side evaluation of InFilter against the related-work baselines.

Runs one testbed traffic mix (normal + spoofed attacks, optional route
instability) through:

* the Enhanced InFilter pipeline (this paper),
* the Basic InFilter configuration,
* strict uRPF over a partially asymmetric FIB ([URPF]),
* history-based IP filtering ([Peng]),
* a signature IDS whose database predates the stealthy attacks ([SNORT]),

and scores each with the same :class:`~repro.testbed.metrics.RunScore`
machinery.  This is the quantitative version of the paper's Section 2
arguments.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Tuple

from repro.baselines.history_filter import HistoryFilter, HistoryFilterConfig
from repro.baselines.signature_ids import SignatureIDS
from repro.baselines.urpf import UrpfFilter, asymmetric_fib
from repro.core.config import PipelineConfig
from repro.flowgen.traces import synthesize_trace
from repro.testbed.emulation import Testbed, TestbedConfig, TimedRecord
from repro.testbed.experiments import ExperimentParams
from repro.testbed.metrics import RunScore, SeriesScore
from repro.util.rng import SeededRng

__all__ = ["BASELINE_NAMES", "compare_baselines"]

BASELINE_NAMES: Tuple[str, ...] = (
    "enhanced_infilter",
    "basic_infilter",
    "urpf",
    "history_filter",
    "signature_ids",
)


def _collect_stream(
    testbed: Testbed, params: ExperimentParams, rng: SeededRng
) -> List[TimedRecord]:
    """Materialise one run's merged record stream (shared by baselines)."""
    from repro.testbed import experiments as _exp

    streams = []
    horizon_ms = 0
    for peer in range(testbed.config.n_peers):
        trace = synthesize_trace(
            params.normal_flows_per_peer, rng=rng.fork(f"trace-{peer}")
        )
        if trace:
            horizon_ms = max(horizon_ms, trace[-1].start_ms)
        dagflow = testbed.normal_dagflow(peer, testbed.eia_plan[peer])
        if params.route_change_blocks > 0:
            allocation = testbed.allocations_for(params.route_change_blocks, 1)[0]
            dagflow.set_blocks(allocation[peer].blocks)
        streams.append((peer, dagflow.replay(trace)))
    flow_budget = int(params.attack_volume * params.normal_flows_per_peer)
    for peer in params.attack_peers:
        if flow_budget <= 0:
            continue
        attack_flows = _exp._attack_trace(
            rng.fork(f"attacks-{peer}"),
            flow_budget=flow_budget,
            horizon_ms=max(horizon_ms, 1),
            peer=peer,
        )
        streams.append((peer, testbed.attack_dagflow(peer).replay(attack_flows)))
    return list(testbed.merge_streams(streams))


def _score(
    stream: Iterable[TimedRecord], is_suspect: Callable[[TimedRecord], bool]
) -> RunScore:
    score = RunScore()
    for timed in stream:
        flagged = is_suspect(timed)
        if timed.is_attack:
            score.note_attack(timed.label, flagged)
        else:
            score.note_normal(flagged)
    return score


def compare_baselines(
    testbed_config: TestbedConfig = TestbedConfig(),
    params: ExperimentParams = ExperimentParams(),
    *,
    urpf_asymmetry: float = 0.15,
) -> Dict[str, SeriesScore]:
    """Run all five detectors over identical traffic, ``params.runs`` times.

    ``urpf_asymmetry`` is the fraction of source blocks whose outbound
    best path differs from their ingress — uRPF's failure mode at network
    boundaries.
    """
    results: Dict[str, SeriesScore] = {name: SeriesScore() for name in BASELINE_NAMES}
    for run_index in range(params.runs):
        rng = SeededRng(params.seed + run_index, f"baseline-run-{run_index}")
        testbed = Testbed(testbed_config, rng=rng.fork("testbed"))
        stream = _collect_stream(testbed, params, rng.fork("traffic"))

        # Enhanced and Basic InFilter.
        for name, enhanced in (
            ("enhanced_infilter", True),
            ("basic_infilter", False),
        ):
            config = (
                PipelineConfig.enhanced_default()
                if enhanced
                else PipelineConfig.basic()
            )
            detector = testbed.build_detector(config)
            results[name].add(
                _score(stream, lambda t, d=detector: d.process(t.record).is_attack)
            )

        # Strict uRPF with a partially asymmetric FIB.
        fib = asymmetric_fib(
            {peer: blocks for peer, blocks in testbed.eia_plan.items()},
            asymmetry=urpf_asymmetry,
            rng=rng.fork("urpf"),
        )
        urpf = UrpfFilter(fib)
        results["urpf"].add(
            _score(stream, lambda t: urpf.is_suspect(t.record))
        )

        # History-based filtering, seeded with peacetime traffic from
        # every peer — the edge router's full view of legitimate sources.
        # Note this is precisely why the scheme cannot catch InFilter's
        # threat model: spoofed sources drawn from *other peers'* space
        # are legitimate addresses the history has already admitted.
        history = HistoryFilter(HistoryFilterConfig())
        peace_rng = rng.fork("peacetime")
        for peer in range(testbed.config.n_peers):
            dagflow = testbed.normal_dagflow(peer, testbed.eia_plan[peer])
            peace = synthesize_trace(
                max(params.normal_flows_per_peer // 2, 200),
                rng=peace_rng.fork(f"peace-{peer}"),
            )
            history.learn_all(lr.record for lr in dagflow.replay(peace))
        results["history_filter"].add(
            _score(stream, lambda t: history.is_suspect(t.record))
        )

        # Signature IDS with a pre-outbreak database.
        ids = SignatureIDS()
        results["signature_ids"].add(
            _score(stream, lambda t: ids.is_suspect(t.record))
        )
    return results
