"""Comparison baselines: uRPF, history-based filtering, signature IDS."""

from __future__ import annotations

from repro.baselines.comparison import BASELINE_NAMES, compare_baselines
from repro.baselines.history_filter import HistoryFilter, HistoryFilterConfig
from repro.baselines.signature_ids import (
    Signature,
    SignatureIDS,
    default_signatures,
)
from repro.baselines.urpf import UrpfFilter, asymmetric_fib

__all__ = [
    "BASELINE_NAMES",
    "compare_baselines",
    "HistoryFilter",
    "HistoryFilterConfig",
    "Signature",
    "SignatureIDS",
    "default_signatures",
    "UrpfFilter",
    "asymmetric_fib",
]
