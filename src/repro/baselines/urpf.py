"""Unicast Reverse Path Forwarding (the [URPF] comparison point).

uRPF accepts a packet only when the local routing table would route
traffic *toward* the packet's source out of the interface the packet
arrived on.  Section 2 explains why this is the wrong tool at boundaries
between large networks: inter-domain routing is asymmetric, so the egress
for a source is frequently not its ingress, and strict uRPF then drops
legitimate traffic.

:class:`UrpfFilter` implements the strict-mode check against a FIB;
:func:`asymmetric_fib` derives a FIB from an ingress plan with a
controlled fraction of asymmetric routes, letting experiments quantify
the false positives InFilter avoids by *learning* the ingress mapping
instead of assuming symmetry.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.netflow.records import FlowRecord
from repro.util.errors import ConfigError
from repro.util.ip import Prefix, PrefixTrie
from repro.util.rng import SeededRng

__all__ = ["UrpfFilter", "asymmetric_fib"]


class UrpfFilter:
    """Strict uRPF over a prefix → egress-interface FIB."""

    def __init__(self, fib: Optional[PrefixTrie] = None) -> None:
        self._fib: PrefixTrie = fib if fib is not None else PrefixTrie()

    def install(self, prefix: Prefix, egress_interface: int) -> None:
        """Install one FIB entry."""
        self._fib.insert(prefix, egress_interface)

    def egress_for(self, address: int) -> Optional[int]:
        match = self._fib.longest_match(address)
        return match[1] if match is not None else None

    def is_suspect(self, record: FlowRecord) -> bool:
        """Strict uRPF: suspect unless the FIB egress for the source
        equals the arrival interface.  A source with no route at all is
        always suspect (the classic bogon case)."""
        egress = self.egress_for(record.key.src_addr)
        return egress != record.key.input_if


def asymmetric_fib(
    ingress_plan: Dict[int, Sequence[Prefix]],
    *,
    asymmetry: float,
    rng: SeededRng,
) -> PrefixTrie:
    """A FIB derived from an ingress plan with asymmetric routes.

    ``ingress_plan`` maps each peer interface to the blocks whose traffic
    *enters* there.  For a fraction ``asymmetry`` of blocks the outbound
    best path differs (traffic toward the block leaves via some other
    peer), which is exactly the situation that breaks the uRPF
    assumption between large networks.
    """
    if not 0.0 <= asymmetry <= 1.0:
        raise ConfigError("asymmetry must be a fraction")
    peers = sorted(ingress_plan)
    fib: PrefixTrie = PrefixTrie()
    for peer in peers:
        for prefix in ingress_plan[peer]:
            egress = peer
            if len(peers) > 1 and rng.bernoulli(asymmetry):
                others = [p for p in peers if p != peer]
                egress = rng.choice(others)
            fib.insert(prefix, egress)
    return fib
