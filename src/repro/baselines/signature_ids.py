"""A signature-based IDS baseline (the [SNORT] comparison point).

The paper's point about COTS IDS (Section 1): stealthy spoofed attacks
"were not detected by the prevailing COTS IDS when they were launched"
because no signature existed yet, and signature maintenance has real cost.
This baseline models a flow-level signature engine whose database covers
only the *already published* attacks: detection is perfect inside the
database and zero outside it.

By default the database excludes :data:`~repro.flowgen.attacks.STEALTHY_
ATTACKS` — the attacks are treated as not yet discovered, matching the
paper's evaluation stance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Iterable, Optional

from repro.flowgen.attacks import ATTACK_NAMES, STEALTHY_ATTACKS
from repro.netflow.records import (
    PORT_DNS,
    PORT_FTP,
    PORT_HTTP,
    PORT_SMTP,
    PROTO_ICMP,
    PROTO_TCP,
    PROTO_UDP,
    TCP_SYN,
    FlowRecord,
)
from repro.util.errors import ConfigError

__all__ = ["Signature", "SignatureIDS", "default_signatures"]

Matcher = Callable[[FlowRecord], bool]


@dataclass(frozen=True)
class Signature:
    """One flow-level signature."""

    name: str
    matcher: Matcher

    def matches(self, record: FlowRecord) -> bool:
        return self.matcher(record)


def _bpp(record: FlowRecord) -> float:
    return record.octets / record.packets


def default_signatures() -> Dict[str, Signature]:
    """Flow-level signatures for every attack in the catalog.

    Each predicate matches the footprint the corresponding generator
    leaves (and essentially no normal traffic).  Which of these an engine
    instance actually *uses* is decided by its database (see
    :class:`SignatureIDS`).
    """
    return {
        name: Signature(name, matcher)
        for name, matcher in {
            "puke": lambda r: r.key.protocol == PROTO_ICMP
            and r.packets == 1
            and r.octets <= 84,
            "jolt": lambda r: r.key.protocol == PROTO_ICMP and _bpp(r) > 4_000,
            "teardrop": lambda r: r.key.protocol == PROTO_UDP
            and r.packets == 2
            and r.octets <= 120,
            "slammer": lambda r: r.key.protocol == PROTO_UDP
            and r.key.dst_port == 1434
            and r.octets == 404,
            "tfn2k": lambda r: r.key.protocol in (PROTO_UDP, PROTO_ICMP)
            and r.packets >= 80
            and _bpp(r) <= 64,
            "synflood": lambda r: r.key.protocol == PROTO_TCP
            and r.tcp_flags == TCP_SYN
            and r.key.dst_port == PORT_HTTP
            and r.packets <= 3,
            "network_scan": lambda r: r.key.protocol == PROTO_TCP
            and r.tcp_flags == TCP_SYN
            and r.packets == 1
            and r.octets <= 60,
            "host_scan": lambda r: r.key.protocol == PROTO_TCP
            and r.tcp_flags == TCP_SYN
            and r.packets == 1
            and r.octets <= 60
            and r.key.dst_port < 1024,
            "http_exploit": lambda r: r.key.protocol == PROTO_TCP
            and r.key.dst_port == PORT_HTTP
            and _bpp(r) > 10_000,
            "ftp_exploit": lambda r: r.key.protocol == PROTO_TCP
            and r.key.dst_port == PORT_FTP
            and _bpp(r) > 7_000,
            "smtp_exploit": lambda r: r.key.protocol == PROTO_TCP
            and r.key.dst_port == PORT_SMTP
            and r.packets >= 400,
            "dns_exploit": lambda r: r.key.protocol == PROTO_UDP
            and r.key.dst_port == PORT_DNS
            and r.octets > 1_500,
        }.items()
    }


class SignatureIDS:
    """A signature engine with a configurable database.

    ``known_attacks`` defaults to everything *except* the stealthy set —
    the paper's "treat these attacks as if they have not yet been
    discovered" stance.  :meth:`publish` adds a signature later, modelling
    the post-outbreak update cycle.
    """

    def __init__(self, known_attacks: Optional[Iterable[str]] = None) -> None:
        self._library = default_signatures()
        if known_attacks is None:
            known = set(ATTACK_NAMES) - set(STEALTHY_ATTACKS)
        else:
            known = set(known_attacks)
        unknown = known - set(self._library)
        if unknown:
            raise ConfigError(f"no signatures exist for {sorted(unknown)}")
        self._active: Dict[str, Signature] = {
            name: self._library[name] for name in sorted(known)
        }
        self.matches_by_signature: Dict[str, int] = {}

    @property
    def database(self) -> FrozenSet[str]:
        return frozenset(self._active)

    def publish(self, name: str) -> None:
        """Add a (now published) signature to the database."""
        try:
            self._active[name] = self._library[name]
        except KeyError:
            raise ConfigError(f"no signature exists for {name!r}") from None

    def match(self, record: FlowRecord) -> Optional[str]:
        """The first matching signature name, or None."""
        for name, signature in self._active.items():
            if signature.matches(record):
                self.matches_by_signature[name] = (
                    self.matches_by_signature.get(name, 0) + 1
                )
                return name
        return None

    def is_suspect(self, record: FlowRecord) -> bool:
        return self.match(record) is not None
