"""The invariant catalogue.

Each rule encodes one discipline the reproduction depends on, mostly
established the hard way (see ``docs/static-analysis.md`` for the full
story behind each):

========  ==============================================================
REP001    wall-clock reads only in ``util/timebase.py``
REP002    ``random`` module use only in ``util/rng.py``
REP003    library code raises only :class:`~repro.util.errors.ReproError`
          subclasses (plus ``NotImplementedError``/``AssertionError``)
REP004    no mutable default arguments
REP005    ``struct`` unpacks must sit behind a length guard
REP006    metric names follow the documented naming convention
REP007    public modules declare ``__all__`` consistent with their
          definitions
REP008    ``type: ignore`` must be error-code-scoped
REP009    stateful components implement the full stage-state protocol
          (``state_dict(self)`` / ``load_state(self, state)``), and
          ``core/persistence.py`` never reaches into private attributes
REP010    no blocking calls (``time.sleep``, synchronous socket
          receives/accepts, subprocess waits, console reads) inside
          ``async def`` bodies — event-loop code must stay non-blocking
========  ==============================================================

Rules are pure functions from a parsed :class:`ModuleInfo` to findings —
no I/O, no configuration files, no state — so adding one is writing a
single ``ast`` visitor and registering it in :data:`ALL_RULES`.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Tuple,
    Union,
)

from repro.analysis.findings import Finding

__all__ = ["ModuleInfo", "Rule", "ALL_RULES", "RULE_IDS"]


@dataclass(frozen=True)
class ModuleInfo:
    """One parsed source file, as the rules see it."""

    #: path as reported in findings (relative when the input was).
    path: str
    #: normalised posix path used for allowlist suffix matching.
    posix: str
    source: str
    tree: ast.Module
    #: test files get a lighter contract: rules marked ``library_only``
    #: skip them (a test may deliberately raise ValueError or register a
    #: junk metric name to provoke an error path).
    is_test: bool


@dataclass(frozen=True)
class Rule:
    """One named invariant check."""

    id: str
    summary: str
    check: Callable[[ModuleInfo], Iterable[Finding]]
    #: rule does not apply to test files.
    library_only: bool = False
    #: posix path suffixes exempt from this rule (the module that
    #: legitimately owns the banned construct).
    allowed_paths: Tuple[str, ...] = ()

    def applies_to(self, info: ModuleInfo) -> bool:
        if self.library_only and info.is_test:
            return False
        return not any(info.posix.endswith(suffix) for suffix in self.allowed_paths)


FuncNode = Union[ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda]


def _finding(info: ModuleInfo, rule: str, node: ast.AST, message: str) -> Finding:
    return Finding(
        rule=rule,
        path=info.path,
        line=getattr(node, "lineno", 1),
        message=message,
    )


def _import_aliases(tree: ast.Module) -> Dict[str, str]:
    """Map local names to the qualified names they import.

    ``import time`` binds ``time -> time``; ``from datetime import
    datetime as dt`` binds ``dt -> datetime.datetime``.  Relative imports
    are project-internal and never resolve to a banned stdlib name, so
    they are skipped.
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                aliases[local] = alias.name if alias.asname else local
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                if alias.name == "*":
                    continue
                aliases[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return aliases


def _resolve(node: ast.AST, aliases: Dict[str, str]) -> Optional[str]:
    """Resolve a Name/Attribute chain to a qualified dotted name."""
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    origin = aliases.get(current.id)
    if origin is None:
        return None
    parts.append(origin)
    return ".".join(reversed(parts))


def _walk_scoped(tree: ast.Module) -> Iterator[Tuple[ast.AST, Optional[FuncNode]]]:
    """Yield every node with its innermost enclosing function (or None)."""

    def visit(node: ast.AST, scope: Optional[FuncNode]) -> Iterator[
        Tuple[ast.AST, Optional[FuncNode]]
    ]:
        for child in ast.iter_child_nodes(node):
            yield child, scope
            child_scope = (
                child
                if isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
                )
                else scope
            )
            yield from visit(child, child_scope)

    yield from visit(tree, None)


# -- REP001: wall-clock ----------------------------------------------------

#: Reading any of these makes a run depend on when it was started, which
#: breaks bit-for-bit replay.  ``time.perf_counter`` is deliberately not
#: listed: durations are observability, not simulation input.
_WALL_CLOCK = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.localtime",
        "time.gmtime",
        "time.ctime",
        "time.asctime",
        "time.strftime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)


def _check_wall_clock(info: ModuleInfo) -> Iterator[Finding]:
    aliases = _import_aliases(info.tree)
    for node in ast.walk(info.tree):
        if not isinstance(node, (ast.Name, ast.Attribute)):
            continue
        resolved = _resolve(node, aliases)
        if resolved in _WALL_CLOCK:
            yield _finding(
                info,
                "REP001",
                node,
                f"wall-clock read {resolved}(); simulated time comes from"
                " repro.util.timebase.SimClock",
            )


# -- REP002: direct random -------------------------------------------------


def _check_direct_random(info: ModuleInfo) -> Iterator[Finding]:
    aliases = _import_aliases(info.tree)
    for node in ast.walk(info.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random" or alias.name.startswith("random."):
                    yield _finding(
                        info,
                        "REP002",
                        node,
                        "direct 'import random'; draw from"
                        " repro.util.rng.SeededRng instead",
                    )
        elif isinstance(node, ast.ImportFrom):
            if node.level == 0 and node.module == "random":
                yield _finding(
                    info,
                    "REP002",
                    node,
                    "direct 'from random import ...'; draw from"
                    " repro.util.rng.SeededRng instead",
                )
        elif isinstance(node, ast.Attribute):
            resolved = _resolve(node, aliases)
            if resolved is not None and resolved.startswith("random."):
                yield _finding(
                    info,
                    "REP002",
                    node,
                    f"direct use of {resolved}; draw from"
                    " repro.util.rng.SeededRng instead",
                )


# -- REP003: error taxonomy ------------------------------------------------

#: Builtins that library code must not raise directly: callers catch
#: ReproError at API boundaries, and a raw builtin escapes that contract.
#: The taxonomy in repro.util.errors multiply-inherits (e.g. ConfigError
#: is also a ValueError) so migrating a raise never breaks existing
#: ``except ValueError`` callers.
_RAW_EXCEPTIONS = frozenset(
    {
        "ArithmeticError",
        "AttributeError",
        "BaseException",
        "BufferError",
        "EOFError",
        "Exception",
        "IOError",
        "IndexError",
        "KeyError",
        "LookupError",
        "NameError",
        "OSError",
        "OverflowError",
        "RuntimeError",
        "StopIteration",
        "SystemError",
        "TypeError",
        "ValueError",
        "ZeroDivisionError",
    }
)


def _check_raise_taxonomy(info: ModuleInfo) -> Iterator[Finding]:
    for node in ast.walk(info.tree):
        if not isinstance(node, ast.Raise) or node.exc is None:
            continue
        exc = node.exc
        target = exc.func if isinstance(exc, ast.Call) else exc
        name: Optional[str] = None
        if isinstance(target, ast.Name):
            name = target.id
        elif isinstance(target, ast.Attribute):
            name = target.attr
        if name in _RAW_EXCEPTIONS:
            yield _finding(
                info,
                "REP003",
                node,
                f"raises builtin {name}; raise a ReproError subclass from"
                " repro.util.errors so API boundaries can catch one base",
            )


# -- REP004: mutable defaults ----------------------------------------------

_MUTABLE_CALLS = frozenset({"list", "dict", "set", "bytearray", "deque", "defaultdict"})


def _is_mutable_default(node: ast.AST) -> bool:
    if isinstance(
        node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)
    ):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in _MUTABLE_CALLS:
            return True
        if isinstance(func, ast.Attribute) and func.attr in _MUTABLE_CALLS:
            return True
    return False


def _check_mutable_defaults(info: ModuleInfo) -> Iterator[Finding]:
    for node in ast.walk(info.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        defaults: List[ast.AST] = list(node.args.defaults)
        defaults.extend(d for d in node.args.kw_defaults if d is not None)
        for default in defaults:
            if _is_mutable_default(default):
                yield _finding(
                    info,
                    "REP004",
                    default,
                    "mutable default argument is shared across calls;"
                    " default to None (or use dataclass default_factory)",
                )


# -- REP005: guarded unpack ------------------------------------------------


def _is_unpack_call(node: ast.Call, aliases: Dict[str, str]) -> bool:
    func = node.func
    if isinstance(func, ast.Attribute) and func.attr in ("unpack", "unpack_from"):
        return True
    resolved = _resolve(func, aliases)
    return resolved in ("struct.unpack", "struct.unpack_from")


def _test_guards_length(test: ast.AST) -> bool:
    """Does a condition look at a buffer length (``len(...)`` or ``.size``)?"""
    for node in ast.walk(test):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            if node.func.id == "len":
                return True
        if isinstance(node, ast.Attribute) and node.attr == "size":
            return True
    return False


def _guard_lines(scope: ast.AST) -> List[int]:
    lines = []
    for node in ast.walk(scope):
        if isinstance(node, (ast.If, ast.While)) and _test_guards_length(node.test):
            lines.append(node.lineno)
        elif isinstance(node, ast.Assert) and _test_guards_length(node.test):
            lines.append(node.lineno)
    return lines


def _check_guarded_unpack(info: ModuleInfo) -> Iterator[Finding]:
    aliases = _import_aliases(info.tree)
    guard_cache: Dict[int, List[int]] = {}
    for node, scope in _walk_scoped(info.tree):
        if not isinstance(node, ast.Call) or not _is_unpack_call(node, aliases):
            continue
        scope_node: ast.AST = scope if scope is not None else info.tree
        key = id(scope_node)
        if key not in guard_cache:
            guard_cache[key] = _guard_lines(scope_node)
        if not any(line <= node.lineno for line in guard_cache[key]):
            yield _finding(
                info,
                "REP005",
                node,
                "struct unpack without a preceding length guard in this"
                " scope; short network input must raise"
                " NetFlowDecodeError, not struct.error",
            )


# -- REP006: metric naming -------------------------------------------------

_METRIC_NAME_RE = re.compile(r"^infilter_[a-z0-9]+(_[a-z0-9]+)+$")
#: histogram names carry their unit, per the Prometheus conventions the
#: exporter follows (docs/observability.md).
_HISTOGRAM_UNITS = ("_seconds", "_bytes")


def _check_metric_names(info: ModuleInfo) -> Iterator[Finding]:
    for node in ast.walk(info.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not isinstance(func, ast.Attribute):
            continue
        kind = func.attr
        if kind not in ("counter", "gauge", "histogram") or not node.args:
            continue
        first = node.args[0]
        if not isinstance(first, ast.Constant) or not isinstance(first.value, str):
            continue
        name = first.value
        if not _METRIC_NAME_RE.match(name):
            yield _finding(
                info,
                "REP006",
                first,
                f"metric name {name!r} does not match the documented"
                " 'infilter_<component>_<what>' convention",
            )
            continue
        if kind == "counter" and not name.endswith("_total"):
            yield _finding(
                info,
                "REP006",
                first,
                f"counter {name!r} must end in '_total'",
            )
        elif kind == "histogram" and not name.endswith(_HISTOGRAM_UNITS):
            yield _finding(
                info,
                "REP006",
                first,
                f"histogram {name!r} must carry a unit suffix"
                f" ({' or '.join(_HISTOGRAM_UNITS)})",
            )
        elif kind == "gauge" and name.endswith("_total"):
            yield _finding(
                info,
                "REP006",
                first,
                f"gauge {name!r} must not end in '_total' (that suffix"
                " marks monotonic counters)",
            )


# -- REP007: __all__ consistency -------------------------------------------


def _top_level_bindings(tree: ast.Module) -> FrozenSet[str]:
    names: List[str] = []
    for stmt in tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            names.append(stmt.name)
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                for node in ast.walk(target):
                    if isinstance(node, ast.Name):
                        names.append(node.id)
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            names.append(stmt.target.id)
        elif isinstance(stmt, (ast.Import, ast.ImportFrom)):
            for alias in stmt.names:
                if alias.name == "*":
                    continue
                names.append(alias.asname or alias.name.split(".")[0])
    return frozenset(names)


def _declared_all(tree: ast.Module) -> Optional[Tuple[ast.AST, List[str]]]:
    for stmt in tree.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        if not any(
            isinstance(t, ast.Name) and t.id == "__all__" for t in targets
        ):
            continue
        if not isinstance(value, (ast.List, ast.Tuple)):
            return stmt, []
        entries = [
            element.value
            for element in value.elts
            if isinstance(element, ast.Constant) and isinstance(element.value, str)
        ]
        return stmt, entries
    return None


def _check_dunder_all(info: ModuleInfo) -> Iterator[Finding]:
    declared = _declared_all(info.tree)
    if declared is None:
        yield Finding(
            rule="REP007",
            path=info.path,
            line=1,
            message="public module declares no __all__; spell out the"
            " export surface",
        )
        return
    stmt, entries = declared
    bindings = _top_level_bindings(info.tree)
    for entry in entries:
        if entry not in bindings:
            yield _finding(
                info,
                "REP007",
                stmt,
                f"__all__ exports {entry!r} which is not defined or"
                " imported at module top level",
            )
    exported = frozenset(entries)
    for node in info.tree.body:
        if not isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        if node.name.startswith("_") or node.name in exported:
            continue
        yield _finding(
            info,
            "REP007",
            node,
            f"public top-level {node.name!r} is missing from __all__;"
            " export it or prefix it with '_'",
        )


# -- REP008: scoped type-ignores -------------------------------------------

_BARE_IGNORE_RE = re.compile(r"#\s*type:\s*ignore(?!\s*\[)")


def _check_scoped_ignores(info: ModuleInfo) -> Iterator[Finding]:
    for number, line in enumerate(info.source.splitlines(), start=1):
        if _BARE_IGNORE_RE.search(line):
            yield Finding(
                rule="REP008",
                path=info.path,
                line=number,
                message="bare 'type: ignore' suppresses every mypy error"
                " on the line; scope it as 'type: ignore[code]'",
            )


# -- REP009: the stage-state protocol ----------------------------------------


def _is_stateful_decorator(decorator: ast.expr) -> bool:
    target = decorator.func if isinstance(decorator, ast.Call) else decorator
    if isinstance(target, ast.Name):
        return target.id == "stateful"
    if isinstance(target, ast.Attribute):
        return target.attr == "stateful"
    return False


def _method_named(cls: ast.ClassDef, name: str) -> Optional[ast.FunctionDef]:
    for stmt in cls.body:
        if isinstance(stmt, ast.FunctionDef) and stmt.name == name:
            return stmt
    return None


def _plain_positional_names(fn: ast.FunctionDef) -> Optional[List[str]]:
    """The argument names iff the signature is plain positional-only.

    None when the function takes varargs, keyword-only arguments,
    positional-only markers, or defaults — anything beyond the exact
    protocol shape.
    """
    args = fn.args
    if (
        args.posonlyargs
        or args.kwonlyargs
        or args.vararg is not None
        or args.kwarg is not None
        or args.defaults
    ):
        return None
    return [arg.arg for arg in args.args]


_STATE_SIGNATURES: Tuple[Tuple[str, Tuple[str, ...]], ...] = (
    ("state_dict", ("self",)),
    ("load_state", ("self", "state")),
)


def _check_state_protocol(info: ModuleInfo) -> Iterator[Finding]:
    for node in ast.walk(info.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        decorated = any(
            _is_stateful_decorator(d) for d in node.decorator_list
        )
        methods = {
            name: _method_named(node, name)
            for name, _ in _STATE_SIGNATURES
        }
        if not decorated and not any(methods.values()):
            continue
        for name, signature in _STATE_SIGNATURES:
            method = methods[name]
            if method is None:
                yield _finding(
                    info,
                    "REP009",
                    node,
                    f"stateful component {node.name!r} defines no {name}();"
                    " the stage-state protocol needs both state_dict(self)"
                    " and load_state(self, state)",
                )
            elif tuple(_plain_positional_names(method) or ()) != signature:
                yield _finding(
                    info,
                    "REP009",
                    method,
                    f"{node.name}.{name} must have the exact protocol"
                    f" signature ({', '.join(signature)})",
                )
    if info.posix.endswith("repro/core/persistence.py"):
        for node in ast.walk(info.tree):
            if (
                isinstance(node, ast.Attribute)
                and node.attr.startswith("_")
                and not (
                    node.attr.startswith("__") and node.attr.endswith("__")
                )
            ):
                yield _finding(
                    info,
                    "REP009",
                    node,
                    f"persistence reaches into private attribute"
                    f" {node.attr!r}; components expose checkpoint state"
                    " only through the stage-state protocol",
                )


# -- REP010: no blocking calls in async bodies --------------------------------

#: Qualified call targets that park the calling thread — inside a
#: coroutine they stall the entire event loop (every queue, socket, and
#: timer it drives).  The async equivalents: ``asyncio.sleep``,
#: ``loop.sock_recv*``, ``loop.run_in_executor`` for subprocess work.
_BLOCKING_QUALIFIED = frozenset(
    {
        "time.sleep",
        "os.wait",
        "os.waitpid",
        "select.select",
        "selectors.DefaultSelector",
        "socket.create_connection",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
    }
)

#: Method names that are blocking waits on every object that defines
#: them in the stdlib networking/file surface.  ``sendto`` is NOT here:
#: ``asyncio.DatagramTransport.sendto`` is the canonical *non-blocking*
#: UDP send, and a datagram ``socket.sendto`` does not wait either.
_BLOCKING_METHODS = frozenset(
    {"recv", "recvfrom", "recv_into", "recvmsg", "sendall", "accept"}
)


def _check_async_blocking(info: ModuleInfo) -> Iterator[Finding]:
    aliases = _import_aliases(info.tree)
    # A call that is directly awaited is the event loop doing its job
    # (``await loop.sock_recv(...)``), never a blocking wait.
    awaited = {
        id(node.value)
        for node in ast.walk(info.tree)
        if isinstance(node, ast.Await)
    }
    for node, scope in _walk_scoped(info.tree):
        if not isinstance(node, ast.Call) or id(node) in awaited:
            continue
        if not isinstance(scope, ast.AsyncFunctionDef):
            continue
        func = node.func
        resolved = _resolve(func, aliases)
        if resolved in _BLOCKING_QUALIFIED:
            yield _finding(
                info,
                "REP010",
                node,
                f"blocking call {resolved}() inside 'async def"
                f" {scope.name}' stalls the event loop; use the asyncio"
                " equivalent (e.g. asyncio.sleep, loop.sock_* or an"
                " executor)",
            )
        elif (
            isinstance(func, ast.Attribute)
            and func.attr in _BLOCKING_METHODS
            and resolved is None
        ):
            yield _finding(
                info,
                "REP010",
                node,
                f"synchronous .{func.attr}() inside 'async def"
                f" {scope.name}' blocks the event loop; await the"
                " transport/loop API instead",
            )
        elif isinstance(func, ast.Name) and func.id == "input":
            yield _finding(
                info,
                "REP010",
                node,
                f"console read input() inside 'async def {scope.name}'"
                " blocks the event loop",
            )


ALL_RULES: Tuple[Rule, ...] = (
    Rule(
        id="REP001",
        summary="no wall-clock reads outside util/timebase.py",
        check=_check_wall_clock,
        allowed_paths=("repro/util/timebase.py",),
    ),
    Rule(
        id="REP002",
        summary="no direct random module use outside util/rng.py",
        check=_check_direct_random,
        allowed_paths=("repro/util/rng.py",),
    ),
    Rule(
        id="REP003",
        summary="library code raises only ReproError subclasses",
        check=_check_raise_taxonomy,
        library_only=True,
    ),
    Rule(
        id="REP004",
        summary="no mutable default arguments",
        check=_check_mutable_defaults,
    ),
    Rule(
        id="REP005",
        summary="struct unpacks sit behind a length guard",
        check=_check_guarded_unpack,
    ),
    Rule(
        id="REP006",
        summary="metric names follow the documented convention",
        check=_check_metric_names,
        library_only=True,
    ),
    Rule(
        id="REP007",
        summary="public modules declare a consistent __all__",
        check=_check_dunder_all,
        library_only=True,
    ),
    Rule(
        id="REP008",
        summary="type: ignore comments are error-code-scoped",
        check=_check_scoped_ignores,
    ),
    Rule(
        id="REP009",
        summary="stateful components implement the full stage-state protocol",
        check=_check_state_protocol,
        library_only=True,
    ),
    Rule(
        id="REP010",
        summary="no blocking calls inside async def bodies",
        check=_check_async_blocking,
    ),
)

#: Every selectable rule id, including REP000 (linter-internal findings:
#: unparsable files and malformed pragmas).
RULE_IDS: FrozenSet[str] = frozenset(rule.id for rule in ALL_RULES) | {"REP000"}
