"""Cross-module invariant rules (REP011–REP015) — phase 2.

Each :class:`ProjectRule` checks one whole-program property against the
assembled :class:`~repro.analysis.graph.ProjectGraph`:

* **REP011** — the layer DAG.  Every ``repro.*`` package has a declared
  rank in :data:`LAYERS`; imports may only point downward.  A handful
  of :data:`TRANSITIVE_BANS` additionally forbid *reaching* a package
  through any chain, and violations name the full offending chain.
* **REP012** — derived-cache containment.  Fastpath memo state is
  rebuilt, never restored: cache classes in ``repro.fastpath`` must not
  implement the stage-state protocol, and no ``state_dict`` anywhere
  may read an attribute holding a fastpath cache.
* **REP013** — concurrency safety.  Module-level mutable state written
  from ``async def`` or from shard-worker code paths, and synchronous
  locks held across an ``await``.
* **REP014** — checkpoint-write containment.  Raw checkpoint writes
  (``open(..., "w")``, ``os.replace``, ``write_bytes``) belong in the
  atomic helper in ``repro.core.persistence`` and nowhere else.
* **REP015** — metric-name drift, both directions, between registered
  ``infilter_*`` metrics and the ``docs/observability.md`` catalogue.

Project rules skip test modules: tests intentionally construct the very
shapes these rules exist to forbid.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from .findings import Finding
from .graph import ProjectGraph
from .symbols import ModuleSymbols

__all__ = [
    "LAYERS",
    "PROJECT_RULES",
    "PROJECT_RULE_IDS",
    "ProjectRule",
    "TRANSITIVE_BANS",
]


@dataclass(frozen=True)
class ProjectRule:
    """One whole-program invariant check."""

    id: str
    summary: str
    check: Callable[[ProjectGraph], Iterable[Finding]]


#: The declared layer DAG: ``repro.<package>`` -> rank.  An import
#: edge is legal only if it stays inside one package or points at a
#: strictly lower rank.  This table is the single source of truth the
#: docs render; amend it here first.
LAYERS: Dict[str, int] = {
    "util": 0,
    "obs": 1,
    "analysis": 1,
    "netflow": 2,
    "routing": 2,
    "fastpath": 3,
    "flowgen": 3,
    "validation": 3,
    "core": 4,
    "engine": 5,
    "serve": 5,
    "testbed": 5,
    "baselines": 6,
    "cluster": 6,
    "cli": 7,
}

#: rank given to the ``repro`` package facade itself (``repro/__init__``
#: re-exports from everywhere, so it sits above every layer).
_FACADE_RANK = 99

#: Hard reachability bans on top of the rank check: ``src`` must not
#: reach any package in its ban set through *any* import chain.  The
#: rank check already rejects direct upward edges; these catch laundering
#: an upward dependency through an intermediate layer.
TRANSITIVE_BANS: Dict[str, Tuple[str, ...]] = {
    "core": ("engine", "serve"),
    "fastpath": ("core", "engine", "serve"),
    "analysis": (
        "baselines",
        "cli",
        "core",
        "engine",
        "fastpath",
        "flowgen",
        "netflow",
        "obs",
        "routing",
        "serve",
        "testbed",
        "validation",
    ),
}


def _package_of(module: str) -> Optional[str]:
    """``repro.fastpath.plane`` -> ``fastpath``; non-repro -> None."""
    parts = module.split(".")
    if parts[0] != "repro":
        return None
    if len(parts) == 1:
        return ""
    return parts[1]


def _rank(package: str) -> Optional[int]:
    if package == "":
        return _FACADE_RANK
    return LAYERS.get(package)


def _checked_modules(graph: ProjectGraph) -> Iterable[ModuleSymbols]:
    for name in sorted(graph.modules):
        symbols = graph.modules[name]
        if symbols.is_test or not name.startswith("repro"):
            continue
        yield symbols


def _check_layers(graph: ProjectGraph) -> Iterable[Finding]:
    checked = {s.module for s in _checked_modules(graph)}
    # adjacency over checked repro modules, for the chain search.
    adjacency: Dict[str, List[Tuple[str, int]]] = {m: [] for m in checked}
    direct: List[Finding] = []
    for importer, imported, line in graph.edges():
        if importer not in checked:
            continue
        src_pkg = _package_of(importer)
        dst_pkg = _package_of(imported)
        if src_pkg is None or dst_pkg is None:
            continue
        if imported in checked:
            adjacency[importer].append((imported, line))
        if src_pkg == dst_pkg:
            continue
        src_rank = _rank(src_pkg)
        dst_rank = _rank(dst_pkg)
        path = graph.modules[importer].path
        if src_rank is None:
            direct.append(
                Finding(
                    rule="REP011",
                    path=path,
                    line=line,
                    message=(
                        f"package 'repro.{src_pkg}' is not in the declared "
                        "layer table (repro.analysis.project_rules.LAYERS); "
                        "add it with a rank before importing across layers"
                    ),
                )
            )
            continue
        if dst_rank is None:
            direct.append(
                Finding(
                    rule="REP011",
                    path=path,
                    line=line,
                    message=(
                        f"import of 'repro.{dst_pkg}' which is not in the "
                        "declared layer table "
                        "(repro.analysis.project_rules.LAYERS)"
                    ),
                )
            )
            continue
        if dst_rank >= src_rank:
            direct.append(
                Finding(
                    rule="REP011",
                    path=path,
                    line=line,
                    message=(
                        f"layer violation: 'repro.{src_pkg}' (rank "
                        f"{src_rank}) imports '{imported}' ('repro.{dst_pkg}'"
                        f" is rank {dst_rank}); imports must point strictly "
                        "down the layer DAG"
                    ),
                )
            )
    yield from direct

    # Transitive bans: BFS from each module of a banned-source package,
    # reporting only chains of length >= 2 (direct edges are already
    # covered by the rank check above).
    for src_pkg, banned in TRANSITIVE_BANS.items():
        banned_set = set(banned)
        for module in sorted(checked):
            if _package_of(module) != src_pkg:
                continue
            parent: Dict[str, Tuple[str, int]] = {}
            queue = deque([module])
            seen = {module}
            while queue:
                current = queue.popleft()
                for neighbour, line in adjacency.get(current, []):
                    if neighbour in seen:
                        continue
                    seen.add(neighbour)
                    parent[neighbour] = (current, line)
                    pkg = _package_of(neighbour)
                    if pkg in banned_set:
                        chain = [neighbour]
                        node = neighbour
                        while node in parent:
                            node = parent[node][0]
                            chain.append(node)
                        chain.reverse()
                        if len(chain) > 2:
                            first_line = parent[chain[1]][1]
                            yield Finding(
                                rule="REP011",
                                path=graph.modules[module].path,
                                line=first_line,
                                message=(
                                    f"'repro.{src_pkg}' must not reach "
                                    f"'repro.{pkg}'; offending import "
                                    "chain: " + " -> ".join(chain)
                                ),
                            )
                        continue
                    queue.append(neighbour)


_STATE_METHODS = ("state_dict", "load_state")


def _check_cache_containment(graph: ProjectGraph) -> Iterable[Finding]:
    # (a) fastpath cache classes must not join the stage-state protocol.
    fastpath_classes: Dict[str, str] = {}
    for symbols in _checked_modules(graph):
        if not symbols.module.startswith("repro.fastpath"):
            continue
        for cls in symbols.classes.values():
            fastpath_classes[f"{symbols.module}.{cls.name}"] = cls.name
            for method in _STATE_METHODS:
                if method in cls.method_lines:
                    yield Finding(
                        rule="REP012",
                        path=symbols.path,
                        line=cls.method_lines[method],
                        message=(
                            f"fastpath cache class '{cls.name}' implements "
                            f"'{method}'; derived caches are rebuilt, never "
                            "serialized — remove it from the stage-state "
                            "protocol"
                        ),
                    )

    # (b) no state_dict may reach an attribute holding a fastpath cache.
    for symbols in _checked_modules(graph):
        for cls in symbols.classes.values():
            cache_attrs = {
                attr
                for attr, ctor in cls.attr_ctors.items()
                if ctor in fastpath_classes
                or ctor.startswith("repro.fastpath.")
            }
            if not cache_attrs or "state_dict" not in cls.method_lines:
                continue
            # Close over self-method calls reachable from state_dict.
            reachable = {"state_dict"}
            frontier = ["state_dict"]
            while frontier:
                method = frontier.pop()
                for callee in cls.method_self_calls.get(method, ()):
                    if callee in cls.method_lines and callee not in reachable:
                        reachable.add(callee)
                        frontier.append(callee)
            touched = sorted(
                attr
                for method in reachable
                for attr in cls.method_self_reads.get(method, ())
                if attr in cache_attrs
            )
            if touched:
                yield Finding(
                    rule="REP012",
                    path=symbols.path,
                    line=cls.method_lines["state_dict"],
                    message=(
                        f"'{cls.name}.state_dict' reaches derived-cache "
                        f"attribute(s) {', '.join(sorted(set(touched)))}; "
                        "fastpath memos must never be serialized "
                        "(byte-identity rule from the stage-state protocol)"
                    ),
                )


def _is_worker_scope(qualname: str) -> bool:
    head = qualname.split(".", 1)[0]
    return head == "ShardWorker" or head.startswith("_pool_")


def _check_concurrency(graph: ProjectGraph) -> Iterable[Finding]:
    by_module = {s.module: s for s in _checked_modules(graph)}
    for symbols in by_module.values():
        for fn in symbols.functions:
            hazardous = fn.is_async or _is_worker_scope(fn.qualname)
            if hazardous:
                for target_module, name, line, kind in fn.global_writes:
                    owner = (
                        symbols
                        if target_module == ""
                        else by_module.get(target_module)
                    )
                    if owner is None:
                        continue
                    if kind == "rebind":
                        shared = name in owner.module_globals
                    else:
                        shared = name in owner.mutable_globals
                    if not shared:
                        continue
                    where = (
                        "async function"
                        if fn.is_async
                        else "shard-worker code path"
                    )
                    yield Finding(
                        rule="REP013",
                        path=symbols.path,
                        line=line,
                        message=(
                            f"module-level state '{name}' (defined at "
                            f"{owner.module}:"
                            f"{owner.module_globals.get(name, 0)}) is "
                            f"written from {where} '{fn.qualname}'; shared "
                            "mutable globals under concurrency need a lock "
                            "or per-task state"
                        ),
                    )
            for line in fn.lock_waits:
                yield Finding(
                    rule="REP013",
                    path=symbols.path,
                    line=line,
                    message=(
                        f"synchronous lock held across 'await' in "
                        f"'{fn.qualname}'; this blocks the event loop for "
                        "every other task — use an asyncio lock or release "
                        "before awaiting"
                    ),
                )


_ATOMIC_HELPER_SUFFIX = "repro/core/persistence.py"


def _check_checkpoint_writes(graph: ProjectGraph) -> Iterable[Finding]:
    for symbols in _checked_modules(graph):
        if symbols.posix.endswith(_ATOMIC_HELPER_SUFFIX):
            continue
        for line, desc in symbols.checkpoint_writes:
            yield Finding(
                rule="REP014",
                path=symbols.path,
                line=line,
                message=(
                    f"raw checkpoint write ({desc}); checkpoint files must "
                    "flow through the atomic temp+os.replace helper in "
                    "repro.core.persistence so crashes never leave a "
                    "torn checkpoint"
                ),
            )


def _check_metric_drift(graph: ProjectGraph) -> Iterable[Finding]:
    registered: Dict[str, Tuple[str, int]] = {}
    for symbols in _checked_modules(graph):
        for metric in symbols.metrics:
            if not metric.name.startswith("infilter_"):
                continue
            registered.setdefault(metric.name, (symbols.path, metric.line))
    doc = graph.doc
    if doc is None:
        return
    for name in sorted(registered):
        if name not in doc.names:
            path, line = registered[name]
            yield Finding(
                rule="REP015",
                path=path,
                line=line,
                message=(
                    f"metric '{name}' is registered in code but missing "
                    "from the catalogue tables in docs/observability.md"
                ),
            )
    # The doc->code direction is only meaningful when the whole tree is
    # being linted; keyed on the registry module being in the graph so a
    # partial lint of one file does not declare every metric undocumented.
    if "repro.obs.registry" not in graph.modules:
        return
    for name in sorted(doc.names):
        if name not in registered:
            yield Finding(
                rule="REP015",
                path=doc.path,
                line=doc.names[name],
                message=(
                    f"metric '{name}' is documented in "
                    "docs/observability.md but never registered in code"
                ),
            )


PROJECT_RULES: Tuple[ProjectRule, ...] = (
    ProjectRule(
        id="REP011",
        summary=(
            "Imports must follow the declared layer DAG; banned packages "
            "must be unreachable through any import chain."
        ),
        check=_check_layers,
    ),
    ProjectRule(
        id="REP012",
        summary=(
            "Fastpath derived caches stay out of the stage-state protocol: "
            "no state_dict may define or reach memo state."
        ),
        check=_check_cache_containment,
    ),
    ProjectRule(
        id="REP013",
        summary=(
            "No writes to module-level mutable state from async or "
            "shard-worker code; no sync lock held across await."
        ),
        check=_check_concurrency,
    ),
    ProjectRule(
        id="REP014",
        summary=(
            "Checkpoint writes go through the atomic helper in "
            "repro.core.persistence, never raw open/os.replace."
        ),
        check=_check_checkpoint_writes,
    ),
    ProjectRule(
        id="REP015",
        summary=(
            "Registered infilter_* metrics and the docs/observability.md "
            "catalogue must match exactly, both directions."
        ),
        check=_check_metric_drift,
    ),
)

PROJECT_RULE_IDS = frozenset(rule.id for rule in PROJECT_RULES)
