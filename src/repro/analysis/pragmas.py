"""In-source suppression pragmas.

A call site that deliberately breaks an invariant carries a pragma naming
the rule it is allowed to break, so every exception is visible and
greppable at the point of use::

    rng = random.Random(seed)  # repro: allow[REP002] -- verbatim paper stream

A pragma suppresses the named rules on its own line, or — when written as
a standalone comment — on the next source line (for statements whose node
starts past a line-length budget).  An ``allow-file`` pragma comment (the
same grammar with ``allow-file[...]`` in place of ``allow[...]``) widens
the scope to the whole module and is meant for files that *implement* an
escape hatch, such as the linter's own fixtures.

Unknown rule ids and malformed pragmas are reported as ``REP000`` findings
rather than silently ignored: a typo in a suppression must not become a
silent hole in the gate.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Set, Tuple

from repro.analysis.findings import Finding

__all__ = ["PragmaTable", "parse_pragmas"]

#: Pragmas share one grammar — a comment reading ``repro:`` then
#: ``allow[RULES]`` or ``allow-file[RULES]`` with RULES a comma-separated
#: list of rule ids.  Trailing prose after the closing bracket is welcome
#: (use it to justify the exception).
_PRAGMA_RE = re.compile(r"#\s*repro:\s*(?P<kind>allow(?:-file)?)\[(?P<rules>[^\]]*)\]")
#: Anything that *looks* like a pragma attempt but fails the grammar above.
_ATTEMPT_RE = re.compile(r"#\s*repro:")
_RULE_ID_RE = re.compile(r"^REP\d{3}$")


@dataclass
class PragmaTable:
    """Parsed suppressions for one file."""

    #: rules allowed for the entire file.
    file_rules: FrozenSet[str] = frozenset()
    #: line -> rules allowed on that line.
    line_rules: Dict[int, FrozenSet[str]] = field(default_factory=dict)
    #: malformed/unknown pragmas, reported alongside rule findings.
    errors: List[Finding] = field(default_factory=list)

    def allows(self, rule: str, line: int) -> bool:
        if rule in self.file_rules:
            return True
        return rule in self.line_rules.get(line, frozenset())


def _is_comment_only(line: str) -> bool:
    stripped = line.strip()
    return stripped.startswith("#")


def parse_pragmas(path: str, source: str, known_rules: FrozenSet[str]) -> PragmaTable:
    """Extract the suppression table from raw source text.

    Pragmas live in comments, so a plain regex over physical lines is
    accurate enough — the only false positives would be pragma-shaped text
    inside string literals, and writing one of those in this codebase
    means you are writing linter fixtures, where `allow-file` applies.
    """
    table = PragmaTable()
    file_rules: Set[str] = set()
    lines = source.splitlines()
    for number, text in enumerate(lines, start=1):
        matches = list(_PRAGMA_RE.finditer(text))
        if not matches:
            if _ATTEMPT_RE.search(text):
                table.errors.append(
                    Finding(
                        rule="REP000",
                        path=path,
                        line=number,
                        message=(
                            "malformed pragma: expected a comment reading"
                            " 'repro: allow[REPnnn,...]'"
                            " or 'repro: allow-file[REPnnn,...]'"
                        ),
                    )
                )
            continue
        for match in matches:
            rules, errors = _parse_rule_list(
                path, number, match.group("rules"), known_rules
            )
            table.errors.extend(errors)
            if match.group("kind") == "allow-file":
                file_rules.update(rules)
                continue
            targets = [number]
            # A standalone pragma comment covers the statement that
            # follows it.
            if _is_comment_only(text) and number < len(lines) + 1:
                targets.append(number + 1)
            for target in targets:
                merged = set(table.line_rules.get(target, frozenset()))
                merged.update(rules)
                table.line_rules[target] = frozenset(merged)
    table.file_rules = frozenset(file_rules)
    return table


def _parse_rule_list(
    path: str, line: int, raw: str, known_rules: FrozenSet[str]
) -> Tuple[Set[str], List[Finding]]:
    rules: Set[str] = set()
    errors: List[Finding] = []
    for token in raw.split(","):
        rule = token.strip()
        if not rule:
            continue
        if not _RULE_ID_RE.match(rule) or rule not in known_rules:
            errors.append(
                Finding(
                    rule="REP000",
                    path=path,
                    line=line,
                    message=f"pragma names unknown rule {rule!r}",
                )
            )
            continue
        rules.add(rule)
    if not rules and not errors:
        errors.append(
            Finding(
                rule="REP000",
                path=path,
                line=line,
                message="pragma allows no rules (empty rule list)",
            )
        )
    return rules, errors
