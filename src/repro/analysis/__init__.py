"""Static analysis for the reproduction's own invariants.

The sharded engine's serial-equivalence guarantee, the measurement
studies' bit-for-bit replays and the decoder's robustness contract all
rest on conventions — simulated time, seeded randomness, one error
taxonomy, guarded parsing — that Python will not enforce by itself.
``repro.analysis`` is an AST linter (stdlib only) that does:

>>> from repro.analysis import run
>>> run(["src"])
[]

Operationally it is the ``infilter lint`` subcommand; in CI it gates
every change next to the tier-1 tests and ``mypy --strict``.  The rule
catalogue, the pragma escape hatch and the recipe for adding a rule live
in ``docs/static-analysis.md``.
"""

from __future__ import annotations

from repro.analysis.findings import Finding
from repro.analysis.graph import DocCatalogue, ProjectGraph, load_doc_catalogue
from repro.analysis.pragmas import PragmaTable, parse_pragmas
from repro.analysis.project_rules import (
    LAYERS,
    PROJECT_RULE_IDS,
    PROJECT_RULES,
    ProjectRule,
)
from repro.analysis.rules import ALL_RULES, RULE_IDS, ModuleInfo, Rule
from repro.analysis.runner import KNOWN_RULE_IDS, iter_python_files, run
from repro.analysis.sarif import render_sarif
from repro.analysis.symbols import ModuleSymbols, build_symbols

__all__ = [
    "ALL_RULES",
    "DocCatalogue",
    "Finding",
    "KNOWN_RULE_IDS",
    "LAYERS",
    "ModuleInfo",
    "ModuleSymbols",
    "PROJECT_RULES",
    "PROJECT_RULE_IDS",
    "PragmaTable",
    "ProjectGraph",
    "ProjectRule",
    "RULE_IDS",
    "Rule",
    "build_symbols",
    "iter_python_files",
    "load_doc_catalogue",
    "parse_pragmas",
    "render_sarif",
    "run",
]
