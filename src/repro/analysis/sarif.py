"""SARIF 2.1.0 rendering for ``infilter lint --format sarif``.

One run, one tool (``infilter-lint``), one result per finding.  The
output validates against the SARIF 2.1.0 schema and is shaped for the
GitHub code-scanning upload action: relative forward-slash artifact
URIs, ``level: error`` results, and a rule index so the UI can show
each rule's summary.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, List, Sequence, Tuple

from .findings import Finding

__all__ = ["render_sarif"]

_SCHEMA = (
    "https://json.schemastore.org/sarif-2.1.0.json"
)


def _relative_uri(path: str, base: Path) -> str:
    candidate = Path(path)
    try:
        candidate = candidate.resolve()
        return candidate.relative_to(base).as_posix()
    except (OSError, ValueError):
        return candidate.as_posix()


def render_sarif(
    findings: Sequence[Finding],
    rules: Sequence[Tuple[str, str]],
    *,
    base_dir: Path | None = None,
) -> Dict[str, Any]:
    """Render findings as a SARIF 2.1.0 log object.

    ``rules`` is the full ``(id, summary)`` catalogue (file and project
    rules plus REP000), so every result's ``ruleId`` resolves to a rule
    entry regardless of which rules fired.
    """
    base = (base_dir or Path.cwd()).resolve()
    ordered = sorted(rules)
    index = {rule_id: pos for pos, (rule_id, _) in enumerate(ordered)}
    results: List[Dict[str, Any]] = []
    for finding in findings:
        result: Dict[str, Any] = {
            "ruleId": finding.rule,
            "level": "error",
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": _relative_uri(finding.path, base),
                        },
                        "region": {"startLine": max(finding.line, 1)},
                    }
                }
            ],
        }
        if finding.rule in index:
            result["ruleIndex"] = index[finding.rule]
        results.append(result)
    return {
        "$schema": _SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "infilter-lint",
                        "informationUri": (
                            "https://github.com/infilter/infilter"
                        ),
                        "rules": [
                            {
                                "id": rule_id,
                                "shortDescription": {"text": summary},
                            }
                            for rule_id, summary in ordered
                        ],
                    }
                },
                "results": results,
            }
        ],
    }
