"""Per-module symbol tables — phase 1 of the whole-program analyzer.

A :class:`ModuleSymbols` is everything the cross-module rules
(:mod:`repro.analysis.project_rules`) need to know about one source
file, extracted in a single AST pass and — crucially — fully
JSON-serializable.  That last property is what makes the incremental
runner work: a warm lint loads symbol tables from the on-disk cache and
rebuilds the :class:`~repro.analysis.graph.ProjectGraph` without
parsing a single unchanged file.

The tables are deliberately *conservative summaries*, not full dataflow
facts: imports resolved to absolute dotted names, per-class attribute
assignments and reads, writes to module-level state from function
scopes, metric registrations, and raw checkpoint-style write sites.
Each project rule then joins these summaries across modules; any
precision the summary lacks errs toward silence on a single file and
toward a finding only when two modules actually disagree.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Set, Tuple

__all__ = [
    "ClassSymbol",
    "FunctionSymbol",
    "MetricReg",
    "ModuleSymbols",
    "build_symbols",
]

#: method names that mutate their receiver in place — the write half of
#: the REP013 shared-state check.
_MUTATOR_METHODS = frozenset(
    {
        "add",
        "append",
        "appendleft",
        "clear",
        "discard",
        "extend",
        "insert",
        "pop",
        "popitem",
        "popleft",
        "remove",
        "setdefault",
        "update",
    }
)

#: calls/literals whose result is shared mutable state when bound at
#: module level (mirrors the REP004 mutable-default table).
_MUTABLE_CALLS = frozenset(
    {"list", "dict", "set", "bytearray", "deque", "defaultdict", "OrderedDict"}
)

#: identifier substrings that mark a context manager as a lock-ish
#: object for the held-across-await check.
_LOCK_HINT_RE = re.compile(r"lock|mutex|semaphore", re.IGNORECASE)

#: expression text that marks a raw write as targeting a checkpoint
#: path (the REP014 containment check).
_CHECKPOINT_HINT_RE = re.compile(
    r"checkpoint|ckpt|save_state|state_path", re.IGNORECASE
)


@dataclass(frozen=True)
class MetricReg:
    """One ``registry.counter/gauge/histogram("name", ...)`` call site."""

    name: str
    kind: str
    line: int


@dataclass(frozen=True)
class FunctionSymbol:
    """One function or method scope, with the facts REP013 joins on."""

    qualname: str
    line: int
    is_async: bool
    #: writes to module-level state reached from this scope:
    #: ``(module, name, line, kind)`` where ``module`` is the dotted
    #: module written through an import alias ("" for this module's own
    #: globals) and ``kind`` is ``"rebind"`` or ``"mutate"``.
    global_writes: Tuple[Tuple[str, str, int, str], ...] = ()
    #: lines of synchronous ``with <lock>`` statements whose body
    #: contains an ``await`` (only populated for async scopes).
    lock_waits: Tuple[int, ...] = ()


@dataclass(frozen=True)
class ClassSymbol:
    """One class definition, summarized for the containment rules."""

    name: str
    line: int
    #: ``self.<attr> = ...`` assignment -> first line it happens.
    self_attrs: Dict[str, int] = field(default_factory=dict)
    #: attr -> resolved dotted name of the constructor it is assigned
    #: from (``self.memo = VerdictLRU(...)`` ->
    #: ``repro.fastpath.lru.VerdictLRU``), when resolvable.
    attr_ctors: Dict[str, str] = field(default_factory=dict)
    #: method name -> definition line.
    method_lines: Dict[str, int] = field(default_factory=dict)
    #: method name -> every ``self.<attr>`` it reads or calls through.
    method_self_reads: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    #: method name -> sibling methods it invokes as ``self.m(...)``.
    method_self_calls: Dict[str, Tuple[str, ...]] = field(default_factory=dict)


@dataclass(frozen=True)
class ModuleSymbols:
    """Everything the project rules know about one module."""

    module: str
    path: str
    posix: str
    is_test: bool
    #: local alias -> absolute dotted origin, e.g. ``FastPath`` ->
    #: ``repro.fastpath.plane.FastPath`` (relative imports resolved
    #: against the module's own package).
    imports: Dict[str, str] = field(default_factory=dict)
    #: absolute dotted import target -> first import line; the graph
    #: keeps only the targets that resolve to modules it holds.
    import_targets: Dict[str, int] = field(default_factory=dict)
    #: every module-level binding -> line (for rebind hazards).
    module_globals: Dict[str, int] = field(default_factory=dict)
    #: the subset bound to mutable containers at module level.
    mutable_globals: Dict[str, int] = field(default_factory=dict)
    functions: Tuple[FunctionSymbol, ...] = ()
    classes: Dict[str, ClassSymbol] = field(default_factory=dict)
    metrics: Tuple[MetricReg, ...] = ()
    #: raw checkpoint-style write sites: ``(line, description)``.
    checkpoint_writes: Tuple[Tuple[int, str], ...] = ()

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form (the incremental cache's symbols record)."""
        return {
            "module": self.module,
            "path": self.path,
            "posix": self.posix,
            "is_test": self.is_test,
            "imports": dict(self.imports),
            "import_targets": dict(self.import_targets),
            "module_globals": dict(self.module_globals),
            "mutable_globals": dict(self.mutable_globals),
            "functions": [
                {
                    "qualname": fn.qualname,
                    "line": fn.line,
                    "is_async": fn.is_async,
                    "global_writes": [list(w) for w in fn.global_writes],
                    "lock_waits": list(fn.lock_waits),
                }
                for fn in self.functions
            ],
            "classes": {
                name: {
                    "name": cls.name,
                    "line": cls.line,
                    "self_attrs": dict(cls.self_attrs),
                    "attr_ctors": dict(cls.attr_ctors),
                    "method_lines": dict(cls.method_lines),
                    "method_self_reads": {
                        m: list(v) for m, v in cls.method_self_reads.items()
                    },
                    "method_self_calls": {
                        m: list(v) for m, v in cls.method_self_calls.items()
                    },
                }
                for name, cls in self.classes.items()
            },
            "metrics": [[m.name, m.kind, m.line] for m in self.metrics],
            "checkpoint_writes": [list(w) for w in self.checkpoint_writes],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ModuleSymbols":
        """Rebuild a symbol table from its :meth:`to_dict` form."""
        return cls(
            module=data["module"],
            path=data["path"],
            posix=data["posix"],
            is_test=data["is_test"],
            imports={str(k): str(v) for k, v in data["imports"].items()},
            import_targets={
                str(k): int(v) for k, v in data["import_targets"].items()
            },
            module_globals={
                str(k): int(v) for k, v in data["module_globals"].items()
            },
            mutable_globals={
                str(k): int(v) for k, v in data["mutable_globals"].items()
            },
            functions=tuple(
                FunctionSymbol(
                    qualname=fn["qualname"],
                    line=fn["line"],
                    is_async=fn["is_async"],
                    global_writes=tuple(
                        (str(m), str(n), int(line), str(kind))
                        for m, n, line, kind in fn["global_writes"]
                    ),
                    lock_waits=tuple(int(n) for n in fn["lock_waits"]),
                )
                for fn in data["functions"]
            ),
            classes={
                name: ClassSymbol(
                    name=c["name"],
                    line=c["line"],
                    self_attrs={str(k): int(v) for k, v in c["self_attrs"].items()},
                    attr_ctors={str(k): str(v) for k, v in c["attr_ctors"].items()},
                    method_lines={
                        str(k): int(v) for k, v in c["method_lines"].items()
                    },
                    method_self_reads={
                        str(k): tuple(str(x) for x in v)
                        for k, v in c["method_self_reads"].items()
                    },
                    method_self_calls={
                        str(k): tuple(str(x) for x in v)
                        for k, v in c["method_self_calls"].items()
                    },
                )
                for name, c in data["classes"].items()
            },
            metrics=tuple(
                MetricReg(name=str(n), kind=str(k), line=int(line))
                for n, k, line in data["metrics"]
            ),
            checkpoint_writes=tuple(
                (int(line), str(desc)) for line, desc in data["checkpoint_writes"]
            ),
        )


# -- extraction ---------------------------------------------------------------


def _package_of(module: str, is_package: bool) -> str:
    if is_package:
        return module
    return module.rpartition(".")[0]


def _collect_imports(
    tree: ast.Module, module: str, is_package: bool
) -> Tuple[Dict[str, str], Dict[str, int]]:
    """(alias -> absolute origin, absolute target -> first line)."""
    aliases: Dict[str, str] = {}
    targets: Dict[str, int] = {}
    package = _package_of(module, is_package)

    def record(target: str, line: int) -> None:
        targets.setdefault(target, line)

    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                aliases[local] = alias.name if alias.asname else local
                record(alias.name, node.lineno)
        elif isinstance(node, ast.ImportFrom):
            if node.level == 0:
                base = node.module or ""
            else:
                # Resolve the relative import against this module's
                # package: one level is the package itself, each extra
                # level climbs one parent.
                parts = package.split(".") if package else []
                climb = node.level - 1
                if climb > len(parts):
                    continue
                kept = parts[: len(parts) - climb]
                base = ".".join(kept + ([node.module] if node.module else []))
            if not base:
                continue
            record(base, node.lineno)
            for alias in node.names:
                if alias.name == "*":
                    continue
                origin = f"{base}.{alias.name}"
                aliases[alias.asname or alias.name] = origin
                record(origin, node.lineno)
    return aliases, targets


def _is_mutable_value(node: ast.AST) -> bool:
    if isinstance(
        node,
        (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp),
    ):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in _MUTABLE_CALLS:
            return True
        if isinstance(func, ast.Attribute) and func.attr in _MUTABLE_CALLS:
            return True
    return False


def _module_level_bindings(
    tree: ast.Module,
) -> Tuple[Dict[str, int], Dict[str, int]]:
    """(every top-level binding, the mutable-container subset)."""
    bindings: Dict[str, int] = {}
    mutable: Dict[str, int] = {}
    for stmt in tree.body:
        names: List[str] = []
        value: Optional[ast.expr] = None
        if isinstance(stmt, ast.Assign):
            value = stmt.value
            for target in stmt.targets:
                for node in ast.walk(target):
                    if isinstance(node, ast.Name):
                        names.append(node.id)
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            value = stmt.value
            names.append(stmt.target.id)
        for name in names:
            bindings.setdefault(name, stmt.lineno)
            if value is not None and _is_mutable_value(value):
                mutable.setdefault(name, stmt.lineno)
    return bindings, mutable


def _attr_chain(node: ast.AST) -> Optional[Tuple[str, Tuple[str, ...]]]:
    """Decompose ``root.a.b`` into ``("root", ("a", "b"))``."""
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    return current.id, tuple(reversed(parts))


def _local_bindings(fn: ast.AST) -> Tuple[Set[str], Set[str]]:
    """(locally bound names, ``global``-declared names) for one scope."""
    assert isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef))
    local: Set[str] = set()
    declared_global: Set[str] = set()
    args = fn.args
    for arg in (
        *args.posonlyargs,
        *args.args,
        *args.kwonlyargs,
        *([args.vararg] if args.vararg else []),
        *([args.kwarg] if args.kwarg else []),
    ):
        local.add(arg.arg)
    for node in _scope_body_walk(fn):
        if isinstance(node, ast.Global):
            declared_global.update(node.names)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    local.add(target.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            local.add(node.target.id)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            for sub in ast.walk(node.target):
                if isinstance(sub, ast.Name):
                    local.add(sub.id)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if item.optional_vars is not None:
                    for sub in ast.walk(item.optional_vars):
                        if isinstance(sub, ast.Name):
                            local.add(sub.id)
    local -= declared_global
    return local, declared_global


def _scope_body_walk(fn: ast.AST) -> Iterator[ast.AST]:
    """Walk one function's body without descending into nested scopes."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _collect_global_writes(
    fn: ast.AST, aliases: Dict[str, str]
) -> Tuple[Tuple[str, str, int, str], ...]:
    """Writes to module-level state visible from one function scope."""
    local, declared_global = _local_bindings(fn)
    writes: List[Tuple[str, str, int, str]] = []

    def classify(root: str, chain: Tuple[str, ...], line: int, kind: str) -> None:
        if root in local:
            return
        origin = aliases.get(root)
        if origin is not None and chain:
            # A dotted write through an import alias: ``w.CACHE[...] =``
            # targets ``CACHE`` in module ``origin``.
            writes.append((origin, chain[0], line, kind))
        elif origin is None and not chain:
            writes.append(("", root, line, kind))
        elif origin is None and chain:
            # ``obj.attr`` on a module-level object of this module.
            writes.append(("", root, line, kind))

    for node in _scope_body_walk(fn):
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if isinstance(target, ast.Name):
                    if target.id in declared_global:
                        writes.append(("", target.id, node.lineno, "rebind"))
                elif isinstance(target, (ast.Subscript, ast.Attribute)):
                    base = (
                        target.value
                        if isinstance(target, ast.Subscript)
                        else target.value
                    )
                    chain = _attr_chain(base)
                    if chain is not None:
                        root, parts = chain
                        classify(root, parts, node.lineno, "mutate")
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in _MUTATOR_METHODS:
                chain = _attr_chain(node.func.value)
                if chain is not None:
                    root, parts = chain
                    classify(root, parts, node.lineno, "mutate")
    return tuple(writes)


def _collect_lock_waits(fn: ast.AST) -> Tuple[int, ...]:
    """Sync ``with <lock-ish>`` statements holding across an ``await``."""
    lines: List[int] = []
    for node in _scope_body_walk(fn):
        if not isinstance(node, ast.With):
            continue
        lockish = False
        for item in node.items:
            for sub in ast.walk(item.context_expr):
                if isinstance(sub, ast.Name) and _LOCK_HINT_RE.search(sub.id):
                    lockish = True
                elif isinstance(sub, ast.Attribute) and _LOCK_HINT_RE.search(
                    sub.attr
                ):
                    lockish = True
        if not lockish:
            continue
        for stmt in node.body:
            for sub in _scope_body_walk_stmt(stmt):
                if isinstance(sub, ast.Await):
                    lines.append(node.lineno)
                    break
            else:
                continue
            break
    return tuple(lines)


def _scope_body_walk_stmt(stmt: ast.AST) -> Iterator[ast.AST]:
    yield stmt
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
        return
    for child in ast.iter_child_nodes(stmt):
        yield from _scope_body_walk_stmt(child)


def _resolve_name(node: ast.AST, aliases: Dict[str, str]) -> Optional[str]:
    chain = _attr_chain(node)
    if chain is None:
        return None
    root, parts = chain
    origin = aliases.get(root)
    if origin is None:
        return None
    return ".".join((origin, *parts)) if parts else origin


def _collect_functions(
    tree: ast.Module, aliases: Dict[str, str]
) -> Tuple[FunctionSymbol, ...]:
    symbols: List[FunctionSymbol] = []

    def visit(node: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}{child.name}"
                is_async = isinstance(child, ast.AsyncFunctionDef)
                symbols.append(
                    FunctionSymbol(
                        qualname=qualname,
                        line=child.lineno,
                        is_async=is_async,
                        global_writes=_collect_global_writes(child, aliases),
                        lock_waits=(
                            _collect_lock_waits(child) if is_async else ()
                        ),
                    )
                )
                visit(child, f"{qualname}.")
            elif isinstance(child, ast.ClassDef):
                visit(child, f"{prefix}{child.name}.")
            else:
                visit(child, prefix)

    visit(tree, "")
    return tuple(symbols)


def _collect_classes(
    tree: ast.Module, aliases: Dict[str, str]
) -> Dict[str, ClassSymbol]:
    classes: Dict[str, ClassSymbol] = {}
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        self_attrs: Dict[str, int] = {}
        attr_ctors: Dict[str, str] = {}
        method_lines: Dict[str, int] = {}
        method_self_reads: Dict[str, Tuple[str, ...]] = {}
        method_self_calls: Dict[str, Tuple[str, ...]] = {}
        for stmt in node.body:
            if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            method_lines.setdefault(stmt.name, stmt.lineno)
            reads: List[str] = []
            calls: List[str] = []
            for sub in ast.walk(stmt):
                if isinstance(sub, ast.Attribute) and isinstance(
                    sub.value, ast.Name
                ):
                    if sub.value.id != "self":
                        continue
                    if isinstance(sub.ctx, ast.Load):
                        reads.append(sub.attr)
                    elif isinstance(sub.ctx, ast.Store):
                        self_attrs.setdefault(sub.attr, sub.lineno)
                elif isinstance(sub, ast.Call):
                    func = sub.func
                    if (
                        isinstance(func, ast.Attribute)
                        and isinstance(func.value, ast.Name)
                        and func.value.id == "self"
                    ):
                        calls.append(func.attr)
                if isinstance(sub, ast.Assign):
                    for target in sub.targets:
                        if (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                            and isinstance(sub.value, ast.Call)
                        ):
                            ctor = _resolve_name(sub.value.func, aliases)
                            if ctor is None and isinstance(
                                sub.value.func, ast.Name
                            ):
                                ctor = sub.value.func.id
                            if ctor is not None:
                                attr_ctors.setdefault(target.attr, ctor)
            method_self_reads[stmt.name] = tuple(dict.fromkeys(reads))
            method_self_calls[stmt.name] = tuple(dict.fromkeys(calls))
        classes[node.name] = ClassSymbol(
            name=node.name,
            line=node.lineno,
            self_attrs=self_attrs,
            attr_ctors=attr_ctors,
            method_lines=method_lines,
            method_self_reads=method_self_reads,
            method_self_calls=method_self_calls,
        )
    return classes


def _collect_metrics(tree: ast.Module) -> Tuple[MetricReg, ...]:
    metrics: List[MetricReg] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not isinstance(func, ast.Attribute):
            continue
        if func.attr not in ("counter", "gauge", "histogram") or not node.args:
            continue
        first = node.args[0]
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            metrics.append(
                MetricReg(name=first.value, kind=func.attr, line=first.lineno)
            )
    return tuple(metrics)


def _collect_checkpoint_writes(
    tree: ast.Module, aliases: Dict[str, str]
) -> Tuple[Tuple[int, str], ...]:
    """Raw write sites whose target expression smells like a checkpoint."""
    writes: List[Tuple[int, str]] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        resolved = _resolve_name(func, aliases)
        if resolved == "os.replace" or (
            isinstance(func, ast.Attribute) and func.attr == "replace"
            and resolved is not None and resolved.endswith("os.replace")
        ):
            rendered = ast.unparse(node)
            if _CHECKPOINT_HINT_RE.search(rendered):
                writes.append((node.lineno, f"os.replace: {rendered[:80]}"))
        elif isinstance(func, ast.Name) and func.id == "open":
            mode = ""
            if len(node.args) >= 2 and isinstance(node.args[1], ast.Constant):
                mode = str(node.args[1].value)
            for keyword in node.keywords:
                if keyword.arg == "mode" and isinstance(
                    keyword.value, ast.Constant
                ):
                    mode = str(keyword.value.value)
            if "w" in mode and node.args:
                rendered = ast.unparse(node.args[0])
                if _CHECKPOINT_HINT_RE.search(rendered):
                    writes.append(
                        (node.lineno, f"open(..., {mode!r}): {rendered[:80]}")
                    )
        elif isinstance(func, ast.Attribute) and func.attr in (
            "write_text",
            "write_bytes",
        ):
            rendered = ast.unparse(func.value)
            if _CHECKPOINT_HINT_RE.search(rendered):
                writes.append(
                    (node.lineno, f".{func.attr}: {rendered[:80]}")
                )
    return tuple(writes)


def build_symbols(
    *,
    module: str,
    path: str,
    posix: str,
    tree: ast.Module,
    is_test: bool,
    is_package: bool,
) -> ModuleSymbols:
    """Extract one module's symbol table in a single pass."""
    aliases, targets = _collect_imports(tree, module, is_package)
    module_globals, mutable_globals = _module_level_bindings(tree)
    return ModuleSymbols(
        module=module,
        path=path,
        posix=posix,
        is_test=is_test,
        imports=aliases,
        import_targets=targets,
        module_globals=module_globals,
        mutable_globals=mutable_globals,
        functions=_collect_functions(tree, aliases),
        classes=_collect_classes(tree, aliases),
        metrics=_collect_metrics(tree),
        checkpoint_writes=_collect_checkpoint_writes(tree, aliases),
    )
