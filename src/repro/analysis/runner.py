"""Discovering files, applying rules, filtering suppressions.

:func:`run` is the whole programmatic surface: hand it paths (files or
directories), get back a sorted list of findings.  The CLI, the CI gate
and the self-clean test all call this one function, so they cannot drift
apart on discovery or suppression semantics.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set

from repro.analysis.findings import Finding
from repro.analysis.pragmas import parse_pragmas
from repro.analysis.rules import ALL_RULES, RULE_IDS, ModuleInfo
from repro.util.errors import ConfigError

__all__ = ["run", "iter_python_files"]

#: directory names never descended into.
_SKIP_DIRS = frozenset({".git", "__pycache__", ".mypy_cache", ".pytest_cache"})


def iter_python_files(paths: Sequence[str]) -> Iterator[Path]:
    """Yield every ``.py`` file under the given files/directories.

    Directories are walked in sorted order so findings come out in a
    stable order on every platform.  A path that does not exist raises
    :class:`~repro.util.errors.ConfigError` — a typo'd CI invocation must
    fail loudly, not lint nothing and pass.
    """
    for raw in paths:
        path = Path(raw)
        if not path.exists():
            raise ConfigError(f"lint path does not exist: {raw}")
        if path.is_file():
            yield path
            continue
        for child in sorted(path.rglob("*.py")):
            if any(part in _SKIP_DIRS for part in child.parts):
                continue
            yield child


def _is_test_file(path: Path) -> bool:
    if any(part in ("tests", "test") for part in path.parts):
        return True
    return path.name.startswith("test_") or path.name == "conftest.py"


def _normalise_selection(
    raw: Optional[Iterable[str]], option: str
) -> Optional[FrozenSet[str]]:
    if raw is None:
        return None
    selection: Set[str] = set()
    for item in raw:
        for rule in item.split(","):
            rule = rule.strip().upper()
            if not rule:
                continue
            if rule not in RULE_IDS:
                raise ConfigError(
                    f"{option} names unknown rule {rule!r};"
                    f" known rules: {', '.join(sorted(RULE_IDS))}"
                )
            selection.add(rule)
    return frozenset(selection)


def run(
    paths: Sequence[str],
    *,
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> List[Finding]:
    """Lint ``paths`` and return all surviving findings, sorted.

    ``select`` restricts checking to the listed rule ids; ``ignore``
    drops the listed ids after checking.  Pragma suppressions (see
    :mod:`repro.analysis.pragmas`) apply in either mode, and pragma
    *errors* surface as ``REP000`` findings subject to the same
    select/ignore filtering.
    """
    selected = _normalise_selection(select, "--select")
    ignored = _normalise_selection(ignore, "--ignore") or frozenset()

    def wanted(rule_id: str) -> bool:
        if rule_id in ignored:
            return False
        return selected is None or rule_id in selected

    findings: List[Finding] = []
    for path in iter_python_files(paths):
        reported = str(path)
        try:
            source = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as error:
            if wanted("REP000"):
                findings.append(
                    Finding("REP000", reported, 1, f"unreadable file: {error}")
                )
            continue
        try:
            tree = ast.parse(source, filename=reported)
        except SyntaxError as error:
            if wanted("REP000"):
                findings.append(
                    Finding(
                        "REP000",
                        reported,
                        error.lineno or 1,
                        f"syntax error: {error.msg}",
                    )
                )
            continue
        info = ModuleInfo(
            path=reported,
            posix=path.resolve().as_posix(),
            source=source,
            tree=tree,
            is_test=_is_test_file(path),
        )
        pragmas = parse_pragmas(reported, source, RULE_IDS)
        if wanted("REP000"):
            findings.extend(pragmas.errors)
        for rule in ALL_RULES:
            if not wanted(rule.id) or not rule.applies_to(info):
                continue
            for finding in rule.check(info):
                if not pragmas.allows(finding.rule, finding.line):
                    findings.append(finding)
    findings.sort(key=Finding.sort_key)
    return findings
