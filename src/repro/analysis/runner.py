"""Discovering files, applying rules, filtering suppressions.

:func:`run` is the whole programmatic surface: hand it paths (files or
directories), get back a sorted list of findings.  The CLI, the CI gate
and the self-clean test all call this one function, so they cannot drift
apart on discovery or suppression semantics.

Since PR 8 the run has two phases.  The file phase parses each module
and applies the per-file rules (REP001–REP010), optionally in parallel
across a :class:`~concurrent.futures.ProcessPoolExecutor` and
optionally backed by the content-hash cache in
:mod:`repro.analysis.cache`.  The project phase assembles every
module's symbol table into a :class:`~repro.analysis.graph.ProjectGraph`
and runs the cross-module rules (REP011–REP015) against it — cached on
the graph fingerprint, so a warm lint of an unchanged tree re-runs
neither phase.  All three modes (serial, parallel, incremental) produce
byte-identical sorted output.
"""

from __future__ import annotations

import ast
import os
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path
from typing import (
    Any,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.analysis.cache import LintCache, content_hash
from repro.analysis.findings import Finding
from repro.analysis.graph import DocCatalogue, ProjectGraph, load_doc_catalogue
from repro.analysis.pragmas import PragmaTable, parse_pragmas
from repro.analysis.project_rules import PROJECT_RULES, PROJECT_RULE_IDS
from repro.analysis.rules import ALL_RULES, RULE_IDS, ModuleInfo
from repro.analysis.symbols import ModuleSymbols, build_symbols
from repro.util.errors import ConfigError

__all__ = ["run", "iter_python_files", "KNOWN_RULE_IDS"]

#: directory names never descended into.
_SKIP_DIRS = frozenset(
    {".git", "__pycache__", ".mypy_cache", ".pytest_cache", ".infilter-cache"}
)

#: every rule id a pragma or --select/--ignore may name.
KNOWN_RULE_IDS: FrozenSet[str] = RULE_IDS | PROJECT_RULE_IDS


def _discover(paths: Sequence[str]) -> List[Tuple[Path, Tuple[str, ...]]]:
    """Resolve lint roots to ``(file, parts relative to its root)``.

    Order is the roots' order with each directory walked sorted, and a
    file reached through two overlapping roots (``src src/repro``) is
    kept once, at its first occurrence — findings must never be
    double-reported.  The relative parts (which include the root's own
    basename: ``infilter lint tests`` really is linting test code) are
    what test-file detection matches against, so a checkout living
    under a directory named ``test`` does not turn the whole tree into
    test files.
    """
    discovered: List[Tuple[Path, Tuple[str, ...]]] = []
    seen: Set[str] = set()

    def add(path: Path, rel_parts: Tuple[str, ...]) -> None:
        key = path.resolve().as_posix()
        if key in seen:
            return
        seen.add(key)
        discovered.append((path, rel_parts))

    for raw in paths:
        path = Path(raw)
        if not path.exists():
            raise ConfigError(f"lint path does not exist: {raw}")
        if path.is_file():
            add(path, (path.name,))
            continue
        root_name = (path.name,) if path.name else ()
        for child in sorted(path.rglob("*.py")):
            if any(part in _SKIP_DIRS for part in child.parts):
                continue
            add(child, root_name + child.relative_to(path).parts)
    return discovered


def iter_python_files(paths: Sequence[str]) -> Iterator[Path]:
    """Yield every ``.py`` file under the given files/directories.

    Directories are walked in sorted order so findings come out in a
    stable order on every platform, and overlapping inputs are
    deduplicated on resolved path.  A path that does not exist raises
    :class:`~repro.util.errors.ConfigError` — a typo'd CI invocation must
    fail loudly, not lint nothing and pass.
    """
    for path, _ in _discover(paths):
        yield path


def _is_test_file(name: str, rel_parts: Tuple[str, ...]) -> bool:
    """Test-file detection against root-relative parts only."""
    if any(part in ("tests", "test") for part in rel_parts[:-1]):
        return True
    return name.startswith("test_") or name == "conftest.py"


def _module_name(path: Path, rel_parts: Tuple[str, ...]) -> str:
    """Best-effort dotted module name for one source file.

    Prefer the real package structure: climb parents while
    ``__init__.py`` exists (``src/repro/fastpath/plane.py`` →
    ``repro.fastpath.plane`` however the lint was invoked).  Fall back
    to the root-relative parts with a leading ``src`` stripped, which
    covers bare fixture trees without ``__init__.py`` files.
    """
    parts = [path.stem] if path.name != "__init__.py" else []
    current = path.parent
    climbed = False
    while (current / "__init__.py").is_file():
        parts.insert(0, current.name)
        current = current.parent
        climbed = True
    if climbed or path.name == "__init__.py":
        return ".".join(parts)
    fallback = [p for p in rel_parts[:-1]]
    if fallback and fallback[0] == "src":
        fallback = fallback[1:]
    fallback.append(path.stem)
    return ".".join(fallback)


def _normalise_selection(
    raw: Optional[Iterable[str]], option: str
) -> Optional[FrozenSet[str]]:
    if raw is None:
        return None
    selection: Set[str] = set()
    for item in raw:
        for rule in item.split(","):
            rule = rule.strip().upper()
            if not rule:
                continue
            if rule not in KNOWN_RULE_IDS:
                raise ConfigError(
                    f"{option} names unknown rule {rule!r};"
                    f" known rules: {', '.join(sorted(KNOWN_RULE_IDS))}"
                )
            selection.add(rule)
    return frozenset(selection)


def _serialize_pragmas(table: PragmaTable) -> Dict[str, Any]:
    return {
        "file_rules": sorted(table.file_rules),
        "line_rules": {
            str(line): sorted(rules)
            for line, rules in sorted(table.line_rules.items())
        },
    }


def _deserialize_pragmas(data: Dict[str, Any]) -> PragmaTable:
    return PragmaTable(
        file_rules=frozenset(data["file_rules"]),
        line_rules={
            int(line): frozenset(rules)
            for line, rules in data["line_rules"].items()
        },
    )


def _analyse_task(task: Dict[str, Any]) -> Dict[str, Any]:
    """Parse and file-rule one module; the parallel-phase unit of work.

    Returns the cache-entry shape: pragma-filtered findings of *every*
    file rule (select/ignore apply at assembly so one cache record
    serves any selection), the serialized pragma table, and the symbol
    table for phase 2.  Must stay module-level and take/return plain
    dicts — it crosses a process boundary.
    """
    reported: str = task["reported"]
    path = Path(task["file"])
    entry: Dict[str, Any] = {
        "findings": [],
        "pragmas": _serialize_pragmas(PragmaTable()),
        "symbols": None,
        "content": None,
    }
    try:
        data = path.read_bytes()
        source = data.decode("utf-8")
    except (OSError, UnicodeDecodeError) as error:
        entry["findings"].append(
            Finding("REP000", reported, 1, f"unreadable file: {error}").to_dict()
        )
        return entry
    entry["content"] = content_hash(data)
    try:
        tree = ast.parse(source, filename=reported)
    except SyntaxError as error:
        entry["findings"].append(
            Finding(
                "REP000",
                reported,
                error.lineno or 1,
                f"syntax error: {error.msg}",
            ).to_dict()
        )
        return entry
    info = ModuleInfo(
        path=reported,
        posix=path.resolve().as_posix(),
        source=source,
        tree=tree,
        is_test=task["is_test"],
    )
    pragmas = parse_pragmas(reported, source, KNOWN_RULE_IDS)
    entry["pragmas"] = _serialize_pragmas(pragmas)
    findings: List[Finding] = list(pragmas.errors)
    for rule in ALL_RULES:
        if not rule.applies_to(info):
            continue
        for finding in rule.check(info):
            if not pragmas.allows(finding.rule, finding.line):
                findings.append(finding)
    entry["findings"] = [finding.to_dict() for finding in findings]
    entry["symbols"] = build_symbols(
        module=task["module"],
        path=reported,
        posix=info.posix,
        tree=tree,
        is_test=task["is_test"],
        is_package=path.name == "__init__.py",
    ).to_dict()
    return entry


def _find_doc(paths: Sequence[str]) -> Optional[Path]:
    """Locate ``docs/observability.md`` relative to the lint roots."""
    for raw in paths:
        candidate = Path(raw)
        if candidate.is_file():
            candidate = candidate.parent
        for _ in range(4):
            doc = candidate / "docs" / "observability.md"
            if doc.is_file():
                return doc
            parent = candidate.parent
            if parent == candidate:
                break
            candidate = parent
    return None


def run(
    paths: Sequence[str],
    *,
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
    jobs: Optional[int] = None,
    cache_dir: Optional[Path] = None,
) -> List[Finding]:
    """Lint ``paths`` and return all surviving findings, sorted.

    ``select`` restricts checking to the listed rule ids; ``ignore``
    drops the listed ids after checking.  Pragma suppressions (see
    :mod:`repro.analysis.pragmas`) apply in either mode, and pragma
    *errors* surface as ``REP000`` findings subject to the same
    select/ignore filtering.

    ``jobs`` parallelises the per-file phase across that many worker
    processes (``0`` means one per CPU; ``None``/``1`` stays serial).
    ``cache_dir`` turns on the incremental cache: per-file results are
    reused while a file's bytes and the analysis package are unchanged,
    and project-rule results while the whole graph is unchanged.  Both
    knobs change wall-clock only — findings and their order are
    identical in every mode.
    """
    selected = _normalise_selection(select, "--select")
    ignored = _normalise_selection(ignore, "--ignore") or frozenset()

    def wanted(rule_id: str) -> bool:
        if rule_id in ignored:
            return False
        return selected is None or rule_id in selected

    discovered = _discover(paths)
    tasks: List[Dict[str, Any]] = []
    for path, rel_parts in discovered:
        tasks.append(
            {
                "file": str(path),
                "reported": str(path),
                "is_test": _is_test_file(path.name, rel_parts),
                "module": _module_name(path, rel_parts),
            }
        )

    cache = LintCache(cache_dir) if cache_dir is not None else None

    # File phase: resolve each task from the cache or by analysing it,
    # preserving discovery order in `entries`.
    entries: List[Optional[Dict[str, Any]]] = [None] * len(tasks)
    misses: List[int] = []
    if cache is not None:
        for position, task in enumerate(tasks):
            try:
                digest = content_hash(Path(task["file"]).read_bytes())
            except OSError:
                misses.append(position)
                continue
            entry = cache.load_file(task["reported"], digest)
            if entry is None:
                misses.append(position)
            else:
                entries[position] = entry
    else:
        misses = list(range(len(tasks)))

    worker_count = jobs if jobs is not None else 1
    if worker_count == 0:
        worker_count = os.cpu_count() or 1
    if worker_count > 1 and len(misses) > 1:
        with ProcessPoolExecutor(max_workers=worker_count) as pool:
            chunk = max(1, len(misses) // (worker_count * 4))
            fresh = list(
                pool.map(
                    _analyse_task,
                    [tasks[i] for i in misses],
                    chunksize=chunk,
                )
            )
    else:
        fresh = [_analyse_task(tasks[i]) for i in misses]
    for position, entry in zip(misses, fresh):
        entries[position] = entry
        if cache is not None and entry["content"] is not None:
            cache.store_file(
                tasks[position]["reported"], entry["content"], entry
            )

    findings: List[Finding] = []
    pragma_tables: Dict[str, PragmaTable] = {}
    modules: Dict[str, ModuleSymbols] = {}
    for task, entry in zip(tasks, entries):
        assert entry is not None
        for record in entry["findings"]:
            if wanted(record["rule"]):
                findings.append(
                    Finding(
                        rule=record["rule"],
                        path=record["path"],
                        line=record["line"],
                        message=record["message"],
                    )
                )
        pragma_tables[task["reported"]] = _deserialize_pragmas(
            entry["pragmas"]
        )
        if entry["symbols"] is not None:
            symbols = ModuleSymbols.from_dict(entry["symbols"])
            modules.setdefault(symbols.module, symbols)

    # Project phase: assemble the graph and run the cross-module rules,
    # cached on the graph fingerprint.
    doc_path = _find_doc(paths)
    doc: Optional[DocCatalogue] = (
        load_doc_catalogue(doc_path) if doc_path is not None else None
    )
    graph = ProjectGraph(modules=modules, doc=doc)
    project_records: Optional[List[Dict[str, Any]]] = None
    fingerprint = ""
    if cache is not None:
        fingerprint = graph.fingerprint()
        cached = cache.load_project(fingerprint)
        if isinstance(cached, list):
            project_records = cached
    if project_records is None:
        project_findings: List[Finding] = []
        for rule in PROJECT_RULES:
            project_findings.extend(rule.check(graph))
        project_records = [finding.to_dict() for finding in project_findings]
        if cache is not None:
            cache.store_project(fingerprint, project_records)
    for record in project_records:
        rule_id = str(record["rule"])
        if not wanted(rule_id):
            continue
        table = pragma_tables.get(str(record["path"]))
        if table is not None and table.allows(rule_id, int(record["line"])):
            continue
        findings.append(
            Finding(
                rule=rule_id,
                path=str(record["path"]),
                line=int(record["line"]),
                message=str(record["message"]),
            )
        )

    findings.sort(key=Finding.sort_key)
    return findings
