"""The unit of linter output.

A :class:`Finding` is one violated invariant at one source location.  The
runner returns findings sorted by path, line and rule so output is stable
across runs and platforms — CI diffs and the self-clean test depend on
that determinism just as much as the pipeline depends on seeded RNGs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple, Union

__all__ = ["Finding"]


@dataclass(frozen=True)
class Finding:
    """One rule violation at one location."""

    #: rule identifier, e.g. ``"REP002"`` (``"REP000"`` for linter-internal
    #: problems: unparsable files, malformed pragmas, unknown rule ids).
    rule: str
    #: path as given to the runner (kept relative when the input was).
    path: str
    #: 1-based source line of the offending node.
    line: int
    #: what invariant was violated and how to fix it.
    message: str

    def sort_key(self) -> Tuple[str, int, str]:
        return (self.path, self.line, self.rule)

    def to_dict(self) -> Dict[str, Union[str, int]]:
        """JSON-ready form (the ``infilter lint --format json`` record)."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
        }

    def render(self) -> str:
        """The one-line text form: ``path:line: RULE message``."""
        return f"{self.path}:{self.line}: {self.rule} {self.message}"
