"""On-disk incremental cache for the lint runner.

Layout under the cache directory (default ``.infilter-cache/``):

* ``files/<key>.json`` — one record per linted file, keyed on the
  file's reported path.  Each record stores the analysis-package
  digest, the source content hash, the post-pragma findings, the
  pragma table, and the serialized symbol table.  A record is a hit
  only if both digests match, so editing any file under
  ``repro/analysis/`` (new rule, changed heuristic) invalidates the
  whole cache at once.
* ``project/<fingerprint>.json`` — the project-rule findings for one
  exact :meth:`~repro.analysis.graph.ProjectGraph.fingerprint`.  A warm
  lint of an unchanged tree re-runs no project rule at all.

Every failure mode — unreadable record, truncated JSON, wrong shape —
degrades to a cache miss; the cache can never make a lint wrong, only
slow.  Writes go through a temp file plus ``os.replace`` so a killed
lint never leaves a torn record behind.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Optional

__all__ = ["LintCache", "analysis_digest", "content_hash"]

_CACHE_VERSION = 1

_digest_memo: Optional[str] = None


def analysis_digest() -> str:
    """Digest of the analysis package's own source files.

    Keys every cache record, so changing any rule, heuristic, or the
    runner itself invalidates all prior results.
    """
    global _digest_memo
    if _digest_memo is None:
        package_dir = Path(__file__).resolve().parent
        hasher = hashlib.sha256()
        hasher.update(str(_CACHE_VERSION).encode("ascii"))
        for source in sorted(package_dir.glob("*.py")):
            hasher.update(source.name.encode("utf-8"))
            hasher.update(b"\0")
            hasher.update(source.read_bytes())
            hasher.update(b"\0")
        _digest_memo = hasher.hexdigest()
    return _digest_memo


def content_hash(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def _atomic_write_json(target: Path, payload: Dict[str, Any]) -> None:
    target.parent.mkdir(parents=True, exist_ok=True)
    handle = tempfile.NamedTemporaryFile(
        mode="w",
        encoding="utf-8",
        dir=str(target.parent),
        prefix=target.name + ".",
        suffix=".tmp",
        delete=False,
    )
    try:
        with handle:
            json.dump(payload, handle, separators=(",", ":"))
        os.replace(handle.name, target)
    except OSError:
        try:
            os.unlink(handle.name)
        except OSError:
            pass


class LintCache:
    """Content-addressed store for per-file and project-rule results."""

    def __init__(self, directory: Path) -> None:
        self._files_dir = directory / "files"
        self._project_dir = directory / "project"
        self._digest = analysis_digest()

    def _file_record_path(self, reported: str) -> Path:
        key = hashlib.sha256(reported.encode("utf-8")).hexdigest()
        return self._files_dir / f"{key}.json"

    def load_file(
        self, reported: str, source_hash: str
    ) -> Optional[Dict[str, Any]]:
        """Return the cached per-file entry, or ``None`` on any miss."""
        record_path = self._file_record_path(reported)
        try:
            payload = json.loads(record_path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        if not isinstance(payload, dict):
            return None
        if payload.get("digest") != self._digest:
            return None
        if payload.get("content") != source_hash:
            return None
        entry = payload.get("entry")
        return entry if isinstance(entry, dict) else None

    def store_file(
        self, reported: str, source_hash: str, entry: Dict[str, Any]
    ) -> None:
        _atomic_write_json(
            self._file_record_path(reported),
            {"digest": self._digest, "content": source_hash, "entry": entry},
        )

    def load_project(self, fingerprint: str) -> Optional[Any]:
        record_path = self._project_dir / f"{fingerprint}.json"
        try:
            payload = json.loads(record_path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        if not isinstance(payload, dict):
            return None
        if payload.get("digest") != self._digest:
            return None
        return payload.get("findings")

    def store_project(self, fingerprint: str, findings: Any) -> None:
        _atomic_write_json(
            self._project_dir / f"{fingerprint}.json",
            {"digest": self._digest, "findings": findings},
        )
