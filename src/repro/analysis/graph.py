"""Project graph — the whole-program view the cross-module rules run on.

Phase 1 of the analyzer assembles one :class:`ProjectGraph` from every
module's :class:`~repro.analysis.symbols.ModuleSymbols` (plus the
observability doc's metric catalogue).  Phase 2
(:mod:`repro.analysis.project_rules`) never touches an AST: everything
it needs is in the graph, which is why a warm incremental lint can
rebuild it from cached symbol tables alone.

The graph's identity is its :meth:`ProjectGraph.fingerprint` — a digest
of the canonical JSON of all symbol tables and the doc catalogue.  The
incremental cache keys project-rule findings on that fingerprint, so
touching a file in a way that does not change its symbols (comments,
docstrings) re-runs nothing but that file's own per-file rules.
"""

from __future__ import annotations

import hashlib
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, Optional, Tuple

from .symbols import ModuleSymbols

__all__ = ["DocCatalogue", "ProjectGraph", "load_doc_catalogue"]

#: a backticked metric name inside a markdown table row.
_DOC_METRIC_RE = re.compile(r"`(infilter_[a-z0-9]+(?:_[a-z0-9]+)+)`")


@dataclass(frozen=True)
class DocCatalogue:
    """The metric names documented in ``docs/observability.md``."""

    path: str
    #: documented metric name -> first line it appears on.
    names: Dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {"path": self.path, "names": dict(self.names)}


def load_doc_catalogue(path: Path) -> Optional[DocCatalogue]:
    """Parse the metric catalogue out of the observability doc.

    Only backticked ``infilter_*`` tokens inside markdown table rows
    (lines starting with ``|``) count as catalogue entries — prose
    mentions and grep examples in the same doc are not declarations.
    """
    try:
        text = path.read_text(encoding="utf-8")
    except OSError:
        return None
    names: Dict[str, int] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.lstrip().startswith("|"):
            continue
        for match in _DOC_METRIC_RE.finditer(line):
            names.setdefault(match.group(1), lineno)
    return DocCatalogue(path=str(path), names=names)


@dataclass(frozen=True)
class ProjectGraph:
    """All module symbol tables plus the doc catalogue, joined."""

    #: dotted module name -> its symbol table.
    modules: Dict[str, ModuleSymbols] = field(default_factory=dict)
    doc: Optional[DocCatalogue] = None

    def resolve_import(self, target: str) -> Optional[str]:
        """Map an absolute import target to a module in this graph.

        ``repro.fastpath.plane.FastPath`` resolves to
        ``repro.fastpath.plane`` by longest-prefix match; targets
        outside the graph (stdlib, third-party) resolve to ``None``.
        """
        candidate = target
        while candidate:
            if candidate in self.modules:
                return candidate
            candidate = candidate.rpartition(".")[0]
        return None

    def edges(self) -> Iterator[Tuple[str, str, int]]:
        """Yield ``(importer, imported, line)`` for in-graph imports."""
        for module, symbols in self.modules.items():
            seen: Dict[str, int] = {}
            for target, line in symbols.import_targets.items():
                resolved = self.resolve_import(target)
                if resolved is None or resolved == module:
                    continue
                if resolved not in seen or line < seen[resolved]:
                    seen[resolved] = line
            for resolved, line in seen.items():
                yield module, resolved, line

    def fingerprint(self) -> str:
        """Content digest of the graph — the project-rule cache key."""
        payload = {
            "modules": {
                name: self.modules[name].to_dict()
                for name in sorted(self.modules)
            },
            "doc": self.doc.to_dict() if self.doc is not None else None,
        }
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()
