"""Timing helpers: one clock, one elapsed computation.

The pipeline used to compute ``time.perf_counter() - started`` at four
independent return sites; :class:`Stopwatch` is the single place that
subtraction now happens, so per-flow and per-stage latency measurements
cannot drift apart.  :func:`time_into` is the context-manager form for
bracketing a block and recording its duration straight into a
:class:`~repro.obs.registry.Histogram`.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator

from repro.obs.registry import Histogram

__all__ = ["Stopwatch", "time_into"]


class Stopwatch:
    """A monotonic elapsed-time reading, started at construction."""

    __slots__ = ("_started",)

    def __init__(self) -> None:
        self._started = time.perf_counter()

    def elapsed_s(self) -> float:
        """Seconds since construction (or the last :meth:`restart`)."""
        return time.perf_counter() - self._started

    def restart(self) -> float:
        """Re-arm the stopwatch; returns the elapsed time it had measured."""
        now = time.perf_counter()
        elapsed = now - self._started
        self._started = now
        return elapsed

    def lap_into(self, histogram: Histogram) -> float:
        """Record the elapsed time into ``histogram`` and re-arm.

        The per-stage timing primitive: one stopwatch laps through the
        pipeline stages, each lap observed into that stage's histogram.
        """
        elapsed = self.restart()
        histogram.observe(elapsed)
        return elapsed


@contextmanager
def time_into(histogram: Histogram) -> Iterator[Stopwatch]:
    """Observe the duration of the ``with`` block into ``histogram``."""
    watch = Stopwatch()
    try:
        yield watch
    finally:
        histogram.observe(watch.elapsed_s())
