"""Snapshot rendering: Prometheus text format and JSON.

Two export surfaces over one :class:`~repro.obs.registry.MetricsRegistry`:

* :func:`render_prometheus` — the text exposition format (``# HELP`` /
  ``# TYPE`` headers, cumulative ``le`` histogram buckets) that any
  Prometheus-compatible scraper or human can read;
* :func:`snapshot` / :func:`render_json` — a JSON document that
  round-trips through :func:`load_snapshot`, which is how the CLI's
  ``--metrics-out file.json`` and the ``stats`` subcommand exchange a
  run's metrics after the process has exited.

Both renderings are deterministic for a given registry state (sorted
families, sorted label sets), so snapshot files diff cleanly between
runs — the property the benchmark suite relies on.
"""

from __future__ import annotations

import json
from typing import Dict, List, Tuple

from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
)

__all__ = [
    "render_prometheus",
    "render_json",
    "snapshot",
    "load_snapshot",
    "load_snapshot_text",
    "SNAPSHOT_VERSION",
]

SNAPSHOT_VERSION = 1


def _format_value(value: float) -> str:
    """Integers without a trailing ``.0``; floats with full precision."""
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _label_str(labelnames: Tuple[str, ...], values: Tuple[str, ...],
               extra: str = "") -> str:
    parts = [
        f'{name}="{value}"' for name, value in zip(labelnames, values)
    ]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def render_prometheus(registry: MetricsRegistry) -> str:
    """The registry as Prometheus text exposition format."""
    lines: List[str] = []
    for family in registry.collect():
        lines.append(f"# HELP {family.name} {family.help}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for values, child in family.samples():
            if isinstance(child, Histogram):
                cumulative = 0
                for edge, count in zip(child.buckets, child.bucket_counts):
                    cumulative += count
                    labels = _label_str(
                        family.labelnames, values,
                        f'le="{_format_value(edge)}"',
                    )
                    lines.append(f"{family.name}_bucket{labels} {cumulative}")
                cumulative += child.bucket_counts[-1]
                labels = _label_str(family.labelnames, values, 'le="+Inf"')
                lines.append(f"{family.name}_bucket{labels} {cumulative}")
                plain = _label_str(family.labelnames, values)
                lines.append(f"{family.name}_sum{plain} {_format_value(child.sum)}")
                lines.append(f"{family.name}_count{plain} {child.count}")
            else:
                labels = _label_str(family.labelnames, values)
                lines.append(
                    f"{family.name}{labels} {_format_value(child.value)}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


def snapshot(registry: MetricsRegistry) -> Dict[str, object]:
    """The registry as a JSON-serialisable document."""
    metrics = []
    for family in registry.collect():
        entry: Dict[str, object] = {
            "name": family.name,
            "type": family.kind,
            "help": family.help,
            "labelnames": list(family.labelnames),
        }
        if isinstance(family, Histogram):
            entry["buckets"] = list(family.buckets)
            entry["samples"] = [
                {
                    "labels": list(values),
                    "bucket_counts": list(child.bucket_counts),
                    "sum": child.sum,
                    "count": child.count,
                }
                for values, child in family.samples()
            ]
        else:
            entry["samples"] = [
                {"labels": list(values), "value": child.value}
                for values, child in family.samples()
            ]
        metrics.append(entry)
    return {"version": SNAPSHOT_VERSION, "metrics": metrics}


def render_json(registry: MetricsRegistry, *, indent: int = 2) -> str:
    """:func:`snapshot`, serialised."""
    return json.dumps(snapshot(registry), indent=indent, sort_keys=True)


def load_snapshot(document: Dict[str, object]) -> MetricsRegistry:
    """Rebuild a registry from a :func:`snapshot` document.

    The inverse of :func:`snapshot`: ``snapshot(load_snapshot(doc)) ==
    doc`` for any document this module produced.  Counters and gauges
    restore their values; histograms restore bucket counts, sum and
    count exactly.
    """
    version = document.get("version")
    if version != SNAPSHOT_VERSION:
        raise MetricError(f"unsupported metrics snapshot version {version!r}")
    registry = MetricsRegistry()
    for entry in document.get("metrics", []):
        name = entry["name"]
        kind = entry["type"]
        help_text = entry.get("help", "")
        labelnames = tuple(entry.get("labelnames", ()))
        if kind == "histogram":
            family = registry.histogram(
                name, help_text, labelnames, tuple(entry["buckets"])
            )
        elif kind == "counter":
            family = registry.counter(name, help_text, labelnames)
        elif kind == "gauge":
            family = registry.gauge(name, help_text, labelnames)
        else:
            raise MetricError(f"unknown metric type {kind!r} for {name}")
        for sample in entry.get("samples", []):
            values = sample.get("labels", [])
            child = (
                family.labels(**dict(zip(labelnames, values)))
                if labelnames
                else family
            )
            if kind == "histogram":
                counts = list(sample["bucket_counts"])
                if len(counts) != len(family.buckets) + 1:
                    raise MetricError(
                        f"histogram {name} sample has {len(counts)} bucket"
                        f" counts for {len(family.buckets)} edges"
                    )
                child.bucket_counts = counts
                child.sum = float(sample["sum"])
                child.count = int(sample["count"])
            elif kind == "counter":
                child.value = float(sample["value"])
            else:
                child.set(float(sample["value"]))
    return registry


def load_snapshot_text(text: str) -> MetricsRegistry:
    """:func:`load_snapshot` over a serialised JSON document."""
    try:
        document = json.loads(text)
    except json.JSONDecodeError as error:
        raise MetricError(f"malformed metrics snapshot: {error}") from error
    if not isinstance(document, dict):
        raise MetricError("metrics snapshot must be a JSON object")
    return load_snapshot(document)
