"""Structured logging for the ``repro`` component tree.

Everything logs through stdlib :mod:`logging` under the ``repro.``
namespace; this module adds the two pieces an operator needs:

* :func:`get_logger` — the per-module logger convention (pass
  ``__name__``; anything outside the tree is prefixed so one
  ``configure_logging`` call captures it all);
* :class:`JsonLinesFormatter` — one JSON object per line, with any
  ``extra={...}`` fields of the log call merged in, so decode errors,
  overload events and absorptions are machine-parseable.

By default the library is silent: a ``NullHandler`` sits on the base
logger so importing the package never writes to stderr.  Call
:func:`configure_logging` (or attach your own handler to ``"repro"``)
to turn output on.
"""

from __future__ import annotations

import json
import logging
from typing import IO, Optional, Union

__all__ = [
    "BASE_LOGGER",
    "JsonLinesFormatter",
    "get_logger",
    "configure_logging",
    "reset_logging",
]

BASE_LOGGER = "repro"

#: LogRecord attributes that are plumbing, not payload; anything else on
#: the record (i.e. passed via ``extra=``) is exported as a JSON field.
_RESERVED = frozenset(
    logging.LogRecord("", 0, "", 0, "", (), None).__dict__
) | {"message", "asctime", "taskName"}


class JsonLinesFormatter(logging.Formatter):
    """Render each record as one sorted-key JSON object.

    Fields: ``ts`` (seconds since the epoch), ``level``, ``logger``,
    ``msg`` (the formatted message), ``exc`` when exception info is
    attached, plus every ``extra`` field of the logging call.
    """

    def format(self, record: logging.LogRecord) -> str:
        payload = {
            "ts": round(record.created, 6),
            "level": record.levelname,
            "logger": record.name,
            "msg": record.getMessage(),
        }
        if record.exc_info:
            payload["exc"] = self.formatException(record.exc_info)
        for key, value in record.__dict__.items():
            if key not in _RESERVED and not key.startswith("_"):
                payload[key] = value
        return json.dumps(payload, sort_keys=True, default=repr)


def get_logger(name: str) -> logging.Logger:
    """The logger for one module, always inside the ``repro`` tree."""
    if name != BASE_LOGGER and not name.startswith(BASE_LOGGER + "."):
        name = f"{BASE_LOGGER}.{name}"
    return logging.getLogger(name)


def configure_logging(
    level: Union[int, str] = logging.INFO,
    *,
    stream: Optional[IO[str]] = None,
    path: Optional[str] = None,
    json_lines: bool = True,
) -> logging.Handler:
    """Attach one handler to the ``repro`` base logger.

    ``path`` wins over ``stream``; with neither, records go to stderr.
    Repeated calls replace the previously configured handler rather than
    stacking, so re-configuration in long sessions is safe.  Returns the
    handler (callers may close/flush it).
    """
    reset_logging()
    handler: logging.Handler
    if path is not None:
        handler = logging.FileHandler(path, encoding="utf-8")
    else:
        handler = logging.StreamHandler(stream)
    if json_lines:
        handler.setFormatter(JsonLinesFormatter())
    else:
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(levelname)s %(name)s %(message)s")
        )
    handler._repro_configured = True  # type: ignore[attr-defined]
    base = logging.getLogger(BASE_LOGGER)
    base.addHandler(handler)
    base.setLevel(level)
    return handler


def reset_logging() -> None:
    """Detach handlers installed by :func:`configure_logging`."""
    base = logging.getLogger(BASE_LOGGER)
    for handler in list(base.handlers):
        if getattr(handler, "_repro_configured", False):
            base.removeHandler(handler)
            handler.close()
    base.setLevel(logging.NOTSET)


# Silent by default: never let the stdlib "last resort" handler spray
# library internals onto stderr of an un-configured application.
logging.getLogger(BASE_LOGGER).addHandler(logging.NullHandler())
