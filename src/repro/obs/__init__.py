"""Observability: metrics registry, structured logging, timing, export.

The operational layer the paper's Section 6 measurements imply: every
component of the Enhanced InFilter data path publishes counters, gauges
and latency histograms into a :class:`MetricsRegistry`, logs structured
events through :func:`get_logger`, and the registry renders to
Prometheus text or a JSON snapshot via :mod:`repro.obs.export`.

Foundation-layer module: it imports only :mod:`repro.util` and is
imported by every substrate above it.  The full metric catalogue lives
in ``docs/observability.md``.
"""

from __future__ import annotations

from repro.obs.export import (
    load_snapshot,
    load_snapshot_text,
    render_json,
    render_prometheus,
    snapshot,
)
from repro.obs.logs import (
    BASE_LOGGER,
    JsonLinesFormatter,
    configure_logging,
    get_logger,
    reset_logging,
)
from repro.obs.registry import (
    LATENCY_BUCKETS_S,
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
    get_registry,
    set_registry,
    use_registry,
)
from repro.obs.timing import Stopwatch, time_into

__all__ = [
    "load_snapshot",
    "load_snapshot_text",
    "render_json",
    "render_prometheus",
    "snapshot",
    "BASE_LOGGER",
    "JsonLinesFormatter",
    "configure_logging",
    "get_logger",
    "reset_logging",
    "LATENCY_BUCKETS_S",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricError",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
    "use_registry",
    "Stopwatch",
    "time_into",
]
