"""The metrics registry: counters, gauges and latency histograms.

A deliberately small, dependency-free re-implementation of the
Prometheus client data model, sized for the Enhanced InFilter's
operational surface (Section 6 of the paper reports per-flow latency and
detection/false-positive rates an operator must be able to read live):

* :class:`Counter` — monotone event counts (flows per verdict, decode
  errors, alerts emitted);
* :class:`Gauge` — point-in-time values (EIA set sizes, scan buffer
  occupancy, experiment rates);
* :class:`Histogram` — value distributions over **fixed** bucket edges,
  used for per-stage latency so snapshots are comparable across runs.

Metric families are registered once per name; re-registering with the
same type, help text, labels (and buckets) returns the existing family,
so independent components can share a metric without coordination.
Everything renders deterministically: families sort by name, label sets
by value tuple — two identical workloads produce byte-identical
snapshots (see :mod:`repro.obs.export`).

A process-wide default registry backs components that are not handed an
explicit one; tests and CLI runs that need isolation swap it with
:func:`set_registry` / :func:`use_registry`.
"""

from __future__ import annotations

import re
from bisect import bisect_left
from contextlib import contextmanager
from typing import (
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Type,
    TypeVar,
)

from repro.util.errors import ReproError

__all__ = [
    "MetricError",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "LATENCY_BUCKETS_S",
    "get_registry",
    "set_registry",
    "use_registry",
]


class MetricError(ReproError):
    """Invalid metric name, labels, value, or conflicting registration."""


_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

_FamilyT = TypeVar("_FamilyT", bound="_Family")

#: Default latency bucket edges, in seconds.  Chosen around the paper's
#: Section 6.4 numbers (BI ~0.5 ms, EI 2-6 ms per flow) with headroom
#: both ways; fixed so histograms from different runs line up.
LATENCY_BUCKETS_S: Tuple[float, ...] = (
    0.000_05, 0.000_1, 0.000_25, 0.000_5,
    0.001, 0.002_5, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0,
)


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise MetricError(f"invalid metric name {name!r}")
    return name


def _check_labelnames(labelnames: Sequence[str]) -> Tuple[str, ...]:
    names = tuple(labelnames)
    for label in names:
        if not _LABEL_RE.match(label):
            raise MetricError(f"invalid label name {label!r}")
    if len(set(names)) != len(names):
        raise MetricError(f"duplicate label names in {names!r}")
    return names


class _Family:
    """Common machinery: a named metric with zero or more label children."""

    kind = "untyped"

    def __init__(self, name: str, help: str, labelnames: Tuple[str, ...]) -> None:
        self.name = _check_name(name)
        self.help = help
        self.labelnames = _check_labelnames(labelnames)
        self._children: Dict[Tuple[str, ...], "_Family"] = {}
        # The no-label family is its own single child.
        if not self.labelnames:
            self._children[()] = self

    def labels(self, **labelvalues: object) -> "_Family":
        """The child for one label-value combination (created on demand)."""
        if not self.labelnames:
            raise MetricError(f"metric {self.name} takes no labels")
        if set(labelvalues) != set(self.labelnames):
            raise MetricError(
                f"metric {self.name} expects labels {self.labelnames},"
                f" got {tuple(sorted(labelvalues))}"
            )
        key = tuple(str(labelvalues[label]) for label in self.labelnames)
        child = self._children.get(key)
        if child is None:
            child = self._make_child()
            self._children[key] = child
        return child

    def _make_child(self) -> "_Family":
        child = object.__new__(type(self))
        child._init_child(self)
        return child

    def _init_child(self, parent: "_Family") -> None:
        self.name = parent.name
        self.help = parent.help
        self.labelnames = ()
        self._children = {(): self}

    def samples(self) -> List[Tuple[Tuple[str, ...], "_Family"]]:
        """(label values, child) pairs in deterministic order."""
        return sorted(self._children.items(), key=lambda item: item[0])

    def _require_leaf(self) -> None:
        if self.labelnames:
            raise MetricError(
                f"metric {self.name} has labels {self.labelnames};"
                " call .labels(...) first"
            )

    def reset(self) -> None:
        """Zero every child (registrations and label sets are kept)."""
        for child in self._children.values():
            child._zero()

    def _zero(self) -> None:  # pragma: no cover - overridden
        raise NotImplementedError


class Counter(_Family):
    """A monotonically increasing count."""

    kind = "counter"

    def __init__(self, name: str, help: str = "", labelnames: Tuple[str, ...] = ()) -> None:
        super().__init__(name, help, labelnames)
        self.value = 0.0

    def _init_child(self, parent: _Family) -> None:
        super()._init_child(parent)
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self._require_leaf()
        if amount < 0:
            raise MetricError(f"counter {self.name} cannot decrease")
        self.value += amount

    def _zero(self) -> None:
        self.value = 0.0


class Gauge(_Family):
    """A value that can go up and down."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "", labelnames: Tuple[str, ...] = ()) -> None:
        super().__init__(name, help, labelnames)
        self.value = 0.0

    def _init_child(self, parent: _Family) -> None:
        super()._init_child(parent)
        self.value = 0.0

    def set(self, value: float) -> None:
        self._require_leaf()
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self._require_leaf()
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    def _zero(self) -> None:
        self.value = 0.0


class Histogram(_Family):
    """A distribution over fixed, finite bucket edges (plus +Inf).

    ``bucket_counts[i]`` counts observations ``<= buckets[i]``; the final
    slot counts the overflow.  Rendering (:mod:`repro.obs.export`)
    cumulates them into the Prometheus ``le`` convention.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labelnames: Tuple[str, ...] = (),
        buckets: Sequence[float] = LATENCY_BUCKETS_S,
    ) -> None:
        edges = tuple(float(edge) for edge in buckets)
        if not edges or any(b >= a for b, a in zip(edges, edges[1:])):
            raise MetricError(
                f"histogram {name} buckets must be a strictly increasing"
                " non-empty sequence"
            )
        self.buckets = edges
        super().__init__(name, help, labelnames)
        self._zero()

    def _init_child(self, parent: _Family) -> None:
        super()._init_child(parent)
        self.buckets = parent.buckets  # type: ignore[attr-defined]
        self._zero()

    def observe(self, value: float) -> None:
        self._require_leaf()
        self.bucket_counts[bisect_left(self.buckets, value)] += 1
        self.sum += value
        self.count += 1

    def observe_many(self, value: float, times: int) -> None:
        """Record ``times`` identical observations with one bucket lookup.

        The batch-ingest fast path attributes a batch's mean per-flow
        latency to every flow in the batch; doing that through
        :meth:`observe` would pay the bisect per flow for the same answer.
        """
        self._require_leaf()
        if times < 0:
            raise MetricError(f"histogram {self.name} cannot observe a negative count")
        if times == 0:
            return
        self.bucket_counts[bisect_left(self.buckets, value)] += times
        self.sum += value * times
        self.count += times

    def _zero(self) -> None:
        self.bucket_counts: List[int] = [0] * (len(self.buckets) + 1)
        self.sum = 0.0
        self.count = 0


class MetricsRegistry:
    """Holds metric families; the unit of snapshot/export.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create: the first
    call registers the family, later calls with an *identical* signature
    return it, and any mismatch (type, labels, buckets) raises
    :class:`MetricError` — silent divergence between two components
    claiming the same name is exactly what a metrics layer must prevent.
    """

    def __init__(self) -> None:
        self._families: Dict[str, _Family] = {}

    def __len__(self) -> int:
        return len(self._families)

    def __contains__(self, name: str) -> bool:
        return name in self._families

    def counter(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Counter:
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Gauge:
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = LATENCY_BUCKETS_S,
    ) -> Histogram:
        family = self._families.get(name)
        if family is None:
            family = Histogram(name, help, tuple(labelnames), buckets)
            self._families[name] = family
            return family
        self._check_match(family, Histogram, name, labelnames)
        assert isinstance(family, Histogram)
        if family.buckets != tuple(float(b) for b in buckets):
            raise MetricError(
                f"metric {name} already registered with buckets"
                f" {family.buckets}"
            )
        return family

    def _get_or_create(
        self,
        cls: Type[_FamilyT],
        name: str,
        help: str,
        labelnames: Sequence[str],
    ) -> _FamilyT:
        family = self._families.get(name)
        if family is None:
            created = cls(name, help, tuple(labelnames))
            self._families[name] = created
            return created
        self._check_match(family, cls, name, labelnames)
        assert isinstance(family, cls)
        return family

    @staticmethod
    def _check_match(
        family: _Family,
        cls: type,
        name: str,
        labelnames: Sequence[str],
    ) -> None:
        if type(family) is not cls:
            raise MetricError(
                f"metric {name} already registered as a {family.kind}"
            )
        if family.labelnames != tuple(labelnames):
            raise MetricError(
                f"metric {name} already registered with labels"
                f" {family.labelnames}"
            )

    def get(self, name: str) -> Optional[_Family]:
        return self._families.get(name)

    def collect(self) -> List[_Family]:
        """All families, sorted by name (the deterministic export order)."""
        return [self._families[name] for name in sorted(self._families)]

    def reset(self) -> None:
        """Zero every metric, keeping registrations and label children."""
        for family in self._families.values():
            family.reset()

    def unregister_all(self) -> None:
        """Forget every family (a fresh registry without reallocating)."""
        self._families.clear()


# -- the process-default registry ---------------------------------------------

_default_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _default_registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Replace the default registry; returns the previous one."""
    global _default_registry
    previous = _default_registry
    _default_registry = registry
    return previous


@contextmanager
def use_registry(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Temporarily install ``registry`` as the process default.

    Components constructed inside the block (and not handed an explicit
    registry) publish into it — how the CLI isolates one run's metrics.
    """
    previous = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)
