"""Merging per-shard state into one operator-facing report.

Three merge surfaces:

* :func:`merge_stats` — combines :class:`PipelineStats` objects (sums
  the exact counters, keeps the max latency, and re-samples the latency
  reservoirs so the merged percentiles still cover the whole stream);
* :func:`merge_registries` — combines :class:`MetricsRegistry` contents:
  counters and histogram buckets add, gauges take the maximum (a merged
  occupancy or set-size gauge answers "how big did any one shard get",
  which is the capacity question an operator asks);
* :class:`EngineReport` — the engine run's summary: the authoritative
  detector's stats, the merged shard-worker registry snapshot, and the
  engine's own throughput/speculation/backpressure counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.pipeline import PipelineStats
from repro.obs import Histogram, MetricsRegistry, snapshot
from repro.util.rng import SeededRng

__all__ = ["merge_stats", "merge_registries", "EngineReport"]

#: Seed of the re-sampling RNG in :func:`merge_stats` — fixed so merging
#: the same shard stats twice yields identical percentiles.
_MERGE_SEED = 0x3E1D5


def merge_stats(parts: Sequence[PipelineStats]) -> PipelineStats:
    """Combine per-shard pipeline stats into one.

    Counters, totals and the per-stage attack breakdown are exact sums;
    ``latency_max_s`` is the max.  The latency reservoirs concatenate
    and, over the cap, re-sample deterministically — approximate (each
    part's samples stand in for its whole stream) but unbiased enough
    for operator percentiles, and exact whenever the combined sample
    count fits the cap.
    """
    merged = PipelineStats()
    if parts:
        # Inherit the shards' configured cap; the default on the fresh
        # instance would silently widen a deliberately small reservoir.
        merged.latency_sample_cap = max(p.latency_sample_cap for p in parts)
    samples: List[float] = []
    for part in parts:
        merged.processed += part.processed
        merged.legal += part.legal
        merged.suspects += part.suspects
        merged.benign += part.benign
        merged.attacks += part.attacks
        merged.absorbed += part.absorbed
        merged.overload_dropped += part.overload_dropped
        merged.overload_flagged += part.overload_flagged
        merged.latency_total_s += part.latency_total_s
        merged.latency_max_s = max(merged.latency_max_s, part.latency_max_s)
        merged.latency_samples_seen += part.latency_samples_seen
        for stage, count in part.attacks_by_stage.items():
            merged.attacks_by_stage[stage] = (
                merged.attacks_by_stage.get(stage, 0) + count
            )
        samples.extend(part.latency_samples)
    if len(samples) > merged.latency_sample_cap:
        # SeededRng(seed) draws the same stream as the random.Random(seed)
        # this used before the REP002 migration, so merged percentiles
        # are unchanged across the refactor.
        rng = SeededRng(_MERGE_SEED, "stats-merge")
        samples = rng.sample(samples, merged.latency_sample_cap)
    merged.latency_samples = samples
    return merged


def merge_registries(
    parts: Sequence[MetricsRegistry],
    into: Optional[MetricsRegistry] = None,
) -> MetricsRegistry:
    """Combine registry contents: counters/histograms add, gauges max.

    Families are created in the target on first encounter with the
    source's exact signature, so a type/label/bucket conflict between
    shards raises :class:`~repro.obs.MetricError` rather than merging
    apples into oranges.
    """
    merged = into if into is not None else MetricsRegistry()
    for part in parts:
        for family in part.collect():
            if family.kind == "histogram":
                assert isinstance(family, Histogram)
                target = merged.histogram(
                    family.name, family.help, family.labelnames, family.buckets
                )
            elif family.kind == "counter":
                target = merged.counter(
                    family.name, family.help, family.labelnames
                )
            else:
                target = merged.gauge(
                    family.name, family.help, family.labelnames
                )
            for values, child in family.samples():
                leaf = (
                    target.labels(**dict(zip(family.labelnames, values)))
                    if family.labelnames
                    else target
                )
                if family.kind == "histogram":
                    for index, count in enumerate(child.bucket_counts):
                        leaf.bucket_counts[index] += count
                    leaf.sum += child.sum
                    leaf.count += child.count
                elif family.kind == "counter":
                    leaf.value += child.value
                else:
                    leaf.value = max(leaf.value, child.value)
    return merged


@dataclass
class EngineReport:
    """What one :class:`~repro.engine.ShardedIngestEngine` run concluded."""

    shards: int
    mode: str
    batches: int
    flows: int
    speculation_hits: int
    speculation_misses: int
    backpressure_waits: int
    backpressure_wait_s: float
    absorption_deltas: int
    #: the authoritative detector's stats — exact, serial-equivalent.
    stats: PipelineStats
    #: detector checkpoints written at batch boundaries this run.
    checkpoints: int = 0
    #: merged shard-worker registry snapshot (replica EIA/scan metrics
    #: plus worker speculation counters); empty when speculation was off.
    worker_metrics: Dict[str, object] = field(default_factory=dict)

    @property
    def speculation_hit_rate(self) -> float:
        demanded = self.speculation_hits + self.speculation_misses
        return self.speculation_hits / demanded if demanded else 0.0

    @classmethod
    def build(
        cls,
        *,
        shards: int,
        mode: str,
        batches: int,
        flows: int,
        speculation_hits: int,
        speculation_misses: int,
        backpressure_waits: int,
        backpressure_wait_s: float,
        absorption_deltas: int,
        stats: PipelineStats,
        checkpoints: int = 0,
        worker_registries: Sequence[MetricsRegistry] = (),
    ) -> "EngineReport":
        worker_metrics: Dict[str, object] = {}
        if worker_registries:
            worker_metrics = snapshot(merge_registries(worker_registries))
        return cls(
            shards=shards,
            mode=mode,
            batches=batches,
            flows=flows,
            speculation_hits=speculation_hits,
            speculation_misses=speculation_misses,
            backpressure_waits=backpressure_waits,
            backpressure_wait_s=backpressure_wait_s,
            absorption_deltas=absorption_deltas,
            stats=stats,
            checkpoints=checkpoints,
            worker_metrics=worker_metrics,
        )

    def describe(self) -> str:
        """A short human-readable summary (the CLI's run footer)."""
        stats = self.stats
        lines = [
            f"engine: {self.shards} shard(s), mode={self.mode},"
            f" {self.batches} batch(es), {self.flows} flows",
            f"verdicts: legal={stats.legal} benign={stats.benign}"
            f" attacks={stats.attacks} absorbed={stats.absorbed}",
        ]
        demanded = self.speculation_hits + self.speculation_misses
        if demanded:
            lines.append(
                f"speculation: {self.speculation_hits}/{demanded} hits"
                f" ({100.0 * self.speculation_hit_rate:.1f}%)"
            )
        if self.backpressure_waits:
            lines.append(
                f"backpressure: {self.backpressure_waits} wait(s),"
                f" {self.backpressure_wait_s:.3f}s total"
            )
        if self.checkpoints:
            lines.append(f"checkpoints: {self.checkpoints} written")
        return "\n".join(lines)
