"""The sharded, batched ingest engine.

:class:`ShardedIngestEngine` turns a record stream into a sequence of
batches, fans each batch's records out to N shard workers (routed by
source block, see :mod:`repro.engine.router`) for *speculative* NNS
assessment, and commits every batch — in stream order — through the
authoritative detector's :meth:`~repro.core.EnhancedInFilter.process_batch`.

The split is what reconciles throughput with exactness:

* the **speculation plane** (shard replicas) is embarrassingly parallel
  and side-effect free: replicas compute pure NNS assessments and may be
  arbitrarily stale or wrong without consequence;
* the **commit plane** is the authoritative detector applied serially in
  input order, so verdicts, absorptions, alerts and stats are *exactly*
  what serial :meth:`process` would have produced — for any shard count,
  any batch size, and either execution mode.

Two execution modes:

* ``inline`` — workers run in-process.  On a single-core host this is
  the fast path: the win comes from ``process_batch``'s amortised
  bookkeeping and memoisation, and speculation defaults off (replicas
  would duplicate work the commit stage performs anyway).
* ``process`` — workers run in a ``fork``-start ``multiprocessing.Pool``
  with a bounded pending-batch window: up to ``max_pending_batches``
  batches speculate ahead of the commit stage, and the engine blocks
  (counting backpressure) when the window fills.  Replica EIA state in
  the children converges through the cumulative absorption-delta logs
  carried by every task.

``mode="auto"`` picks ``process`` only when it can plausibly pay:
multiple shards requested, a ``fork`` context available, and more than
one CPU.
"""

from __future__ import annotations

import os
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Deque,
    Dict,
    Iterable,
    List,
    Optional,
    Tuple,
    Union,
)

if TYPE_CHECKING:
    from multiprocessing.context import BaseContext

from repro.core.persistence import save_detector
from repro.core.pipeline import (
    BatchResult,
    EnhancedInFilter,
    NnsAssessment,
)
from repro.engine.merge import EngineReport
from repro.engine.router import ShardRouter
from repro.engine.worker import (
    Delta,
    DetectorTemplate,
    ShardWorker,
    SpeculationResult,
    _pool_initializer,
    _pool_speculate,
)
from repro.netflow.records import FlowRecord
from repro.obs import MetricsRegistry, Stopwatch, get_logger, load_snapshot
from repro.util.errors import ConfigError

__all__ = ["EngineConfig", "ShardedIngestEngine"]

log = get_logger(__name__)

MODE_AUTO = "auto"
MODE_INLINE = "inline"
MODE_PROCESS = "process"

#: Bucket edges for whole-batch commit latency — batches are hundreds of
#: flows, so the per-flow latency buckets are too fine.
_BATCH_LATENCY_BUCKETS_S: Tuple[float, ...] = (
    0.000_5, 0.001, 0.002_5, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)


@dataclass(frozen=True)
class EngineConfig:
    """Knobs of the sharded ingest engine."""

    shards: int = 1
    batch_size: int = 256
    mode: str = MODE_AUTO
    #: process mode: how many batches may speculate ahead of the commit
    #: stage before ``submit`` blocks (the bounded input queue).
    max_pending_batches: int = 2
    #: None picks the mode default — on in process mode (speculation is
    #: the parallel work), off inline (the replicas would re-run stages
    #: the commit stage performs anyway on the same core).
    speculate: Optional[bool] = None
    #: Checkpoint the authoritative detector every N committed batches
    #: (0 disables).  Needs a ``checkpoint_path`` on the engine.
    checkpoint_every: int = 0
    #: Attach the cross-batch EIA verdict memo (``repro.fastpath``) to
    #: the authoritative detector.  Decision-equivalent either way; off
    #: exists for apples-to-apples benchmarking and as an escape hatch.
    fastpath: bool = True

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ConfigError(f"shards must be >= 1, got {self.shards}")
        if self.batch_size < 1:
            raise ConfigError(
                f"batch_size must be >= 1, got {self.batch_size}"
            )
        if self.max_pending_batches < 1:
            raise ConfigError(
                "max_pending_batches must be >= 1,"
                f" got {self.max_pending_batches}"
            )
        if self.mode not in (MODE_AUTO, MODE_INLINE, MODE_PROCESS):
            raise ConfigError(
                f"mode must be one of auto/inline/process, got {self.mode!r}"
            )
        if self.checkpoint_every < 0:
            raise ConfigError(
                f"checkpoint_every must be >= 0, got {self.checkpoint_every}"
            )


class _PendingBatch:
    """A batch whose speculation is in flight (process mode)."""

    __slots__ = ("records", "parts")

    def __init__(
        self,
        records: List[FlowRecord],
        parts: List[Tuple[List[int], object]],
    ) -> None:
        self.records = records
        #: (indices into records, AsyncResult) per shard that got work.
        self.parts = parts


def _fork_context() -> Optional[BaseContext]:
    """The ``fork`` multiprocessing context, or None where unsupported."""
    import multiprocessing

    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return None


class ShardedIngestEngine:
    """Batched, sharded front end over one authoritative detector.

    Usage::

        engine = ShardedIngestEngine(detector, EngineConfig(shards=4))
        with engine:
            report = engine.run(records)

    or incrementally: ``submit`` records one at a time (a full buffer
    dispatches a batch), then ``flush()`` and ``report()``.
    """

    def __init__(
        self,
        detector: EnhancedInFilter,
        config: Optional[EngineConfig] = None,
        *,
        registry: Optional[MetricsRegistry] = None,
        checkpoint_path: Optional[Union[str, Path]] = None,
        cursor_base: int = 0,
    ) -> None:
        self.detector = detector
        self.config = config if config is not None else EngineConfig()
        if self.config.checkpoint_every > 0 and checkpoint_path is None:
            raise ConfigError(
                "checkpoint_every needs a checkpoint_path to write to"
            )
        if cursor_base < 0:
            raise ConfigError(f"cursor_base must be >= 0, got {cursor_base}")
        self._checkpoint_path = (
            Path(checkpoint_path) if checkpoint_path is not None else None
        )
        registry = registry if registry is not None else detector.registry
        self.registry = registry
        self.router = ShardRouter(
            self.config.shards, detector.config.eia.granularity
        )
        self.mode = self._resolve_mode(self.config.mode)
        if self.config.fastpath:
            # The commit plane is the serial bottleneck; the memo lives
            # on the authoritative detector only (shard replicas never
            # run the EIA stage for real).
            detector.enable_fastpath()
        if self.config.speculate is None:
            self.speculate = self.mode == MODE_PROCESS
        else:
            self.speculate = self.config.speculate
        # Speculation only ever matters for the NNS stage.
        if not detector.config.enhanced or detector.model is None:
            self.speculate = False

        self._buffer: List[FlowRecord] = []
        self._pending: Deque[_PendingBatch] = deque()
        self._delta_logs: List[List[Delta]] = [
            [] for _ in range(self.config.shards)
        ]
        self._workers: List[Optional[ShardWorker]] = [None] * self.config.shards
        self._pool = None
        self._shard_snapshots: Dict[Tuple[int, int], Dict] = {}
        self._batches = 0
        self._flows = 0
        self._spec_hits = 0
        self._spec_misses = 0
        self._bp_waits = 0
        self._bp_wait_s = 0.0
        self._deltas_routed = 0
        self._closed = False
        #: Records committed through the authoritative detector, counted
        #: from ``cursor_base`` — the resume offset written into every
        #: checkpoint this engine takes.
        self._cursor = cursor_base
        self._checkpoints = 0

        self._m_batches = registry.counter(
            "infilter_engine_batches_total",
            "Batches committed through the authoritative detector.",
        )
        self._m_flows = registry.counter(
            "infilter_engine_flows_total",
            "Flow records ingested through the engine.",
        )
        spec = registry.counter(
            "infilter_engine_speculation_total",
            "NNS-stage demand met by shard speculation vs computed at commit.",
            ("outcome",),
        )
        self._m_spec_hit = spec.labels(outcome="hit")
        self._m_spec_miss = spec.labels(outcome="miss")
        self._m_worker_spec = registry.counter(
            "infilter_engine_worker_speculations_total",
            "Shard-worker speculation outcomes (assessed/legal/scan).",
            ("outcome",),
        )
        self._m_bp_waits = registry.counter(
            "infilter_engine_backpressure_waits_total",
            "Times the bounded pending-batch window forced a commit wait.",
        )
        self._m_bp_wait_s = registry.histogram(
            "infilter_engine_backpressure_wait_seconds",
            "Time spent blocked on in-flight speculation per forced commit.",
        )
        self._m_queue = registry.gauge(
            "infilter_engine_queue_depth",
            "Batches currently speculating ahead of the commit stage.",
        )
        self._m_batch_latency = registry.histogram(
            "infilter_engine_batch_latency_seconds",
            "Commit-stage latency per batch.",
            buckets=_BATCH_LATENCY_BUCKETS_S,
        )
        self._m_deltas = registry.counter(
            "infilter_engine_absorption_deltas_total",
            "EIA absorption deltas routed to shard replica logs.",
        )
        self._m_checkpoints = registry.counter(
            "infilter_engine_checkpoints_total",
            "Detector checkpoints written at batch boundaries.",
        )
        self._m_checkpoint_s = registry.histogram(
            "infilter_engine_checkpoint_seconds",
            "Time spent rendering and atomically writing one checkpoint.",
        )

    # -- lifecycle -----------------------------------------------------------

    def __enter__(self) -> "ShardedIngestEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _resolve_mode(self, mode: str) -> str:
        if mode == MODE_PROCESS:
            if _fork_context() is None:
                raise ConfigError(
                    "process mode needs a fork-capable platform"
                )
            return MODE_PROCESS
        if mode == MODE_INLINE:
            return MODE_INLINE
        if (
            self.config.shards > 1
            and (os.cpu_count() or 1) > 1
            and _fork_context() is not None
        ):
            return MODE_PROCESS
        return MODE_INLINE

    def _ensure_pool(self) -> None:
        if self._pool is None:
            context = _fork_context()
            template = DetectorTemplate.from_detector(self.detector)
            processes = max(1, min(self.config.shards, os.cpu_count() or 1))
            self._pool = context.Pool(
                processes=processes,
                initializer=_pool_initializer,
                initargs=(template,),
            )
            log.info(
                "engine pool started",
                extra={"processes": processes, "shards": self.config.shards},
            )
        return self._pool

    def _worker(self, shard: int) -> ShardWorker:
        worker = self._workers[shard]
        if worker is None:
            template = DetectorTemplate.from_detector(self.detector)
            worker = self._workers[shard] = ShardWorker(shard, template)
        return worker

    def close(self) -> None:
        """Flush buffered records and release the worker pool."""
        if self._closed:
            return
        self.flush()
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None
        self._closed = True

    # -- ingest --------------------------------------------------------------

    def submit(self, record: FlowRecord) -> None:
        """Buffer one record; a full buffer dispatches a batch."""
        if self._closed:
            raise ConfigError("engine is closed")
        self._buffer.append(record)
        if len(self._buffer) >= self.config.batch_size:
            batch, self._buffer = self._buffer, []
            self._dispatch(batch)

    def ingest(self, records: Iterable[FlowRecord]) -> None:
        """Submit a record stream (batches dispatch as the buffer fills)."""
        for record in records:
            self.submit(record)

    def flush(self) -> None:
        """Dispatch any partial batch and commit everything in flight."""
        if self._buffer:
            batch, self._buffer = self._buffer, []
            self._dispatch(batch)
        while self._pending:
            self._commit_oldest(forced=False)

    def run(self, records: Iterable[FlowRecord]) -> EngineReport:
        """Ingest a whole stream, flush, and return the run report."""
        self.ingest(records)
        self.flush()
        return self.report()

    # -- the two planes ------------------------------------------------------

    def _dispatch(self, batch: List[FlowRecord]) -> None:
        if not self.speculate:
            self._commit(batch, None)
            return
        if self.mode == MODE_INLINE:
            speculation = self._speculate_inline(batch)
            self._commit(batch, speculation)
            return
        pool = self._ensure_pool()
        buckets = self.router.partition(batch)
        parts: List[Tuple[List[int], object]] = []
        for shard, indices in enumerate(buckets):
            if not indices:
                continue
            task = (
                shard,
                [batch[i] for i in indices],
                list(self._delta_logs[shard]),
            )
            parts.append((indices, pool.apply_async(_pool_speculate, (task,))))
        self._pending.append(_PendingBatch(batch, parts))
        self._m_queue.set(len(self._pending))
        while len(self._pending) > self.config.max_pending_batches:
            self._commit_oldest(forced=True)

    def _speculate_inline(
        self, batch: List[FlowRecord]
    ) -> List[Optional[NnsAssessment]]:
        speculation: List[Optional[NnsAssessment]] = [None] * len(batch)
        for shard, indices in enumerate(self.router.partition(batch)):
            if not indices:
                continue
            worker = self._worker(shard)
            worker.catch_up(self._delta_logs[shard])
            result = worker.speculate([batch[i] for i in indices])
            self._absorb_worker_result(result)
            for index, assessment in zip(indices, result.assessments):
                speculation[index] = assessment
        return speculation

    def _commit_oldest(self, *, forced: bool) -> None:
        pending = self._pending.popleft()
        self._m_queue.set(len(self._pending))
        speculation: List[Optional[NnsAssessment]] = [None] * len(
            pending.records
        )
        for indices, handle in pending.parts:
            if forced and not handle.ready():
                watch = Stopwatch()
                handle.wait()
                waited = watch.elapsed_s()
                self._bp_waits += 1
                self._bp_wait_s += waited
                self._m_bp_waits.inc()
                self._m_bp_wait_s.observe(waited)
            result: SpeculationResult = handle.get()
            self._absorb_worker_result(result)
            for index, assessment in zip(indices, result.assessments):
                speculation[index] = assessment
        self._commit(pending.records, speculation)

    def _absorb_worker_result(self, result: SpeculationResult) -> None:
        for outcome, count in result.outcomes.items():
            self._m_worker_spec.labels(outcome=outcome).inc(count)
        if result.registry_snapshot is not None:
            self._shard_snapshots[result.worker_key] = result.registry_snapshot

    def _commit(
        self,
        batch: List[FlowRecord],
        speculation: Optional[List[Optional[NnsAssessment]]],
    ) -> BatchResult:
        result = self.detector.process_batch(batch, speculation=speculation)
        self._batches += 1
        self._flows += len(batch)
        self._spec_hits += result.speculation_hits
        self._spec_misses += result.speculation_misses
        self._m_batches.inc()
        self._m_flows.inc(len(batch))
        if result.speculation_hits:
            self._m_spec_hit.inc(result.speculation_hits)
        if result.speculation_misses:
            self._m_spec_miss.inc(result.speculation_misses)
        self._m_batch_latency.observe(result.elapsed_s)
        for peer, block in result.absorbed:
            shard = self.router.shard_for_address(block.network)
            self._delta_logs[shard].append((peer, block))
            self._deltas_routed += 1
            self._m_deltas.inc()
        self._cursor += len(batch)
        if (
            self.config.checkpoint_every > 0
            and self._batches % self.config.checkpoint_every == 0
        ):
            self.checkpoint()
        return result

    def checkpoint(self) -> int:
        """Write an atomic detector checkpoint at the current cursor.

        Safe at any batch boundary: the commit plane is serial, so the
        detector's state plus the cursor fully describe the run — a new
        engine over ``records[cursor:]`` with ``cursor_base=cursor``
        continues exactly where this one would have.  Returns the cursor
        written.
        """
        if self._checkpoint_path is None:
            raise ConfigError("engine has no checkpoint_path configured")
        watch = Stopwatch()
        save_detector(
            self.detector, self._checkpoint_path, cursor=self._cursor
        )
        self._checkpoints += 1
        self._m_checkpoints.inc()
        self._m_checkpoint_s.observe(watch.elapsed_s())
        log.info(
            "engine checkpoint written",
            extra={
                "path": str(self._checkpoint_path),
                "cursor": self._cursor,
                "batches": self._batches,
            },
        )
        return self._cursor

    # -- reporting -----------------------------------------------------------

    def report(self) -> EngineReport:
        """The run so far, merged into one operator-facing report."""
        worker_registries = [
            worker.registry for worker in self._workers if worker is not None
        ]
        worker_registries.extend(
            load_snapshot(doc) for doc in self._shard_snapshots.values()
        )
        return EngineReport.build(
            shards=self.config.shards,
            mode=self.mode,
            batches=self._batches,
            flows=self._flows,
            speculation_hits=self._spec_hits,
            speculation_misses=self._spec_misses,
            backpressure_waits=self._bp_waits,
            backpressure_wait_s=self._bp_wait_s,
            absorption_deltas=self._deltas_routed,
            checkpoints=self._checkpoints,
            stats=self.detector.stats,
            worker_registries=worker_registries,
        )
