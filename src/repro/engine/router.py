"""Deterministic source-prefix routing of flow records to shards.

The engine partitions a record stream across N shard workers by the
flow's *source block* — the source address masked at the EIA learning
granularity.  Routing on the source block (rather than the full address
or the flow key) is what keeps the engine exact: every flow that could
contribute to, or be affected by, one EIA absorption carries the same
block and therefore lands on the same shard, so a shard replica always
holds every absorption delta relevant to the records it speculates on.

The hash is a fixed-constant integer mix (splitmix64's finalizer) over
the masked address.  Python's built-in ``hash`` on ``str``/``bytes`` is
randomised per process and must never be used here: shard assignment has
to agree between the parent and forked pool workers, and between two
runs of the same trace.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.netflow.records import FlowRecord
from repro.util.errors import ConfigError

__all__ = ["ShardRouter"]


def _mix64(value: int) -> int:
    """splitmix64's finalizer: a fixed avalanche over 64 bits."""
    value = (value ^ (value >> 30)) * 0xBF58476D1CE4E5B9 & 0xFFFFFFFFFFFFFFFF
    value = (value ^ (value >> 27)) * 0x94D049BB133111EB & 0xFFFFFFFFFFFFFFFF
    return value ^ (value >> 31)


class ShardRouter:
    """Maps flow records to shard indices by masked source address."""

    def __init__(self, shards: int, granularity: int) -> None:
        if shards < 1:
            raise ConfigError(f"shard count must be >= 1, got {shards}")
        if not 0 <= granularity <= 32:
            raise ConfigError(
                f"routing granularity must be in [0, 32], got {granularity}"
            )
        self.shards = shards
        self.granularity = granularity
        self._shift = 32 - granularity

    def shard_for_address(self, src_addr: int) -> int:
        """The shard owning the source block that covers ``src_addr``."""
        return _mix64(src_addr >> self._shift) % self.shards

    def shard_for(self, record: FlowRecord) -> int:
        return self.shard_for_address(record.key.src_addr)

    def partition(self, records: Sequence[FlowRecord]) -> List[List[int]]:
        """Indices of ``records`` per shard, preserving stream order.

        Returns one index list per shard; concatenating them in shard
        order is a permutation of ``range(len(records))``, and within a
        shard the indices ascend, so each worker sees its records in the
        order the stream produced them.
        """
        buckets: List[List[int]] = [[] for _ in range(self.shards)]
        for index, record in enumerate(records):
            buckets[self.shard_for_address(record.key.src_addr)].append(index)
        return buckets
