"""The sharded batch ingest engine (see ``docs/architecture.md``).

Fans a NetFlow record stream out to N shard workers for speculative NNS
assessment — records routed by source block so EIA learning stays
shard-local — and commits every batch serially through the authoritative
detector's batch fast path, so the engine's output is *exactly* the
serial pipeline's for any shard count, batch size, or execution mode.

    from repro.engine import EngineConfig, ShardedIngestEngine

    engine = ShardedIngestEngine(detector, EngineConfig(shards=4))
    with engine:
        report = engine.run(records)
    print(report.describe())
"""

from __future__ import annotations

from repro.engine.core import EngineConfig, ShardedIngestEngine
from repro.engine.merge import EngineReport, merge_registries, merge_stats
from repro.engine.router import ShardRouter
from repro.engine.worker import DetectorTemplate, ShardWorker, SpeculationResult

__all__ = [
    "EngineConfig",
    "ShardedIngestEngine",
    "EngineReport",
    "merge_registries",
    "merge_stats",
    "ShardRouter",
    "DetectorTemplate",
    "ShardWorker",
    "SpeculationResult",
]
