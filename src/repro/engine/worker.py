"""Shard workers: speculative NNS assessment on replica detectors.

A :class:`ShardWorker` owns a *replica* of the authoritative detector —
same config, same (immutable) trained model, and a copy of the EIA sets
— and uses it to precompute the NNS assessments a batch will need.  The
replica runs the cheap stages (EIA check, a shard-local scan filter)
only to decide *which* records are worth searching; the commit stage on
the authoritative detector re-runs those stages serially, so replica
divergence (a scan buffer that only sees one shard's suspects, say) can
waste or miss a speculation but can never change a verdict.

Replica EIA state stays correct through *absorption deltas*: the commit
stage reports each ``(peer, block)`` absorption it performs, the engine
routes it to the owning shard (same source-block hash as the records),
and :meth:`ShardWorker.catch_up` replays the unseen suffix before the
next speculation.  Each worker counts how many deltas it has applied, so
the engine can hand it the full cumulative log — which is what makes the
fork-pool mode work, where any pool process may end up serving any
shard's sub-batch.

Module-level ``_pool_*`` functions are the ``multiprocessing.Pool``
entry points: the initializer stashes a picklable
:class:`DetectorTemplate` in a process global and workers are built
lazily per (process, shard).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.alerts import AlertSink
from repro.core.clusters import ClusterModel
from repro.core.config import PipelineConfig
from repro.core.pipeline import EnhancedInFilter, NnsAssessment
from repro.core.state import StateDict
from repro.netflow.records import FlowRecord
from repro.obs import MetricsRegistry, snapshot
from repro.util.errors import EngineError
from repro.util.ip import Prefix

__all__ = ["DetectorTemplate", "ShardWorker", "SpeculationResult"]

#: An absorption delta: the block now expected at this peer.
Delta = Tuple[int, Prefix]


@dataclass(frozen=True)
class DetectorTemplate:
    """The picklable state a shard replica is built from.

    ``eia_state`` is the authoritative :class:`~repro.core.BasicInFilter`'s
    full stage-state section — sets *and* pending learning counters — so
    replicas start from the protocol's own capture rather than a private
    reconstruction.  (Replica pending counters are inert: ``speculate``
    never runs the learning rule, so carrying them is free and uniform.)

    ``detector_state`` shards the composed auxiliary detectors the same
    way: one stage-state section per :class:`~repro.core.Detector` name
    (empty for the default InFilter-only composition).  Replicas carry
    them so a shard is a full per-detector clone of the authoritative
    pipeline; the commit stage still runs the ensemble combine itself,
    so replica copies affect speculation only, never verdicts.
    """

    config: PipelineConfig
    model: Optional[ClusterModel]
    eia_state: StateDict
    detector_state: StateDict = field(default_factory=dict)

    @classmethod
    def from_detector(cls, detector: EnhancedInFilter) -> "DetectorTemplate":
        return cls(
            config=detector.config,
            model=detector.model,
            eia_state=detector.infilter.state_dict(),
            detector_state={
                aux.name: aux.state_dict() for aux in detector.aux_detectors
            },
        )


@dataclass
class SpeculationResult:
    """One worker call's output: assessments aligned with its records."""

    shard: int
    assessments: List[Optional[NnsAssessment]]
    #: speculation outcome counts for this call, keyed by outcome name
    #: (``assessed`` / ``legal`` / ``scan``) — merged into the engine's
    #: ``infilter_engine_worker_speculations_total`` counter.
    outcomes: Dict[str, int] = field(default_factory=dict)
    deltas_applied: int = 0
    #: identifies the worker *instance* that produced this result — a
    #: ``(pid, shard)`` pair in pool mode.  Registry snapshots are
    #: cumulative per instance, so the engine keeps the latest snapshot
    #: per key and sums across keys for exact totals.
    worker_key: Tuple[int, int] = (0, 0)
    #: cumulative registry snapshot of the producing replica (pool mode
    #: only; inline workers are snapshotted directly at report time).
    registry_snapshot: Optional[Dict] = None


class ShardWorker:
    """A replica detector that precomputes NNS assessments for one shard."""

    def __init__(self, shard: int, template: DetectorTemplate) -> None:
        self.shard = shard
        self.registry = MetricsRegistry()
        replica = EnhancedInFilter(
            template.config,
            alert_sink=AlertSink(registry=self.registry),
            registry=self.registry,
        )
        replica.infilter.load_state(template.eia_state)
        # The trained model is immutable; share (or unpickle) it rather
        # than retraining per replica.
        replica.model = template.model
        for aux in replica.aux_detectors:
            section = template.detector_state.get(aux.name)
            if section is not None:
                aux.load_state(section)
        self.replica = replica
        self.deltas_applied = 0

    def catch_up(self, deltas: Sequence[Delta]) -> int:
        """Replay the not-yet-applied suffix of the cumulative delta log.

        Returns how many deltas were applied by this call.  Safe to call
        with any log this worker has seen a prefix of — which is how pool
        processes that missed earlier sub-batches of this shard converge.
        """
        pending = deltas[self.deltas_applied:]
        for peer, block in pending:
            self.replica.infilter.apply_absorption(peer, block)
        self.deltas_applied = len(deltas)
        return len(pending)

    def speculate(
        self, records: Sequence[FlowRecord]
    ) -> SpeculationResult:
        """Precompute NNS assessments for the records routed to this shard.

        Produces one entry per record: an :class:`NnsAssessment` when the
        replica expects the commit stage to reach the NNS stage, ``None``
        when it expects an earlier stage to decide (legal ingress, or a
        completed scan pattern).  A wrong guess costs one wasted or one
        inline search at commit — never a different verdict.
        """
        replica = self.replica
        assessments: List[Optional[NnsAssessment]] = []
        outcomes = {"assessed": 0, "legal": 0, "scan": 0}
        enhanced = replica.config.enhanced and replica.model is not None
        for record in records:
            check = replica.infilter.check(record)
            if not check.suspect:
                outcomes["legal"] += 1
                assessments.append(None)
                continue
            if not enhanced:
                assessments.append(None)
                continue
            scan_verdict = replica.scan.observe(record)
            if scan_verdict.is_scan:
                outcomes["scan"] += 1
                assessments.append(None)
                continue
            outcomes["assessed"] += 1
            assessments.append(replica.assess_memoised(record))
        return SpeculationResult(
            shard=self.shard,
            assessments=assessments,
            outcomes={k: v for k, v in outcomes.items() if v},
            deltas_applied=self.deltas_applied,
            worker_key=(0, self.shard),
        )


# -- multiprocessing.Pool entry points ----------------------------------------
#
# The engine uses the *fork* start method, so child processes inherit the
# parent's module state; the initializer still re-stashes the template
# explicitly to keep the flow identical under any start method that can
# pickle it.

_POOL_TEMPLATE: Optional[DetectorTemplate] = None
_POOL_WORKERS: Dict[int, ShardWorker] = {}


def _pool_initializer(template: DetectorTemplate) -> None:
    global _POOL_TEMPLATE
    # Process-local by construction: each pool process runs its own copy
    # of this module, so these globals are never shared across tasks of
    # one interpreter, let alone an event loop.
    _POOL_TEMPLATE = template  # repro: allow[REP013] -- per-process pool state
    _POOL_WORKERS.clear()  # repro: allow[REP013] -- per-process pool state


def _pool_speculate(
    task: Tuple[int, Sequence[FlowRecord], Sequence[Delta]]
) -> SpeculationResult:
    """Run one shard sub-batch in a pool process.

    ``task`` is ``(shard, records, cumulative_deltas)``; the worker for
    that shard is created on first use in each process and caught up on
    the delta log before speculating.
    """
    shard, records, deltas = task
    worker = _POOL_WORKERS.get(shard)
    if worker is None:
        if _POOL_TEMPLATE is None:
            raise EngineError("pool process used before its initializer ran")
        # repro: allow[REP013] -- per-process worker cache, no cross-process sharing
        worker = _POOL_WORKERS[shard] = ShardWorker(shard, _POOL_TEMPLATE)
    worker.catch_up(deltas)
    result = worker.speculate(records)
    result.worker_key = (os.getpid(), shard)
    result.registry_snapshot = snapshot(worker.registry)
    return result
