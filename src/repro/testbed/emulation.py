"""The CEWAS experimental testbed (Figures 13–14).

Emulates the paper's setup: an ISP with 10 peer ASs / 10 border routers,
each border router a Dagflow instance exporting NetFlow v5 to the
Enhanced InFilter software on a distinct UDP port.  The testbed assembles

* the Table 3 EIA plan over the 1000 /11 sub-blocks,
* ten normal-traffic Dagflow sources (optionally using the Table 2
  route-change allocations),
* attack Dagflow sets that spoof from the other peers' blocks,

and runs the merged, time-ordered record stream through the detector —
optionally over the real v5 wire format (encode → UDP-port demux →
decode), exactly the path Figure 13 draws.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, replace
from typing import Dict, Iterable, Iterator, List, Sequence, Tuple

from repro.core.pipeline import EnhancedInFilter
from repro.core.config import PipelineConfig
from repro.flowgen.addressing import (
    Allocation,
    SubBlockSpace,
    eia_allocation,
    route_change_allocations,
)
from repro.flowgen.dagflow import Dagflow, LabeledRecord
from repro.flowgen.traces import synthesize_trace
from repro.netflow.collector import PortMux
from repro.netflow.records import FlowRecord
from repro.netflow.v5 import decode_datagram
from repro.util.errors import ExperimentError
from repro.util.ip import Prefix
from repro.util.rng import SeededRng

__all__ = ["TestbedConfig", "Testbed", "TimedRecord"]

_BASE_PORT = 9_000


@dataclass(frozen=True)
class TestbedConfig:
    """Shape of the emulated ISP (defaults are the paper's)."""

    __test__ = False  # not a pytest test class despite the name

    n_peers: int = 10
    blocks_per_peer: int = 100
    target_prefix: Prefix = Prefix.parse("198.18.0.0/16")
    training_flows: int = 4_000
    use_wire: bool = True

    def __post_init__(self) -> None:
        if self.n_peers < 2:
            raise ExperimentError("the testbed needs at least two peers")


@dataclass(frozen=True)
class TimedRecord:
    """A flow record tagged with ground truth and its ingress peer."""

    record: FlowRecord
    label: str
    peer: int

    @property
    def is_attack(self) -> bool:
        return self.label != "normal"


class Testbed:
    """One instantiated testbed: address plan, Dagflows, detector wiring."""

    __test__ = False  # not a pytest test class despite the name

    def __init__(
        self,
        config: TestbedConfig = TestbedConfig(),
        *,
        rng: SeededRng,
    ) -> None:
        self.config = config
        self.rng = rng
        self.space = SubBlockSpace()
        self.eia_plan = eia_allocation(
            self.space, config.n_peers, config.blocks_per_peer
        )
        self.mux = PortMux()
        for peer in range(config.n_peers):
            self.mux.bind(_BASE_PORT + peer, peer)

    # -- detector construction ---------------------------------------------

    def build_detector(
        self, pipeline_config: PipelineConfig
    ) -> EnhancedInFilter:
        """A detector preloaded with the Table 3 EIA plan and trained on a
        fresh normal trace (the single-Dagflow training run of 6.3)."""
        detector = EnhancedInFilter(
            pipeline_config, rng=self.rng.fork("detector")
        )
        for peer, blocks in self.eia_plan.items():
            detector.preload_eia(peer, blocks)
        training = self.training_records()
        if pipeline_config.enhanced:
            detector.train(training)
        return detector

    def training_records(self) -> List[FlowRecord]:
        """Records of the training cluster (one Dagflow, normal trace)."""
        trace = synthesize_trace(
            self.config.training_flows, rng=self.rng.fork("training-trace")
        )
        dagflow = Dagflow(
            "training",
            target_prefix=self.config.target_prefix,
            udp_port=_BASE_PORT,
            source_blocks=self.eia_plan[0],
            rng=self.rng.fork("training-dagflow"),
        )
        return [
            replace(lr.record, key=replace(lr.record.key, input_if=0))
            for lr in dagflow.replay(trace)
        ]

    # -- traffic sources ------------------------------------------------------

    def normal_dagflow(self, peer: int, blocks: Sequence[Prefix]) -> Dagflow:
        """A normal-traffic source for one peer with the given blocks."""
        return Dagflow(
            f"S{peer + 1}",
            target_prefix=self.config.target_prefix,
            udp_port=_BASE_PORT + peer,
            source_blocks=blocks,
            rng=self.rng.fork(f"normal-{peer}"),
        )

    def attack_dagflow(self, peer: int, *, source_pool_size: int = 64) -> Dagflow:
        """An attack source entering via ``peer``, spoofing from the other
        peers' 900 blocks (Section 6.3.1).

        ``source_pool_size`` models trace replay: the captured attack
        traces carry a fixed set of rewritten source addresses, so
        repeated launches re-spoof the same addresses rather than fresh
        random ones.
        """
        foreign = [
            block
            for other, blocks in self.eia_plan.items()
            if other != peer
            for block in blocks
        ]
        return Dagflow(
            f"A{peer + 1}",
            target_prefix=self.config.target_prefix,
            udp_port=_BASE_PORT + peer,
            source_blocks=foreign,
            rng=self.rng.fork(f"attack-{peer}"),
            source_pool_size=source_pool_size,
        )

    def allocations_for(
        self, change_blocks: int, n_allocations: int
    ) -> List[Dict[int, Allocation]]:
        """Table 2 allocations at the given route-change level."""
        return route_change_allocations(
            self.space,
            n_sources=self.config.n_peers,
            blocks_per_source=self.config.blocks_per_peer,
            change_blocks=change_blocks,
            n_allocations=n_allocations,
        )

    # -- stream assembly -------------------------------------------------------

    def merge_streams(
        self, streams: Sequence[Tuple[int, Iterable[LabeledRecord]]]
    ) -> Iterator[TimedRecord]:
        """Merge per-peer labelled streams into one time-ordered stream.

        ``streams`` pairs each stream with the peer it enters through.
        Optionally round-trips every record through the NetFlow v5 wire
        format and the UDP-port demux, per ``config.use_wire``.
        """
        def tagged(peer: int, stream: Iterable[LabeledRecord]) -> Iterator[
            Tuple[int, int, int, TimedRecord]
        ]:
            for index, labelled in enumerate(stream):
                yield (
                    labelled.record.first,
                    peer,
                    index,
                    TimedRecord(record=labelled.record, label=labelled.label, peer=peer),
                )

        merged = heapq.merge(*[tagged(peer, s) for peer, s in streams])
        for _first, peer, _index, timed in merged:
            record = timed.record
            if self.config.use_wire:
                record = self._through_wire(record, _BASE_PORT + peer)
            record = self.mux.demux(record, _BASE_PORT + peer)
            yield TimedRecord(record=record, label=timed.label, peer=peer)

    @staticmethod
    def _through_wire(record: FlowRecord, port: int) -> FlowRecord:
        """Round-trip one record through v5 encode/decode."""
        from repro.netflow.v5 import encode_datagram

        datagram = encode_datagram(
            [record], sys_uptime=record.last, unix_secs=0, flow_sequence=0
        )
        _header, decoded = decode_datagram(datagram)
        return decoded[0]
