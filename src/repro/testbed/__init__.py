"""Experimental testbed: emulation, experiment runners, metrics."""

from __future__ import annotations

from repro.testbed.emulation import Testbed, TestbedConfig, TimedRecord
from repro.testbed.experiments import (
    ExperimentParams,
    experiment_route_changes,
    experiment_spoofed_attacks,
    experiment_stress,
    measure_adaptation,
    measure_latency,
    run_point,
)
from repro.testbed.metrics import RunScore, SeriesScore, mean, std

__all__ = [
    "Testbed",
    "TestbedConfig",
    "TimedRecord",
    "ExperimentParams",
    "experiment_route_changes",
    "experiment_spoofed_attacks",
    "experiment_stress",
    "measure_adaptation",
    "measure_latency",
    "run_point",
    "RunScore",
    "SeriesScore",
    "mean",
    "std",
]
