"""The three experiment sets of Section 6.3 and their shared runner.

* :func:`experiment_spoofed_attacks` — 6.3.1: one attack set entering via
  Peer AS1, attack volume swept over {2, 4, 8}% of normal volume (EI).
* :func:`experiment_stress` — 6.3.2: the attack set replicated at every
  peer (EI).
* :func:`experiment_route_changes` — 6.3.3: route instability swept over
  {1, 2, 4, 8}% with rotation through four Table 2 allocations, run for
  both the BI and EI configurations.

Every data point averages ``runs`` independent runs (the paper uses 5).
The runner reproduces Section 6.2's normal-traffic generation: each
source sends 98% (more generally ``1 - k/100``) of its traffic from its
own blocks and the rest from other sources' blocks via the Table 2
allocation pattern.
"""

from __future__ import annotations

from dataclasses import dataclass, replace as dc_replace
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.core.config import PipelineConfig
from repro.flowgen.attacks import ATTACK_NAMES, generate_attack
from repro.flowgen.dagflow import Dagflow, LabeledRecord
from repro.flowgen.traces import TraceFlow, synthesize_trace
from repro.testbed.emulation import Testbed, TestbedConfig
from repro.testbed.metrics import RunScore, SeriesScore
from repro.util.errors import ExperimentError
from repro.util.rng import SeededRng

__all__ = [
    "ExperimentParams",
    "run_point",
    "run_single",
    "experiment_spoofed_attacks",
    "experiment_stress",
    "experiment_route_changes",
    "measure_adaptation",
    "measure_latency",
]


@dataclass(frozen=True)
class ExperimentParams:
    """One experiment data point.

    ``route_change_blocks`` is the Table 2 ``k``: with 100 blocks per
    source, ``k`` blocks swapped means k% of normal traffic arrives with
    a route-changed source.  ``rotate_allocations`` enables the 6.3.3
    epoch transitions; without it the first allocation is static (the
    Section 6.2 baseline).
    """

    attack_volume: float = 0.02
    attack_peers: Tuple[int, ...] = (0,)
    route_change_blocks: int = 2
    rotate_allocations: bool = False
    n_allocations: int = 4
    normal_flows_per_peer: int = 2_000
    enhanced: bool = True
    runs: int = 5
    seed: int = 2005
    #: Detector-tuning overrides (ablation hooks); None keeps defaults.
    eia_learning_threshold: Optional[int] = None
    eia_granularity: Optional[int] = None
    scan_enabled: bool = True
    nns_threshold_slack: Optional[float] = None
    #: Analysis capacity (suspects/s) for the Section 6.3.2 saturation
    #: model; None disables it (the default everywhere but the stress
    #: experiment).
    suspect_capacity: Optional[float] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.attack_volume <= 1.0:
            raise ExperimentError("attack_volume is a fraction of normal volume")
        if self.runs < 1:
            raise ExperimentError("at least one run is required")
        if self.rotate_allocations and self.n_allocations < 2:
            raise ExperimentError("rotation needs at least two allocations")


def _attack_trace(
    rng: SeededRng,
    *,
    flow_budget: int,
    horizon_ms: int,
    peer: int,
) -> List[TraceFlow]:
    """Attack instances cycling the 12-type catalog up to ``flow_budget``
    flows, labelled ``<type>#<peer>-<sequence>`` for instance scoring."""
    flows: List[TraceFlow] = []
    sequence = 0
    while len(flows) < flow_budget:
        name = ATTACK_NAMES[sequence % len(ATTACK_NAMES)]
        start = rng.randint(0, max(horizon_ms - 1, 1))
        instance = generate_attack(name, rng=rng.fork(f"i{sequence}"), start_ms=start)
        label = f"{name}#{peer}-{sequence}"
        flows.extend(dc_replace(flow, label=label) for flow in instance)
        sequence += 1
    flows.sort(key=lambda flow: flow.start_ms)
    return flows


def _rotating_replay(
    dagflow: Dagflow,
    chunks: Sequence[Sequence[TraceFlow]],
    block_sets: Sequence[Sequence],
) -> Iterator[LabeledRecord]:
    """Replay trace chunks, switching the source blocks between epochs."""
    for chunk, blocks in zip(chunks, block_sets):
        dagflow.set_blocks(blocks)
        yield from dagflow.replay(chunk)


def _split(trace: Sequence[TraceFlow], parts: int) -> List[Sequence[TraceFlow]]:
    size = max(1, len(trace) // parts)
    chunks = [trace[i * size : (i + 1) * size] for i in range(parts - 1)]
    chunks.append(trace[(parts - 1) * size :])
    return chunks


def _pipeline_config_for(params: ExperimentParams) -> PipelineConfig:
    """Build the detector configuration a parameter point asks for."""
    from dataclasses import replace as _replace

    from repro.core.config import EIAConfig, NNSConfig, ScanConfig

    config = (
        PipelineConfig.enhanced_default()
        if params.enhanced
        else PipelineConfig.basic()
    )
    if params.eia_learning_threshold is not None or params.eia_granularity is not None:
        config = _replace(
            config,
            eia=EIAConfig(
                granularity=(
                    params.eia_granularity
                    if params.eia_granularity is not None
                    else config.eia.granularity
                ),
                learning_threshold=(
                    params.eia_learning_threshold
                    if params.eia_learning_threshold is not None
                    else config.eia.learning_threshold
                ),
            ),
        )
    if not params.scan_enabled:
        # Disable by raising thresholds beyond the buffer size: no pattern
        # can ever complete, so the stage becomes a pass-through.
        config = _replace(
            config,
            scan=ScanConfig(
                buffer_size=config.scan.buffer_size,
                network_scan_threshold=config.scan.buffer_size + 1,
                host_scan_threshold=config.scan.buffer_size + 1,
            ),
        )
    if params.nns_threshold_slack is not None:
        config = _replace(
            config,
            nns=NNSConfig(threshold_slack=params.nns_threshold_slack),
        )
    if params.suspect_capacity is not None:
        from repro.core.config import OverloadConfig

        config = _replace(
            config,
            overload=OverloadConfig(suspect_capacity_per_s=params.suspect_capacity),
        )
    return config


def run_single(
    testbed_config: TestbedConfig,
    params: ExperimentParams,
    *,
    rng: SeededRng,
) -> RunScore:
    """One run: build, train, replay, score."""
    testbed = Testbed(testbed_config, rng=rng.fork("testbed"))
    pipeline_config = _pipeline_config_for(params)
    detector = testbed.build_detector(pipeline_config)

    n_peers = testbed_config.n_peers
    epochs = params.n_allocations if params.rotate_allocations else 1
    if params.route_change_blocks > 0:
        allocations = testbed.allocations_for(
            params.route_change_blocks, max(epochs, 1)
        )
    else:
        allocations = []

    streams: List[Tuple[int, Iterable[LabeledRecord]]] = []
    horizon_ms = 0
    for peer in range(n_peers):
        trace = synthesize_trace(
            params.normal_flows_per_peer, rng=rng.fork(f"trace-{peer}")
        )
        if trace:
            horizon_ms = max(horizon_ms, trace[-1].start_ms)
        dagflow = testbed.normal_dagflow(peer, testbed.eia_plan[peer])
        if allocations:
            chunks = _split(trace, epochs)
            block_sets = [
                allocations[epoch][peer].blocks for epoch in range(epochs)
            ]
            streams.append((peer, _rotating_replay(dagflow, chunks, block_sets)))
        else:
            streams.append((peer, dagflow.replay(trace)))

    flow_budget = int(params.attack_volume * params.normal_flows_per_peer)
    for peer in params.attack_peers:
        if not 0 <= peer < n_peers:
            raise ExperimentError(f"attack peer {peer} outside the testbed")
        if flow_budget <= 0:
            continue
        attack_flows = _attack_trace(
            rng.fork(f"attacks-{peer}"),
            flow_budget=flow_budget,
            horizon_ms=max(horizon_ms, 1),
            peer=peer,
        )
        streams.append((peer, testbed.attack_dagflow(peer).replay(attack_flows)))

    score = RunScore()
    for timed in testbed.merge_streams(streams):
        decision = detector.process(timed.record)
        if timed.is_attack:
            score.note_attack(timed.label, decision.is_attack)
        else:
            score.note_normal(decision.is_attack)
    score.latency_mean_s = detector.stats.mean_latency_s
    score.latency_max_s = detector.stats.latency_max_s
    score.absorbed = detector.stats.absorbed
    return score


def run_point(
    testbed_config: TestbedConfig, params: ExperimentParams
) -> SeriesScore:
    """Average ``params.runs`` runs at one parameter point."""
    series = SeriesScore()
    for run_index in range(params.runs):
        rng = SeededRng(params.seed + run_index, f"run-{run_index}")
        series.add(run_single(testbed_config, params, rng=rng))
    return series


def experiment_spoofed_attacks(
    volumes: Sequence[float] = (0.02, 0.04, 0.08),
    *,
    testbed_config: TestbedConfig = TestbedConfig(),
    base_params: ExperimentParams = ExperimentParams(),
) -> Dict[float, SeriesScore]:
    """Section 6.3.1: single attack set via Peer AS1, EI configuration."""
    return {
        volume: run_point(
            testbed_config,
            dc_replace(
                base_params,
                attack_volume=volume,
                attack_peers=(0,),
                rotate_allocations=False,
                enhanced=True,
            ),
        )
        for volume in volumes
    }


def experiment_stress(
    volumes: Sequence[float] = (0.02, 0.04, 0.08),
    *,
    testbed_config: TestbedConfig = TestbedConfig(),
    base_params: ExperimentParams = ExperimentParams(),
    suspect_capacity: Optional[float] = 25.0,
) -> Dict[float, SeriesScore]:
    """Section 6.3.2: attack sets at every peer, EI configuration.

    ``suspect_capacity`` enables the saturation model for this experiment
    only — the stress test is, by design, the one that drives the
    analysis software past its capacity (the single-set workloads stay
    well below the same limit).
    """
    all_peers = tuple(range(testbed_config.n_peers))
    return {
        volume: run_point(
            testbed_config,
            dc_replace(
                base_params,
                attack_volume=volume,
                attack_peers=all_peers,
                rotate_allocations=False,
                enhanced=True,
                suspect_capacity=suspect_capacity,
            ),
        )
        for volume in volumes
    }


def experiment_route_changes(
    *,
    volumes: Sequence[float] = (0.02, 0.04, 0.08),
    route_changes: Sequence[int] = (1, 2, 4, 8),
    enhanced: bool,
    testbed_config: TestbedConfig = TestbedConfig(),
    base_params: ExperimentParams = ExperimentParams(),
) -> Dict[Tuple[float, int], SeriesScore]:
    """Section 6.3.3: attack volume x route instability, BI or EI.

    Keys are ``(attack_volume, route_change_percent)``.
    """
    results: Dict[Tuple[float, int], SeriesScore] = {}
    for volume in volumes:
        for change in route_changes:
            params = dc_replace(
                base_params,
                attack_volume=volume,
                attack_peers=(0,),
                route_change_blocks=change,
                rotate_allocations=True,
                enhanced=enhanced,
            )
            results[(volume, change)] = run_point(testbed_config, params)
    return results


def measure_adaptation(
    testbed_config: TestbedConfig = TestbedConfig(),
    *,
    learning_threshold: int,
    normal_flows_per_peer: int = 2_000,
    change_blocks: int = 8,
    n_buckets: int = 10,
    seed: int = 2606,
) -> List[Tuple[float, float]]:
    """False-positive decay after a permanent route change (Section 5.2).

    At t=0 the network's routes have just changed (every normal source
    uses a Table 2 allocation while the EIA sets still hold the original
    plan).  As the learning rule absorbs the moved blocks, the FP rate
    should decay.  Returns ``(bucket_centre_fraction, fp_rate)`` points
    over ``n_buckets`` equal slices of the run.

    ``learning_threshold`` is the knob under study: lower thresholds
    adapt faster.
    """
    if n_buckets < 2:
        raise ExperimentError("need at least two time buckets")
    rng = SeededRng(seed, f"adaptation-{learning_threshold}")
    testbed = Testbed(testbed_config, rng=rng.fork("testbed"))
    params = ExperimentParams(
        attack_volume=0.0,
        route_change_blocks=change_blocks,
        eia_learning_threshold=learning_threshold,
    )
    detector = testbed.build_detector(_pipeline_config_for(params))

    allocation = testbed.allocations_for(change_blocks, 1)[0]
    streams: List[Tuple[int, Iterable[LabeledRecord]]] = []
    horizon_ms = 1
    for peer in range(testbed_config.n_peers):
        trace = synthesize_trace(
            normal_flows_per_peer, rng=rng.fork(f"trace-{peer}")
        )
        if trace:
            horizon_ms = max(horizon_ms, trace[-1].start_ms + 1)
        dagflow = testbed.normal_dagflow(peer, allocation[peer].blocks)
        streams.append((peer, dagflow.replay(trace)))

    flagged = [0] * n_buckets
    totals = [0] * n_buckets
    for timed in testbed.merge_streams(streams):
        bucket = min(
            timed.record.first * n_buckets // horizon_ms, n_buckets - 1
        )
        totals[bucket] += 1
        if detector.process(timed.record).is_attack:
            flagged[bucket] += 1
    return [
        ((bucket + 0.5) / n_buckets, flagged[bucket] / totals[bucket])
        for bucket in range(n_buckets)
        if totals[bucket]
    ]


def measure_latency(
    *,
    testbed_config: TestbedConfig = TestbedConfig(),
    base_params: ExperimentParams = ExperimentParams(),
) -> Dict[str, float]:
    """Per-flow processing latency of the BI and EI configurations.

    Returns mean seconds per flow keyed by ``"basic"``/``"enhanced"``
    (the paper reports ~0.5 ms and 2-6 ms on 2004 hardware; the shape to
    preserve is EI costing several times BI).
    """
    out: Dict[str, float] = {}
    for label, enhanced in (("basic", False), ("enhanced", True)):
        params = dc_replace(
            base_params,
            enhanced=enhanced,
            rotate_allocations=True,
            route_change_blocks=max(base_params.route_change_blocks, 2),
        )
        series = run_point(testbed_config, params)
        out[label] = series.latency_mean_s
    return out
