"""Experiment metrics: detection rate, false-positive rate, latency.

The paper scores at two granularities: *launched attacks detected* (an
attack instance counts as detected when at least one of its flows is
flagged — the Figure 15 metric) and *normal traffic tagged as suspicious*
(flow-level false positives — Figures 16–19).  :class:`RunScore`
accumulates one run; :class:`SeriesScore` averages the paper's five runs
per data point.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs import MetricsRegistry, get_registry

__all__ = ["RunScore", "SeriesScore", "mean", "std"]


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; 0.0 for an empty sequence."""
    return sum(values) / len(values) if values else 0.0


def std(values: Sequence[float]) -> float:
    """Population standard deviation; 0.0 below two samples."""
    if len(values) < 2:
        return 0.0
    mu = mean(values)
    return math.sqrt(sum((v - mu) ** 2 for v in values) / len(values))


@dataclass
class RunScore:
    """Counters for one experiment run."""

    normal_flows: int = 0
    normal_flagged: int = 0
    attack_flows: int = 0
    attack_flows_flagged: int = 0
    #: attack instance id -> was any of its flows flagged
    instances: Dict[str, bool] = field(default_factory=dict)
    #: attack type -> (instances detected, instances launched)
    by_type: Dict[str, Tuple[int, int]] = field(default_factory=dict)
    latency_mean_s: float = 0.0
    latency_max_s: float = 0.0
    absorbed: int = 0

    def note_normal(self, flagged: bool) -> None:
        self.normal_flows += 1
        if flagged:
            self.normal_flagged += 1

    def note_attack(self, instance: str, flagged: bool) -> None:
        self.attack_flows += 1
        if flagged:
            self.attack_flows_flagged += 1
        self.instances[instance] = self.instances.get(instance, False) or flagged

    def finalize(self) -> None:
        """Fold per-instance outcomes into the per-type table."""
        table: Dict[str, List[int]] = {}
        for instance, detected in self.instances.items():
            name = instance.split("#", 1)[0]
            entry = table.setdefault(name, [0, 0])
            entry[1] += 1
            if detected:
                entry[0] += 1
        self.by_type = {name: (d, t) for name, (d, t) in sorted(table.items())}

    @property
    def detection_rate(self) -> float:
        """Fraction of launched attack instances detected (Figure 15)."""
        if not self.instances:
            return 0.0
        detected = sum(1 for flagged in self.instances.values() if flagged)
        return detected / len(self.instances)

    @property
    def flow_detection_rate(self) -> float:
        """Fraction of individual attack flows flagged."""
        if not self.attack_flows:
            return 0.0
        return self.attack_flows_flagged / self.attack_flows

    @property
    def false_positive_rate(self) -> float:
        """Fraction of normal flows tagged suspicious (Figures 16-19)."""
        if not self.normal_flows:
            return 0.0
        return self.normal_flagged / self.normal_flows


@dataclass
class SeriesScore:
    """Aggregate of repeated runs at one parameter point."""

    runs: List[RunScore] = field(default_factory=list)

    def add(self, run: RunScore) -> None:
        run.finalize()
        self.runs.append(run)

    @property
    def detection_rate(self) -> float:
        return mean([run.detection_rate for run in self.runs])

    @property
    def detection_rate_std(self) -> float:
        return std([run.detection_rate for run in self.runs])

    @property
    def false_positive_rate(self) -> float:
        return mean([run.false_positive_rate for run in self.runs])

    @property
    def false_positive_rate_std(self) -> float:
        return std([run.false_positive_rate for run in self.runs])

    @property
    def flow_detection_rate(self) -> float:
        return mean([run.flow_detection_rate for run in self.runs])

    @property
    def latency_mean_s(self) -> float:
        return mean([run.latency_mean_s for run in self.runs])

    def by_type(self) -> Dict[str, Tuple[int, int]]:
        """Summed per-attack-type (detected, launched) across runs."""
        table: Dict[str, List[int]] = {}
        for run in self.runs:
            for name, (detected, total) in run.by_type.items():
                entry = table.setdefault(name, [0, 0])
                entry[0] += detected
                entry[1] += total
        return {name: (d, t) for name, (d, t) in sorted(table.items())}

    def publish(self, registry: Optional[MetricsRegistry] = None) -> None:
        """Export the series' headline rates as registry gauges.

        The same numbers the paper plots: Figure 15's instance-level
        detection rate, Figure 16's flow-level false-positive rate, and
        the Section 6.4 mean latency — so benchmarks and the CLI can read
        one experiment's outcome off the same surface as the live
        pipeline counters.
        """
        registry = registry if registry is not None else get_registry()
        registry.gauge(
            "infilter_experiment_runs",
            "Runs averaged into the published experiment gauges.",
        ).set(len(self.runs))
        registry.gauge(
            "infilter_experiment_detection_rate",
            "Fraction of launched attack instances detected (Figure 15).",
        ).set(self.detection_rate)
        registry.gauge(
            "infilter_experiment_flow_detection_rate",
            "Fraction of individual attack flows flagged.",
        ).set(self.flow_detection_rate)
        registry.gauge(
            "infilter_experiment_false_positive_rate",
            "Fraction of normal flows tagged suspicious (Figure 16).",
        ).set(self.false_positive_rate)
        registry.gauge(
            "infilter_experiment_latency_mean_seconds",
            "Mean per-flow processing latency across runs (Section 6.4).",
        ).set(self.latency_mean_s)
