"""Route stability as a function of distance from the source (Figure 1).

The paper motivates both egress filtering and InFilter with a conceptual
curve: routes are stable near the source and near the target and volatile
in the middle.  This study measures that curve on the simulator: repeated
traceroutes per (site, target) pair, per-hop-position change rates,
positions normalised to [0, 1] along the path.

The mechanism that produces the shape in our substrate is the same one
the paper argues for: ends of the path are pinned by BGP policy (stable),
the middle is governed by transit-AS IGP selection and load-shared links
(volatile).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.routing.names import router_of_fqdn
from repro.routing.topology import (
    ASTopology,
    DynamicsRates,
    TopologyDynamics,
    TopologyParams,
    generate_internet,
)
from repro.routing.traceroute import TracerouteResult, TracerouteSimulator
from repro.util.errors import ExperimentError
from repro.util.rng import SeededRng
from repro.util.timebase import HOUR, periodic

__all__ = ["StabilityConfig", "StabilityResult", "run_route_stability_study"]


@dataclass(frozen=True)
class StabilityConfig:
    """Study parameters."""

    n_pairs: int = 12
    period_s: float = 1 * HOUR
    duration_s: float = 48 * HOUR
    n_buckets: int = 10
    seed: int = 33
    topology: TopologyParams = TopologyParams()
    rates: DynamicsRates = DynamicsRates()

    def __post_init__(self) -> None:
        if self.n_buckets < 3:
            raise ExperimentError("need at least 3 position buckets")
        if self.n_pairs < 1:
            raise ExperimentError("need at least one (site, target) pair")


@dataclass
class StabilityResult:
    """Per-position-bucket change rates."""

    #: bucket index -> (changes, transitions)
    buckets: Dict[int, Tuple[int, int]] = field(default_factory=dict)
    n_buckets: int = 10

    def change_rate(self, bucket: int) -> float:
        changes, transitions = self.buckets.get(bucket, (0, 0))
        return changes / transitions if transitions else 0.0

    def curve(self) -> List[Tuple[float, float]]:
        """(normalised distance from source, change rate) points."""
        return [
            ((bucket + 0.5) / self.n_buckets, self.change_rate(bucket))
            for bucket in range(self.n_buckets)
        ]

    def edge_vs_middle(self) -> Tuple[float, float, float]:
        """(first-bucket, middle, last-bucket) change rates.

        Figure 1's claim is middle >> both ends.
        """
        middle_buckets = range(self.n_buckets // 3, 2 * self.n_buckets // 3 + 1)
        middle_changes = sum(self.buckets.get(b, (0, 0))[0] for b in middle_buckets)
        middle_total = sum(self.buckets.get(b, (0, 0))[1] for b in middle_buckets)
        middle = middle_changes / middle_total if middle_total else 0.0
        return self.change_rate(0), middle, self.change_rate(self.n_buckets - 1)


def run_route_stability_study(
    config: StabilityConfig = StabilityConfig(),
    *,
    topology: Optional[ASTopology] = None,
) -> StabilityResult:
    """Measure per-hop-position stability over repeated traceroutes."""
    rng = SeededRng(config.seed, "stability-study")
    if topology is None:
        topology = generate_internet(config.topology, rng=rng.fork("topology"))
    simulator = TracerouteSimulator(
        topology, rng=rng.fork("sim"), loss_probability=0.0
    )
    dynamics = TopologyDynamics(topology, config.rates, rng=rng.fork("dynamics"))

    originating = sorted(
        asn for asn, node in topology.nodes.items() if node.prefixes
    )
    pick = rng.fork("pairs")
    pairs: List[Tuple[int, int]] = []
    guard = 0
    while len(pairs) < config.n_pairs:
        guard += 1
        if guard > 50 * config.n_pairs:
            raise ExperimentError("could not find enough distinct AS pairs")
        target_asn = pick.choice(originating)
        source_asn = pick.choice(sorted(topology.nodes))
        if source_asn == target_asn:
            continue
        address = topology.nodes[target_asn].prefixes[0].nth_address(20)
        pairs.append((source_asn, address))

    result = StabilityResult(n_buckets=config.n_buckets)
    previous: Dict[int, List[frozenset]] = {}
    for instant in periodic(0.0, config.period_s, config.duration_s):
        dynamics.advance_to(instant)
        for index, (source_asn, address) in enumerate(pairs):
            trace = simulator.trace(source_asn, address)
            if not trace.complete or len(trace.hops) < 2:
                continue
            buckets = _bucketize(trace, config.n_buckets)
            last = previous.get(index)
            if last is not None:
                for bucket in range(config.n_buckets):
                    changes, transitions = result.buckets.get(bucket, (0, 0))
                    result.buckets[bucket] = (
                        changes + int(buckets[bucket] != last[bucket]),
                        transitions + 1,
                    )
            previous[index] = buckets
    return result


def _bucketize(trace: TracerouteResult, n_buckets: int) -> List[FrozenSet[int]]:
    """Router identities per normalised-position bucket.

    The destination hop is excluded (it never changes); comparing bucket
    *sets* keeps the measurement meaningful when IGP churn alters the hop
    count between samples.
    """
    hops = trace.hops[:-1]
    span = max(len(hops) - 1, 1)
    buckets: List[set] = [set() for _ in range(n_buckets)]
    for hop_index, hop in enumerate(hops):
        position = hop_index / span
        bucket = min(int(position * n_buckets), n_buckets - 1)
        buckets[bucket].add(router_of_fqdn(hop.fqdn))
    return [frozenset(bucket) for bucket in buckets]
