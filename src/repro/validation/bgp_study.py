"""The Routeviews BGP validation study (Section 3.2).

Snapshots a route collector's ``show ip bgp`` table on a fixed period,
parses the rendered text, derives the peer-AS → source-AS-set mapping per
target (the paper's best-path-suffix argument with longest-prefix
override), and tracks the *fractional source-AS-set change* between
successive readings.

Figure 5 plots, per target network, the average change against the
target's number of peer ASs: the paper reports an average of 1.6%, a
maximum of 5%, and growth with peer count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.routing.bgp import RouteCollector
from repro.routing.table import IngressMap, derive_ingress_map, parse_show_ip_bgp, render_show_ip_bgp
from repro.routing.topology import (
    ASTopology,
    DynamicsRates,
    TopologyDynamics,
    TopologyParams,
    generate_internet,
)
from repro.util.errors import ExperimentError
from repro.util.rng import SeededRng
from repro.util.timebase import DAY, HOUR, periodic

__all__ = ["BgpStudyConfig", "TargetSeries", "BgpStudyResult", "run_bgp_study"]


@dataclass(frozen=True)
class BgpStudyConfig:
    """Defaults reproduce the paper: 30 days, 2-hour snapshots, 20 targets."""

    n_targets: int = 20
    n_vantages: int = 30
    period_s: float = 2 * HOUR
    duration_s: float = 30 * DAY
    missing_snapshot_probability: float = 0.04
    seed: int = 32
    topology: TopologyParams = TopologyParams()
    rates: DynamicsRates = DynamicsRates(
        # The BGP study only exercises policy churn; link flips and IGP
        # noise are invisible at the AS level, so they are disabled for
        # speed. Policy rate is calibrated for ~1-2% per-reading change.
        link_flip_per_adjacency=0.0,
        igp_churn_per_as=0.0,
        policy_change_per_as=0.015,
    )

    def __post_init__(self) -> None:
        if self.n_targets < 1 or self.n_vantages < 1:
            raise ExperimentError("need at least one target and one vantage")
        if not 0.0 <= self.missing_snapshot_probability < 1.0:
            raise ExperimentError("missing probability must be in [0, 1)")


@dataclass
class TargetSeries:
    """Per-target study output: the Figure 5 point."""

    origin: int
    target_address: int
    n_peer_ases: int = 0
    readings: int = 0
    changes: List[float] = field(default_factory=list)

    @property
    def mean_change(self) -> float:
        return sum(self.changes) / len(self.changes) if self.changes else 0.0

    @property
    def max_change(self) -> float:
        return max(self.changes) if self.changes else 0.0


@dataclass
class BgpStudyResult:
    """All per-target series plus study-level aggregates."""

    targets: List[TargetSeries] = field(default_factory=list)
    snapshots_taken: int = 0
    snapshots_missing: int = 0

    @property
    def overall_mean_change(self) -> float:
        """The paper's 1.6% figure."""
        means = [t.mean_change for t in self.targets if t.readings > 1]
        return sum(means) / len(means) if means else 0.0

    @property
    def overall_max_change(self) -> float:
        """The paper's 5% figure."""
        return max((t.max_change for t in self.targets), default=0.0)

    def figure5_points(self) -> List[Tuple[int, float]]:
        """(number of peer ASs, mean fractional change) per target."""
        return sorted(
            (t.n_peer_ases, t.mean_change) for t in self.targets
        )

    def summary(self) -> str:
        return (
            f"snapshots={self.snapshots_taken} missing={self.snapshots_missing}"
            f" targets={len(self.targets)}"
            f" mean_change={self.overall_mean_change:.4f}"
            f" max_change={self.overall_max_change:.4f}"
        )


def _pick_targets(
    topology: ASTopology, n_targets: int, rng: SeededRng
) -> List[Tuple[int, int]]:
    """(origin ASN, target address) pairs spanning the degree range.

    Sorting candidates by adjacency degree and striding across the sorted
    list gives Figure 5 its x-axis spread (few-peer stubs through
    many-peer transits).
    """
    candidates = sorted(
        (asn for asn, node in topology.nodes.items() if node.prefixes),
        key=lambda asn: (len(topology.neighbors(asn)), asn),
    )
    if len(candidates) < n_targets:
        raise ExperimentError(
            f"only {len(candidates)} prefix-originating ASes available"
        )
    stride = len(candidates) / n_targets
    chosen = [candidates[int(i * stride)] for i in range(n_targets)]
    return [
        (asn, topology.nodes[asn].prefixes[0].nth_address(20)) for asn in chosen
    ]


def run_bgp_study(
    config: BgpStudyConfig = BgpStudyConfig(),
    *,
    topology: Optional[ASTopology] = None,
) -> BgpStudyResult:
    """Execute the study.

    Each snapshot renders the collector table to text and parses it back,
    exercising the same textual pipeline the paper ran over Routeviews
    dumps.  A small fraction of snapshots is dropped to mirror the
    missing Routeviews data points (346 of a possible ~360).
    """
    rng = SeededRng(config.seed, "bgp-study")
    if topology is None:
        topology = generate_internet(config.topology, rng=rng.fork("topology"))
    targets = _pick_targets(topology, config.n_targets, rng.fork("targets"))
    vantage_pool = sorted(set(topology.nodes) - {origin for origin, _ in targets})
    vantages = rng.fork("vantages").sample(
        vantage_pool, min(config.n_vantages, len(vantage_pool))
    )
    collector = RouteCollector(topology, vantages)
    dynamics = TopologyDynamics(topology, config.rates, rng=rng.fork("dynamics"))
    missing_rng = rng.fork("missing")

    series: Dict[int, TargetSeries] = {
        origin: TargetSeries(origin=origin, target_address=address)
        for origin, address in targets
    }
    previous: Dict[int, IngressMap] = {}
    result = BgpStudyResult()

    prefix_origin_pairs = [
        (topology.nodes[origin].prefixes[0], origin) for origin, _ in targets
    ]
    for instant in periodic(0.0, config.period_s, config.duration_s):
        dynamics.advance_to(instant)
        if missing_rng.bernoulli(config.missing_snapshot_probability):
            result.snapshots_missing += 1
            continue
        result.snapshots_taken += 1
        entries = collector.snapshot(prefix_origin_pairs)
        parsed = parse_show_ip_bgp(render_show_ip_bgp(entries))
        for origin, address in targets:
            mapping = derive_ingress_map(parsed, origin, address)
            target_series = series[origin]
            target_series.readings += 1
            # Figure 5's x-axis: the target network's peer-AS count.  Use
            # the topology's ground truth (its adjacency degree), which
            # upper-bounds the peers observable in any one snapshot.
            target_series.n_peer_ases = max(
                target_series.n_peer_ases,
                len(topology.neighbors(origin)),
                len(mapping.peer_ases()),
            )
            last = previous.get(origin)
            if last is not None:
                target_series.changes.append(mapping.fractional_change(last))
            previous[origin] = mapping
    result.targets = list(series.values())
    return result
