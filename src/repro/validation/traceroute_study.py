"""The Looking-Glass traceroute validation study (Section 3.1).

Drives a fleet of Looking-Glass sites against a set of target networks on
a fixed sampling period, parses the textual traceroute output, and counts
last-hop (Peer AS, Border Router) changes between successive successful
readings at three granularities:

* **raw** — the literal pair of hop IP addresses (the paper's
  non-aggregated case);
* **subnet** — /24-smoothed addresses (the paper's first aggregation
  step, which collapses parallel links sharing a /24);
* **fqdn** — router identities from reverse DNS (the paper's final
  aggregated case, which also collapses parallel links in different
  subnets).

The paper's headline: 24-hour run 4.8% raw → 0.4% aggregated; 4-day run
6.4% raw → 0.6% aggregated.  The shape to preserve is the order of
magnitude drop under aggregation and the mild growth with sampling
period.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.routing.lookingglass import LookingGlassSite, parse_traceroute
from repro.routing.topology import (
    ASTopology,
    DynamicsRates,
    TopologyDynamics,
    TopologyParams,
    generate_internet,
)
from repro.routing.traceroute import TracerouteSimulator
from repro.util.errors import ExperimentError
from repro.util.rng import SeededRng
from repro.util.timebase import HOUR, MINUTE, periodic

__all__ = ["TracerouteStudyConfig", "TracerouteStudyResult", "run_traceroute_study"]


@dataclass(frozen=True)
class TracerouteStudyConfig:
    """Study parameters; defaults are the paper's 24-hour run."""

    n_sites: int = 24
    n_targets: int = 20
    period_s: float = 30 * MINUTE
    duration_s: float = 24 * HOUR
    loss_probability: float = 0.03
    seed: int = 31
    topology: TopologyParams = TopologyParams()
    rates: DynamicsRates = DynamicsRates()

    def __post_init__(self) -> None:
        if self.n_sites < 1 or self.n_targets < 1:
            raise ExperimentError("need at least one site and one target")
        if self.period_s <= 0 or self.duration_s < self.period_s:
            raise ExperimentError("duration must cover at least one period")


@dataclass
class TracerouteStudyResult:
    """Change counts over all (site, target) pair transitions."""

    samples: int = 0
    incomplete: int = 0
    transitions: int = 0
    raw_changes: int = 0
    subnet_changes: int = 0
    fqdn_changes: int = 0
    #: per (site, target) transition counts, for distribution analysis.
    per_pair: Dict[Tuple[str, int], Tuple[int, int]] = field(default_factory=dict)

    def _rate(self, changes: int) -> float:
        return changes / self.transitions if self.transitions else 0.0

    @property
    def raw_change_rate(self) -> float:
        """The non-aggregated change rate (paper: 4.8% / 6.4%)."""
        return self._rate(self.raw_changes)

    @property
    def subnet_change_rate(self) -> float:
        """The /24-smoothed change rate."""
        return self._rate(self.subnet_changes)

    @property
    def fqdn_change_rate(self) -> float:
        """The fully aggregated change rate (paper: 0.4% / 0.6%)."""
        return self._rate(self.fqdn_changes)

    def summary(self) -> str:
        return (
            f"samples={self.samples} incomplete={self.incomplete}"
            f" transitions={self.transitions}"
            f" raw={self.raw_change_rate:.4f}"
            f" subnet={self.subnet_change_rate:.4f}"
            f" fqdn={self.fqdn_change_rate:.4f}"
        )


def _pick_sites_and_targets(
    topology: ASTopology, config: TracerouteStudyConfig, rng: SeededRng
) -> Tuple[List[LookingGlassSite], List[int], TracerouteSimulator]:
    simulator = TracerouteSimulator(
        topology, rng=rng.fork("sim"), loss_probability=config.loss_probability
    )
    originating = sorted(
        asn for asn, node in topology.nodes.items() if node.prefixes
    )
    if len(originating) < config.n_targets:
        raise ExperimentError(
            f"topology originates {len(originating)} prefixes,"
            f" need {config.n_targets} targets"
        )
    target_ases = rng.fork("targets").sample(originating, config.n_targets)
    # Target address: a stable host inside the AS's first prefix.
    targets = [
        topology.nodes[asn].prefixes[0].nth_address(20) for asn in target_ases
    ]
    # Sites are vantage ASes that are not targets; mix tiers for global
    # distribution, the way Looking-Glass hosts span ISPs worldwide.
    candidates = sorted(set(topology.nodes) - set(target_ases))
    if len(candidates) < config.n_sites:
        raise ExperimentError("not enough ASes left to host Looking-Glass sites")
    site_ases = rng.fork("sites").sample(candidates, config.n_sites)
    sites = [
        LookingGlassSite(f"lg-{asn}", asn, simulator) for asn in site_ases
    ]
    return sites, targets, simulator


def run_traceroute_study(
    config: TracerouteStudyConfig = TracerouteStudyConfig(),
    *,
    topology: Optional[ASTopology] = None,
) -> TracerouteStudyResult:
    """Execute the study and aggregate change rates.

    A change is counted between *successive successful* readings of one
    (site, target) pair, matching the paper's methodology (incomplete
    traceroutes yield no reading).
    """
    rng = SeededRng(config.seed, "traceroute-study")
    if topology is None:
        topology = generate_internet(config.topology, rng=rng.fork("topology"))
    sites, targets, _simulator = _pick_sites_and_targets(topology, config, rng)
    dynamics = TopologyDynamics(topology, config.rates, rng=rng.fork("dynamics"))

    result = TracerouteStudyResult()
    previous: Dict[Tuple[str, int], Tuple] = {}
    for instant in periodic(0.0, config.period_s, config.duration_s):
        dynamics.advance_to(instant)
        for site in sites:
            for target in targets:
                text = site.traceroute(target)
                parsed = parse_traceroute(text)
                raw = parsed.last_hop_raw()
                if raw is None:
                    result.incomplete += 1
                    continue
                result.samples += 1
                subnet = tuple(address >> 8 for address in raw)
                fqdn = parsed.last_hop_fqdn()
                key = (site.name, target)
                last = previous.get(key)
                if last is not None:
                    result.transitions += 1
                    last_raw, last_subnet, last_fqdn = last
                    raw_changed = raw != last_raw
                    subnet_changed = subnet != last_subnet
                    fqdn_changed = fqdn != last_fqdn
                    if raw_changed:
                        result.raw_changes += 1
                    if subnet_changed:
                        result.subnet_changes += 1
                    if fqdn_changed:
                        result.fqdn_changes += 1
                    if raw_changed or fqdn_changed:
                        counted = result.per_pair.get(key, (0, 0))
                        result.per_pair[key] = (
                            counted[0] + int(raw_changed),
                            counted[1] + int(fqdn_changed),
                        )
                previous[key] = (raw, subnet, fqdn)
    return result
