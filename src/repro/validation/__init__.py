"""Hypothesis validation studies (Section 3 and Figure 1)."""

from __future__ import annotations

from repro.validation.bgp_study import (
    BgpStudyConfig,
    BgpStudyResult,
    TargetSeries,
    run_bgp_study,
)
from repro.validation.route_stability import (
    StabilityConfig,
    StabilityResult,
    run_route_stability_study,
)
from repro.validation.traceroute_study import (
    TracerouteStudyConfig,
    TracerouteStudyResult,
    run_traceroute_study,
)

__all__ = [
    "BgpStudyConfig",
    "BgpStudyResult",
    "TargetSeries",
    "run_bgp_study",
    "StabilityConfig",
    "StabilityResult",
    "run_route_stability_study",
    "TracerouteStudyConfig",
    "TracerouteStudyResult",
    "run_traceroute_study",
]
