"""Flow reporting (the flow-report role of Flow-tools).

Groups flow records by any combination of key fields and computes the
statistics Section 5.1.2 lists — byte count, packet count, duration, bit
rate, packet rate — either per flow (grouping on every key field) or
aggregated across a coarser grouping such as per source AS or per input
interface.  Reports render to aligned ASCII text the way flow-report does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Sequence, Tuple

from repro.netflow.records import FlowRecord
from repro.util.errors import ConfigError
from repro.util.ip import format_ipv4

__all__ = ["GROUP_FIELDS", "GroupStats", "FlowReport", "build_report"]

# Field name -> extractor over a FlowRecord.  These mirror flow-report's
# grouping keys (ip-source-address, ip-destination-address, input-interface,
# source-as, ...).
GROUP_FIELDS: Dict[str, Callable[[FlowRecord], int]] = {
    "src_addr": lambda r: r.key.src_addr,
    "dst_addr": lambda r: r.key.dst_addr,
    "protocol": lambda r: r.key.protocol,
    "src_port": lambda r: r.key.src_port,
    "dst_port": lambda r: r.key.dst_port,
    "tos": lambda r: r.key.tos,
    "input_if": lambda r: r.key.input_if,
    "src_as": lambda r: r.src_as,
    "dst_as": lambda r: r.dst_as,
}

#: Grouping on every key field yields per-flow granularity (Figure 10).
FLOW_GRANULARITY: Tuple[str, ...] = (
    "src_addr",
    "dst_addr",
    "protocol",
    "src_port",
    "dst_port",
    "tos",
    "input_if",
)

_ADDRESS_FIELDS = {"src_addr", "dst_addr"}


@dataclass
class GroupStats:
    """Aggregate statistics for one report group."""

    flows: int = 0
    octets: int = 0
    packets: int = 0
    duration_ms: int = 0

    def add(self, record: FlowRecord) -> None:
        self.flows += 1
        self.octets += record.octets
        self.packets += record.packets
        self.duration_ms += record.duration_ms()

    @property
    def bit_rate(self) -> float:
        """Aggregate bits per second over the summed active time."""
        window_s = max(self.duration_ms, 1) / 1000.0
        return self.octets * 8.0 / window_s

    @property
    def packet_rate(self) -> float:
        """Aggregate packets per second over the summed active time."""
        window_s = max(self.duration_ms, 1) / 1000.0
        return self.packets / window_s


@dataclass
class FlowReport:
    """A computed report: grouping fields plus per-group statistics."""

    group_by: Tuple[str, ...]
    groups: Dict[Tuple[int, ...], GroupStats]

    def top(self, count: int, key: str = "octets") -> List[Tuple[Tuple[int, ...], GroupStats]]:
        """The ``count`` largest groups by the given statistic."""
        if key not in {"octets", "packets", "flows", "duration_ms"}:
            raise ConfigError(f"cannot rank groups by {key!r}")
        ranked = sorted(
            self.groups.items(),
            key=lambda item: getattr(item[1], key),
            reverse=True,
        )
        return ranked[:count]

    def totals(self) -> GroupStats:
        """Statistics summed over every group."""
        total = GroupStats()
        for stats in self.groups.values():
            total.flows += stats.flows
            total.octets += stats.octets
            total.packets += stats.packets
            total.duration_ms += stats.duration_ms
        return total

    def to_csv(self, limit: int = 0) -> str:
        """CSV rendering (``limit=0`` means all groups), for piping into
        other tooling."""
        header = list(self.group_by) + [
            "flows", "octets", "packets", "duration_ms", "bps", "pps",
        ]
        count = limit if limit > 0 else len(self.groups)
        lines = [",".join(header)]
        for key_values, stats in self.top(count):
            row = [
                _render_field(name, value)
                for name, value in zip(self.group_by, key_values)
            ] + [
                str(stats.flows),
                str(stats.octets),
                str(stats.packets),
                str(stats.duration_ms),
                f"{stats.bit_rate:.3f}",
                f"{stats.packet_rate:.3f}",
            ]
            lines.append(",".join(row))
        return "\n".join(lines) + "\n"

    def to_json(self, limit: int = 0) -> str:
        """JSON rendering: a list of group objects."""
        import json

        count = limit if limit > 0 else len(self.groups)
        payload = [
            {
                **{
                    name: _render_field(name, value)
                    for name, value in zip(self.group_by, key_values)
                },
                "flows": stats.flows,
                "octets": stats.octets,
                "packets": stats.packets,
                "duration_ms": stats.duration_ms,
                "bps": round(stats.bit_rate, 3),
                "pps": round(stats.packet_rate, 3),
            }
            for key_values, stats in self.top(count)
        ]
        return json.dumps(payload, indent=2)

    def render(self, limit: int = 20) -> str:
        """Aligned ASCII rendering, flow-report style."""
        headers = list(self.group_by) + [
            "flows",
            "octets",
            "packets",
            "duration_ms",
            "bps",
            "pps",
        ]
        rows: List[List[str]] = []
        for key_values, stats in self.top(limit):
            row = [
                _render_field(name, value)
                for name, value in zip(self.group_by, key_values)
            ]
            row += [
                str(stats.flows),
                str(stats.octets),
                str(stats.packets),
                str(stats.duration_ms),
                f"{stats.bit_rate:.1f}",
                f"{stats.packet_rate:.1f}",
            ]
            rows.append(row)
        widths = [
            max(len(headers[i]), *(len(row[i]) for row in rows)) if rows else len(headers[i])
            for i in range(len(headers))
        ]
        lines = [
            "  ".join(header.ljust(widths[i]) for i, header in enumerate(headers)),
            "  ".join("-" * widths[i] for i in range(len(headers))),
        ]
        for row in rows:
            lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        return "\n".join(lines)


def build_report(
    records: Iterable[FlowRecord],
    group_by: Sequence[str] = FLOW_GRANULARITY,
) -> FlowReport:
    """Group records by the named fields and compute statistics.

    Grouping on more fields raises granularity (per-flow at the maximum);
    fewer fields aggregate across flows, e.g. ``("input_if",)`` gives the
    per-peer-AS traffic volumes the InFilter deployment monitors.
    """
    extractors = []
    for name in group_by:
        try:
            extractors.append(GROUP_FIELDS[name])
        except KeyError:
            raise ConfigError(
                f"unknown grouping field {name!r};"
                f" expected one of {sorted(GROUP_FIELDS)}"
            ) from None
    groups: Dict[Tuple[int, ...], GroupStats] = {}
    for record in records:
        key = tuple(extract(record) for extract in extractors)
        stats = groups.get(key)
        if stats is None:
            groups[key] = stats = GroupStats()
        stats.add(record)
    return FlowReport(group_by=tuple(group_by), groups=groups)


def _render_field(name: str, value: int) -> str:
    if name in _ADDRESS_FIELDS:
        return format_ipv4(value)
    return str(value)
