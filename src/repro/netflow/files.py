"""Flow-file persistence (the storage role of Flow-tools).

``flow-capture`` stores received flows in binary files "to speed
processing and save storage space"; other tools export to and import from
ASCII.  This module provides both:

* :func:`write_flow_file` / :func:`read_flow_file` — a compact binary
  container: magic, version, record count, then fixed 48-byte v5-style
  records (the same layout as the wire format, so the codec is shared);
* :func:`export_ascii` / :func:`import_ascii` — a one-line-per-flow text
  format (the flow-export/flow-import role), round-trippable and
  diff-friendly.

Both formats preserve every field a :class:`FlowRecord` carries on the
wire.
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import BinaryIO, Iterable, List, TextIO, Union

from repro.netflow.records import FlowKey, FlowRecord
from repro.netflow.v5 import RECORD_LEN, _RECORD  # shared record codec
from repro.util.errors import NetFlowDecodeError, NetFlowError
from repro.util.ip import format_ipv4, parse_ipv4

__all__ = [
    "FLOW_FILE_MAGIC",
    "write_flow_file",
    "read_flow_file",
    "export_ascii",
    "import_ascii",
]

FLOW_FILE_MAGIC = b"RFL1"
_HEADER = struct.Struct("!4sI")

_ASCII_FIELDS = (
    "src_addr",
    "dst_addr",
    "protocol",
    "src_port",
    "dst_port",
    "tos",
    "input_if",
    "output_if",
    "packets",
    "octets",
    "first",
    "last",
    "tcp_flags",
    "src_as",
    "dst_as",
    "src_mask",
    "dst_mask",
    "next_hop",
    "ttl",
)

#: Older exports predate the trailing ``ttl`` column; they import with
#: ``ttl=0`` ("not measured").
_LEGACY_ASCII_FIELD_COUNT = len(_ASCII_FIELDS) - 1


def _pack_record(record: FlowRecord) -> bytes:
    key = record.key
    return _RECORD.pack(
        key.src_addr,
        key.dst_addr,
        record.next_hop,
        key.input_if,
        record.output_if,
        record.packets,
        record.octets,
        record.first,
        record.last,
        key.src_port,
        key.dst_port,
        record.ttl,
        record.tcp_flags,
        key.protocol,
        key.tos,
        record.src_as,
        record.dst_as,
        record.src_mask,
        record.dst_mask,
        0,
    )


def _unpack_record(buffer: bytes, offset: int) -> FlowRecord:
    if len(buffer) < offset + _RECORD.size:
        raise NetFlowDecodeError(
            f"flow record at offset {offset} extends past the buffer end"
        )
    (
        src_addr,
        dst_addr,
        next_hop,
        input_if,
        output_if,
        packets,
        octets,
        first,
        last,
        src_port,
        dst_port,
        ttl,
        tcp_flags,
        protocol,
        tos,
        src_as,
        dst_as,
        src_mask,
        dst_mask,
        _pad2,
    ) = _RECORD.unpack_from(buffer, offset)
    try:
        return _build_record(
            src_addr, dst_addr, next_hop, input_if, output_if, packets,
            octets, first, last, src_port, dst_port, tcp_flags, protocol,
            tos, src_as, dst_as, src_mask, dst_mask, ttl,
        )
    except ValueError as error:
        raise NetFlowDecodeError(
            f"invalid flow record at offset {offset}: {error}"
        ) from error


def _build_record(
    src_addr: int, dst_addr: int, next_hop: int, input_if: int,
    output_if: int, packets: int, octets: int, first: int, last: int,
    src_port: int, dst_port: int, tcp_flags: int, protocol: int,
    tos: int, src_as: int, dst_as: int, src_mask: int, dst_mask: int,
    ttl: int,
) -> FlowRecord:
    return FlowRecord(
        key=FlowKey(
            src_addr=src_addr,
            dst_addr=dst_addr,
            protocol=protocol,
            src_port=src_port,
            dst_port=dst_port,
            tos=tos,
            input_if=input_if,
        ),
        packets=packets,
        octets=octets,
        first=first,
        last=last,
        next_hop=next_hop,
        tcp_flags=tcp_flags,
        src_as=src_as,
        dst_as=dst_as,
        src_mask=src_mask,
        dst_mask=dst_mask,
        output_if=output_if,
        ttl=ttl,
    )


def write_flow_file(
    destination: Union[str, Path, BinaryIO], records: Iterable[FlowRecord]
) -> int:
    """Write records to a binary flow file; returns the record count."""
    materialised = list(records)
    payload = b"".join(_pack_record(record) for record in materialised)
    header = _HEADER.pack(FLOW_FILE_MAGIC, len(materialised))
    if isinstance(destination, (str, Path)):
        with open(destination, "wb") as handle:
            handle.write(header)
            handle.write(payload)
    else:
        destination.write(header)
        destination.write(payload)
    return len(materialised)


def read_flow_file(source: Union[str, Path, BinaryIO]) -> List[FlowRecord]:
    """Read a binary flow file back into records."""
    if isinstance(source, (str, Path)):
        with open(source, "rb") as handle:
            data = handle.read()
    else:
        data = source.read()
    if len(data) < _HEADER.size:
        raise NetFlowDecodeError("flow file too short for its header")
    magic, count = _HEADER.unpack_from(data, 0)
    if magic != FLOW_FILE_MAGIC:
        raise NetFlowDecodeError(f"bad flow-file magic {magic!r}")
    expected = _HEADER.size + count * RECORD_LEN
    if len(data) < expected:
        raise NetFlowDecodeError(
            f"flow file truncated: header claims {count} records"
        )
    return [
        _unpack_record(data, _HEADER.size + index * RECORD_LEN)
        for index in range(count)
    ]


def export_ascii(
    destination: Union[str, Path, TextIO], records: Iterable[FlowRecord]
) -> int:
    """Write records as one comma-separated line each, with a header."""

    def render(record: FlowRecord) -> str:
        key = record.key
        values = (
            format_ipv4(key.src_addr),
            format_ipv4(key.dst_addr),
            key.protocol,
            key.src_port,
            key.dst_port,
            key.tos,
            key.input_if,
            record.output_if,
            record.packets,
            record.octets,
            record.first,
            record.last,
            record.tcp_flags,
            record.src_as,
            record.dst_as,
            record.src_mask,
            record.dst_mask,
            format_ipv4(record.next_hop),
            record.ttl,
        )
        return ",".join(str(value) for value in values)

    lines = ["#" + ",".join(_ASCII_FIELDS)]
    count = 0
    for record in records:
        lines.append(render(record))
        count += 1
    text = "\n".join(lines) + "\n"
    if isinstance(destination, (str, Path)):
        Path(destination).write_text(text)
    else:
        destination.write(text)
    return count


def import_ascii(source: Union[str, Path, TextIO]) -> List[FlowRecord]:
    """Read the ASCII export format back into records."""
    if isinstance(source, (str, Path)):
        text = Path(source).read_text()
    else:
        text = source.read()
    records: List[FlowRecord] = []
    for line_number, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split(",")
        if len(parts) not in (len(_ASCII_FIELDS), _LEGACY_ASCII_FIELD_COUNT):
            raise NetFlowError(
                f"line {line_number}: expected {len(_ASCII_FIELDS)} fields,"
                f" got {len(parts)}"
            )
        try:
            records.append(
                FlowRecord(
                    key=FlowKey(
                        src_addr=parse_ipv4(parts[0]),
                        dst_addr=parse_ipv4(parts[1]),
                        protocol=int(parts[2]),
                        src_port=int(parts[3]),
                        dst_port=int(parts[4]),
                        tos=int(parts[5]),
                        input_if=int(parts[6]),
                    ),
                    output_if=int(parts[7]),
                    packets=int(parts[8]),
                    octets=int(parts[9]),
                    first=int(parts[10]),
                    last=int(parts[11]),
                    tcp_flags=int(parts[12]),
                    src_as=int(parts[13]),
                    dst_as=int(parts[14]),
                    src_mask=int(parts[15]),
                    dst_mask=int(parts[16]),
                    next_hop=parse_ipv4(parts[17]),
                    ttl=int(parts[18]) if len(parts) > 18 else 0,
                )
            )
        except (ValueError, IndexError) as error:
            raise NetFlowError(f"line {line_number}: {error}") from error
    return records
