"""NetFlow v5 substrate: records, wire format, exporter, collector, reports."""

from __future__ import annotations

from repro.netflow.collector import CollectorStats, FlowCollector, PortMux
from repro.netflow.emit import (
    ChannelTarget,
    DatagramEmitter,
    EmitTarget,
    SocketTarget,
)
from repro.netflow.exporter import ExporterConfig, FlowExporter, Packet
from repro.netflow.anonymize import PrefixPreservingAnonymizer
from repro.netflow.filters import FlowFilter, parse_filter_expression
from repro.netflow.sampling import sample_records, survival_probability
from repro.netflow.transport import ChannelConfig, ChannelStats, UdpChannel
from repro.netflow.files import (
    FLOW_FILE_MAGIC,
    export_ascii,
    import_ascii,
    read_flow_file,
    write_flow_file,
)
from repro.netflow.records import (
    PORT_DNS,
    PORT_FTP,
    PORT_HTTP,
    PORT_SMTP,
    PROTO_ICMP,
    PROTO_TCP,
    PROTO_UDP,
    TCP_ACK,
    TCP_FIN,
    TCP_PSH,
    TCP_RST,
    TCP_SYN,
    FlowKey,
    FlowRecord,
    FlowStats,
)
from repro.netflow.reports import (
    FLOW_GRANULARITY,
    GROUP_FIELDS,
    FlowReport,
    GroupStats,
    build_report,
)
from repro.netflow.v1 import (
    MAX_V1_RECORDS,
    NETFLOW_V1_VERSION,
    decode_v1_datagram,
    encode_v1_datagram,
    upgrade_records,
)
from repro.netflow.v5 import (
    HEADER_LEN,
    MAX_RECORDS_PER_DATAGRAM,
    NETFLOW_V5_VERSION,
    RECORD_LEN,
    V5Header,
    datagrams_for,
    decode_datagram,
    encode_datagram,
)

__all__ = [
    "CollectorStats",
    "ChannelTarget",
    "DatagramEmitter",
    "EmitTarget",
    "SocketTarget",
    "PrefixPreservingAnonymizer",
    "FlowFilter",
    "parse_filter_expression",
    "sample_records",
    "survival_probability",
    "ChannelConfig",
    "ChannelStats",
    "UdpChannel",
    "FLOW_FILE_MAGIC",
    "export_ascii",
    "import_ascii",
    "read_flow_file",
    "write_flow_file",
    "FlowCollector",
    "PortMux",
    "ExporterConfig",
    "FlowExporter",
    "Packet",
    "PORT_DNS",
    "PORT_FTP",
    "PORT_HTTP",
    "PORT_SMTP",
    "PROTO_ICMP",
    "PROTO_TCP",
    "PROTO_UDP",
    "TCP_ACK",
    "TCP_FIN",
    "TCP_PSH",
    "TCP_RST",
    "TCP_SYN",
    "FlowKey",
    "FlowRecord",
    "FlowStats",
    "FLOW_GRANULARITY",
    "GROUP_FIELDS",
    "FlowReport",
    "GroupStats",
    "build_report",
    "MAX_V1_RECORDS",
    "NETFLOW_V1_VERSION",
    "decode_v1_datagram",
    "encode_v1_datagram",
    "upgrade_records",
    "HEADER_LEN",
    "MAX_RECORDS_PER_DATAGRAM",
    "NETFLOW_V5_VERSION",
    "RECORD_LEN",
    "V5Header",
    "datagrams_for",
    "decode_datagram",
    "encode_datagram",
]
