"""Sampled NetFlow emulation.

Large deployments run NetFlow with packet sampling (the v5 header's
``sampling_interval`` field): the router inspects one packet in N and
scales the exported counters.  Sampling interacts badly with exactly the
traffic InFilter targets — a single-packet Slammer probe survives 1-in-N
sampling with probability 1/N — so the library models it explicitly and
benchmark A5 quantifies the detection cost.

:func:`sample_records` converts exact flow records into what a sampling
router would have exported: each packet of each flow is retained with
probability ``1/interval`` (binomially), unseen flows disappear, and the
surviving counters are scaled back up by ``interval`` the way real
routers renormalise.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Iterable, Iterator, Optional

from repro.netflow.records import FlowRecord
from repro.obs import MetricsRegistry, get_registry
from repro.util.errors import ConfigError
from repro.util.rng import SeededRng

__all__ = ["sample_records", "survival_probability"]


def survival_probability(packets: int, interval: int) -> float:
    """Probability that a ``packets``-packet flow appears at all under
    1-in-``interval`` sampling."""
    if interval <= 1:
        return 1.0
    return 1.0 - (1.0 - 1.0 / interval) ** packets


def _binomial(n: int, p: float, rng: SeededRng) -> int:
    """Small-n binomial sample; n is a flow's packet count.

    Flow packet counts are bounded (the trace generator caps them in the
    hundreds), so per-trial sampling is fine and keeps exactness.
    """
    if n > 10_000:
        # Gaussian approximation for pathological counts.
        import math

        mean = n * p
        std = math.sqrt(n * p * (1.0 - p))
        return max(0, min(n, int(rng.gauss(mean, std) + 0.5)))
    return sum(1 for _ in range(n) if rng.bernoulli(p))


def sample_records(
    records: Iterable[FlowRecord],
    interval: int,
    *,
    rng: SeededRng,
    registry: Optional[MetricsRegistry] = None,
) -> Iterator[FlowRecord]:
    """Apply 1-in-``interval`` packet sampling to a record stream.

    ``interval=1`` is the identity.  Octets scale proportionally to the
    surviving packet fraction, then both counters renormalise by
    ``interval`` (router behaviour: exported numbers estimate the true
    traffic).  Kept vs dropped flows are counted in
    ``infilter_sampling_records_total``.
    """
    if interval < 1:
        raise ConfigError("sampling interval must be >= 1")
    registry = registry if registry is not None else get_registry()
    outcomes = registry.counter(
        "infilter_sampling_records_total",
        "Flow records surviving (kept) or erased by (dropped) sampling.",
        ("outcome",),
    )
    kept = outcomes.labels(outcome="kept")
    dropped = outcomes.labels(outcome="dropped")
    if interval == 1:
        for record in records:
            kept.inc()
            yield record
        return
    p = 1.0 / interval
    stream = rng.fork(f"sampling-{interval}")
    for record in records:
        seen = _binomial(record.packets, p, stream)
        if seen == 0:
            dropped.inc()
            continue
        kept.inc()
        octets_seen = max(1, int(record.octets * seen / record.packets))
        yield replace(
            record,
            packets=seen * interval,
            octets=octets_seen * interval,
        )
