"""NetFlow version 1 wire format.

The original export format, still emitted by old gear when the paper was
written and handled by Flow-tools alongside v5.  Differences from v5:

* 16-byte header — no flow sequence (loss is invisible!), no engine or
  sampling fields;
* 48-byte records without the AS numbers, routing masks, or TOS-adjacent
  padding layout of v5 (the tail bytes are reserved).

Records decode into the same :class:`FlowRecord` type with the v5-only
fields zeroed, so everything downstream (files, filters, reports, the
detector) consumes either version transparently.
:func:`upgrade_records` annotates v1-decoded records the way a v5
exporter would, given a routing oracle.
"""

from __future__ import annotations

import struct
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

from repro.netflow.records import FlowKey, FlowRecord
from repro.util.errors import NetFlowDecodeError, NetFlowError

__all__ = [
    "NETFLOW_V1_VERSION",
    "V1_HEADER_LEN",
    "V1_RECORD_LEN",
    "V1_HEADER_STRUCT",
    "V1_RECORD_STRUCT",
    "MAX_V1_RECORDS",
    "encode_v1_datagram",
    "decode_v1_datagram",
    "upgrade_records",
]

NETFLOW_V1_VERSION = 1
V1_HEADER_LEN = 16
V1_RECORD_LEN = 48
MAX_V1_RECORDS = 24

_V1_HEADER = struct.Struct("!HHIII")
# srcaddr dstaddr nexthop input output dPkts dOctets first last
# srcport dstport pad1(2) prot tos flags pad2(7)
_V1_RECORD = struct.Struct("!IIIHHIIIIHHHBBB7x")

#: Public aliases of the compiled wire structs so the columnar fastpath
#: decoder (`repro.fastpath.columnar`) shares the exact same layout
#: definitions instead of re-declaring format strings that could drift.
V1_HEADER_STRUCT = _V1_HEADER
V1_RECORD_STRUCT = _V1_RECORD

_U16 = 0xFFFF
_U32 = 0xFFFFFFFF


def encode_v1_datagram(
    records: Sequence[FlowRecord],
    *,
    sys_uptime: int,
    unix_secs: int,
    unix_nsecs: int = 0,
) -> bytes:
    """Encode up to 24 records as a NetFlow v1 export datagram.

    v1 cannot carry AS numbers, masks, or a flow sequence; those fields
    are silently dropped, as a real v1 exporter would.
    """
    if not records:
        raise NetFlowError("a v1 datagram must carry at least one record")
    if len(records) > MAX_V1_RECORDS:
        raise NetFlowError(
            f"v1 datagrams carry at most {MAX_V1_RECORDS} records,"
            f" got {len(records)}"
        )
    parts: List[bytes] = [
        _V1_HEADER.pack(
            NETFLOW_V1_VERSION,
            len(records),
            sys_uptime & _U32,
            unix_secs & _U32,
            unix_nsecs & _U32,
        )
    ]
    for record in records:
        key = record.key
        parts.append(
            _V1_RECORD.pack(
                key.src_addr & _U32,
                key.dst_addr & _U32,
                record.next_hop & _U32,
                key.input_if & _U16,
                record.output_if & _U16,
                record.packets & _U32,
                record.octets & _U32,
                record.first & _U32,
                record.last & _U32,
                key.src_port & _U16,
                key.dst_port & _U16,
                0,  # pad
                key.protocol & 0xFF,
                key.tos & 0xFF,
                record.tcp_flags & 0xFF,
            )
        )
    return b"".join(parts)


def decode_v1_datagram(data: bytes) -> Tuple[int, List[FlowRecord]]:
    """Decode a v1 datagram; returns (sys_uptime, records)."""
    if len(data) < V1_HEADER_LEN:
        raise NetFlowDecodeError(
            f"datagram too short for a v1 header: {len(data)} bytes"
        )
    version, count, sys_uptime, _secs, _nsecs = _V1_HEADER.unpack_from(data, 0)
    if version != NETFLOW_V1_VERSION:
        raise NetFlowDecodeError(f"unsupported NetFlow version {version}")
    if count == 0 or count > MAX_V1_RECORDS:
        raise NetFlowDecodeError(f"record count {count} out of range")
    expected = V1_HEADER_LEN + count * V1_RECORD_LEN
    if len(data) != expected:
        # Same contract as v5: the count field must describe the payload
        # exactly; both truncation and trailing bytes are decode errors.
        raise NetFlowDecodeError(
            f"datagram length mismatch: header claims {count} records"
            f" ({expected} bytes) but payload is {len(data)} bytes"
        )
    records: List[FlowRecord] = []
    offset = V1_HEADER_LEN
    for _ in range(count):
        (
            src_addr,
            dst_addr,
            next_hop,
            input_if,
            output_if,
            packets,
            octets,
            first,
            last,
            src_port,
            dst_port,
            _pad,
            protocol,
            tos,
            tcp_flags,
        ) = _V1_RECORD.unpack_from(data, offset)
        offset += V1_RECORD_LEN
        try:
            record = FlowRecord(
                key=FlowKey(
                    src_addr=src_addr,
                    dst_addr=dst_addr,
                    protocol=protocol,
                    src_port=src_port,
                    dst_port=dst_port,
                    tos=tos,
                    input_if=input_if,
                ),
                packets=packets,
                octets=octets,
                first=first,
                last=last,
                next_hop=next_hop,
                tcp_flags=tcp_flags,
                output_if=output_if,
            )
        except ValueError as error:
            raise NetFlowDecodeError(
                f"invalid flow record in v1 datagram: {error}"
            ) from error
        records.append(record)
    return sys_uptime, records


def upgrade_records(
    records: Iterable[FlowRecord],
    *,
    origin_as_for: Optional[Callable[[int], int]] = None,
    mask_for: Optional[Callable[[int], int]] = None,
) -> List[FlowRecord]:
    """Fill the v5-only fields on v1-decoded records from a routing oracle.

    ``origin_as_for(address)`` returns the origin ASN for an address;
    ``mask_for(address)`` its routing prefix length.  Either may be
    omitted (fields stay zero).  This is what a collector that knows the
    routing table does when normalising mixed-version feeds.
    """
    from dataclasses import replace

    upgraded: List[FlowRecord] = []
    for record in records:
        changes = {}
        if origin_as_for is not None:
            changes["src_as"] = origin_as_for(record.key.src_addr)
            changes["dst_as"] = origin_as_for(record.key.dst_addr)
        if mask_for is not None:
            changes["src_mask"] = mask_for(record.key.src_addr)
            changes["dst_mask"] = mask_for(record.key.dst_addr)
        upgraded.append(replace(record, **changes) if changes else record)
    return upgraded
