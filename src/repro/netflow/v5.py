"""NetFlow version 5 wire format.

Implements the industry-standard v5 export datagram: a 24-byte header
followed by up to 30 fixed 48-byte flow records, all fields big-endian
(network byte order).  The layout follows Cisco's NetFlow v5 specification
(the format RFC 3954 later standardised as v9's ancestor):

Header::

    version(2) count(2) sys_uptime(4) unix_secs(4) unix_nsecs(4)
    flow_sequence(4) engine_type(1) engine_id(1) sampling_interval(2)

Record::

    srcaddr(4) dstaddr(4) nexthop(4) input(2) output(2) dPkts(4) dOctets(4)
    first(4) last(4) srcport(2) dstport(2) pad1(1) tcp_flags(1) prot(1)
    tos(1) src_as(2) dst_as(2) src_mask(1) dst_mask(1) pad2(2)

Round-tripping through :func:`encode_datagram` / :func:`decode_datagram`
is lossless for every field a :class:`~repro.netflow.records.FlowRecord`
carries except ``exporter`` (which is transport metadata, not wire data).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Sequence, Tuple

from repro.netflow.records import FlowKey, FlowRecord
from repro.util.errors import NetFlowDecodeError, NetFlowError

__all__ = [
    "NETFLOW_V5_VERSION",
    "MAX_RECORDS_PER_DATAGRAM",
    "HEADER_LEN",
    "RECORD_LEN",
    "HEADER_STRUCT",
    "RECORD_STRUCT",
    "V5Header",
    "encode_datagram",
    "decode_datagram",
    "datagrams_for",
]

NETFLOW_V5_VERSION = 5
MAX_RECORDS_PER_DATAGRAM = 30
HEADER_LEN = 24
RECORD_LEN = 48

_HEADER = struct.Struct("!HHIIIIBBH")
_RECORD = struct.Struct("!IIIHHIIIIHHBBBBHHBBH")

#: Public aliases of the compiled wire structs so the columnar fastpath
#: decoder (`repro.fastpath.columnar`) shares the exact same layout
#: definitions instead of re-declaring format strings that could drift.
HEADER_STRUCT = _HEADER
RECORD_STRUCT = _RECORD

_U16 = 0xFFFF
_U32 = 0xFFFFFFFF


@dataclass(frozen=True)
class V5Header:
    """Decoded NetFlow v5 datagram header."""

    version: int
    count: int
    sys_uptime: int
    unix_secs: int
    unix_nsecs: int
    flow_sequence: int
    engine_type: int = 0
    engine_id: int = 0
    sampling_interval: int = 0


def encode_datagram(
    records: Sequence[FlowRecord],
    *,
    sys_uptime: int,
    unix_secs: int,
    flow_sequence: int,
    unix_nsecs: int = 0,
    engine_type: int = 0,
    engine_id: int = 0,
    sampling_interval: int = 0,
) -> bytes:
    """Encode up to 30 flow records into one v5 export datagram.

    ``flow_sequence`` is the cumulative count of flows exported *before*
    this datagram, matching router semantics (receivers detect loss by
    comparing it with the running record count).
    """
    if not records:
        raise NetFlowError("a v5 datagram must carry at least one record")
    if len(records) > MAX_RECORDS_PER_DATAGRAM:
        raise NetFlowError(
            f"v5 datagrams carry at most {MAX_RECORDS_PER_DATAGRAM} records,"
            f" got {len(records)}"
        )
    parts: List[bytes] = [
        _HEADER.pack(
            NETFLOW_V5_VERSION,
            len(records),
            sys_uptime & _U32,
            unix_secs & _U32,
            unix_nsecs & _U32,
            flow_sequence & _U32,
            engine_type & 0xFF,
            engine_id & 0xFF,
            sampling_interval & _U16,
        )
    ]
    for record in records:
        key = record.key
        parts.append(
            _RECORD.pack(
                key.src_addr & _U32,
                key.dst_addr & _U32,
                record.next_hop & _U32,
                key.input_if & _U16,
                record.output_if & _U16,
                record.packets & _U32,
                record.octets & _U32,
                record.first & _U32,
                record.last & _U32,
                key.src_port & _U16,
                key.dst_port & _U16,
                record.ttl & 0xFF,  # pad1 carries the min-TTL extension
                record.tcp_flags & 0xFF,
                key.protocol & 0xFF,
                key.tos & 0xFF,
                record.src_as & _U16,
                record.dst_as & _U16,
                record.src_mask & 0xFF,
                record.dst_mask & 0xFF,
                0,  # pad2
            )
        )
    return b"".join(parts)


def decode_datagram(data: bytes) -> Tuple[V5Header, List[FlowRecord]]:
    """Decode one v5 export datagram into its header and flow records."""
    if len(data) < HEADER_LEN:
        raise NetFlowDecodeError(
            f"datagram too short for a v5 header: {len(data)} bytes"
        )
    (
        version,
        count,
        sys_uptime,
        unix_secs,
        unix_nsecs,
        flow_sequence,
        engine_type,
        engine_id,
        sampling_interval,
    ) = _HEADER.unpack_from(data, 0)
    if version != NETFLOW_V5_VERSION:
        raise NetFlowDecodeError(f"unsupported NetFlow version {version}")
    if count == 0 or count > MAX_RECORDS_PER_DATAGRAM:
        raise NetFlowDecodeError(f"record count {count} out of range")
    expected = HEADER_LEN + count * RECORD_LEN
    if len(data) != expected:
        # A datagram is a complete unit: trailing bytes mean the count
        # field lies about the payload just as surely as truncation does.
        raise NetFlowDecodeError(
            f"datagram length mismatch: header claims {count} records"
            f" ({expected} bytes) but payload is {len(data)} bytes"
        )
    header = V5Header(
        version=version,
        count=count,
        sys_uptime=sys_uptime,
        unix_secs=unix_secs,
        unix_nsecs=unix_nsecs,
        flow_sequence=flow_sequence,
        engine_type=engine_type,
        engine_id=engine_id,
        sampling_interval=sampling_interval,
    )
    records: List[FlowRecord] = []
    offset = HEADER_LEN
    for _ in range(count):
        (
            src_addr,
            dst_addr,
            next_hop,
            input_if,
            output_if,
            packets,
            octets,
            first,
            last,
            src_port,
            dst_port,
            ttl,
            tcp_flags,
            protocol,
            tos,
            src_as,
            dst_as,
            src_mask,
            dst_mask,
            _pad2,
        ) = _RECORD.unpack_from(data, offset)
        offset += RECORD_LEN
        key = FlowKey(
            src_addr=src_addr,
            dst_addr=dst_addr,
            protocol=protocol,
            src_port=src_port,
            dst_port=dst_port,
            tos=tos,
            input_if=input_if,
        )
        try:
            record = FlowRecord(
                key=key,
                packets=packets,
                octets=octets,
                first=first,
                last=last,
                next_hop=next_hop,
                tcp_flags=tcp_flags,
                src_as=src_as,
                dst_as=dst_as,
                src_mask=src_mask,
                dst_mask=dst_mask,
                output_if=output_if,
                ttl=ttl,
            )
        except ValueError as error:
            # Structurally framed but semantically invalid (zero packets,
            # end before start, ...): corrupt data, not a crash.
            raise NetFlowDecodeError(
                f"invalid flow record in datagram: {error}"
            ) from error
        records.append(record)
    return header, records


def datagrams_for(
    records: Iterable[FlowRecord],
    *,
    sys_uptime: int,
    unix_secs: int,
    initial_sequence: int = 0,
) -> Iterator[bytes]:
    """Pack an arbitrary record stream into maximally-filled v5 datagrams.

    Maintains the cumulative ``flow_sequence`` across datagrams the way a
    real exporter does.
    """
    batch: List[FlowRecord] = []
    sequence = initial_sequence
    for record in records:
        batch.append(record)
        if len(batch) == MAX_RECORDS_PER_DATAGRAM:
            yield encode_datagram(
                batch,
                sys_uptime=sys_uptime,
                unix_secs=unix_secs,
                flow_sequence=sequence,
            )
            sequence += len(batch)
            batch = []
    if batch:
        yield encode_datagram(
            batch,
            sys_uptime=sys_uptime,
            unix_secs=unix_secs,
            flow_sequence=sequence,
        )
