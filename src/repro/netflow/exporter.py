"""Router-side NetFlow flow accounting and export.

:class:`FlowExporter` models the flow cache of a NetFlow-enabled border
router: packets observed on ingress interfaces are aggregated into flow
cache entries, and entries expire into exported :class:`FlowRecord`\\ s when
any of the paper's four conditions holds (Section 5.1.1):

* the flow has been idle longer than the idle timeout,
* the flow has been active longer than the active timeout,
* the cache is close to full (oldest entries are aged out), or
* a TCP connection terminates (FIN or RST seen).

Only ingress traffic is accounted, matching NetFlow semantics; the caller
decides which interfaces have accounting enabled (in the InFilter
deployment, only peer-AS-facing interfaces).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable, List, Optional

if TYPE_CHECKING:
    from repro.netflow.emit import DatagramEmitter

from repro.netflow.records import (
    PROTO_TCP,
    TCP_FIN,
    TCP_RST,
    FlowKey,
    FlowRecord,
)
from repro.util.errors import ConfigError, RecordError

__all__ = ["Packet", "ExporterConfig", "FlowExporter"]


@dataclass(frozen=True)
class Packet:
    """The slice of an IP packet that flow accounting observes."""

    key: FlowKey
    length: int
    timestamp_ms: int
    tcp_flags: int = 0

    def __post_init__(self) -> None:
        if self.length <= 0:
            raise RecordError("packet length must be positive")


@dataclass(frozen=True)
class ExporterConfig:
    """Flow-cache tuning knobs.

    Defaults mirror common router defaults: 15 s inactive timeout, 30 min
    active timeout.  ``cache_size`` bounds the number of concurrent flow
    entries; when over 90% full the oldest entries are force-expired,
    which is the "cache close to full" condition of Section 5.1.1.
    """

    idle_timeout_ms: int = 15_000
    active_timeout_ms: int = 1_800_000
    cache_size: int = 65_536
    high_watermark: float = 0.9

    def __post_init__(self) -> None:
        if self.idle_timeout_ms <= 0 or self.active_timeout_ms <= 0:
            raise ConfigError("timeouts must be positive")
        if self.cache_size < 1:
            raise ConfigError("cache_size must be at least 1")
        if not 0.0 < self.high_watermark <= 1.0:
            raise ConfigError("high_watermark must be in (0, 1]")


class _CacheEntry:
    __slots__ = ("key", "packets", "octets", "first", "last", "tcp_flags")

    def __init__(self, key: FlowKey, packet: Packet) -> None:
        self.key = key
        self.packets = 1
        self.octets = packet.length
        self.first = packet.timestamp_ms
        self.last = packet.timestamp_ms
        self.tcp_flags = packet.tcp_flags

    def absorb(self, packet: Packet) -> None:
        self.packets += 1
        self.octets += packet.length
        self.last = packet.timestamp_ms
        self.tcp_flags |= packet.tcp_flags

    def to_record(self, annotate: Optional[Callable[[FlowRecord], FlowRecord]]) -> FlowRecord:
        record = FlowRecord(
            key=self.key,
            packets=self.packets,
            octets=self.octets,
            first=self.first,
            last=self.last,
            tcp_flags=self.tcp_flags,
        )
        if annotate is not None:
            record = annotate(record)
        return record


class FlowExporter:
    """Aggregates packets into flows and emits expired flow records.

    ``annotate`` lets the hosting router fill routing-derived record fields
    (``src_as``, ``dst_as``, masks, next hop) at export time, the way a real
    router consults its FIB when a flow expires.

    ``emitter`` plugs in a wire-emission path: every exported record is
    also handed to the :class:`~repro.netflow.emit.DatagramEmitter`,
    whose target may be a real UDP socket, the simulated impaired
    channel, or any datagram callback — the same flow cache drives a
    live collector or an in-memory experiment unchanged.
    """

    def __init__(
        self,
        config: Optional[ExporterConfig] = None,
        *,
        annotate: Optional[Callable[[FlowRecord], FlowRecord]] = None,
        enabled_interfaces: Optional[Iterable[int]] = None,
        emitter: Optional["DatagramEmitter"] = None,
    ) -> None:
        self.config = config or ExporterConfig()
        self._annotate = annotate
        self._enabled = set(enabled_interfaces) if enabled_interfaces is not None else None
        self._cache: "OrderedDict[FlowKey, _CacheEntry]" = OrderedDict()
        self._exported = 0
        self.emitter = emitter

    @property
    def cache_occupancy(self) -> int:
        """Number of live flow entries."""
        return len(self._cache)

    @property
    def flows_exported(self) -> int:
        """Cumulative count of exported flow records."""
        return self._exported

    def observe(self, packet: Packet) -> List[FlowRecord]:
        """Account one packet; returns any records this packet expired.

        A packet on an interface without accounting enabled is ignored.
        TCP FIN/RST expires the flow immediately, after absorbing the
        terminating packet.
        """
        if self._enabled is not None and packet.key.input_if not in self._enabled:
            return []
        expired = self._expire(packet.timestamp_ms)
        entry = self._cache.get(packet.key)
        if entry is None:
            self._make_room(expired)
            self._cache[packet.key] = entry = _CacheEntry(packet.key, packet)
        else:
            entry.absorb(packet)
            self._cache.move_to_end(packet.key)
        terminating = packet.key.protocol == PROTO_TCP and (
            packet.tcp_flags & (TCP_FIN | TCP_RST)
        )
        if terminating:
            del self._cache[packet.key]
            expired.append(self._export(entry))
        return expired

    def sweep(self, now_ms: int) -> List[FlowRecord]:
        """Expire entries by the clock without observing a packet."""
        return self._expire(now_ms)

    def flush(self) -> List[FlowRecord]:
        """Force-expire every live entry (router reload / end of run).

        When an emitter is plugged in, its partial tail datagram is
        flushed to the wire too — after this call nothing is buffered on
        the export side.
        """
        records = [self._export(entry) for entry in self._cache.values()]
        self._cache.clear()
        if self.emitter is not None:
            self.emitter.flush()
        return records

    def _expire(self, now_ms: int) -> List[FlowRecord]:
        config = self.config
        expired: List[FlowRecord] = []
        # Entries are kept in recency order, but active-timeout expiry
        # depends on `first`, so scan the whole cache lazily via a snapshot
        # of keys; in practice idle expiry catches almost everything from
        # the front of the OrderedDict.
        stale: List[FlowKey] = []
        for key, entry in self._cache.items():
            idle = now_ms - entry.last >= config.idle_timeout_ms
            overactive = now_ms - entry.first >= config.active_timeout_ms
            if idle or overactive:
                stale.append(key)
        for key in stale:
            entry = self._cache.pop(key)
            expired.append(self._export(entry))
        return expired

    def _make_room(self, expired: List[FlowRecord]) -> None:
        limit = int(self.config.cache_size * self.config.high_watermark)
        while len(self._cache) >= max(limit, 1):
            _key, entry = self._cache.popitem(last=False)
            expired.append(self._export(entry))

    def _export(self, entry: _CacheEntry) -> FlowRecord:
        self._exported += 1
        record = entry.to_record(self._annotate)
        if self.emitter is not None:
            self.emitter.emit((record,))
        return record
