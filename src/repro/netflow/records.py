"""Flow keys, flow records, and per-flow statistics.

A *flow* is a unidirectional sequence of packets sharing the NetFlow key
fields (Figure 10 of the paper): source/destination IP, IP protocol,
source/destination port, TOS byte, and input interface.  A
:class:`FlowRecord` carries the key plus the NetFlow v5 measurement fields;
:class:`FlowStats` is the derived statistic vector the Enhanced InFilter
analysis consumes (Section 5.1.2: byte count, packet count, duration,
bit rate, packet rate).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import ClassVar, Tuple

from repro.util.errors import RecordError

__all__ = [
    "PROTO_ICMP",
    "PROTO_TCP",
    "PROTO_UDP",
    "PORT_FTP",
    "PORT_SMTP",
    "PORT_DNS",
    "PORT_HTTP",
    "TCP_FIN",
    "TCP_SYN",
    "TCP_RST",
    "TCP_PSH",
    "TCP_ACK",
    "FlowKey",
    "FlowRecord",
    "FlowStats",
]

PROTO_ICMP = 1
PROTO_TCP = 6
PROTO_UDP = 17

PORT_FTP = 21
PORT_SMTP = 25
PORT_DNS = 53
PORT_HTTP = 80

TCP_FIN = 0x01
TCP_SYN = 0x02
TCP_RST = 0x04
TCP_PSH = 0x08
TCP_ACK = 0x10


@dataclass(frozen=True)
class FlowKey:
    """The NetFlow flow identity (Figure 10).

    Ports are zero for protocols without them (ICMP).  ``input_if`` is the
    SNMP ifIndex of the interface the constituent packets arrived on, which
    in the InFilter deployment identifies the peer-AS-facing interface.
    """

    src_addr: int
    dst_addr: int
    protocol: int
    src_port: int = 0
    dst_port: int = 0
    tos: int = 0
    input_if: int = 0

    def reversed(self) -> "FlowKey":
        """The key of the opposite-direction flow (for request/response)."""
        return FlowKey(
            src_addr=self.dst_addr,
            dst_addr=self.src_addr,
            protocol=self.protocol,
            src_port=self.dst_port,
            dst_port=self.src_port,
            tos=self.tos,
            input_if=self.input_if,
        )


@dataclass(frozen=True)
class FlowRecord:
    """A NetFlow v5 flow record.

    Times are router SysUptime milliseconds (``first``/``last``); the
    exporter stamps them from its :class:`~repro.util.timebase.SimClock`.
    ``src_as``/``dst_as`` carry the origin autonomous-system numbers when
    the exporting router has them; ``src_mask``/``dst_mask`` the routing
    prefix lengths.
    """

    key: FlowKey
    packets: int
    octets: int
    first: int
    last: int
    next_hop: int = 0
    tcp_flags: int = 0
    src_as: int = 0
    dst_as: int = 0
    src_mask: int = 0
    dst_mask: int = 0
    output_if: int = 0
    exporter: int = 0
    #: Minimum observed IP TTL of the flow's packets, carried in the v5
    #: record's pad1 byte (a probe-style extension some exporters use).
    #: ``0`` means "not measured" — analyses keying on TTL must abstain.
    ttl: int = 0

    def __post_init__(self) -> None:
        if self.packets <= 0:
            raise RecordError("a flow record must cover at least one packet")
        if self.octets <= 0:
            raise RecordError("a flow record must cover at least one octet")
        if self.last < self.first:
            raise RecordError("flow end precedes flow start")
        if not 0 <= self.ttl <= 255:
            raise RecordError("flow TTL must fit in one octet")

    def duration_ms(self) -> int:
        """Flow duration in milliseconds."""
        return self.last - self.first

    def stats(self) -> "FlowStats":
        """Derive the five-feature statistic vector used by the analysis."""
        duration_ms = self.duration_ms()
        # A single-packet flow has zero duration; rates use a 1 ms floor so
        # one-packet stealthy attacks still produce finite, comparable rates.
        rate_window_s = max(duration_ms, 1) / 1000.0
        return FlowStats(
            octets=self.octets,
            packets=self.packets,
            duration_ms=duration_ms,
            bit_rate=self.octets * 8.0 / rate_window_s,
            packet_rate=self.packets / rate_window_s,
        )

    def with_key(self, **changes: int) -> "FlowRecord":
        """Copy of this record with key fields replaced (used for spoofing)."""
        return replace(self, key=replace(self.key, **changes))


@dataclass(frozen=True)
class FlowStats:
    """Per-flow statistics (Section 5.1.2).

    These are the observable characteristics the NNS analysis encodes:
    byte count, packet count, duration, bit rate, and packet rate.
    """

    octets: int
    packets: int
    duration_ms: int
    bit_rate: float
    packet_rate: float

    def as_tuple(self) -> Tuple[float, float, float, float, float]:
        """Fixed feature ordering used by the unary encoder."""
        return (
            float(self.octets),
            float(self.packets),
            float(self.duration_ms),
            self.bit_rate,
            self.packet_rate,
        )

    FEATURE_NAMES: ClassVar[Tuple[str, ...]] = (
        "octets",
        "packets",
        "duration_ms",
        "bit_rate",
        "packet_rate",
    )
