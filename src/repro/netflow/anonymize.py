"""Prefix-preserving address anonymization for flow sharing.

Operators share flow traces (the paper's training data came from CAIDA
and NLANR archives, which anonymize exactly this way): addresses are
rewritten so that any two addresses sharing a k-bit prefix before
anonymization share a k-bit prefix after, and nothing else about them
survives.  The property matters here because the entire InFilter design
keys on prefixes — an anonymized trace still trains valid EIA sets and
cluster models.

The construction is the classic bit-by-bit scheme (Crypto-PAn's shape,
with a keyed PRF over HMAC-SHA256 in place of AES): output bit ``i``
flips input bit ``i`` depending on a PRF of the first ``i`` input bits,
so the mapping is a bijection on each prefix tree level.
"""

from __future__ import annotations

import hashlib
import hmac
from typing import Dict, Iterable, List

from repro.netflow.records import FlowRecord
from repro.util.errors import ConfigError

__all__ = ["PrefixPreservingAnonymizer"]


class PrefixPreservingAnonymizer:
    """Deterministic, keyed, prefix-preserving IPv4 anonymization."""

    def __init__(self, key: bytes) -> None:
        if len(key) < 8:
            raise ConfigError("anonymization key must be at least 8 bytes")
        self._key = key
        self._cache: Dict[int, int] = {}

    def _prf_bit(self, prefix_bits: int, length: int) -> int:
        """One pseudorandom bit for a given input prefix."""
        message = length.to_bytes(1, "big") + prefix_bits.to_bytes(4, "big")
        digest = hmac.new(self._key, message, hashlib.sha256).digest()
        return digest[0] & 1

    def anonymize(self, address: int) -> int:
        """Map one address; equal inputs always map to equal outputs."""
        if not 0 <= address < 2**32:
            raise ConfigError("address out of IPv4 range")
        cached = self._cache.get(address)
        if cached is not None:
            return cached
        result = 0
        for bit_index in range(32):
            shift = 31 - bit_index
            input_bit = (address >> shift) & 1
            prefix = address >> (shift + 1) if bit_index else 0
            flip = self._prf_bit(prefix, bit_index)
            result = (result << 1) | (input_bit ^ flip)
        self._cache[address] = result
        return result

    def anonymize_record(self, record: FlowRecord) -> FlowRecord:
        """A copy of ``record`` with both endpoint addresses anonymized."""
        return record.with_key(
            src_addr=self.anonymize(record.key.src_addr),
            dst_addr=self.anonymize(record.key.dst_addr),
        )

    def anonymize_all(self, records: Iterable[FlowRecord]) -> List[FlowRecord]:
        return [self.anonymize_record(record) for record in records]

    @staticmethod
    def shared_prefix_length(a: int, b: int) -> int:
        """Length of the common prefix of two addresses (test helper)."""
        if a == b:
            return 32
        return 31 - (a ^ b).bit_length() + 1
