"""Datagram emission: from expired flow records to the wire.

The flow cache (:class:`~repro.netflow.exporter.FlowExporter`) produces
:class:`~repro.netflow.records.FlowRecord`\\ s; something still has to
pack them into NetFlow v5 export datagrams and put those datagrams
*somewhere*.  :class:`DatagramEmitter` is that something, and the
"somewhere" is pluggable:

* :class:`SocketTarget` — a real UDP socket (``sendto`` straight to a
  collector address), which is how a loopback deployment feeds
  ``infilter serve``;
* :class:`ChannelTarget` — the simulated impaired
  :class:`~repro.netflow.transport.UdpChannel`, delivering whatever
  survives to a callback (typically ``collector.receive``);
* any ``Callable[[bytes], None]`` — tests capture raw datagrams with a
  plain function.

The emitter owns the cumulative ``flow_sequence`` counter, exactly like
a router's export process, so collectors can run their sequence-gap
loss accounting over either path.
"""

from __future__ import annotations

import socket
from typing import Callable, List, Optional, Sequence, Tuple

from repro.netflow.records import FlowRecord
from repro.netflow.transport import UdpChannel
from repro.netflow.v5 import MAX_RECORDS_PER_DATAGRAM, encode_datagram
from repro.obs import MetricsRegistry, get_registry
from repro.util.errors import ConfigError, NetFlowError

__all__ = [
    "EmitTarget",
    "SocketTarget",
    "ChannelTarget",
    "DatagramEmitter",
]

#: Anything that accepts one encoded datagram.
EmitTarget = Callable[[bytes], None]


class SocketTarget:
    """Send datagrams over a real UDP socket to ``(host, port)``.

    The socket is created lazily on first send and owned by the target;
    call :meth:`close` (or use the instance as a context manager) when
    the export session ends.  Sends are synchronous — this is the
    router-side (blocking-world) half of a deployment; the daemon side
    stays non-blocking on its own event loop.
    """

    def __init__(self, host: str, port: int) -> None:
        if not 0 < port <= 65_535:
            raise ConfigError(f"port must be in [1, 65535], got {port}")
        self.host = host
        self.port = port
        self._sock: Optional[socket.socket] = None
        self.sent = 0

    def _socket(self) -> socket.socket:
        if self._sock is None:
            self._sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        return self._sock

    def __call__(self, datagram: bytes) -> None:
        try:
            self._socket().sendto(datagram, (self.host, self.port))
        except OSError as error:
            raise NetFlowError(
                f"UDP send to {self.host}:{self.port} failed: {error}"
            ) from error
        self.sent += 1

    def close(self) -> None:
        if self._sock is not None:
            self._sock.close()
            self._sock = None

    def __enter__(self) -> "SocketTarget":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class ChannelTarget:
    """Send datagrams through a simulated impaired UDP channel.

    Whatever the channel delivers (after loss, duplication, reordering)
    is handed to ``deliver`` — wire a collector's ``receive`` in and the
    full exporter → channel → collector path runs without a socket.
    """

    def __init__(
        self, channel: UdpChannel, deliver: Callable[[bytes], None]
    ) -> None:
        self.channel = channel
        self._deliver = deliver

    def __call__(self, datagram: bytes) -> None:
        for delivered in self.channel.transmit([datagram]):
            self._deliver(delivered)


class DatagramEmitter:
    """Pack flow records into v5 datagrams and emit them to a target.

    Records are buffered until a datagram fills (30 records) and emitted
    with router-faithful header fields: cumulative ``flow_sequence``,
    ``unix_secs``/``sys_uptime`` derived from the flow timestamps of the
    records being exported (deterministic, replayable — never the wall
    clock).  Call :meth:`flush` at the end of an export session to push
    the partial tail datagram.
    """

    def __init__(
        self,
        target: EmitTarget,
        *,
        engine_id: int = 0,
        initial_sequence: int = 0,
        max_records: int = MAX_RECORDS_PER_DATAGRAM,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if not 1 <= max_records <= MAX_RECORDS_PER_DATAGRAM:
            raise ConfigError(
                "max_records must be in"
                f" [1, {MAX_RECORDS_PER_DATAGRAM}], got {max_records}"
            )
        if initial_sequence < 0:
            raise ConfigError(
                f"initial_sequence must be >= 0, got {initial_sequence}"
            )
        self.target = target
        self.engine_id = engine_id
        self.max_records = max_records
        self._sequence = initial_sequence
        self._buffer: List[FlowRecord] = []
        self.datagrams_emitted = 0
        self.records_emitted = 0
        registry = registry if registry is not None else get_registry()
        self._m_datagrams = registry.counter(
            "infilter_exporter_datagrams_total",
            "NetFlow v5 datagrams emitted to the export target.",
        )
        self._m_records = registry.counter(
            "infilter_exporter_emitted_records_total",
            "Flow records packed into emitted export datagrams.",
        )

    @property
    def flow_sequence(self) -> int:
        """Cumulative count of flows exported before the next datagram."""
        return self._sequence

    @property
    def buffered(self) -> int:
        """Records waiting for the current datagram to fill."""
        return len(self._buffer)

    def emit(self, records: Sequence[FlowRecord]) -> int:
        """Buffer records, emitting every full datagram; returns the
        number of datagrams sent by this call."""
        sent = 0
        for record in records:
            self._buffer.append(record)
            if len(self._buffer) >= self.max_records:
                self._send(self._buffer)
                self._buffer = []
                sent += 1
        return sent

    def flush(self) -> int:
        """Emit the partial tail datagram, if any; returns 0 or 1."""
        if not self._buffer:
            return 0
        self._send(self._buffer)
        self._buffer = []
        return 1

    def _send(self, records: List[FlowRecord]) -> None:
        latest = max(record.last for record in records)
        datagram = encode_datagram(
            records,
            # Header times come from flow time, not the wall clock: the
            # export instant is "when the newest flow in it last saw a
            # packet", which replays bit-identically.
            sys_uptime=latest,
            unix_secs=latest // 1000,
            flow_sequence=self._sequence,
            engine_id=self.engine_id,
        )
        self.target(datagram)
        self._sequence += len(records)
        self.datagrams_emitted += 1
        self.records_emitted += len(records)
        self._m_datagrams.inc()
        self._m_records.inc(len(records))
