"""Unreliable datagram transport between exporters and the collector.

NetFlow export rides UDP: datagrams can be lost, reordered, or
duplicated, and the v5 ``flow_sequence`` field exists precisely so
collectors can account for the damage.  :class:`UdpChannel` models such a
path with configurable impairment rates, deterministically under a seeded
RNG, so tests and experiments can quantify how the collector's loss
accounting and the detector respond to transport degradation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional

from repro.obs import MetricsRegistry, get_registry
from repro.util.errors import ConfigError
from repro.util.rng import SeededRng

__all__ = ["ChannelConfig", "ChannelStats", "UdpChannel"]


@dataclass(frozen=True)
class ChannelConfig:
    """Impairment rates, each an independent per-datagram probability.

    ``reorder_probability`` holds a datagram back one slot (it swaps with
    its successor), the common mild reordering of load-balanced paths.
    """

    loss_probability: float = 0.0
    duplicate_probability: float = 0.0
    reorder_probability: float = 0.0

    def __post_init__(self) -> None:
        for name in ("loss_probability", "duplicate_probability", "reorder_probability"):
            value = getattr(self, name)
            if not 0.0 <= value < 1.0:
                raise ConfigError(f"{name} must be in [0, 1)")


@dataclass
class ChannelStats:
    """What the channel did to the traffic."""

    sent: int = 0
    delivered: int = 0
    lost: int = 0
    duplicated: int = 0
    reordered: int = 0


class UdpChannel:
    """A lossy, reordering, duplicating datagram path."""

    def __init__(
        self,
        config: ChannelConfig,
        *,
        rng: SeededRng,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.config = config
        self._rng = rng.fork("udp-channel")
        self.stats = ChannelStats()
        registry = registry if registry is not None else get_registry()
        events = registry.counter(
            "infilter_transport_datagrams_total",
            "Datagram fates on the exporter-to-collector UDP path.",
            ("event",),
        )
        self._m_sent = events.labels(event="sent")
        self._m_delivered = events.labels(event="delivered")
        self._m_lost = events.labels(event="lost")
        self._m_duplicated = events.labels(event="duplicated")
        self._m_reordered = events.labels(event="reordered")

    def transmit(self, datagrams: Iterable[bytes]) -> Iterator[bytes]:
        """Push datagrams through the channel, yielding what arrives.

        Impairments are applied in a fixed order per datagram: loss first
        (a lost datagram can be neither duplicated nor reordered), then
        duplication, then one-slot reordering.
        """
        held: List[bytes] = []
        for datagram in datagrams:
            self.stats.sent += 1
            self._m_sent.inc()
            if self._rng.bernoulli(self.config.loss_probability):
                self.stats.lost += 1
                self._m_lost.inc()
                continue
            out: List[bytes] = [datagram]
            if self._rng.bernoulli(self.config.duplicate_probability):
                self.stats.duplicated += 1
                self._m_duplicated.inc()
                out.append(datagram)
            for item in out:
                if held:
                    # A held datagram departs after its successor: swap.
                    yield item
                    yield held.pop()
                    self.stats.delivered += 2
                    self._m_delivered.inc(2)
                elif self._rng.bernoulli(self.config.reorder_probability):
                    self.stats.reordered += 1
                    self._m_reordered.inc()
                    held.append(item)
                else:
                    self.stats.delivered += 1
                    self._m_delivered.inc()
                    yield item
        for item in held:
            self.stats.delivered += 1
            self._m_delivered.inc()
            yield item
