"""Flow filtering (the flow-nfilter role of Flow-tools).

Composable predicates over flow records: match on source/destination
prefixes, ports, protocols, size bounds, and TCP flags; combine with
``&``, ``|`` and ``~``.  Operators use these to slice captures ("only
udp/1434 toward the victim /24") before reporting or replay; the CLI
exposes them via ``infilter filter``.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator

from repro.netflow.records import FlowRecord
from repro.util.errors import ConfigError
from repro.util.ip import Prefix

__all__ = ["FlowFilter", "parse_filter_expression"]

Predicate = Callable[[FlowRecord], bool]


class FlowFilter:
    """A composable flow predicate."""

    def __init__(self, predicate: Predicate, description: str) -> None:
        self._predicate = predicate
        self.description = description

    def __call__(self, record: FlowRecord) -> bool:
        return self._predicate(record)

    def apply(self, records: Iterable[FlowRecord]) -> Iterator[FlowRecord]:
        """The records matching this filter."""
        return (record for record in records if self(record))

    def __and__(self, other: "FlowFilter") -> "FlowFilter":
        return FlowFilter(
            lambda r: self(r) and other(r),
            f"({self.description} and {other.description})",
        )

    def __or__(self, other: "FlowFilter") -> "FlowFilter":
        return FlowFilter(
            lambda r: self(r) or other(r),
            f"({self.description} or {other.description})",
        )

    def __invert__(self) -> "FlowFilter":
        return FlowFilter(lambda r: not self(r), f"(not {self.description})")

    def __repr__(self) -> str:
        return f"FlowFilter({self.description})"

    # -- constructors -------------------------------------------------------

    @staticmethod
    def true() -> "FlowFilter":
        return FlowFilter(lambda r: True, "any")

    @staticmethod
    def src_in(prefix: Prefix) -> "FlowFilter":
        return FlowFilter(
            lambda r: prefix.contains(r.key.src_addr), f"src in {prefix}"
        )

    @staticmethod
    def dst_in(prefix: Prefix) -> "FlowFilter":
        return FlowFilter(
            lambda r: prefix.contains(r.key.dst_addr), f"dst in {prefix}"
        )

    @staticmethod
    def protocol(number: int) -> "FlowFilter":
        return FlowFilter(lambda r: r.key.protocol == number, f"proto {number}")

    @staticmethod
    def dst_port(port: int) -> "FlowFilter":
        return FlowFilter(lambda r: r.key.dst_port == port, f"dport {port}")

    @staticmethod
    def src_port(port: int) -> "FlowFilter":
        return FlowFilter(lambda r: r.key.src_port == port, f"sport {port}")

    @staticmethod
    def input_if(index: int) -> "FlowFilter":
        return FlowFilter(lambda r: r.key.input_if == index, f"input {index}")

    @staticmethod
    def min_packets(count: int) -> "FlowFilter":
        return FlowFilter(lambda r: r.packets >= count, f"packets>={count}")

    @staticmethod
    def max_packets(count: int) -> "FlowFilter":
        return FlowFilter(lambda r: r.packets <= count, f"packets<={count}")

    @staticmethod
    def min_octets(count: int) -> "FlowFilter":
        return FlowFilter(lambda r: r.octets >= count, f"octets>={count}")

    @staticmethod
    def tcp_flags_set(mask: int) -> "FlowFilter":
        return FlowFilter(
            lambda r: (r.tcp_flags & mask) == mask, f"flags&{mask:#x}"
        )


_TERM_BUILDERS = {
    "src": lambda value: FlowFilter.src_in(Prefix.parse(value)),
    "dst": lambda value: FlowFilter.dst_in(Prefix.parse(value)),
    "proto": lambda value: FlowFilter.protocol(int(value)),
    "dport": lambda value: FlowFilter.dst_port(int(value)),
    "sport": lambda value: FlowFilter.src_port(int(value)),
    "input": lambda value: FlowFilter.input_if(int(value)),
    "minpkts": lambda value: FlowFilter.min_packets(int(value)),
    "maxpkts": lambda value: FlowFilter.max_packets(int(value)),
    "minoctets": lambda value: FlowFilter.min_octets(int(value)),
    "flags": lambda value: FlowFilter.tcp_flags_set(int(value, 0)),
}


def parse_filter_expression(text: str) -> FlowFilter:
    """Parse a small filter language: space-separated ``key=value`` terms.

    Terms AND together; a term prefixed with ``!`` negates.  Example::

        "proto=17 dport=1434 dst=198.18.0.0/16 !minpkts=2"

    (UDP to 1434 toward the target /16, single-packet flows only.)
    """
    combined = FlowFilter.true()
    terms = text.split()
    if not terms:
        raise ConfigError("empty filter expression")
    for term in terms:
        negate = term.startswith("!")
        body = term[1:] if negate else term
        key, _, value = body.partition("=")
        if not value:
            raise ConfigError(f"malformed filter term {term!r} (want key=value)")
        try:
            builder = _TERM_BUILDERS[key]
        except KeyError:
            raise ConfigError(
                f"unknown filter key {key!r}; expected one of"
                f" {sorted(_TERM_BUILDERS)}"
            ) from None
        try:
            term_filter = builder(value)
        except (ValueError, ConfigError) as error:
            raise ConfigError(f"bad value in filter term {term!r}: {error}") from error
        if negate:
            term_filter = ~term_filter
        combined = combined & term_filter
    return combined
