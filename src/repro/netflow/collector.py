"""NetFlow collection (the flow-capture role of Flow-tools).

:class:`FlowCollector` receives encoded v5 datagrams, decodes them, tracks
per-source sequence numbers for loss detection, and hands the records to
registered sinks.  In the testbed each Dagflow instance sends to a distinct
UDP port; :class:`PortMux` reproduces that multiplexing by mapping a
destination port to a peer-AS identity and stamping it onto the records
(via ``input_if``) before collection.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field, replace
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.netflow.records import FlowRecord
from repro.netflow.v5 import V5Header, decode_datagram
from repro.obs import MetricsRegistry, get_logger, get_registry
from repro.util.errors import NetFlowError

__all__ = ["CollectorStats", "FlowCollector", "PortMux"]

log = get_logger(__name__)

FlowSink = Callable[[FlowRecord], None]
BatchSink = Callable[[List[FlowRecord]], None]


@dataclass
class CollectorStats:
    """Counters a flow-capture operator watches."""

    datagrams: int = 0
    records: int = 0
    decode_errors: int = 0
    lost_flows: int = 0
    sequence_resets: int = 0
    duplicates: int = 0


class FlowCollector:
    """Decode v5 datagrams from multiple exporters and fan records out.

    ``source`` is an opaque exporter identity (the testbed uses the UDP
    port number).  Sequence tracking is per source: a gap between the
    expected and received ``flow_sequence`` counts as lost flows, and a
    regression counts as an exporter restart.
    """

    DEDUPE_WINDOW = 64

    def __init__(self, *, registry: Optional[MetricsRegistry] = None) -> None:
        self._sinks: List[FlowSink] = []
        # (sink, max_batch, buffer) triples; see add_batch_sink.
        self._batch_sinks: List[Tuple[BatchSink, int, List[FlowRecord]]] = []
        self._expected_seq: Dict[int, int] = {}
        self.stats = CollectorStats()
        self._store: List[FlowRecord] = []
        self._retain = False
        # Recently seen (per source) flow_sequence values: UDP duplicates
        # re-deliver a datagram verbatim; replaying its records would
        # double-count flows, so they are dropped here.
        self._recent_seq: Dict[int, Deque[int]] = {}
        registry = registry if registry is not None else get_registry()
        self._m_datagrams = registry.counter(
            "infilter_collector_datagrams_total",
            "NetFlow v5 datagrams decoded successfully.",
        )
        self._m_records = registry.counter(
            "infilter_collector_records_total",
            "Flow records delivered to sinks.",
        )
        self._m_decode_errors = registry.counter(
            "infilter_collector_decode_errors_total",
            "Datagrams dropped because they failed to decode.",
        )
        self._m_lost_flows = registry.counter(
            "infilter_collector_lost_flows_total",
            "Flows inferred lost from flow_sequence gaps.",
        )
        self._m_sequence_resets = registry.counter(
            "infilter_collector_sequence_resets_total",
            "flow_sequence regressions (exporter restarts).",
        )
        self._m_duplicates = registry.counter(
            "infilter_collector_duplicate_datagrams_total",
            "Datagrams dropped as UDP re-deliveries.",
        )

    def add_sink(self, sink: FlowSink) -> None:
        """Register a callback invoked once per collected record."""
        self._sinks.append(sink)

    def add_batch_sink(self, sink: BatchSink, *, max_batch: int = 256) -> None:
        """Register a callback invoked with *lists* of collected records.

        The collector buffers up to ``max_batch`` records per batch sink
        and delivers them in one call — the hand-off the batched ingest
        engine (:mod:`repro.engine`) consumes.  Call
        :meth:`flush_batches` after the last datagram; buffered records
        are otherwise held waiting for a full batch.
        """
        if max_batch < 1:
            raise NetFlowError(f"max_batch must be >= 1, got {max_batch}")
        self._batch_sinks.append((sink, max_batch, []))

    def flush_batches(self) -> None:
        """Deliver any partially filled batch-sink buffers."""
        for sink, _max_batch, buffer in self._batch_sinks:
            if buffer:
                batch, buffer[:] = list(buffer), []
                sink(batch)

    def retain_records(self, retain: bool = True) -> None:
        """Keep collected records in memory (the flow-file role)."""
        self._retain = retain

    @property
    def records(self) -> List[FlowRecord]:
        """Records retained so far (requires :meth:`retain_records`)."""
        return self._store

    def receive(self, data: bytes, source: int = 0) -> List[FlowRecord]:
        """Ingest one datagram; returns the decoded records.

        Undecodable datagrams are counted and dropped rather than raised:
        a collector must survive malformed input from the network.
        """
        try:
            header, records = decode_datagram(data)
        except NetFlowError as error:
            self.note_decode_error(source, str(error))
            return []
        return self.receive_decoded(header, records, source=source)

    def note_decode_error(self, source: int, reason: str) -> None:
        """Account one dropped undecodable datagram.

        Exposed so front ends that decode before the collector (the
        fastpath columnar router) keep the decode-error accounting in one
        place — same counters, metric, and log line as :meth:`receive`.
        """
        self.stats.decode_errors += 1
        self._m_decode_errors.inc()
        log.warning(
            "dropped undecodable datagram",
            extra={"source": source, "reason": reason},
        )

    def receive_decoded(
        self, header: V5Header, records: List[FlowRecord], source: int = 0
    ) -> List[FlowRecord]:
        """Ingest an already-decoded v5 datagram (the zero-copy hand-off).

        Duplicate suppression, sequence tracking, and sink delivery are
        identical to :meth:`receive`; only the wire decode has happened
        elsewhere (e.g. :func:`repro.fastpath.columnar.decode_v5_columnar`).
        """
        if self._is_duplicate(source, header):
            self.stats.duplicates += 1
            self._m_duplicates.inc()
            return []
        self._track_sequence(source, header)
        self.stats.datagrams += 1
        self.stats.records += len(records)
        self._m_datagrams.inc()
        self._m_records.inc(len(records))
        for record in records:
            self._deliver(record)
        return records

    def _is_duplicate(self, source: int, header: V5Header) -> bool:
        recent = self._recent_seq.get(source)
        if recent is None:
            self._recent_seq[source] = recent = deque(maxlen=self.DEDUPE_WINDOW)
        if header.flow_sequence in recent:
            return True
        recent.append(header.flow_sequence)
        return False

    def ingest_records(self, records: List[FlowRecord]) -> None:
        """Bypass the wire format (already-decoded records)."""
        self.stats.records += len(records)
        self._m_records.inc(len(records))
        for record in records:
            self._deliver(record)

    def _deliver(self, record: FlowRecord) -> None:
        if self._retain:
            self._store.append(record)
        for sink in self._sinks:
            sink(record)
        for sink, max_batch, buffer in self._batch_sinks:
            buffer.append(record)
            if len(buffer) >= max_batch:
                batch, buffer[:] = list(buffer), []
                sink(batch)

    def _track_sequence(self, source: int, header: V5Header) -> None:
        expected = self._expected_seq.get(source)
        if expected is not None:
            if header.flow_sequence > expected:
                lost = header.flow_sequence - expected
                self.stats.lost_flows += lost
                self._m_lost_flows.inc(lost)
                log.warning(
                    "sequence gap: flows lost in transport",
                    extra={"source": source, "lost": lost},
                )
            elif header.flow_sequence < expected:
                self.stats.sequence_resets += 1
                self._m_sequence_resets.inc()
                log.info(
                    "sequence regression: exporter restart",
                    extra={"source": source},
                )
        self._expected_seq[source] = header.flow_sequence + header.count


@dataclass
class PortMux:
    """Map exporter UDP ports to peer-AS identities (testbed Section 6.2).

    Each Dagflow instance sends NetFlow to a distinct destination port; the
    Enhanced InFilter software uses the port to attribute incoming records
    to the emulating peer AS.  ``demux`` rewrites ``input_if`` on the
    records to the mapped peer-AS index so downstream analysis is uniform
    whether records arrived via the mux or a real ifIndex.
    """

    port_to_peer: Dict[int, int] = field(default_factory=dict)

    def bind(self, port: int, peer_as_index: int) -> None:
        """Associate a UDP destination port with a peer-AS index."""
        existing = self.port_to_peer.get(port)
        if existing is not None and existing != peer_as_index:
            raise NetFlowError(
                f"port {port} already bound to peer AS {existing}"
            )
        self.port_to_peer[port] = peer_as_index

    def demux(self, record: FlowRecord, port: int) -> FlowRecord:
        """Stamp the record with the peer AS its arrival port maps to."""
        try:
            peer = self.port_to_peer[port]
        except KeyError:
            raise NetFlowError(f"no peer AS bound to port {port}") from None
        return replace(record, key=replace(record.key, input_if=peer))

    def peers(self) -> Tuple[int, ...]:
        """All bound peer-AS indices, sorted."""
        return tuple(sorted(set(self.port_to_peer.values())))
