"""The flow director: shard-affine datagram steering without decoding.

The front end of the cluster receives real NetFlow v5 datagrams and must
hand every record to the worker that owns its source block — the same
splitmix64 source-block assignment the in-process engine uses
(:class:`repro.engine.ShardRouter`), which is what makes the cluster
exact: every flow that can contribute to, or be affected by, one EIA
absorption lands on one worker.

The director never decodes a record.  A v5 record's source address is
the first four bytes of its fixed 48-byte wire slice, so routing is a
byte-slice, an integer mix, and a table append; per-shard output
datagrams are re-framed with a synthetic header carrying a **per-shard
flow sequence** so each worker's collector sees a gapless stream and
transport loss stays observable end to end.

For supervised restart the director keeps an append-only log of every
routed record slice per shard.  ``pause(shard)`` parks a crashed shard
(slices keep accumulating in the log, nothing is sent), and
``replay(shard, cursor)`` re-frames and re-sends everything from the
worker's checkpoint cursor onward — the worker's fresh collector
baselines on the first datagram it sees, so the resumed stream is
seamless.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.engine import ShardRouter
from repro.netflow.v5 import (
    HEADER_LEN,
    HEADER_STRUCT,
    MAX_RECORDS_PER_DATAGRAM,
    NETFLOW_V5_VERSION,
    RECORD_LEN,
)
from repro.obs import MetricsRegistry, get_logger, get_registry
from repro.util.errors import ClusterError

__all__ = ["DirectorStats", "FlowDirector"]

log = get_logger(__name__)

#: ``sendto``-shaped callable the supervisor wires to its UDP transport.
SendFn = Callable[[bytes, Tuple[str, int]], None]


@dataclass(frozen=True)
class DirectorStats:
    """What the director received, steered, and refused."""

    datagrams: int
    datagrams_invalid: int
    records_routed: int
    records_replayed: int
    per_shard_routed: Tuple[int, ...]


class FlowDirector:
    """Steers raw v5 record slices to their owning shard worker."""

    def __init__(
        self,
        router: ShardRouter,
        *,
        send: SendFn,
        registry: Optional[MetricsRegistry] = None,
        keep_log: bool = True,
    ) -> None:
        self.router = router
        self._send = send
        self._keep_log = keep_log
        shards = router.shards
        self._targets: List[Optional[Tuple[str, int]]] = [None] * shards
        #: Records routed to each shard so far == that shard's next
        #: outgoing flow sequence number == its replay-log length.
        self._routed: List[int] = [0] * shards
        self._log: List[List[bytes]] = [[] for _ in range(shards)]
        self._paused: List[bool] = [False] * shards
        self._datagrams = 0
        self._invalid = 0
        self._replayed = 0
        registry = registry if registry is not None else get_registry()
        self._m_datagrams = registry.counter(
            "infilter_cluster_datagrams_total",
            "Datagrams at the cluster front, by routing outcome.",
            ("outcome",),
        )
        self._m_routed = registry.counter(
            "infilter_cluster_records_routed_total",
            "Records steered to each shard worker by the flow director.",
            ("worker",),
        )
        self._m_replayed = registry.counter(
            "infilter_cluster_records_replayed_total",
            "Records re-sent to a restarted worker from the replay log.",
            ("worker",),
        )

    # -- accounting ----------------------------------------------------------

    def stats(self) -> DirectorStats:
        return DirectorStats(
            datagrams=self._datagrams,
            datagrams_invalid=self._invalid,
            records_routed=sum(self._routed),
            records_replayed=self._replayed,
            per_shard_routed=tuple(self._routed),
        )

    def routed_to(self, shard: int) -> int:
        """Records routed to ``shard`` so far (its stream cursor)."""
        return self._routed[shard]

    # -- wiring --------------------------------------------------------------

    def set_target(self, shard: int, address: Tuple[str, int]) -> None:
        """Point ``shard``'s output at a worker's ingest socket."""
        self._targets[shard] = address

    def pause(self, shard: int) -> None:
        """Park a shard: keep logging its records, send nothing."""
        self._paused[shard] = True

    def resume(self, shard: int) -> None:
        """Unpark a shard (call after :meth:`replay` has caught it up)."""
        self._paused[shard] = False

    # -- the data path -------------------------------------------------------

    def route_datagram(self, data: bytes) -> int:
        """Steer one front datagram; returns the records routed.

        Only NetFlow v5 is steered — the director cannot slice what it
        cannot frame, so v1 and malformed datagrams count as invalid and
        are dropped here rather than poisoning a worker's stream.
        """
        self._datagrams += 1
        if len(data) < HEADER_LEN or data[0:2] != b"\x00\x05":
            self._invalid += 1
            self._m_datagrams.labels(outcome="invalid").inc()
            return 0
        count = int.from_bytes(data[2:4], "big")
        if len(data) != HEADER_LEN + count * RECORD_LEN or count == 0:
            self._invalid += 1
            self._m_datagrams.labels(outcome="invalid").inc()
            return 0
        shards = self.router.shards
        buckets: List[List[bytes]] = [[] for _ in range(shards)]
        offset = HEADER_LEN
        for _ in range(count):
            record = data[offset:offset + RECORD_LEN]
            offset += RECORD_LEN
            src_addr = int.from_bytes(record[0:4], "big")
            buckets[self.router.shard_for_address(src_addr)].append(record)
        for shard, slices in enumerate(buckets):
            if not slices:
                continue
            if self._keep_log:
                self._log[shard].extend(slices)
            if not self._paused[shard]:
                self._emit(shard, slices, self._routed[shard])
            self._routed[shard] += len(slices)
            self._m_routed.labels(worker=str(shard)).inc(len(slices))
        self._m_datagrams.labels(outcome="routed").inc()
        return count

    def replay(self, shard: int, from_cursor: int) -> int:
        """Re-send ``shard``'s log from ``from_cursor``; returns the count.

        Called with the restarted worker's checkpoint cursor while the
        shard is paused: everything the previous incarnation had not yet
        checkpointed — plus whatever arrived during the restart — goes
        out again, framed with sequence numbers continuing from the
        cursor so the fresh collector sees one gapless stream.
        """
        if not self._keep_log:
            return 0
        backlog = self._log[shard][from_cursor:]
        if from_cursor + len(backlog) != self._routed[shard]:
            raise ClusterError(
                f"replay log for shard {shard} is inconsistent:"
                f" cursor {from_cursor} + backlog {len(backlog)}"
                f" != routed {self._routed[shard]}"
            )
        if backlog:
            self._emit(shard, backlog, from_cursor)
        self._replayed += len(backlog)
        self._m_replayed.labels(worker=str(shard)).inc(len(backlog))
        return len(backlog)

    def _emit(self, shard: int, slices: List[bytes], sequence: int) -> None:
        target = self._targets[shard]
        if target is None:
            raise ClusterError(f"shard {shard} has no worker target")
        for start in range(0, len(slices), MAX_RECORDS_PER_DATAGRAM):
            chunk = slices[start:start + MAX_RECORDS_PER_DATAGRAM]
            # A synthetic header: record timestamps live entirely inside
            # the 48-byte record slices, so zeroed header clocks decode
            # identically; the per-shard sequence keeps loss observable.
            header = HEADER_STRUCT.pack(
                NETFLOW_V5_VERSION, len(chunk), 0, 0, 0,
                sequence + start, 0, 0, 0,
            )
            self._send(header + b"".join(chunk), target)
