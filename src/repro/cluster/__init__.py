"""The multi-process serving cluster: shard-affine workers at scale.

E14 showed the single-asyncio-loop daemon tops out around ~53k
records/s; carrier-scale ingress filtering needs throughput that grows
with cores.  This package runs N shared-nothing worker processes — each
owning one shard of the splitmix64 source-block space, its own
EIA/NNS/detector state, its own batch-boundary v2 checkpoint, and its
own ingest loop — behind a flow director that steers raw NetFlow v5
record slices to the owning worker without decoding them.

The composition preserves the PR 2 serial-equivalence guarantee end to
end: a cluster run over a fixed input produces an alert stream
equivalent (canonical order and idents) to one serial ``process_all``,
including across a supervised kill-and-restart of a worker from its own
checkpoint.  See ``docs/operations.md`` for the runbook and the scan
locality condition the guarantee rests on.
"""

from __future__ import annotations

from repro.cluster.config import ClusterConfig
from repro.cluster.director import DirectorStats, FlowDirector
from repro.cluster.federation import canonical_alerts, federate, fetch_json
from repro.cluster.supervisor import (
    ClusterReport,
    ClusterSupervisor,
    seed_cluster_state,
)
from repro.cluster.worker import WorkerSpec, spawn_worker, worker_main

__all__ = [
    "ClusterConfig",
    "ClusterReport",
    "ClusterSupervisor",
    "DirectorStats",
    "FlowDirector",
    "WorkerSpec",
    "canonical_alerts",
    "federate",
    "fetch_json",
    "seed_cluster_state",
    "spawn_worker",
    "worker_main",
]
