"""The cluster supervisor: N shard workers, one front, one view.

:class:`ClusterSupervisor` owns the whole multi-process deployment:

* it spawns one :mod:`repro.cluster.worker` process per shard, each
  restored from its own v2 checkpoint under the cluster state dir;
* it binds the front UDP socket and steers every incoming NetFlow v5
  datagram through the :class:`~repro.cluster.director.FlowDirector`,
  so each record reaches the worker that owns its source block;
* it federates the workers' ``/stats.json`` snapshots (plus its own
  registry) into one ``worker``-labelled registry served from a single
  observability endpoint;
* it performs **supervised restart**: when a worker dies uncleanly the
  shard is paused, a fresh process is spawned from that worker's own
  checkpoint, the routed stream is replayed from the checkpoint cursor,
  and the shard resumes — the restarted worker converges to the exact
  state a crash-free run would have reached;
* on SIGTERM (or :meth:`request_drain`) it stops the front, waits for
  every worker to consume what was routed to it, drains each worker
  gracefully, and reconciles record fate end to end in the
  :class:`ClusterReport`.

Every worker is seeded from the *same* initial detector
(:func:`seed_cluster_state`): shard-affine routing guarantees their
EIA/scan state evolves on disjoint source blocks, so the union of their
alert streams is equivalent to one serial ``process_all`` over the same
input (see ``docs/operations.md`` for the scan-locality boundary of
that guarantee).
"""

from __future__ import annotations

import signal
import socket
from dataclasses import dataclass, field
from multiprocessing.connection import Connection
from multiprocessing.process import BaseProcess
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import asyncio

from repro.cluster.config import ClusterConfig
from repro.cluster.director import FlowDirector
from repro.cluster.federation import (
    DIRECTOR_LABEL,
    canonical_alerts,
    federate,
    fetch_json,
)
from repro.cluster.worker import WorkerSpec, spawn_worker
from repro.core.alerts import IdmefAlert
from repro.core.persistence import (
    load_cluster_manifest,
    save_cluster_manifest,
    save_detector,
    worker_checkpoint_path,
)
from repro.core.pipeline import EnhancedInFilter
from repro.engine import ShardRouter
from repro.obs import (
    MetricsRegistry,
    get_logger,
    get_registry,
    load_snapshot,
)
from repro.serve.daemon import ServeReport
from repro.serve.http import ObservabilityEndpoint
from repro.util.errors import ClusterError, ConfigError

__all__ = ["ClusterReport", "ClusterSupervisor", "seed_cluster_state"]

log = get_logger(__name__)

#: Drain/consumption poll cadence, in seconds.
_POLL_S = 0.05
#: How long a (re)spawned worker may take to come up, in seconds.
_SPAWN_TIMEOUT_S = 60.0


def seed_cluster_state(
    detector: EnhancedInFilter,
    state_dir: str,
    *,
    workers: int,
) -> None:
    """Write a fresh cluster state dir: N worker checkpoints + manifest.

    Every worker starts from the same trained detector; shard-affine
    routing keeps their live state on disjoint source blocks from then
    on.  Seed from a detector that has not served traffic yet — a
    checkpoint carrying alert history would replicate that history into
    every worker.
    """
    Path(state_dir).mkdir(parents=True, exist_ok=True)
    for worker in range(workers):
        save_detector(
            detector,
            worker_checkpoint_path(state_dir, worker, workers),
            cursor=0,
        )
    save_cluster_manifest(
        state_dir,
        workers=workers,
        granularity=detector.config.eia.granularity,
    )


@dataclass(frozen=True)
class ClusterReport:
    """What one cluster run received, committed, and sacrificed."""

    workers: int
    restarts: int
    datagrams: int
    datagrams_invalid: int
    records_routed: int
    records_replayed: int
    records_collected: int
    records_enqueued: int
    records_shed: int
    #: Distinct records committed across all workers (sum of cursors).
    records_committed: int
    #: routed − committed − shed: transport loss plus anything a worker
    #: that died without reporting took with it.
    records_unaccounted: int
    batches: int
    checkpoints: int
    lost_flows: int
    alerts: int
    worker_cursors: Tuple[int, ...]

    def describe(self) -> str:
        """One operator-facing summary line."""
        return (
            f"cluster: {self.records_committed} committed across"
            f" {self.workers} workers ({self.restarts} restarts);"
            f" {self.records_routed} routed, {self.records_replayed}"
            f" replayed, {self.records_shed} shed,"
            f" {self.records_unaccounted} unaccounted;"
            f" {self.checkpoints} checkpoints, {self.alerts} alerts"
        )


@dataclass
class _WorkerHandle:
    """Supervisor-side view of one worker incarnation."""

    shard: int
    spec: WorkerSpec
    process: BaseProcess
    conn: Connection
    ready: asyncio.Event
    done: asyncio.Event
    state: str = "starting"
    udp: Optional[Tuple[str, int]] = None
    http: Optional[Tuple[str, int]] = None
    #: Checkpoint cursor the live incarnation restored from.
    cursor: int = 0
    #: Most recent cursor observed (handshake, health poll, or report).
    last_cursor: int = 0
    report: Optional[ServeReport] = None
    alerts: List[IdmefAlert] = field(default_factory=list)
    error: Optional[str] = None
    restarts: int = 0
    pipe_fd: Optional[int] = None
    sentinel_fd: Optional[int] = None


class _FrontProtocol(asyncio.DatagramProtocol):
    """The front UDP endpoint: every datagram goes to the director."""

    def __init__(self, supervisor: "ClusterSupervisor") -> None:
        self._supervisor = supervisor

    def datagram_received(self, data: bytes, addr: Tuple[str, int]) -> None:
        self._supervisor._on_datagram(data)

    def error_received(self, exc: Exception) -> None:
        # ICMP unreachable from a worker that just died; the replay
        # path re-sends anything it had not consumed.
        pass


class ClusterSupervisor:
    """Runs the shard-affine worker fleet behind one flow director."""

    def __init__(
        self,
        config: ClusterConfig,
        *,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.config = config
        self.registry = registry if registry is not None else get_registry()
        manifest = load_cluster_manifest(config.state_dir)
        if manifest is None:
            raise ConfigError(
                f"state dir {config.state_dir!r} has no cluster manifest;"
                " seed it with seed_cluster_state() (the CLI does this"
                " when given a training plan or --load-state)"
            )
        if manifest["workers"] != config.workers:
            raise ConfigError(
                "checkpoint composition mismatch: state dir"
                f" {config.state_dir!r} holds checkpoints for"
                f" {manifest['workers']} workers but this run requested"
                f" --workers {config.workers}; rerun with --workers"
                f" {manifest['workers']} or re-seed the state dir"
            )
        for worker in range(config.workers):
            path = worker_checkpoint_path(
                config.state_dir, worker, config.workers
            )
            if not path.exists():
                raise ConfigError(
                    f"state dir {config.state_dir!r} is missing the"
                    f" checkpoint for worker {worker} ({path.name})"
                )
        self.router = ShardRouter(config.workers, manifest["granularity"])
        self.director = FlowDirector(
            self.router,
            send=self._send_front,
            registry=self.registry,
            keep_log=config.replay_log,
        )
        self.http = (
            ObservabilityEndpoint(
                health=self.health,
                registry=self.registry,
                registry_provider=self.federated_registry,
            )
            if config.http_port is not None
            else None
        )
        #: Bound front UDP address, available once serving.
        self.address: Optional[Tuple[str, int]] = None
        #: Bound federated HTTP address, when enabled.
        self.http_address: Optional[Tuple[str, int]] = None
        self._handles: List[_WorkerHandle] = []
        self._snapshots: Dict[str, MetricsRegistry] = {}
        self._front_transport: Optional[asyncio.DatagramTransport] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._started = asyncio.Event()
        self._drain_requested = asyncio.Event()
        self._draining = False
        self._fatal: Optional[BaseException] = None
        self._restart_tasks: List["asyncio.Task[None]"] = []
        self._last_activity = 0.0
        self._state = "created"
        self._m_workers = self.registry.gauge(
            "infilter_cluster_workers",
            "Configured shard worker count of the serving cluster.",
        )
        self._m_live = self.registry.gauge(
            "infilter_cluster_workers_live",
            "Worker processes currently alive.",
        )
        self._m_restarts = self.registry.counter(
            "infilter_cluster_restarts_total",
            "Supervised restarts of crashed workers, per shard.",
            ("worker",),
        )
        self._m_scrapes = self.registry.counter(
            "infilter_cluster_federation_scrapes_total",
            "Federation polls of worker stats endpoints, by outcome.",
            ("worker", "outcome"),
        )
        self._m_workers.set(config.workers)

    # -- observability -------------------------------------------------------

    def health(self) -> Dict[str, object]:
        """The federated ``/healthz`` document."""
        stats = self.director.stats()
        return {
            "state": self._state,
            "workers": self.config.workers,
            "workers_live": sum(
                1 for handle in self._handles if handle.state == "serving"
            ),
            "restarts": sum(handle.restarts for handle in self._handles),
            "datagrams": stats.datagrams,
            "records_routed": stats.records_routed,
            "records_replayed": stats.records_replayed,
            "worker_cursors": [
                handle.last_cursor for handle in self._handles
            ],
        }

    def worker_pid(self, shard: int) -> Optional[int]:
        """PID of the current worker process for ``shard``, if spawned."""
        for handle in self._handles:
            if handle.shard == shard:
                return handle.process.pid
        return None

    def federated_registry(self) -> MetricsRegistry:
        """The cluster view: every source under its ``worker`` label."""
        sources: Dict[str, MetricsRegistry] = {DIRECTOR_LABEL: self.registry}
        sources.update(self._snapshots)
        return federate(sources)

    def merged_alerts(self) -> List[IdmefAlert]:
        """All workers' alerts, canonically ordered and renumbered."""
        combined: List[IdmefAlert] = []
        for handle in self._handles:
            combined.extend(handle.alerts)
        return canonical_alerts(combined)

    def report(self) -> ClusterReport:
        """The run so far, as one immutable summary."""
        stats = self.director.stats()
        reports = [
            handle.report
            for handle in self._handles
            if handle.report is not None
        ]
        committed = sum(handle.last_cursor for handle in self._handles)
        shed = sum(report.records_shed for report in reports)
        return ClusterReport(
            workers=self.config.workers,
            restarts=sum(handle.restarts for handle in self._handles),
            datagrams=stats.datagrams,
            datagrams_invalid=stats.datagrams_invalid,
            records_routed=stats.records_routed,
            records_replayed=stats.records_replayed,
            records_collected=sum(r.records_collected for r in reports),
            records_enqueued=sum(r.records_enqueued for r in reports),
            records_shed=shed,
            records_committed=committed,
            records_unaccounted=stats.records_routed - committed - shed,
            batches=sum(r.batches for r in reports),
            checkpoints=sum(r.checkpoints for r in reports),
            lost_flows=sum(r.lost_flows for r in reports),
            alerts=len(self.merged_alerts()),
            worker_cursors=tuple(
                handle.last_cursor for handle in self._handles
            ),
        )

    # -- control -------------------------------------------------------------

    async def wait_started(self) -> None:
        """Block until the front endpoint is bound and serving."""
        await self._started.wait()

    def request_drain(self) -> None:
        """The SIGTERM path: stop the front, drain every worker, exit."""
        if self._draining:
            return
        self._draining = True
        self._state = "draining"
        log.info("cluster drain requested")
        if self._front_transport is not None:
            self._front_transport.close()
            self._front_transport = None
        self._drain_requested.set()

    # -- the data path -------------------------------------------------------

    def _send_front(self, data: bytes, address: Tuple[str, int]) -> None:
        if self._front_transport is None:
            raise ClusterError("cluster front transport is not bound")
        self._front_transport.sendto(data, address)

    def _on_datagram(self, data: bytes) -> None:
        if self._draining:
            return
        if self._loop is not None:
            self._last_activity = self._loop.time()
        try:
            self.director.route_datagram(data)
        except ClusterError as error:
            self._fatal = error
            self.request_drain()
            return
        limit = self.config.max_records
        if (
            limit is not None
            and self.director.stats().records_routed >= limit
        ):
            self.request_drain()

    # -- worker lifecycle ----------------------------------------------------

    def _spec_for(self, shard: int) -> WorkerSpec:
        checkpoint = worker_checkpoint_path(
            self.config.state_dir, shard, self.config.workers
        )
        return WorkerSpec(
            worker=shard,
            workers=self.config.workers,
            checkpoint_path=str(checkpoint),
            host=self.config.host,
            queue_capacity=self.config.queue_capacity,
            shed_policy=self.config.shed_policy,
            batch_size=self.config.batch_size,
            batch_linger_s=self.config.batch_linger_s,
            checkpoint_every=self.config.checkpoint_every,
            fastpath=self.config.fastpath,
            recv_buffer_bytes=self.config.recv_buffer_bytes,
        )

    def _start_worker(self, shard: int) -> _WorkerHandle:
        spec = self._spec_for(shard)
        process, conn = spawn_worker(spec)
        handle = _WorkerHandle(
            shard=shard,
            spec=spec,
            process=process,
            conn=conn,
            ready=asyncio.Event(),
            done=asyncio.Event(),
        )
        self._watch(handle)
        return handle

    def _watch(self, handle: _WorkerHandle) -> None:
        assert self._loop is not None
        handle.pipe_fd = handle.conn.fileno()
        handle.sentinel_fd = handle.process.sentinel
        self._loop.add_reader(handle.pipe_fd, self._on_pipe, handle)
        self._loop.add_reader(handle.sentinel_fd, self._on_exit, handle)

    def _unwatch_pipe(self, handle: _WorkerHandle) -> None:
        if self._loop is not None and handle.pipe_fd is not None:
            self._loop.remove_reader(handle.pipe_fd)
        handle.pipe_fd = None
        try:
            handle.conn.close()
        except OSError:
            pass

    def _on_pipe(self, handle: _WorkerHandle) -> None:
        try:
            message = handle.conn.recv()
        except (EOFError, OSError):
            self._unwatch_pipe(handle)
            return
        kind, payload = message
        if kind == "ready":
            handle.udp = (str(payload["udp"][0]), int(payload["udp"][1]))
            handle.http = (str(payload["http"][0]), int(payload["http"][1]))
            handle.cursor = int(payload["cursor"])
            handle.last_cursor = max(handle.last_cursor, handle.cursor)
            handle.state = "serving"
            handle.ready.set()
        elif kind == "done":
            report = payload["report"]
            assert isinstance(report, ServeReport)
            handle.report = report
            handle.alerts = list(payload["alerts"])
            handle.last_cursor = report.cursor
            handle.state = "done"
            handle.done.set()
        elif kind == "failed":
            handle.error = str(payload["error"])
            handle.state = "failed"
            handle.ready.set()
            handle.done.set()

    def _on_exit(self, handle: _WorkerHandle) -> None:
        if self._loop is not None and handle.sentinel_fd is not None:
            self._loop.remove_reader(handle.sentinel_fd)
        handle.sentinel_fd = None
        self._m_live.set(
            sum(
                1
                for peer in self._handles
                if peer.process.is_alive()
            )
        )
        if handle.state in ("done", "failed") or self._draining:
            return
        handle.state = "dead"
        log.warning(
            "worker died unexpectedly",
            extra={"worker": handle.shard},
        )
        assert self._loop is not None
        self._restart_tasks.append(
            self._loop.create_task(self._restart(handle))
        )

    async def _restart(self, handle: _WorkerHandle) -> None:
        shard = handle.shard
        self.director.pause(shard)
        self._unwatch_pipe(handle)
        handle.process.join()
        handle.restarts += 1
        self._m_restarts.labels(worker=str(shard)).inc()
        if handle.restarts > self.config.restart_limit:
            self._fatal = ClusterError(
                f"worker {shard} exceeded the restart limit"
                f" ({self.config.restart_limit}); draining the cluster"
            )
            self.request_drain()
            return
        process, conn = spawn_worker(handle.spec)
        handle.process = process
        handle.conn = conn
        handle.ready = asyncio.Event()
        handle.done = asyncio.Event()
        handle.state = "starting"
        handle.report = None
        self._watch(handle)
        try:
            await asyncio.wait_for(handle.ready.wait(), _SPAWN_TIMEOUT_S)
        except asyncio.TimeoutError:
            self._fatal = ClusterError(
                f"restarted worker {shard} did not come up within"
                f" {_SPAWN_TIMEOUT_S}s"
            )
            self.request_drain()
            return
        if handle.state == "failed":
            self._fatal = ClusterError(
                f"restarted worker {shard} failed: {handle.error}"
            )
            self.request_drain()
            return
        assert handle.udp is not None
        self.director.set_target(shard, handle.udp)
        replayed = self.director.replay(shard, handle.cursor)
        self.director.resume(shard)
        self._m_live.set(
            sum(
                1
                for peer in self._handles
                if peer.process.is_alive()
            )
        )
        log.info(
            "worker restarted from its checkpoint",
            extra={
                "worker": shard,
                "cursor": handle.cursor,
                "replayed": replayed,
            },
        )

    # -- federation ----------------------------------------------------------

    async def _scrape_workers(self) -> None:
        for handle in self._handles:
            if handle.state != "serving" or handle.http is None:
                continue
            label = str(handle.shard)
            try:
                document = await fetch_json(
                    handle.http[0], handle.http[1], "/stats.json"
                )
            except ClusterError:
                self._m_scrapes.labels(worker=label, outcome="error").inc()
                continue
            try:
                self._snapshots[label] = load_snapshot(document)
            except Exception:  # noqa: BLE001 - a torn scrape must not kill us
                self._m_scrapes.labels(worker=label, outcome="error").inc()
                continue
            self._m_scrapes.labels(worker=label, outcome="ok").inc()

    async def _federation_poll(self) -> None:
        while True:
            await asyncio.sleep(self.config.poll_interval_s)
            await self._scrape_workers()

    async def _idle_watchdog(self) -> None:
        idle_limit = self.config.idle_exit_s
        assert idle_limit is not None
        assert self._loop is not None
        while True:
            await asyncio.sleep(_POLL_S)
            if self._loop.time() - self._last_activity >= idle_limit:
                log.info("cluster idle limit reached; draining")
                self.request_drain()
                return

    # -- the run -------------------------------------------------------------

    async def run(self) -> ClusterReport:
        """Serve until drained; returns the cluster run report."""
        if self._state != "created":
            raise ClusterError(
                f"supervisor cannot run from state {self._state!r}"
            )
        loop = asyncio.get_running_loop()
        self._loop = loop
        self._last_activity = loop.time()
        self._state = "starting"
        self._handles = [
            self._start_worker(shard)
            for shard in range(self.config.workers)
        ]
        try:
            await asyncio.wait_for(
                asyncio.gather(
                    *(handle.ready.wait() for handle in self._handles)
                ),
                _SPAWN_TIMEOUT_S,
            )
        except asyncio.TimeoutError:
            for handle in self._handles:
                self._terminate(handle)
            raise ClusterError(
                f"workers did not come up within {_SPAWN_TIMEOUT_S}s"
            ) from None
        failed = [h for h in self._handles if h.state == "failed"]
        if failed:
            for handle in self._handles:
                self._terminate(handle)
            raise ClusterError(
                f"worker {failed[0].shard} failed to start:"
                f" {failed[0].error}"
            )
        self._m_live.set(self.config.workers)
        transport, _protocol = await loop.create_datagram_endpoint(
            lambda: _FrontProtocol(self),
            local_addr=(self.config.host, self.config.port),
        )
        self._front_transport = transport
        if self.config.recv_buffer_bytes is not None:
            sock = transport.get_extra_info("socket")
            if sock is not None:
                sock.setsockopt(
                    socket.SOL_SOCKET,
                    socket.SO_RCVBUF,
                    self.config.recv_buffer_bytes,
                )
        bound = transport.get_extra_info("sockname")
        self.address = (str(bound[0]), int(bound[1]))
        for handle in self._handles:
            assert handle.udp is not None
            self.director.set_target(handle.shard, handle.udp)
        if self.http is not None and self.config.http_port is not None:
            self.http_address = await self.http.start(
                self.config.host, self.config.http_port
            )
        handled_signals = self._install_signal_handlers(loop)
        poller = loop.create_task(self._federation_poll())
        watchdog: Optional["asyncio.Task[None]"] = None
        if self.config.idle_exit_s is not None:
            watchdog = loop.create_task(self._idle_watchdog())
        self._state = "serving"
        self._started.set()
        log.info(
            "cluster serving",
            extra={
                "host": self.address[0],
                "port": self.address[1],
                "workers": self.config.workers,
            },
        )
        try:
            await self._drain_requested.wait()
            self._state = "draining"
            if self._front_transport is not None:
                self._front_transport.close()
                self._front_transport = None
            if watchdog is not None:
                watchdog.cancel()
                watchdog = None
            for task in self._restart_tasks:
                if not task.done():
                    await task
            for handle in self._handles:
                await self._await_consumed(handle)
            await self._scrape_workers()
            poller.cancel()
            for handle in self._handles:
                self._terminate(handle)
            deadline = self.config.drain_timeout_s
            results = await asyncio.gather(
                *(
                    asyncio.wait_for(handle.done.wait(), deadline)
                    for handle in self._handles
                ),
                return_exceptions=True,
            )
            for handle, outcome in zip(self._handles, results):
                if isinstance(outcome, BaseException):
                    log.warning(
                        "worker did not drain in time; killing",
                        extra={"worker": handle.shard},
                    )
                    handle.process.kill()
                handle.process.join()
        finally:
            self._state = "stopped"
            if watchdog is not None:
                watchdog.cancel()
            if not poller.done():
                poller.cancel()
            for signum in handled_signals:
                loop.remove_signal_handler(signum)
            if self._front_transport is not None:
                self._front_transport.close()
                self._front_transport = None
            for handle in self._handles:
                self._unwatch_pipe(handle)
                if self._loop is not None and handle.sentinel_fd is not None:
                    self._loop.remove_reader(handle.sentinel_fd)
                    handle.sentinel_fd = None
            if self.http is not None:
                await self.http.stop()
            self._m_live.set(0)
        if self._fatal is not None:
            raise self._fatal
        report = self.report()
        log.info("cluster drained", extra={"alerts": report.alerts})
        return report

    def _terminate(self, handle: _WorkerHandle) -> None:
        if handle.process.is_alive():
            handle.process.terminate()

    async def _await_consumed(self, handle: _WorkerHandle) -> None:
        """Wait until a worker has eaten everything routed to its shard.

        The condition is record-fate exact: the worker's global cursor
        plus its shed count must reach the director's routed count for
        the shard, with an empty queue.  UDP loss would keep that from
        converging, so the wait is bounded by ``drain_timeout_s`` and a
        timeout surfaces as ``records_unaccounted`` in the report.
        """
        assert self._loop is not None
        deadline = self._loop.time() + self.config.drain_timeout_s
        while self._loop.time() < deadline:
            if handle.state != "serving" or handle.http is None:
                return
            target = self.director.routed_to(handle.shard)
            try:
                health = await fetch_json(
                    handle.http[0], handle.http[1], "/healthz", timeout_s=1.0
                )
            except ClusterError:
                await asyncio.sleep(_POLL_S)
                continue
            cursor = int(health["cursor"])  # type: ignore[arg-type]
            shed = int(health["records_shed"])  # type: ignore[arg-type]
            depth = int(health["queue_depth"])  # type: ignore[arg-type]
            handle.last_cursor = max(handle.last_cursor, cursor)
            # Under either shed policy, cursor + shed converges to the
            # checkpoint base plus everything the collector offered.
            if depth == 0 and cursor + shed >= target:
                return
            await asyncio.sleep(_POLL_S)
        log.warning(
            "drain timeout: worker did not consume its routed stream",
            extra={"worker": handle.shard},
        )

    def _install_signal_handlers(
        self, loop: asyncio.AbstractEventLoop
    ) -> List[signal.Signals]:
        installed: List[signal.Signals] = []
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, self.request_drain)
            except (NotImplementedError, RuntimeError, ValueError):
                continue
            installed.append(signum)
        return installed
