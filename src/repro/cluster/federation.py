"""Federation: merging worker observability into one cluster view.

Each shard worker is a separate process with its own
:class:`~repro.obs.MetricsRegistry`, scraped over its own ephemeral
``/stats.json`` endpoint.  The supervisor presents the whole cluster on
one endpoint by merging those snapshots into a single registry where
**every** metric family — worker families and the supervisor's own —
gains a trailing ``worker`` label (``"0"``, ``"1"``, ... for shard
workers, ``"director"`` for the supervisor).  Labelling every family
uniformly, rather than only names that collide, keeps one metric name
from appearing with two label schemas in the same registry — the exact
conflict the registry is built to refuse.

The alert half of federation is :func:`canonical_alerts`: per-worker
alert streams carry process-local ``infilter-NNNNNNNN`` idents, so
cluster-vs-serial equivalence compares alerts in a canonical order with
canonically renumbered idents.
"""

from __future__ import annotations

import json
from dataclasses import replace
from typing import Dict, Iterable, List, Mapping, Tuple

import asyncio

from repro.core.alerts import IdmefAlert
from repro.obs import Histogram, MetricsRegistry
from repro.util.errors import ClusterError

__all__ = ["DIRECTOR_LABEL", "federate", "canonical_alerts", "fetch_json"]

#: The ``worker`` label value carried by the supervisor's own metrics.
DIRECTOR_LABEL = "director"


def federate(sources: Mapping[str, MetricsRegistry]) -> MetricsRegistry:
    """Merge per-source registries into one ``worker``-labelled registry.

    ``sources`` maps the ``worker`` label value to that source's
    registry (typically ``{"director": <supervisor's own>, "0": ...,
    "1": ...}``).  Values are copied, not aliased; scraping the merge
    never mutates a source.
    """
    merged = MetricsRegistry()
    for worker in sorted(sources):
        registry = sources[worker]
        for family in registry.collect():
            # A source family that already carries a ``worker`` label
            # (the director's per-shard counters) is relabelled to
            # ``exported_worker``, the Prometheus federation convention,
            # so the merged schema stays one-label-name-one-meaning.
            labelnames = tuple(
                "exported_worker" if name == "worker" else name
                for name in family.labelnames
            ) + ("worker",)
            if isinstance(family, Histogram):
                target = merged.histogram(
                    family.name, family.help, labelnames, family.buckets
                )
                for values, child in family.samples():
                    leaf = target.labels(
                        **dict(zip(labelnames, values + (worker,)))
                    )
                    assert isinstance(leaf, Histogram)
                    leaf.bucket_counts = list(child.bucket_counts)
                    leaf.sum = child.sum
                    leaf.count = child.count
            else:
                registrar = (
                    merged.counter
                    if family.kind == "counter"
                    else merged.gauge
                )
                target = registrar(family.name, family.help, labelnames)
                for values, child in family.samples():
                    leaf = target.labels(
                        **dict(zip(labelnames, values + (worker,)))
                    )
                    leaf.value = child.value  # type: ignore[attr-defined]
    return merged


def _alert_key(alert: IdmefAlert) -> Tuple[object, ...]:
    return (
        alert.detect_time_ms,
        alert.source_address,
        alert.target_address,
        alert.target_port,
        alert.protocol,
        alert.classification,
        alert.stage,
        alert.observed_peer,
        alert.expected_peer if alert.expected_peer is not None else -1,
        alert.severity,
        alert.attribution,
    )


def canonical_alerts(alerts: Iterable[IdmefAlert]) -> List[IdmefAlert]:
    """Alerts in canonical order with canonically renumbered idents.

    Two runs that flag the same flows for the same reasons — regardless
    of worker interleaving or process-local alert counters — canonicalise
    to equal lists; this is the comparator behind the cluster's
    serial-equivalence guarantee.
    """
    ordered = sorted(alerts, key=_alert_key)
    return [
        replace(alert, ident=f"infilter-{index:08d}")
        for index, alert in enumerate(ordered)
    ]


async def fetch_json(
    host: str, port: int, path: str, *, timeout_s: float = 5.0
) -> Dict[str, object]:
    """GET a JSON document from a worker observability endpoint."""
    try:
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(host, port), timeout_s
        )
    except (OSError, asyncio.TimeoutError) as error:
        raise ClusterError(
            f"could not reach http://{host}:{port}{path}: {error}"
        ) from error
    try:
        request = (
            f"GET {path} HTTP/1.1\r\nHost: {host}\r\n"
            "Connection: close\r\n\r\n"
        )
        writer.write(request.encode("ascii"))
        await writer.drain()
        raw = await asyncio.wait_for(reader.read(), timeout_s)
    except (OSError, asyncio.TimeoutError) as error:
        raise ClusterError(
            f"scrape of http://{host}:{port}{path} failed: {error}"
        ) from error
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    head, _, body = raw.partition(b"\r\n\r\n")
    status = head.split(b"\r\n", 1)[0].split()
    if len(status) < 2 or status[1] != b"200":
        raise ClusterError(
            f"scrape of http://{host}:{port}{path} answered"
            f" {head.splitlines()[0]!r}"
        )
    try:
        document = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ClusterError(
            f"scrape of http://{host}:{port}{path} returned"
            f" malformed JSON: {error}"
        ) from error
    if not isinstance(document, dict):
        raise ClusterError(
            f"scrape of http://{host}:{port}{path} returned a non-object"
        )
    return document
