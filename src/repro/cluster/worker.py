"""The shard worker: one serving daemon in its own spawned process.

A worker is deliberately nothing new — it is the single-process
:class:`~repro.serve.daemon.ServeDaemon` (PR 6), loaded from the
worker's own v2 checkpoint and bound to ephemeral localhost sockets,
wrapped in a child-process entry point.  Start and supervised restart
are therefore the *same* code path: every incarnation restores its
checkpoint, reports the restored cursor through the handshake pipe, and
serves until drained; the supervisor replays the routed stream from
that cursor when the previous incarnation died uncleanly.

The process is created with the **spawn** start method.  Forking a
parent that is already running an asyncio event loop would hand the
child a thread-local "running loop" marker (and every other piece of
inherited interpreter state) it must not have; spawn gives each worker
the clean interpreter a shared-nothing shard deserves, at the cost of
requiring :class:`WorkerSpec` and :func:`worker_main` to be picklable
top-level objects — which is exactly what they are.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass
from multiprocessing.connection import Connection
from multiprocessing.process import BaseProcess
from typing import Optional, Tuple

import asyncio

from repro.core.persistence import load_checkpoint
from repro.obs import MetricsRegistry
from repro.serve.config import ServeConfig
from repro.serve.daemon import ServeDaemon, ServeReport

__all__ = ["WorkerSpec", "worker_main", "spawn_worker"]


@dataclass(frozen=True)
class WorkerSpec:
    """Everything a spawned worker needs, in picklable form."""

    worker: int
    workers: int
    checkpoint_path: str
    host: str
    queue_capacity: int
    shed_policy: str
    batch_size: int
    batch_linger_s: float
    checkpoint_every: int
    fastpath: bool
    recv_buffer_bytes: Optional[int]


async def _serve(daemon: ServeDaemon, conn: Connection, cursor: int) -> ServeReport:
    loop = asyncio.get_running_loop()
    run = loop.create_task(daemon.run())
    await daemon.wait_started()
    conn.send(
        (
            "ready",
            {
                "udp": daemon.address,
                "http": daemon.http_address,
                "cursor": cursor,
            },
        )
    )
    return await run


def worker_main(spec: WorkerSpec, conn: Connection) -> None:
    """Child-process entry: restore the checkpoint, serve, report.

    Sends ``("ready", {udp, http, cursor})`` once listening,
    ``("done", {report, alerts})`` after the daemon drains, or
    ``("failed", {error})`` if it cannot come up — the supervisor treats
    a failed handshake as fatal rather than restarting into the same
    wall.
    """
    try:
        detector, cursor = load_checkpoint(spec.checkpoint_path)
        cursor_base = cursor if cursor is not None else 0
        config = ServeConfig(
            host=spec.host,
            port=0,
            http_port=0,
            queue_capacity=spec.queue_capacity,
            shed_policy=spec.shed_policy,
            batch_size=spec.batch_size,
            batch_linger_s=spec.batch_linger_s,
            checkpoint_every=spec.checkpoint_every,
            checkpoint_path=spec.checkpoint_path,
            reload_path=spec.checkpoint_path,
            fastpath=spec.fastpath,
            recv_buffer_bytes=spec.recv_buffer_bytes,
        )
        daemon = ServeDaemon(
            detector,
            config,
            registry=MetricsRegistry(),
            cursor_base=cursor_base,
        )
    except Exception as error:  # noqa: BLE001 - forwarded to the supervisor
        conn.send(("failed", {"error": f"{type(error).__name__}: {error}"}))
        conn.close()
        raise
    try:
        report = asyncio.run(_serve(daemon, conn, cursor_base))
        conn.send(
            (
                "done",
                {
                    "report": report,
                    "alerts": list(daemon.detector.alert_sink.alerts),
                },
            )
        )
    finally:
        conn.close()


def spawn_worker(spec: WorkerSpec) -> Tuple[BaseProcess, Connection]:
    """Start one worker process; returns ``(process, handshake pipe)``."""
    ctx = multiprocessing.get_context("spawn")
    parent_conn, child_conn = ctx.Pipe(duplex=False)
    process = ctx.Process(
        target=worker_main,
        args=(spec, child_conn),
        name=f"infilter-worker-{spec.worker}",
        daemon=True,
    )
    process.start()
    child_conn.close()
    return process, parent_conn
