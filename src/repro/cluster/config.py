"""Configuration of the multi-process serving cluster.

One frozen dataclass holds every knob of ``infilter serve --workers N``:
where the flow director listens, how many shard-affine workers to run,
the per-worker serving parameters forwarded into each worker's
:class:`~repro.serve.config.ServeConfig`, the state directory that holds
one v2 checkpoint per worker plus the composition manifest, and the
supervisor's own policies (federation poll cadence, restart budget,
drain timeout).  Validation happens at construction so a supervisor
never starts with a contradictory configuration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.serve.config import SHED_DROP_OLDEST, SHED_POLICIES
from repro.util.errors import ConfigError

__all__ = ["ClusterConfig"]


@dataclass(frozen=True)
class ClusterConfig:
    """Knobs of the shard-affine serving cluster.

    ``workers`` is also the shard count: worker *i* owns shard *i* of
    the engine's splitmix64 source-block router, its own checkpoint
    (``worker-0i-of-0N.json`` under ``state_dir``), and every flow whose
    source block hashes to it.  ``port``/``http_port`` may be 0 to bind
    ephemeral ports; worker sockets are always ephemeral and discovered
    through the worker handshake.
    """

    #: Directory holding the per-worker checkpoints and ``cluster.json``.
    state_dir: str
    host: str = "127.0.0.1"
    #: Front UDP port the flow director listens on (0 = ephemeral).
    port: int = 9995
    #: Federated observability endpoint port (``None`` disables it).
    http_port: Optional[int] = None
    #: Worker (== shard) count.
    workers: int = 2
    #: Per-worker ingest queue bound, in flow records.
    queue_capacity: int = 65_536
    shed_policy: str = SHED_DROP_OLDEST
    #: Records per commit batch inside each worker.
    batch_size: int = 256
    #: How long a worker's partial batch may wait, in seconds.
    batch_linger_s: float = 0.02
    #: Each worker checkpoints every N committed batches.  The default
    #: of 1 (every batch boundary) keeps the restart replay window one
    #: batch deep; raising it trades replay length for checkpoint IO.
    checkpoint_every: int = 1
    #: Drive worker ingest through the vectorized fastpath plane.
    fastpath: bool = True
    #: Drain the cluster once this many records have been routed.
    max_records: Optional[int] = None
    #: Drain after this long with no front traffic, in seconds.
    idle_exit_s: Optional[float] = None
    #: UDP receive buffer request for the front and worker sockets.
    recv_buffer_bytes: Optional[int] = 8 * 1024 * 1024
    #: Federation poll cadence for worker ``/stats.json``, in seconds.
    poll_interval_s: float = 0.5
    #: Supervised restarts allowed per worker before the supervisor
    #: gives up and drains the cluster.
    restart_limit: int = 3
    #: How long a drain waits for each worker to consume its routed
    #: records before terminating it anyway, in seconds.
    drain_timeout_s: float = 10.0
    #: Keep the director's raw record log for exact restart replay.
    #: Disabling trades the kill-and-restart equivalence guarantee for
    #: bounded memory on unbounded streams.
    replay_log: bool = True

    def __post_init__(self) -> None:
        if not self.state_dir:
            raise ConfigError("state_dir must be a non-empty path")
        if not 0 <= self.port <= 65_535:
            raise ConfigError(f"port must be in [0, 65535], got {self.port}")
        if self.http_port is not None and not 0 <= self.http_port <= 65_535:
            raise ConfigError(
                f"http_port must be in [0, 65535], got {self.http_port}"
            )
        if self.workers < 1:
            raise ConfigError(f"workers must be >= 1, got {self.workers}")
        if self.queue_capacity < 1:
            raise ConfigError(
                f"queue_capacity must be >= 1, got {self.queue_capacity}"
            )
        if self.shed_policy not in SHED_POLICIES:
            raise ConfigError(
                f"shed_policy must be one of {'/'.join(SHED_POLICIES)},"
                f" got {self.shed_policy!r}"
            )
        if self.batch_size < 1:
            raise ConfigError(
                f"batch_size must be >= 1, got {self.batch_size}"
            )
        if self.batch_linger_s < 0:
            raise ConfigError(
                f"batch_linger_s must be >= 0, got {self.batch_linger_s}"
            )
        if self.checkpoint_every < 1:
            raise ConfigError(
                f"checkpoint_every must be >= 1, got {self.checkpoint_every}"
            )
        if self.max_records is not None and self.max_records < 1:
            raise ConfigError(
                f"max_records must be >= 1, got {self.max_records}"
            )
        if self.idle_exit_s is not None and self.idle_exit_s <= 0:
            raise ConfigError(
                f"idle_exit_s must be > 0, got {self.idle_exit_s}"
            )
        if self.recv_buffer_bytes is not None and self.recv_buffer_bytes < 1:
            raise ConfigError(
                f"recv_buffer_bytes must be >= 1, got {self.recv_buffer_bytes}"
            )
        if self.poll_interval_s <= 0:
            raise ConfigError(
                f"poll_interval_s must be > 0, got {self.poll_interval_s}"
            )
        if self.restart_limit < 0:
            raise ConfigError(
                f"restart_limit must be >= 0, got {self.restart_limit}"
            )
        if self.drain_timeout_s <= 0:
            raise ConfigError(
                f"drain_timeout_s must be > 0, got {self.drain_timeout_s}"
            )
