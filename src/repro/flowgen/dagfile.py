"""DAG-style packet traces (the [Dagtools] substrate).

The paper's workflow: attack traffic is captured in TCPDUMP format,
converted to DAG format, and Dagflow replays the DAG traces as NetFlow
records.  This module provides that packet-level stage:

* :class:`DagPacket` — one captured packet header (timestamp, 5-tuple,
  length, TCP flags): everything flow accounting needs, nothing more;
* :func:`write_dag` / :func:`read_dag` — a compact binary trace container
  (fixed 28-byte records);
* :func:`packets_from_flows` — expand flow-level events into plausible
  packet sequences (synthesising a "capture" from the trace generator);
* :func:`flows_from_packets` — re-aggregate packets into flow records by
  running them through the real :class:`FlowExporter`, closing the loop:
  a trace expanded to packets and re-aggregated yields the original
  flow-level totals.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from pathlib import Path
from typing import BinaryIO, Iterable, List, Sequence, Union

from repro.flowgen.traces import TraceFlow
from repro.netflow.exporter import ExporterConfig, FlowExporter, Packet
from repro.netflow.records import PROTO_TCP, TCP_ACK, TCP_FIN, TCP_SYN, FlowKey, FlowRecord
from repro.util.errors import NetFlowDecodeError, RecordError
from repro.util.rng import SeededRng

__all__ = [
    "DAG_MAGIC",
    "DagPacket",
    "write_dag",
    "read_dag",
    "packets_from_flows",
    "flows_from_packets",
]

DAG_MAGIC = b"DAG1"
_HEADER = struct.Struct("!4sI")
_PACKET = struct.Struct("!QIIHHHBB")  # ts_us, src, dst, sport, dport, len, proto, flags


@dataclass(frozen=True)
class DagPacket:
    """One captured packet header."""

    timestamp_us: int
    src_addr: int
    dst_addr: int
    src_port: int
    dst_port: int
    length: int
    protocol: int
    tcp_flags: int = 0

    def __post_init__(self) -> None:
        if self.length <= 0:
            raise RecordError("packet length must be positive")
        if self.timestamp_us < 0:
            raise RecordError("timestamp cannot be negative")


def write_dag(
    destination: Union[str, Path, BinaryIO], packets: Sequence[DagPacket]
) -> int:
    """Write packets to a DAG trace file; returns the packet count."""
    payload = b"".join(
        _PACKET.pack(
            p.timestamp_us,
            p.src_addr,
            p.dst_addr,
            p.src_port,
            p.dst_port,
            p.length,
            p.protocol,
            p.tcp_flags,
        )
        for p in packets
    )
    header = _HEADER.pack(DAG_MAGIC, len(packets))
    if isinstance(destination, (str, Path)):
        with open(destination, "wb") as handle:
            handle.write(header)
            handle.write(payload)
    else:
        destination.write(header)
        destination.write(payload)
    return len(packets)


def read_dag(source: Union[str, Path, BinaryIO]) -> List[DagPacket]:
    """Read a DAG trace file back into packets."""
    if isinstance(source, (str, Path)):
        data = Path(source).read_bytes()
    else:
        data = source.read()
    if len(data) < _HEADER.size:
        raise NetFlowDecodeError("DAG trace too short for its header")
    magic, count = _HEADER.unpack_from(data, 0)
    if magic != DAG_MAGIC:
        raise NetFlowDecodeError(f"bad DAG magic {magic!r}")
    expected = _HEADER.size + count * _PACKET.size
    if len(data) < expected:
        raise NetFlowDecodeError(
            f"DAG trace truncated: header claims {count} packets"
        )
    packets: List[DagPacket] = []
    offset = _HEADER.size
    for _ in range(count):
        (ts, src, dst, sport, dport, length, proto, flags) = _PACKET.unpack_from(
            data, offset
        )
        offset += _PACKET.size
        try:
            packets.append(
                DagPacket(
                    timestamp_us=ts,
                    src_addr=src,
                    dst_addr=dst,
                    src_port=sport,
                    dst_port=dport,
                    length=length,
                    protocol=proto,
                    tcp_flags=flags,
                )
            )
        except ValueError as error:
            raise NetFlowDecodeError(
                f"invalid packet at offset {offset}: {error}"
            ) from error
    return packets


def packets_from_flows(
    flows: Iterable[TraceFlow],
    *,
    src_addr_for: "callable",
    dst_addr_for: "callable",
    rng: SeededRng,
) -> List[DagPacket]:
    """Expand flow-level events into packet sequences.

    ``src_addr_for(flow)`` / ``dst_addr_for(flow)`` supply concrete
    addresses (the Dagflow role).  Packets of a flow spread uniformly over
    its duration; sizes split the byte total exactly (so re-aggregation
    conserves both counters); TCP flows get SYN on the first packet, FIN
    on the last, ACK in between.  ``rng`` is reserved for future jitter
    models and keeps the signature stable.
    """
    del rng  # conservation beats realism here; see docstring
    packets: List[DagPacket] = []
    for flow in flows:
        src = src_addr_for(flow)
        dst = dst_addr_for(flow)
        base_size = flow.octets // flow.packets
        remainder = flow.octets - base_size * flow.packets
        step_us = (
            (flow.duration_ms * 1000) // max(flow.packets - 1, 1)
            if flow.packets > 1
            else 0
        )
        for index in range(flow.packets):
            size = base_size + (1 if index < remainder else 0)
            flags = 0
            if flow.protocol == PROTO_TCP and flow.tcp_flags:
                if index == 0:
                    flags = TCP_SYN
                elif index == flow.packets - 1 and flow.tcp_flags & TCP_FIN:
                    flags = TCP_FIN | TCP_ACK
                else:
                    flags = TCP_ACK
            packets.append(
                DagPacket(
                    timestamp_us=(flow.start_ms * 1000) + index * step_us,
                    src_addr=src,
                    dst_addr=dst,
                    src_port=flow.src_port,
                    dst_port=flow.dst_port,
                    length=size,
                    protocol=flow.protocol,
                    tcp_flags=flags,
                )
            )
    packets.sort(key=lambda p: p.timestamp_us)
    return packets


def flows_from_packets(
    packets: Iterable[DagPacket],
    *,
    input_if: int = 0,
    exporter_config: ExporterConfig | None = None,
) -> List[FlowRecord]:
    """Re-aggregate a packet trace into flow records via the exporter."""
    exporter = FlowExporter(exporter_config or ExporterConfig())
    records: List[FlowRecord] = []
    last_ms = 0
    for packet in packets:
        last_ms = packet.timestamp_us // 1000
        records.extend(
            exporter.observe(
                Packet(
                    key=FlowKey(
                        src_addr=packet.src_addr,
                        dst_addr=packet.dst_addr,
                        protocol=packet.protocol,
                        src_port=packet.src_port,
                        dst_port=packet.dst_port,
                        input_if=input_if,
                    ),
                    length=packet.length,
                    timestamp_ms=last_ms,
                    tcp_flags=packet.tcp_flags,
                )
            )
        )
    records.extend(exporter.flush())
    return records
