"""The experiment address plan (Section 6.2, Tables 1–3).

The testbed draws source addresses from the 143 publicly-routable,
allocated unicast /8 blocks (Table 1, IANA as of 2004-10-28).  Each /8 is
split into eight /11 sub-blocks named ``<count><letter>``: ``1a`` is
3.0.0.0/11, ``1b`` is 3.32.0.0/11, …, ``125h`` is 204.224.0.0/11.  The
first 1000 sub-blocks (blocks ``3/8`` through ``204/8``) are used; the
rest are ignored.

Allocations (Table 2): with 10 Dagflow sources and 100 sub-blocks each,
a k% route-change allocation gives each source the first ``100 - k``
blocks of its own range plus ``k`` blocks taken from the *tails* of other
sources' ranges, rotating with the allocation index — which is exactly the
published Table 2 pattern for k=2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.util.errors import AddressError
from repro.util.ip import Prefix

__all__ = [
    "PUBLIC_SLASH8_BLOCKS",
    "SubBlockSpace",
    "Allocation",
    "eia_allocation",
    "route_change_allocations",
]

# Table 1: the 143 publicly-routable allocated unicast /8s (first octets).
PUBLIC_SLASH8_BLOCKS: Tuple[int, ...] = tuple(
    [3, 4, 6, 8, 9]
    + list(range(11, 23))          # 11-22
    + [24, 25, 26, 28, 29, 30]
    + [32, 33, 34, 35, 38, 40, 43]
    + list(range(44, 49))          # 44-48
    + list(range(51, 73))          # 51-72
    + list(range(80, 89))          # 80-88
    + list(range(128, 173))        # 128-172
    + [188, 191, 192, 193, 194, 195, 196, 198, 199]
    + list(range(200, 223))        # 200-222
)

_LETTERS = "abcdefgh"


@dataclass(frozen=True)
class _SubBlock:
    name: str
    prefix: Prefix


class SubBlockSpace:
    """The named /11 sub-block universe of Section 6.2.

    ``usable`` bounds how many sub-blocks are in play (the paper uses the
    first 1000 of 1144).
    """

    def __init__(self, usable: int = 1000) -> None:
        total = len(PUBLIC_SLASH8_BLOCKS) * len(_LETTERS)
        if not 0 < usable <= total:
            raise AddressError(
                f"usable must be in [1, {total}], got {usable}"
            )
        blocks: List[_SubBlock] = []
        for block_index, first_octet in enumerate(PUBLIC_SLASH8_BLOCKS):
            for letter_index, letter in enumerate(_LETTERS):
                network = (first_octet << 24) | (letter_index << 21)
                blocks.append(
                    _SubBlock(
                        name=f"{block_index + 1}{letter}",
                        prefix=Prefix(network, 11),
                    )
                )
        self._all = blocks
        self.usable = usable

    def __len__(self) -> int:
        return self.usable

    @property
    def total_defined(self) -> int:
        return len(self._all)

    def prefix(self, index: int) -> Prefix:
        """Sub-block by usable index (0-based)."""
        self._check(index)
        return self._all[index].prefix

    def name(self, index: int) -> str:
        """The paper's ``1a…125h`` notation for a usable index."""
        self._check(index)
        return self._all[index].name

    def index_of(self, name: str) -> int:
        """Inverse of :meth:`name`; accepts any defined sub-block name."""
        body, letter = name[:-1], name[-1]
        if not body.isdigit() or letter not in _LETTERS:
            raise AddressError(f"malformed sub-block name {name!r}")
        block_index = int(body) - 1
        if not 0 <= block_index < len(PUBLIC_SLASH8_BLOCKS):
            raise AddressError(f"sub-block name {name!r} out of range")
        index = block_index * len(_LETTERS) + _LETTERS.index(letter)
        self._check(index)
        return index

    def by_name(self, name: str) -> Prefix:
        return self.prefix(self.index_of(name))

    def slice(self, start: int, count: int) -> List[Prefix]:
        """``count`` consecutive usable sub-blocks from ``start``."""
        self._check(start)
        self._check(start + count - 1)
        return [self._all[i].prefix for i in range(start, start + count)]

    def _check(self, index: int) -> None:
        if not 0 <= index < self.usable:
            raise AddressError(
                f"sub-block index {index} outside the usable range"
                f" [0, {self.usable})"
            )


@dataclass(frozen=True)
class Allocation:
    """One source's address blocks at one allocation epoch."""

    source: int
    blocks: Tuple[Prefix, ...]
    #: indices (into the space) of the blocks, for reporting.
    indices: Tuple[int, ...]


def eia_allocation(
    space: SubBlockSpace, n_sources: int = 10, blocks_per_source: int = 100
) -> Dict[int, List[Prefix]]:
    """Table 3: the static EIA assignment — source ``i`` owns the
    ``blocks_per_source`` consecutive sub-blocks starting at
    ``i * blocks_per_source``."""
    needed = n_sources * blocks_per_source
    if needed > space.usable:
        raise AddressError(
            f"{n_sources} sources x {blocks_per_source} blocks needs"
            f" {needed} sub-blocks, only {space.usable} usable"
        )
    return {
        source: space.slice(source * blocks_per_source, blocks_per_source)
        for source in range(n_sources)
    }


def route_change_allocations(
    space: SubBlockSpace,
    *,
    n_sources: int = 10,
    blocks_per_source: int = 100,
    change_blocks: int = 2,
    n_allocations: int = 4,
) -> List[Dict[int, Allocation]]:
    """Table 2 generalised: allocation tables with emulated route changes.

    In allocation ``a`` (1-based), source ``i`` keeps the first
    ``blocks_per_source - change_blocks`` blocks of its own range and
    receives, for ``j`` in ``0..change_blocks-1``, tail block ``j`` of
    source ``(i - a - j) mod n_sources`` — reproducing the published
    k=2, n=10 tables exactly and extending to the 1/4/8-block variants of
    Section 6.3.3.
    """
    if change_blocks >= blocks_per_source:
        raise AddressError("change_blocks must be smaller than blocks_per_source")
    if change_blocks >= n_sources:
        raise AddressError(
            "change_blocks must be below n_sources or a source would"
            " donate to itself"
        )
    base = eia_allocation(space, n_sources, blocks_per_source)
    keep = blocks_per_source - change_blocks

    def tail_index(source: int, j: int) -> int:
        return source * blocks_per_source + keep + j

    allocations: List[Dict[int, Allocation]] = []
    for a in range(1, n_allocations + 1):
        table: Dict[int, Allocation] = {}
        for source in range(n_sources):
            indices = list(
                range(source * blocks_per_source, source * blocks_per_source + keep)
            )
            for j in range(change_blocks):
                donor = (source - a - j) % n_sources
                indices.append(tail_index(donor, j))
            table[source] = Allocation(
                source=source,
                blocks=tuple(space.prefix(i) for i in indices),
                indices=tuple(indices),
            )
        allocations.append(table)
    return allocations
