"""Dagflow: trace-driven NetFlow record synthesis (Section 6.1).

Dagflow replays a captured traffic trace as NetFlow v5 records, emulating
what a border router would have exported for that traffic — without any
router or actual packets.  Each instance:

* binds a *target network* prefix (destination addresses) and a UDP
  export port (its identity toward the collector);
* draws source addresses from a configurable set of address blocks with
  optional per-block weights — both the "normal set" of an allocation and
  *controlled spoofing* (an attack Dagflow simply draws from other peers'
  blocks);
* can switch block sets mid-run (:meth:`set_blocks`), which is how the
  experiment scripts emulate route instability.

Output is either labelled flow records (:meth:`replay`, carrying ground
truth for scoring) or encoded v5 datagrams (:meth:`export`, for driving
the full wire path).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.flowgen.traces import TraceFlow
from repro.netflow.records import FlowKey, FlowRecord
from repro.netflow.v5 import datagrams_for
from repro.util.errors import ConfigError
from repro.util.ip import Prefix
from repro.util.rng import SeededRng

__all__ = ["LabeledRecord", "Dagflow"]


@dataclass(frozen=True)
class LabeledRecord:
    """A synthesised flow record plus its ground-truth label."""

    record: FlowRecord
    label: str

    @property
    def is_attack(self) -> bool:
        return self.label != "normal"


class Dagflow:
    """One Dagflow instance (one emulated border router)."""

    def __init__(
        self,
        name: str,
        *,
        target_prefix: Prefix,
        udp_port: int,
        source_blocks: Sequence[Prefix],
        rng: SeededRng,
        block_weights: Optional[Sequence[float]] = None,
        source_pool_size: Optional[int] = None,
        emit_ttl: bool = False,
    ) -> None:
        if not 0 < udp_port < 65536:
            raise ConfigError(f"udp_port {udp_port} out of range")
        if source_pool_size is not None and source_pool_size < 1:
            raise ConfigError("source_pool_size must be positive or None")
        self.name = name
        self.target_prefix = target_prefix
        self.udp_port = udp_port
        #: When set, records carry a plausible arriving TTL derived from
        #: their source address (stable per source — the property the
        #: TTL-profile detector learns).  A trace flow's own ``ttl``
        #: always wins, so attack variations can stamp implausible ones.
        self.emit_ttl = emit_ttl
        self._rng = rng.fork(f"dagflow-{name}")
        self._blocks: List[Prefix] = []
        self._weights: Optional[List[float]] = None
        self._pool_size = source_pool_size
        self._pool: Optional[List[int]] = None
        self.set_blocks(source_blocks, block_weights)
        self._sequence = 0

    def set_blocks(
        self,
        blocks: Sequence[Prefix],
        weights: Optional[Sequence[float]] = None,
    ) -> None:
        """Replace the source address blocks (allocation switch).

        ``weights`` control the source-address distribution, e.g. the
        paper's "25% from 192.4/16, 25% from 214.96/16, 50% from
        145.25/16" configuration; omitted means uniform over blocks.
        """
        if not blocks:
            raise ConfigError("a Dagflow needs at least one source block")
        if weights is not None:
            if len(weights) != len(blocks):
                raise ConfigError("weights must align with blocks")
            if min(weights) < 0 or sum(weights) <= 0:
                raise ConfigError("weights must be non-negative, sum positive")
            self._weights = list(weights)
        else:
            self._weights = None
        self._blocks = list(blocks)
        if self._pool_size is not None:
            # Replaying a captured trace reuses its (rewritten) source
            # addresses: draw the pool once per block set, then every flow
            # picks from it.  This is how repeated attack-trace replays
            # re-spoof the same addresses (Section 6.1).
            self._pool = [self._draw_source() for _ in range(self._pool_size)]

    @property
    def blocks(self) -> Tuple[Prefix, ...]:
        return tuple(self._blocks)

    def _draw_source(self) -> int:
        if self._weights is None:
            block = self._rng.choice(self._blocks)
        else:
            block = self._blocks[self._rng.weighted_index(self._weights)]
        return block.nth_address(self._rng.randint(0, block.size() - 1))

    def _pick_source(self) -> int:
        if self._pool is not None:
            return self._rng.choice(self._pool)
        return self._draw_source()

    @staticmethod
    def _plausible_ttl(src_addr: int) -> int:
        """A stable per-source arriving TTL in the plausible band.

        A pure hash of the address into [49, 64] — a common initial TTL
        of 64 minus a 0-15 hop path that never changes for a source.
        Deterministic with no RNG draw, so enabling ``emit_ttl`` leaves
        every address stream untouched.
        """
        return 49 + (src_addr * 2_654_435_761) % (2 ** 32) % 16

    def record_for(self, flow: TraceFlow) -> FlowRecord:
        """Synthesise the NetFlow v5 record one trace flow produces."""
        dst = self.target_prefix.nth_address(
            flow.dst_host % self.target_prefix.size()
        )
        # Draw the source before any override so the RNG stream — and
        # therefore every other flow's addresses — is identical between
        # a baseline run and its martian-source variation.
        src = self._pick_source()
        if flow.src_override is not None:
            src = flow.src_override
        ttl = flow.ttl
        if ttl == 0 and self.emit_ttl:
            ttl = self._plausible_ttl(src)
        key = FlowKey(
            src_addr=src,
            dst_addr=dst,
            protocol=flow.protocol,
            src_port=flow.src_port,
            dst_port=flow.dst_port,
        )
        return FlowRecord(
            key=key,
            packets=flow.packets,
            octets=flow.octets,
            first=flow.start_ms,
            last=flow.start_ms + flow.duration_ms,
            tcp_flags=flow.tcp_flags,
            ttl=ttl,
        )

    def replay(self, trace: Iterable[TraceFlow]) -> Iterator[LabeledRecord]:
        """Replay a trace into labelled records (scoring path)."""
        for flow in trace:
            yield LabeledRecord(record=self.record_for(flow), label=flow.label)

    def export(
        self,
        trace: Iterable[TraceFlow],
        *,
        sys_uptime: int = 0,
        unix_secs: int = 0,
    ) -> Iterator[bytes]:
        """Replay a trace into encoded v5 datagrams (wire path).

        Maintains this instance's cumulative flow sequence across calls,
        as the real tool did per emulated router.
        """
        records = (self.record_for(flow) for flow in trace)
        for datagram in datagrams_for(
            records,
            sys_uptime=sys_uptime,
            unix_secs=unix_secs,
            initial_sequence=self._sequence,
        ):
            # Header count byte 2-3 big endian; cheaper to track here than
            # to decode: datagrams are maximally filled except the last.
            count = int.from_bytes(datagram[2:4], "big")
            self._sequence += count
            yield datagram
