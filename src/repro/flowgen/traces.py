"""Synthetic "normal" traffic traces.

Stands in for the CAIDA/NLANR captures the paper replays: a protocol mix
of the era's dominant applications with heavy-tailed flow sizes.  The NNS
stage only ever sees flow-level statistics, so matching the *per-protocol
distribution shape* of real traces (many small request flows, a
heavy tail of bulk transfers) is what preserves the paper's behaviour.

A trace is a sequence of :class:`TraceFlow` — flow-level events without
concrete source addresses (Dagflow assigns those) and with destination
hosts as abstract offsets into the target network.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.netflow.records import (
    PORT_DNS,
    PORT_FTP,
    PORT_HTTP,
    PORT_SMTP,
    PROTO_ICMP,
    PROTO_TCP,
    PROTO_UDP,
    TCP_ACK,
    TCP_FIN,
    TCP_PSH,
    TCP_SYN,
)
from repro.util.errors import ConfigError
from repro.util.rng import SeededRng

__all__ = ["TraceFlow", "TraceProfile", "synthesize_trace", "DEFAULT_PROFILE"]


@dataclass(frozen=True)
class TraceFlow:
    """One flow-level event of a traffic trace.

    ``dst_host`` is an offset into the (not-yet-bound) target network;
    ``label`` is ``"normal"`` for background traffic or the attack name
    for attack traces — used by experiments as detection ground truth,
    never by the detector itself.

    ``ttl`` is the arriving IP TTL to stamp on the synthesised record
    (0 = let Dagflow decide); ``src_override`` pins the record's source
    to a concrete address instead of a Dagflow block draw — how attack
    variations plant martian sources without touching the address
    machinery.
    """

    start_ms: int
    protocol: int
    src_port: int
    dst_port: int
    packets: int
    octets: int
    duration_ms: int
    dst_host: int
    tcp_flags: int = 0
    label: str = "normal"
    ttl: int = 0
    src_override: Optional[int] = None

    def __post_init__(self) -> None:
        if self.packets < 1 or self.octets < self.packets * 20:
            raise ConfigError(
                "a flow needs >=1 packet and >=20 octets per packet"
            )
        if self.duration_ms < 0:
            raise ConfigError("duration cannot be negative")
        if not 0 <= self.ttl <= 255:
            raise ConfigError(f"ttl {self.ttl} out of range [0, 255]")
        if self.src_override is not None and not (
            0 <= self.src_override <= 0xFFFFFFFF
        ):
            raise ConfigError("src_override must be a 32-bit address")

    @property
    def is_attack(self) -> bool:
        return self.label != "normal"


@dataclass(frozen=True)
class _AppModel:
    """Flow-statistic distribution of one application class."""

    protocol: int
    dst_port: Optional[int]           # None = random high port
    weight: float
    packets_pareto: Tuple[float, float]   # (alpha, scale)
    packets_cap: int
    bytes_per_packet: Tuple[int, int]     # uniform range
    duration_ms: Tuple[int, int]          # uniform range, scaled by size
    tcp: bool = False


@dataclass(frozen=True)
class TraceProfile:
    """The application mix of a trace (fractions of flows per class)."""

    mean_interarrival_ms: float = 12.0
    n_hosts: int = 2048
    apps: Dict[str, _AppModel] = field(
        default_factory=lambda: dict(_DEFAULT_APPS)
    )


_DEFAULT_APPS: Tuple[Tuple[str, _AppModel], ...] = (
    (
        "http",
        _AppModel(PROTO_TCP, PORT_HTTP, 0.46, (1.3, 6.0), 400, (300, 900), (40, 2500), tcp=True),
    ),
    (
        "dns",
        _AppModel(PROTO_UDP, PORT_DNS, 0.16, (2.5, 1.0), 4, (60, 140), (1, 120)),
    ),
    (
        "smtp",
        _AppModel(PROTO_TCP, PORT_SMTP, 0.08, (1.5, 8.0), 200, (200, 700), (120, 4000), tcp=True),
    ),
    (
        "ftp",
        _AppModel(PROTO_TCP, PORT_FTP, 0.05, (1.2, 10.0), 800, (400, 1200), (300, 9000), tcp=True),
    ),
    (
        "tcp-other",
        _AppModel(PROTO_TCP, None, 0.14, (1.4, 5.0), 300, (150, 1000), (50, 5000), tcp=True),
    ),
    (
        "udp-other",
        _AppModel(PROTO_UDP, None, 0.08, (1.8, 2.0), 60, (100, 600), (10, 2000)),
    ),
    (
        "icmp",
        _AppModel(PROTO_ICMP, 0, 0.03, (2.2, 1.0), 10, (64, 120), (1, 500)),
    ),
)

DEFAULT_PROFILE = TraceProfile()


def synthesize_trace(
    n_flows: int,
    *,
    rng: SeededRng,
    profile: TraceProfile = DEFAULT_PROFILE,
    start_ms: int = 0,
) -> List[TraceFlow]:
    """Generate ``n_flows`` normal flows with the given application mix.

    Flow start times follow a Poisson arrival process; per-class sizes are
    Pareto (heavy tails) capped to keep the unary encoding ranges honest.
    """
    if n_flows < 0:
        raise ConfigError("n_flows cannot be negative")
    names = list(profile.apps)
    weights = [profile.apps[name].weight for name in names]
    flows: List[TraceFlow] = []
    clock = float(start_ms)
    arrival = rng.fork("arrivals")
    pick = rng.fork("apps")
    size = rng.fork("sizes")
    for _ in range(n_flows):
        clock += arrival.expovariate(1.0 / profile.mean_interarrival_ms)
        app = profile.apps[names[pick.weighted_index(weights)]]
        alpha, scale = app.packets_pareto
        packets = max(1, min(app.packets_cap, int(size.pareto(alpha, scale))))
        per_packet = size.randint(*app.bytes_per_packet)
        octets = max(packets * 28, packets * per_packet)
        lo, hi = app.duration_ms
        duration = int(size.uniform(lo, hi) * (0.25 + min(packets, 64) / 16.0))
        if packets == 1:
            duration = 0
        dst_port = (
            app.dst_port
            if app.dst_port is not None
            else size.randint(1024, 65535)
        )
        tcp_flags = 0
        if app.tcp:
            tcp_flags = TCP_SYN | TCP_ACK | TCP_PSH | TCP_FIN
        flows.append(
            TraceFlow(
                start_ms=int(clock),
                protocol=app.protocol,
                src_port=size.randint(1024, 65535),
                dst_port=dst_port,
                packets=packets,
                octets=octets,
                duration_ms=duration,
                dst_host=size.randint(0, profile.n_hosts - 1),
                tcp_flags=tcp_flags,
            )
        )
    return flows
