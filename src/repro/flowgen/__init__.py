"""Traffic generation: address plan, traces, attacks, Dagflow replay."""

from __future__ import annotations

from repro.flowgen.addressing import (
    PUBLIC_SLASH8_BLOCKS,
    Allocation,
    SubBlockSpace,
    eia_allocation,
    route_change_allocations,
)
from repro.flowgen.attacks import (
    ATTACK_NAMES,
    STEALTHY_ATTACKS,
    attack_catalog,
    generate_attack,
)
from repro.flowgen.dagfile import (
    DagPacket,
    flows_from_packets,
    packets_from_flows,
    read_dag,
    write_dag,
)
from repro.flowgen.dagflow import Dagflow, LabeledRecord
from repro.flowgen.traces import (
    DEFAULT_PROFILE,
    TraceFlow,
    TraceProfile,
    synthesize_trace,
)

__all__ = [
    "PUBLIC_SLASH8_BLOCKS",
    "Allocation",
    "SubBlockSpace",
    "eia_allocation",
    "route_change_allocations",
    "ATTACK_NAMES",
    "STEALTHY_ATTACKS",
    "attack_catalog",
    "generate_attack",
    "DagPacket",
    "flows_from_packets",
    "packets_from_flows",
    "read_dag",
    "write_dag",
    "Dagflow",
    "LabeledRecord",
    "DEFAULT_PROFILE",
    "TraceFlow",
    "TraceProfile",
    "synthesize_trace",
]
