"""Attack trace generators (Section 6.2).

Twelve attack types matching the paper's mix: stealthy one-or-few-packet
attacks (Puke, Jolt, Teardrop, Slammer), a volumetric DDoS (TFN2K), blind
scans (nmap network sweep and Idlescan-style host scan), and service
exploits against http/ftp/smtp/dns.  Each generator emits the
*flow-level* footprint the corresponding tool leaves in NetFlow — the only
thing the detector ever sees — as :class:`TraceFlow` lists labelled with
the attack name.

None of these are usable attack implementations; they synthesise traffic
*records* for evaluating the defence, the role the paper's converted
TCPDUMP captures played.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Tuple

from repro.flowgen.traces import TraceFlow
from repro.netflow.records import (
    PORT_DNS,
    PORT_FTP,
    PORT_HTTP,
    PORT_SMTP,
    PROTO_ICMP,
    PROTO_TCP,
    PROTO_UDP,
    TCP_ACK,
    TCP_PSH,
    TCP_RST,
    TCP_SYN,
)
from repro.util.errors import ConfigError
from repro.util.rng import SeededRng

__all__ = [
    "ATTACK_NAMES",
    "STEALTHY_ATTACKS",
    "generate_attack",
    "attack_catalog",
    "puke",
    "jolt",
    "teardrop",
    "slammer",
    "tfn2k",
    "synflood",
    "network_scan",
    "host_scan",
    "http_exploit",
    "ftp_exploit",
    "smtp_exploit",
    "dns_exploit",
    "rst_storm",
]

AttackGenerator = Callable[[SeededRng, int], List[TraceFlow]]


def _flow(
    start_ms: int,
    protocol: int,
    dst_port: int,
    packets: int,
    octets: int,
    duration_ms: int,
    dst_host: int,
    label: str,
    *,
    src_port: int = 0,
    tcp_flags: int = 0,
) -> TraceFlow:
    return TraceFlow(
        start_ms=start_ms,
        protocol=protocol,
        src_port=src_port,
        dst_port=dst_port,
        packets=packets,
        octets=octets,
        duration_ms=duration_ms,
        dst_host=dst_host,
        tcp_flags=tcp_flags,
        label=label,
    )


def puke(rng: SeededRng, start_ms: int) -> List[TraceFlow]:
    """Puke: forged ICMP unreachable bursts knocking an IRC user offline.

    A handful of single ICMP packets at one host — far below any
    volumetric radar.
    """
    host = rng.randint(0, 1023)
    return [
        _flow(
            start_ms + i * 40,
            PROTO_ICMP,
            0,
            1,
            rng.randint(56, 84),
            0,
            host,
            "puke",
        )
        for i in range(rng.randint(2, 4))
    ]


def jolt(rng: SeededRng, start_ms: int) -> List[TraceFlow]:
    """Jolt: oversized fragmented ICMP; one flow, absurd bytes/packet."""
    host = rng.randint(0, 1023)
    packets = rng.randint(2, 5)
    return [
        _flow(
            start_ms,
            PROTO_ICMP,
            0,
            packets,
            packets * rng.randint(7_000, 9_500),
            rng.randint(1, 20),
            host,
            "jolt",
        )
    ]


def teardrop(rng: SeededRng, start_ms: int) -> List[TraceFlow]:
    """Teardrop: two overlapping UDP fragments; a single tiny flow."""
    host = rng.randint(0, 1023)
    return [
        _flow(
            start_ms,
            PROTO_UDP,
            rng.randint(1024, 65535),
            2,
            rng.randint(60, 120),
            0,
            host,
            "teardrop",
        )
    ]


def slammer(rng: SeededRng, start_ms: int) -> List[TraceFlow]:
    """Slammer: one 404-byte UDP/1434 packet to many random hosts.

    The canonical network-scan pattern: fixed destination port, spoofed
    sources, dozens of distinct destination hosts, one packet each.
    """
    count = rng.randint(24, 48)
    return [
        _flow(
            start_ms + i * 3,
            PROTO_UDP,
            1434,
            1,
            404,
            0,
            rng.randint(0, 4095),
            "slammer",
            src_port=rng.randint(1024, 65535),
        )
        for i in range(count)
    ]


def tfn2k(rng: SeededRng, start_ms: int) -> List[TraceFlow]:
    """TFN2K: volumetric DDoS — a storm of spoofed UDP/ICMP flood flows
    converging on one victim."""
    victim = rng.randint(0, 1023)
    flows: List[TraceFlow] = []
    for i in range(rng.randint(60, 120)):
        use_udp = rng.bernoulli(0.6)
        packets = rng.randint(80, 400)
        flows.append(
            _flow(
                start_ms + i * 2,
                PROTO_UDP if use_udp else PROTO_ICMP,
                rng.randint(1, 65535) if use_udp else 0,
                packets,
                packets * rng.randint(28, 64),
                rng.randint(200, 1500),
                victim,
                "tfn2k",
                src_port=rng.randint(1024, 65535) if use_udp else 0,
            )
        )
    return flows


def synflood(rng: SeededRng, start_ms: int) -> List[TraceFlow]:
    """SYN flood at a web server: many half-open single-SYN flows."""
    victim = rng.randint(0, 1023)
    return [
        _flow(
            start_ms + i * 5,
            PROTO_TCP,
            PORT_HTTP,
            (syn_packets := rng.randint(1, 3)),
            syn_packets * rng.randint(40, 60),
            0,
            victim,
            "synflood",
            src_port=rng.randint(1024, 65535),
            tcp_flags=TCP_SYN,
        )
        for i in range(rng.randint(40, 80))
    ]


def network_scan(rng: SeededRng, start_ms: int) -> List[TraceFlow]:
    """nmap sweep: SYN probes on one service port across many hosts."""
    port = rng.choice((PORT_HTTP, 22, 445, 139, 3389))
    return [
        _flow(
            start_ms + i * 8,
            PROTO_TCP,
            port,
            1,
            44,
            0,
            rng.randint(0, 4095),
            "network_scan",
            src_port=rng.randint(1024, 65535),
            tcp_flags=TCP_SYN,
        )
        for i in range(rng.randint(20, 40))
    ]


def host_scan(rng: SeededRng, start_ms: int) -> List[TraceFlow]:
    """nmap Idlescan: blind spoofed probes over many ports of one host."""
    victim = rng.randint(0, 1023)
    ports = rng.sample(range(1, 1024), rng.randint(16, 32))
    return [
        _flow(
            start_ms + i * 12,
            PROTO_TCP,
            port,
            1,
            44,
            0,
            victim,
            "host_scan",
            src_port=rng.randint(1024, 65535),
            tcp_flags=TCP_SYN,
        )
        for i, port in enumerate(ports)
    ]


def http_exploit(rng: SeededRng, start_ms: int) -> List[TraceFlow]:
    """Oversized single-request web exploit (Code-Red-style long URI)."""
    return [
        _flow(
            start_ms,
            PROTO_TCP,
            PORT_HTTP,
            rng.randint(3, 6),
            rng.randint(60_000, 120_000),
            rng.randint(5, 60),
            rng.randint(0, 1023),
            "http_exploit",
            src_port=rng.randint(1024, 65535),
            tcp_flags=TCP_SYN | TCP_ACK | TCP_PSH,
        )
    ]


def ftp_exploit(rng: SeededRng, start_ms: int) -> List[TraceFlow]:
    """FTP command-channel buffer overflow: one short, dense flow."""
    return [
        _flow(
            start_ms,
            PROTO_TCP,
            PORT_FTP,
            rng.randint(2, 4),
            rng.randint(30_000, 60_000),
            rng.randint(1, 10),
            rng.randint(0, 1023),
            "ftp_exploit",
            src_port=rng.randint(1024, 65535),
            tcp_flags=TCP_SYN | TCP_ACK | TCP_PSH,
        )
    ]


def smtp_exploit(rng: SeededRng, start_ms: int) -> List[TraceFlow]:
    """SMTP exploit: a command-stuffing flow far outside normal mail."""
    packets = rng.randint(400, 900)
    return [
        _flow(
            start_ms,
            PROTO_TCP,
            PORT_SMTP,
            packets,
            packets * rng.randint(900, 1400),
            rng.randint(50, 400),
            rng.randint(0, 1023),
            "smtp_exploit",
            src_port=rng.randint(1024, 65535),
            tcp_flags=TCP_SYN | TCP_ACK | TCP_PSH,
        )
    ]


def dns_exploit(rng: SeededRng, start_ms: int) -> List[TraceFlow]:
    """Single-packet DNS exploit: one oversized UDP/53 datagram."""
    return [
        _flow(
            start_ms,
            PROTO_UDP,
            PORT_DNS,
            1,
            rng.randint(2_000, 4_000),
            0,
            rng.randint(0, 1023),
            "dns_exploit",
            src_port=rng.randint(1024, 65535),
        )
    ]


def rst_storm(rng: SeededRng, start_ms: int) -> List[TraceFlow]:
    """Forged RST storm tearing down connections of one host."""
    victim = rng.randint(0, 1023)
    return [
        _flow(
            start_ms + i * 6,
            PROTO_TCP,
            rng.randint(1024, 65535),
            1,
            40,
            0,
            victim,
            "rst_storm",
            src_port=PORT_HTTP,
            tcp_flags=TCP_RST,
        )
        for i in range(rng.randint(20, 40))
    ]


_CATALOG: Dict[str, AttackGenerator] = {
    "puke": puke,
    "jolt": jolt,
    "teardrop": teardrop,
    "slammer": slammer,
    "tfn2k": tfn2k,
    "synflood": synflood,
    "network_scan": network_scan,
    "host_scan": host_scan,
    "http_exploit": http_exploit,
    "ftp_exploit": ftp_exploit,
    "smtp_exploit": smtp_exploit,
    "dns_exploit": dns_exploit,
}

ATTACK_NAMES = tuple(_CATALOG)

#: Attacks of one or very few packets — the set Snort-era signature IDS
#: missed (Section 1): no volume anomaly, no known signature.
STEALTHY_ATTACKS = ("puke", "jolt", "teardrop", "slammer", "dns_exploit")


def attack_catalog() -> Dict[str, AttackGenerator]:
    """Name → generator for all twelve attacks."""
    return dict(_CATALOG)


#: TTLs no real forwarding path produces for this topology: packets
#: arriving nearly dead (hand-set initial TTL ≈ hop count) or nearly
#: untouched (hand-set to the maximum).  Raw spoofing tools set the
#: field arbitrarily; these are the implausible values the Figure 15/16
#: variation suite stamps on attack flows.
_IMPLAUSIBLE_TTLS: Tuple[int, ...] = (1, 2, 254, 255)

#: Concrete martian source addresses, one per builtin bogon category
#: that :class:`~repro.core.BogonDetector` ships with (this-network,
#: private, shared CGN, loopback, multicast, reserved).  Cycled over by
#: flow index so a variation run exercises every category.
_MARTIAN_SOURCES: Tuple[int, ...] = (
    0x0000_0021,  # 0.0.0.33       (this-network)
    0x0A00_0001,  # 10.0.0.1       (private)
    0x6440_000D,  # 100.64.0.13    (shared-cgn)
    0x7F00_0001,  # 127.0.0.1      (loopback)
    0xE000_0005,  # 224.0.0.5      (multicast)
    0xF000_0009,  # 240.0.0.9      (reserved)
)


def generate_attack(
    name: str,
    *,
    rng: SeededRng,
    start_ms: int = 0,
    implausible_ttl: bool = False,
    martian_fraction: float = 0.0,
) -> List[TraceFlow]:
    """Generate one instance of the named attack.

    ``implausible_ttl`` stamps every flow with a TTL outside any
    plausible arrival range (cycled from :data:`_IMPLAUSIBLE_TTLS`);
    ``martian_fraction`` pins that fraction of flows to bogon source
    addresses via ``src_override``.  Both are pure post-generation
    transforms — they draw nothing from ``rng``, so the base attack
    footprint is identical draw for draw with the knobs on or off, and
    variation runs stay comparable to their baselines.
    """
    if not 0.0 <= martian_fraction <= 1.0:
        raise ConfigError(
            f"martian_fraction {martian_fraction} out of range [0, 1]"
        )
    try:
        generator = _CATALOG[name]
    except KeyError:
        raise ConfigError(
            f"unknown attack {name!r}; expected one of {ATTACK_NAMES}"
        ) from None
    flows = generator(rng, start_ms)
    if not implausible_ttl and martian_fraction == 0.0:
        return flows
    threshold = int(round(martian_fraction * 1000))
    varied: List[TraceFlow] = []
    for index, flow in enumerate(flows):
        changes: Dict[str, object] = {}
        if implausible_ttl:
            changes["ttl"] = _IMPLAUSIBLE_TTLS[index % len(_IMPLAUSIBLE_TTLS)]
        # Low-discrepancy index spread: the 619-step lattice hits
        # ``threshold`` per mille of any contiguous flow range, so even
        # short attacks see a representative martian share.
        if (index * 619) % 1000 < threshold:
            changes["src_override"] = _MARTIAN_SOURCES[
                index % len(_MARTIAN_SOURCES)
            ]
        varied.append(
            dataclasses.replace(flow, **changes) if changes else flow
        )
    return varied
