"""A6 — EIA learning: false-positive decay after a route change.

Section 5.2's adaptation story, measured: at t=0 the routes have changed
(normal traffic uses a Table 2 allocation, the EIA sets still hold the
original plan).  The learning rule absorbs the moved blocks as benign
flows accumulate, so the false-positive rate decays over the run — and
the decay speed is set by the learning threshold.
"""

from _report import report, table

from repro.testbed import TestbedConfig
from repro.testbed.experiments import measure_adaptation

TESTBED = TestbedConfig(training_flows=2000)
THRESHOLDS = (3, 10, 10_000)  # 10_000 ~ learning disabled
FLOWS = 2_500


def _sweep():
    return {
        threshold: measure_adaptation(
            TESTBED,
            learning_threshold=threshold,
            normal_flows_per_peer=FLOWS,
            n_buckets=8,
        )
        for threshold in THRESHOLDS
    }


def test_a6_learning_adaptation(benchmark):
    curves = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    positions = [f"{x:.2f}" for x, _ in curves[THRESHOLDS[0]]]
    rows = []
    for threshold, curve in curves.items():
        label = f"threshold {threshold}" + (
            "  (~disabled)" if threshold >= 10_000 else ""
        )
        rows.append([label] + [f"{fp:.2%}" for _, fp in curve])
    report(
        "A6_learning_adaptation",
        table(["variant \\ run fraction", *positions], rows)
        + [
            "",
            "expected: FP decays over time when learning is active;"
            " flat without it",
        ],
    )

    def early_late(curve):
        third = max(len(curve) // 3, 1)
        early = sum(fp for _, fp in curve[:third]) / third
        late = sum(fp for _, fp in curve[-third:]) / third
        return early, late

    fast_early, fast_late = early_late(curves[3])
    off_early, off_late = early_late(curves[10_000])
    # Active learning decays substantially; disabled learning stays flat.
    assert fast_late < fast_early * 0.7
    assert off_late > off_early * 0.7
