"""E19 — sharded ingest engine throughput vs serial processing.

The engine's batch commit path amortises per-flow instrumentation and
memoises the pure NNS assessment across a batch, so on suspect-heavy
traffic — exactly the regime where Enhanced InFilter is slow, because
every flow pays an EIA miss plus a nearest-neighbour search — it must
clear a 2x flows/sec margin over the serial ``process_all`` loop on an
identically built detector, while producing identical verdicts.

The workload is a spoofed flood at a *single* victim host and port: the
EIA check flags every flow (wrong ingress), scan analysis never fires
(no destination fan-out, so neither scan pattern completes), and every
flow falls through to the KOR nearest-neighbour search.  Real floods
repeat a handful of packet/byte shapes thousands of times, so the
engine's NNS memo collapses most searches into dictionary hits while
the serial path pays the full search per flow.

Set ``INFILTER_BENCH_QUICK=1`` to run a reduced trace (CI smoke: checks
the machinery and the verdict equivalence, not the speedup ratio).
"""

import os
import time

from _report import report, table

from repro.core import EIAConfig, PipelineConfig
from repro.engine import EngineConfig, ShardedIngestEngine
from repro.flowgen import SubBlockSpace, eia_allocation
from repro.netflow.records import FlowKey, FlowRecord
from repro.util import Prefix, SeededRng
from tests.conftest import make_detector

QUICK = os.environ.get("INFILTER_BENCH_QUICK", "") not in ("", "0")

#: Enough flows that per-flow Python cost, not warm-up, dominates both
#: timings; the quick run only checks machinery and equivalence.
_FLOWS = 2_000 if QUICK else 20_000
_SEED = 20120

#: The flood's repeated flow shapes: (packets, octets, duration_ms).
#: A real flooder emits a few packet-size archetypes over and over.
_SHAPES = [
    (1, 40 + 24 * i, 1 + 7 * (i % 5)) for i in range(8)
] + [
    (2 + i, 90 * (2 + i), 40 + 11 * i) for i in range(8)
]


def _build_detector(plan, target):
    config = PipelineConfig(eia=EIAConfig())
    return make_detector(plan, target, seed=_SEED, config=config, n_train=1200)


def _suspect_heavy_trace(plan, target):
    """A spoofed single-victim UDP flood arriving at the wrong ingress."""
    rng = SeededRng(2014, "engine-bench")
    foreign = [b for peer, blocks in plan.items() if peer != 0 for b in blocks]
    victim = target.network + 0x99
    records = []
    for i in range(_FLOWS):
        block = foreign[i % len(foreign)]
        src = block.network + rng.randint(1, max(block.size() - 2, 1))
        packets, octets, duration = _SHAPES[i % len(_SHAPES)]
        first = i * 3
        records.append(
            FlowRecord(
                key=FlowKey(
                    src_addr=src,
                    dst_addr=victim,
                    protocol=17,
                    src_port=1024 + (i % 32_000),
                    dst_port=9999,
                    input_if=0,
                ),
                packets=packets,
                octets=octets,
                first=first,
                last=first + duration,
            )
        )
    return records


def _verdicts(detector):
    stats = detector.stats
    return (stats.processed, stats.legal, stats.benign, stats.attacks,
            stats.absorbed)


def test_e12_engine_throughput_vs_serial():
    space = SubBlockSpace()
    plan = eia_allocation(space)
    target = Prefix.parse("198.18.0.0/16")
    records = _suspect_heavy_trace(plan, target)

    serial_detector = _build_detector(plan, target)
    start = time.perf_counter()
    serial_detector.process_all(records)
    serial_s = time.perf_counter() - start

    engine_detector = _build_detector(plan, target)
    engine = ShardedIngestEngine(
        engine_detector,
        EngineConfig(shards=4, batch_size=512, mode="inline"),
    )
    with engine:
        start = time.perf_counter()
        engine_report = engine.run(records)
        engine_s = time.perf_counter() - start

    assert _verdicts(engine_detector) == _verdicts(serial_detector)
    assert engine_report.flows == len(records)

    serial_fps = len(records) / serial_s if serial_s else 0.0
    engine_fps = len(records) / engine_s if engine_s else 0.0
    speedup = engine_fps / serial_fps if serial_fps else 0.0
    report(
        "E19_engine_throughput",
        table(
            ["path", "flows", "elapsed", "flows/sec"],
            [
                ["serial process_all", len(records), f"{serial_s:.3f}s",
                 f"{serial_fps:,.0f}"],
                ["engine shards=4", len(records), f"{engine_s:.3f}s",
                 f"{engine_fps:,.0f}"],
                ["speedup", "", "", f"{speedup:.2f}x"],
            ],
        ),
    )
    if not QUICK:
        assert speedup >= 2.0, (
            f"engine speedup {speedup:.2f}x below the 2x acceptance floor"
            f" (serial {serial_fps:,.0f} fps, engine {engine_fps:,.0f} fps)"
        )
