"""A5 — InFilter under sampled NetFlow.

Not a paper experiment, but the deployment question the paper's BR-based
architecture raises: large backbones export *sampled* NetFlow, and a
1-in-N sampled router only sees a single-packet spoofed probe with
probability 1/N.  This bench runs the standard workload through sampling
intervals {1, 10, 100} and reports what happens to detection — a hard
limitation of any flow-based detector on stealthy attacks.
"""

from _report import report, table

from repro.core.config import PipelineConfig
from repro.flowgen.attacks import STEALTHY_ATTACKS
from repro.netflow.sampling import sample_records, survival_probability
from repro.testbed.emulation import Testbed, TestbedConfig
from repro.testbed.experiments import ExperimentParams, _attack_trace
from repro.testbed.metrics import RunScore
from repro.flowgen.traces import synthesize_trace
from repro.util.rng import SeededRng

INTERVALS = (1, 10, 100)
TESTBED = TestbedConfig(training_flows=2000)
PARAMS = ExperimentParams(attack_volume=0.06, normal_flows_per_peer=800, seed=2505)


def _run_with_sampling(interval: int) -> RunScore:
    rng = SeededRng(PARAMS.seed, f"sampling-{interval}")
    testbed = Testbed(TESTBED, rng=rng.fork("testbed"))
    detector = testbed.build_detector(PipelineConfig.enhanced_default())
    streams = []
    horizon_ms = 0
    for peer in range(TESTBED.n_peers):
        trace = synthesize_trace(
            PARAMS.normal_flows_per_peer, rng=rng.fork(f"trace-{peer}")
        )
        horizon_ms = max(horizon_ms, trace[-1].start_ms)
        streams.append(
            (peer, testbed.normal_dagflow(peer, testbed.eia_plan[peer]).replay(trace))
        )
    attack_flows = _attack_trace(
        rng.fork("attacks"),
        flow_budget=int(PARAMS.attack_volume * PARAMS.normal_flows_per_peer),
        horizon_ms=horizon_ms,
        peer=0,
    )
    streams.append((0, testbed.attack_dagflow(0).replay(attack_flows)))

    score = RunScore()
    merged = list(testbed.merge_streams(streams))
    sampled = sample_records(
        (t.record for t in merged), interval, rng=rng.fork("sampler")
    )
    # Pair sampled records back with ground truth by walking in step:
    # sample_records preserves order and only drops records.
    sampled_list = list(sampled)
    # Rebuild pairing by key match on (FlowKey, first): sampling preserves
    # key and times while rescaling counters.
    from collections import defaultdict

    truth = defaultdict(list)
    for timed in merged:
        truth[(timed.record.key, timed.record.first)].append(timed)
    seen_attack_instances = set()
    for record in sampled_list:
        candidates = truth.get((record.key, record.first))
        timed = candidates.pop(0) if candidates else None
        decision = detector.process(record)
        if timed is None:
            continue
        if timed.is_attack:
            seen_attack_instances.add(timed.label)
            score.note_attack(timed.label, decision.is_attack)
        else:
            score.note_normal(decision.is_attack)
    # Instances whose every flow was sampled away are definitionally
    # missed: add them as undetected.
    for timed in merged:
        if timed.is_attack and timed.label not in seen_attack_instances:
            score.note_attack(timed.label, False)
            seen_attack_instances.add(timed.label)
    score.finalize()
    return score


def _sweep():
    return {interval: _run_with_sampling(interval) for interval in INTERVALS}


def test_a5_sampled_netflow(benchmark):
    results = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    rows = []
    for interval, score in results.items():
        stealthy = [
            f"{name}:{d}/{t}"
            for name, (d, t) in score.by_type.items()
            if name in STEALTHY_ATTACKS
        ]
        rows.append(
            [
                f"1-in-{interval}",
                f"{score.detection_rate:.1%}",
                f"{score.false_positive_rate:.2%}",
                " ".join(stealthy),
            ]
        )
    lines = table(
        ["sampling", "detection", "false positives", "stealthy breakdown"], rows
    )
    lines += [
        "",
        f"single-packet survival: 1-in-10 -> {survival_probability(1, 10):.0%},"
        f" 1-in-100 -> {survival_probability(1, 100):.0%}",
        "flow-based detection of single-packet attacks degrades with the",
        "sampling rate — a deployment constraint the paper's unsampled",
        "testbed does not surface",
    ]
    report("A5_sampled_netflow", lines)

    full = results[1].detection_rate
    heavy = results[100].detection_rate
    assert heavy < full
    # Unsampled run matches the usual headline band.
    assert full > 0.6
