"""E13 — Figure 1: route stability vs distance from the source.

The paper's conceptual figure: routes are stable near the source (where
egress filtering operates) and near the target (where InFilter operates)
and volatile in between.  We measure per-hop-position change rates over
repeated traceroutes and check the U-shape.
"""

from _report import report, table

from repro.util.timebase import HOUR
from repro.validation import StabilityConfig, run_route_stability_study


def test_e13_figure1_route_stability(benchmark):
    config = StabilityConfig(n_pairs=16, duration_s=72 * HOUR)
    result = benchmark.pedantic(
        run_route_stability_study, args=(config,), rounds=1, iterations=1
    )

    rows = [
        [f"{position:.2f}", f"{rate:.2%}"] for position, rate in result.curve()
    ]
    first, middle, last = result.edge_vs_middle()
    lines = table(["distance from source (0..1)", "change rate"], rows)
    lines += [
        "",
        f"source edge: {first:.2%}   middle: {middle:.2%}   target edge: {last:.2%}",
        "paper shape: stable ends (egress filtering / InFilter regions),"
        " volatile middle",
    ]
    report("E13_figure1_route_stability", lines)

    assert middle > 2 * first
    assert middle > 2 * last
