"""E18 — multi-process cluster scaling vs the single-loop daemon.

E14 measured what one asyncio loop sustains end to end; this bench runs
the same legal trace through :mod:`repro.cluster` at 1, 2 and 4 workers
and through a single in-process ``ServeDaemon`` baseline, all on
loopback.  The cluster pays a real tax the baseline does not — every
record crosses UDP twice (sender → director front → shard worker) and is
re-framed per shard — so one worker is expected to land *below* the
baseline; the claim under test is that the commit plane scales with
worker processes: records/s must increase monotonically from 1 to 4
workers, and 4 workers must clear **2x the single-loop baseline**
measured in the same run (the stated scaling floor).

Every configuration asserts full record-fate reconciliation
(``records_unaccounted == 0``) before any throughput number is trusted.

The floor is a claim about parallel hardware: on a box without at
least 4 usable cores the worker processes time-slice one CPU and no
process-level design can scale, so the throughput assertions only arm
when the cores are there — the run still reports its numbers and says
so in the result table rather than asserting vacuously.

Set ``INFILTER_BENCH_QUICK=1`` for the CI smoke: a reduced trace at
1 and 2 workers, machinery and reconciliation checks only, no floors.
"""

import os
import shutil
import socket
import time

import asyncio

from _report import report, table

from repro.cluster import ClusterConfig, ClusterSupervisor, seed_cluster_state
from repro.flowgen import (
    Dagflow,
    SubBlockSpace,
    eia_allocation,
    synthesize_trace,
)
from repro.netflow.v5 import datagrams_for
from repro.obs import MetricsRegistry
from repro.serve import ServeConfig, ServeDaemon
from repro.util import Prefix, SeededRng
from tests.conftest import make_detector

QUICK = os.environ.get("INFILTER_BENCH_QUICK", "") not in ("", "0")

try:
    _CORES = len(os.sched_getaffinity(0))
except AttributeError:  # pragma: no cover - non-Linux
    _CORES = os.cpu_count() or 1

#: The 4-worker configuration runs sender + director + 4 commit
#: processes; below 4 usable cores they time-slice one CPU and the
#: scaling claim is unfalsifiable, so the floors stay down.
_ASSERT_FLOORS = not QUICK and _CORES >= 4

#: Enough records that steady-state commits, not process start-up,
#: dominate; the quick run only checks the machinery.
_RECORDS = 3_000 if QUICK else 30_000
_WORKER_COUNTS = (1, 2) if QUICK else (1, 2, 4)
_SEED = 20180


def _legal_trace(eia_plan, target_prefix):
    rng = SeededRng(_SEED, "cluster-bench")
    dagflow = Dagflow(
        "bench",
        target_prefix=target_prefix,
        udp_port=9000,
        source_blocks=eia_plan[0],
        rng=rng.fork("df"),
    )
    trace = synthesize_trace(_RECORDS, rng=rng.fork("trace"))
    return [lr.record.with_key(input_if=0) for lr in dagflow.replay(trace)]


async def _blast(address, datagrams):
    sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
    try:
        for index, datagram in enumerate(datagrams):
            sock.sendto(datagram, address)
            if (index + 1) % 8 == 0:
                await asyncio.sleep(0)
    finally:
        sock.close()


def _run_single_loop(detector, records):
    """The E14-shaped single-process baseline on the same trace."""
    config = ServeConfig(
        port=0,
        queue_capacity=65_536,
        batch_size=512,
        max_records=len(records),
        idle_exit_s=2.0,
        recv_buffer_bytes=8 * 1024 * 1024,
    )
    datagrams = list(datagrams_for(records, sys_uptime=0, unix_secs=0))

    async def main():
        daemon = ServeDaemon(detector, config, registry=MetricsRegistry())
        task = asyncio.ensure_future(daemon.run())
        await asyncio.wait_for(daemon.wait_started(), timeout=10)
        start = time.perf_counter()
        await _blast(daemon.address, datagrams)
        run_report = await asyncio.wait_for(task, timeout=600)
        return run_report, time.perf_counter() - start

    run_report, elapsed = asyncio.run(main())
    assert run_report.records_committed == len(records)
    assert run_report.records_shed == 0
    return run_report.records_committed / elapsed if elapsed else 0.0


def _run_cluster(seed_detector, records, workers, state_root):
    state_dir = os.path.join(state_root, f"w{workers}")
    shutil.rmtree(state_dir, ignore_errors=True)
    seed_cluster_state(seed_detector, state_dir, workers=workers)
    config = ClusterConfig(
        state_dir=state_dir,
        workers=workers,
        port=0,
        http_port=None,
        queue_capacity=65_536,
        batch_size=512,
        checkpoint_every=1_000_000,  # bench: no mid-run checkpoint cost
        max_records=len(records),
        idle_exit_s=2.0,
        drain_timeout_s=120.0,
    )
    datagrams = list(datagrams_for(records, sys_uptime=0, unix_secs=0))

    async def main():
        supervisor = ClusterSupervisor(config, registry=MetricsRegistry())
        task = asyncio.ensure_future(supervisor.run())
        await asyncio.wait_for(supervisor.wait_started(), timeout=60)
        start = time.perf_counter()
        await _blast(supervisor.address, datagrams)
        run_report = await asyncio.wait_for(task, timeout=600)
        return run_report, time.perf_counter() - start

    run_report, elapsed = asyncio.run(main())
    # Record fate first, throughput second.
    assert run_report.records_unaccounted == 0
    assert run_report.records_committed == len(records)
    assert run_report.records_shed == 0
    assert run_report.restarts == 0
    shutil.rmtree(state_dir, ignore_errors=True)
    return run_report.records_committed / elapsed if elapsed else 0.0


def test_e18_cluster_scaling(tmp_path):
    space = SubBlockSpace()
    eia_plan = eia_allocation(space)
    target_prefix = Prefix.parse("198.18.0.0/16")
    records = _legal_trace(eia_plan, target_prefix)
    detector = make_detector(eia_plan, target_prefix, seed=_SEED, n_train=600)

    baseline_fps = _run_single_loop(detector, records)
    cluster_fps = {
        workers: _run_cluster(detector, records, workers, str(tmp_path))
        for workers in _WORKER_COUNTS
    }

    rows = [
        [
            "single loop (E14 config)",
            len(records),
            f"{baseline_fps:,.0f}",
            "1.00x",
        ]
    ]
    for workers in _WORKER_COUNTS:
        speedup = cluster_fps[workers] / baseline_fps if baseline_fps else 0.0
        rows.append(
            [
                f"cluster, {workers} worker{'s' if workers > 1 else ''}",
                len(records),
                f"{cluster_fps[workers]:,.0f}",
                f"{speedup:.2f}x",
            ]
        )
    lines = table(
        ["path", "records", "records/s", "vs single loop"], rows
    )
    lines.append("")
    if _ASSERT_FLOORS:
        lines.append(
            f"floors armed ({_CORES} cores): monotonic 1->4 workers,"
            " >= 2.00x single loop at 4 workers"
        )
    else:
        lines.append(
            f"floors NOT asserted: {_CORES} usable core(s), scaling"
            " floor needs >= 4 (numbers above are time-sliced)"
        )
    report("E18_cluster_scaling", lines)

    if _ASSERT_FLOORS:
        ordered = [cluster_fps[workers] for workers in _WORKER_COUNTS]
        assert ordered == sorted(ordered), (
            f"cluster throughput must rise with workers, got {ordered}"
        )
        assert cluster_fps[4] >= 2.0 * baseline_fps, (
            f"4-worker cluster at {cluster_fps[4]:,.0f} records/s is below"
            f" the 2x floor over the {baseline_fps:,.0f} records/s"
            " single-loop baseline"
        )
