"""Shared reporting for the benchmark harness.

Each benchmark regenerates one of the paper's tables or figures and calls
:func:`report` with the rows it produced.  The rows are printed (visible
with ``pytest -s`` and in the captured output on failure) and persisted to
``benchmarks/results/<name>.txt`` so a full ``pytest benchmarks/
--benchmark-only`` run leaves a reviewable artefact per experiment.
"""

from __future__ import annotations

import pathlib
from typing import Iterable, Sequence

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def report(name: str, lines: Iterable[str]) -> None:
    """Print and persist one experiment's output rows."""
    rendered = list(lines)
    banner = f"== {name} =="
    print()
    print(banner)
    for line in rendered:
        print(line)
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text("\n".join([banner, *rendered]) + "\n")


def table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> list:
    """Align a small table for report output."""
    materialised = [[str(cell) for cell in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in materialised))
        if materialised
        else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in materialised:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return lines
