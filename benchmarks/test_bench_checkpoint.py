"""Checkpoint benchmarks: save/load latency and warm-restart payoff.

Not paper artefacts — operational numbers for the v2 stage-state
checkpoints: how long writing one costs at different detector sizes
(that bounds ``--checkpoint-every`` overhead), how long a warm restart
takes, and how that compares to the cold-start alternative of
retraining from records (the Section 4.2 off-line-construction claim,
measured).
"""

import io

import pytest

from repro.core import EnhancedInFilter, PipelineConfig
from repro.core.persistence import load_detector, render_state, save_detector
from repro.flowgen import Dagflow, SubBlockSpace, eia_allocation, synthesize_trace
from repro.util import Prefix, SeededRng

TARGET = Prefix.parse("198.18.0.0/16")


def _build(n_train, seed=5150):
    rng = SeededRng(seed, "bench-ckpt")
    plan = eia_allocation(SubBlockSpace())
    detector = EnhancedInFilter(PipelineConfig(), rng=rng.fork("det"))
    for peer, blocks in plan.items():
        detector.preload_eia(peer, blocks)
    dagflow = Dagflow(
        "bench", target_prefix=TARGET, udp_port=9000,
        source_blocks=plan[0], rng=rng.fork("df"),
    )
    training = [
        lr.record.with_key(input_if=0)
        for lr in dagflow.replay(
            synthesize_trace(n_train, rng=rng.fork("trace"))
        )
    ]
    detector.train(training)
    return detector, training


@pytest.mark.parametrize("n_train", [300, 1200, 2400])
def test_checkpoint_save_latency(benchmark, n_train):
    """Rendering the canonical checkpoint text, by trained-model size."""
    detector, _training = _build(n_train)
    text = benchmark(lambda: render_state(detector))
    assert text.startswith('{"components"')


@pytest.mark.parametrize("n_train", [300, 1200, 2400])
def test_checkpoint_save_to_disk_latency(benchmark, tmp_path, n_train):
    """The full atomic write (render + temp file + rename)."""
    detector, _training = _build(n_train)
    path = tmp_path / "ckpt.json"
    benchmark(lambda: save_detector(detector, path, cursor=n_train))
    assert path.exists()


@pytest.mark.parametrize("n_train", [300, 1200, 2400])
def test_warm_restart_latency(benchmark, n_train):
    """Restoring a trained detector from its v2 checkpoint — no training
    replay, the model rebuilds from derived statistics."""
    detector, _training = _build(n_train)
    text = render_state(detector)
    restored = benchmark(lambda: load_detector(io.StringIO(text)))
    assert restored.model is not None


@pytest.mark.parametrize("n_train", [300, 1200, 2400])
def test_cold_start_retraining_latency(benchmark, n_train):
    """The alternative a warm restart avoids: retraining from records.
    Compare against ``test_warm_restart_latency`` at the same size."""
    _detector, training = _build(n_train)

    def retrain():
        rng = SeededRng(5150, "bench-ckpt")
        fresh = EnhancedInFilter(PipelineConfig(), rng=rng.fork("det"))
        fresh.train(training)
        return fresh

    fresh = benchmark(retrain)
    assert fresh.model is not None
