"""Microbenchmarks of the hot paths (real pytest-benchmark rounds).

Not paper artefacts — throughput numbers a deployment would care about:
NetFlow v5 codec, EIA longest-prefix check, KOR NNS search, and unary
encoding.
"""

from repro.core.clusters import ClusterModel
from repro.core.config import NNSConfig
from repro.core.eia import BasicInFilter
from repro.core.encoding import UnaryEncoder
from repro.flowgen import Dagflow, SubBlockSpace, eia_allocation, synthesize_trace
from repro.netflow.v5 import decode_datagram, encode_datagram
from repro.util import Prefix, SeededRng

TARGET = Prefix.parse("198.18.0.0/16")


def _records(count=600, seed=7):
    rng = SeededRng(seed)
    space = SubBlockSpace()
    plan = eia_allocation(space)
    dagflow = Dagflow(
        "bench", target_prefix=TARGET, udp_port=9000,
        source_blocks=plan[0], rng=rng,
    )
    trace = synthesize_trace(count, rng=rng.fork("t"))
    return plan, [lr.record.with_key(input_if=0) for lr in dagflow.replay(trace)]


def test_v5_encode_throughput(benchmark):
    _plan, records = _records()
    batch = records[:30]
    result = benchmark(
        lambda: encode_datagram(batch, sys_uptime=0, unix_secs=0, flow_sequence=0)
    )
    assert len(result) == 24 + 30 * 48


def test_v5_decode_throughput(benchmark):
    _plan, records = _records()
    datagram = encode_datagram(
        records[:30], sys_uptime=0, unix_secs=0, flow_sequence=0
    )
    header, decoded = benchmark(lambda: decode_datagram(datagram))
    assert header.count == 30


def test_eia_check_throughput(benchmark):
    plan, records = _records()
    infilter = BasicInFilter()
    for peer, blocks in plan.items():
        infilter.preload(peer, blocks)
    state = {"i": 0}

    def check_one():
        record = records[state["i"] % len(records)]
        state["i"] += 1
        return infilter.check(record)

    result = benchmark(check_one)
    assert result is not None


def test_unary_encode_throughput(benchmark):
    _plan, records = _records()
    encoder = UnaryEncoder(NNSConfig().features)
    stats = [r.stats() for r in records]
    state = {"i": 0}

    def encode_one():
        value = stats[state["i"] % len(stats)]
        state["i"] += 1
        return encoder.encode(value)

    assert benchmark(encode_one) >= 0


def test_nns_search_throughput(benchmark):
    _plan, records = _records(count=900)
    model = ClusterModel.train(records[:600], NNSConfig(), rng=SeededRng(8))
    probes = records[600:]
    state = {"i": 0}

    def assess_one():
        record = probes[state["i"] % len(probes)]
        state["i"] += 1
        return model.assess(record)

    is_normal, _neighbour, _name = benchmark(assess_one)
    assert is_normal is not None
