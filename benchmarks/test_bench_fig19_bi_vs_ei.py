"""E10 — Figure 19: BI vs EI false positives at 8% attack volume.

Paper: at 8% route changes the Enhanced InFilter shows ~5.25% FP against
~7.4% for the Basic InFilter — roughly a 30% reduction, attributable to
the Scan Analysis / NNS stages clearing part of the route-shifted flows.
"""

from _report import report, table

from repro.testbed import ExperimentParams, TestbedConfig, experiment_route_changes

CHANGES = (1, 2, 4, 8)
TESTBED = TestbedConfig(training_flows=2500)
PARAMS = ExperimentParams(normal_flows_per_peer=1200, runs=3, seed=1909)


def _run():
    common = dict(
        volumes=(0.08,),
        route_changes=CHANGES,
        testbed_config=TESTBED,
        base_params=PARAMS,
    )
    basic = experiment_route_changes(enhanced=False, **common)
    enhanced = experiment_route_changes(enhanced=True, **common)
    return basic, enhanced


def test_e10_figure19_bi_vs_ei(benchmark):
    basic, enhanced = benchmark.pedantic(_run, rounds=1, iterations=1)

    rows = []
    for change in CHANGES:
        bi = basic[(0.08, change)].false_positive_rate
        ei = enhanced[(0.08, change)].false_positive_rate
        reduction = (1 - ei / bi) if bi else 0.0
        rows.append(
            [f"{change}%", f"{bi:.2%}", f"{ei:.2%}", f"{reduction:.0%}"]
        )
    lines = table(
        ["route change", "Basic InFilter", "Enhanced InFilter", "EI reduction"],
        rows,
    )
    lines += [
        "",
        "paper @ 8% route change: BI ~7.4%, EI ~5.25% (~30% reduction)",
    ]
    report("E10_figure19_bi_vs_ei", lines)

    bi8 = basic[(0.08, 8)].false_positive_rate
    ei8 = enhanced[(0.08, 8)].false_positive_rate
    assert ei8 < bi8
    assert 0.10 < 1 - ei8 / bi8 < 0.60   # "almost 30%" reduction band
