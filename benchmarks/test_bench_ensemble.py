"""E17 — the detector ensemble vs the InFilter-only baseline.

One trained detector pair, one labelled trace.  The trace mixes legal
peer-0 traffic (plausible per-source TTLs) with the full stealthy attack
suite replayed through a spoofing Dagflow at the wrong ingress, with both
variation knobs on: every attack flow carries an implausible TTL and a
quarter of them use martian (bogon) source addresses.

Measured per pipeline:

* **throughput** — ``process_all`` flows/sec, so the ensemble's extra
  per-flow work (two auxiliary observes plus the vote) is priced against
  the InFilter-only chain on the identical stream;
* **detection rate** — fraction of attack-labelled flows flagged;
* **false positives** — legal flows flagged (both pipelines).

Equivalence-style checks run unconditionally: under the ``any`` policy
the ensemble can only promote, so its flagged set must be a superset of
the baseline's, and the legal stream must produce identical false
positives (the auxiliary detectors abstain or clear on trained traffic).
The acceptance floors — ensemble throughput at least **0.25x** the
baseline's and a detection-rate uplift on the varied attacks — only
apply to full runs.

Set ``INFILTER_BENCH_QUICK=1`` to run a reduced trace (CI smoke: checks
the supersets and uplift direction, not the floors).
"""

import os
import time

from _report import report, table

from repro.core import EIAConfig, EnhancedInFilter, PipelineConfig
from repro.flowgen import (
    Dagflow,
    STEALTHY_ATTACKS,
    SubBlockSpace,
    eia_allocation,
    generate_attack,
    synthesize_trace,
)
from repro.util import Prefix, SeededRng

QUICK = os.environ.get("INFILTER_BENCH_QUICK", "") not in ("", "0")

#: Legal flows in the probe stream; the attack suite adds its own.  Big
#: enough that per-flow pipeline cost dominates the full-run timings.
_LEGAL_FLOWS = 1_000 if QUICK else 12_000
#: Attack-suite replays appended to the legal stream.
_ATTACK_ROUNDS = 1 if QUICK else 8
_SEED = 20170
_N_TRAIN = 1_500
#: Fraction of attack flows rewritten to martian (bogon) sources.
_MARTIAN_FRACTION = 0.25


def _train(detector, plan, target, rng):
    for peer, blocks in plan.items():
        detector.preload_eia(peer, blocks)
    trainer = Dagflow(
        "trainer",
        target_prefix=target,
        udp_port=9000,
        source_blocks=plan[0],
        rng=rng.fork("df"),
        emit_ttl=True,
    )
    trace = synthesize_trace(_N_TRAIN, rng=rng.fork("trace"))
    detector.train(
        [lr.record.with_key(input_if=0) for lr in trainer.replay(trace)]
    )
    return detector


def _build_pair(plan, target):
    """Identically trained InFilter-only and three-detector pipelines."""
    baseline = EnhancedInFilter(
        PipelineConfig(eia=EIAConfig()),
        rng=SeededRng(_SEED, "bench").fork("det"),
    )
    ensemble = EnhancedInFilter(
        PipelineConfig(
            eia=EIAConfig(),
            detectors=("infilter", "ttl_profile", "bogon"),
            ensemble_policy="any",
        ),
        rng=SeededRng(_SEED, "bench").fork("det"),
    )
    # The same rng seed path per pipeline keeps their training streams —
    # and therefore their learned state — byte-for-byte identical.
    _train(baseline, plan, target, SeededRng(_SEED, "bench-train"))
    _train(ensemble, plan, target, SeededRng(_SEED, "bench-train"))
    return baseline, ensemble


def _labelled_trace(plan, target):
    """(record, is_attack) pairs: legal stream plus the varied suite."""
    rng = SeededRng(_SEED, "bench-probe")
    legal = Dagflow(
        "legal",
        target_prefix=target,
        udp_port=9000,
        source_blocks=plan[0],
        rng=rng.fork("legal"),
        emit_ttl=True,
    )
    labelled = [
        (lr.record.with_key(input_if=0), False)
        for lr in legal.replay(
            synthesize_trace(_LEGAL_FLOWS, rng=rng.fork("t"))
        )
    ]
    foreign = [
        block for peer, blocks in plan.items() if peer != 2
        for block in blocks
    ]
    spoofer = Dagflow(
        "spoof",
        target_prefix=target,
        udp_port=9001,
        source_blocks=foreign,
        rng=rng.fork("spoof"),
        emit_ttl=True,
    )
    for round_no in range(_ATTACK_ROUNDS):
        for name in STEALTHY_ATTACKS:
            attack = generate_attack(
                name,
                rng=rng.fork(f"{name}-{round_no}"),
                implausible_ttl=True,
                martian_fraction=_MARTIAN_FRACTION,
            )
            labelled += [
                (lr.record.with_key(input_if=2), True)
                for lr in spoofer.replay(attack)
            ]
    return labelled


def _score(detector, labelled):
    """Run the stream; return (elapsed_s, flagged indices, fp, hits)."""
    records = [record for record, _ in labelled]
    start = time.perf_counter()
    decisions = detector.process_all(records)
    elapsed = time.perf_counter() - start
    flagged = {
        i for i, decision in enumerate(decisions) if decision.is_attack
    }
    false_pos = sum(
        1 for i in flagged if not labelled[i][1]
    )
    hits = len(flagged) - false_pos
    return elapsed, flagged, false_pos, hits


def test_e17_ensemble_vs_infilter_only():
    space = SubBlockSpace()
    plan = eia_allocation(space)
    target = Prefix.parse("198.18.0.0/16")
    baseline, ensemble = _build_pair(plan, target)
    labelled = _labelled_trace(plan, target)
    n = len(labelled)
    n_attack = sum(1 for _, is_attack in labelled if is_attack)
    n_legal = n - n_attack

    base_s, base_flagged, base_fp, base_hits = _score(baseline, labelled)
    ens_s, ens_flagged, ens_fp, ens_hits = _score(ensemble, labelled)

    # Under the "any" policy the ensemble can only promote verdicts the
    # chain cleared, never suppress chain hits.
    assert base_flagged <= ens_flagged
    # Legal peer-0 traffic matches the training profile, so the
    # auxiliary detectors must not add false positives.
    assert ens_fp == base_fp
    assert ens_hits >= base_hits

    base_rps = n / base_s if base_s else 0.0
    ens_rps = n / ens_s if ens_s else 0.0
    base_det = base_hits / n_attack if n_attack else 0.0
    ens_det = ens_hits / n_attack if n_attack else 0.0
    overhead = ens_rps / base_rps if base_rps else 0.0
    report(
        "E17_ensemble",
        table(
            ["pipeline", "flows", "flows/sec", "detection", "false pos"],
            [
                ["infilter only", n, f"{base_rps:,.0f}",
                 f"{base_det:.1%} ({base_hits}/{n_attack})",
                 f"{base_fp}/{n_legal}"],
                ["ensemble (any)", n, f"{ens_rps:,.0f}",
                 f"{ens_det:.1%} ({ens_hits}/{n_attack})",
                 f"{ens_fp}/{n_legal}"],
                ["relative", "", f"{overhead:.2f}x",
                 f"+{ens_det - base_det:.1%}", ""],
            ],
        ),
    )
    if not QUICK:
        assert overhead >= 0.25, (
            f"ensemble throughput {overhead:.2f}x of the baseline is below"
            " the 0.25x floor"
        )
        assert ens_det >= base_det + 0.005, (
            f"ensemble detection {ens_det:.1%} shows no uplift over the"
            f" baseline's {base_det:.1%} on TTL/martian-varied attacks"
        )
