"""E3 — Section 3.2 / Figure 5: source-AS-set mapping stability.

Paper results over 30 days of Routeviews data at 2-hour snapshots
(346 usable data points): average fractional source-AS-set change per
reading 1.6%, maximum 5%, growing with the target's peer-AS count.
"""

from _report import report, table

from repro.routing.topology import TopologyParams
from repro.util.timebase import DAY
from repro.validation import BgpStudyConfig, run_bgp_study


def test_e3_figure5_bgp_stability(benchmark):
    config = BgpStudyConfig(
        n_targets=20,
        duration_s=30 * DAY,
        topology=TopologyParams(n_tier1=8, n_tier2=40, n_stub=200),
    )
    result = benchmark.pedantic(run_bgp_study, args=(config,), rounds=1, iterations=1)

    rows = [
        [peers, f"{change:.2%}"] for peers, change in result.figure5_points()
    ]
    lines = table(["peer ASes", "mean change/reading"], rows)
    lines += [
        "",
        f"snapshots taken:  {result.snapshots_taken}"
        f" (paper: 346; missing: {result.snapshots_missing})",
        f"average change:   {result.overall_mean_change:.2%}  (paper: 1.6%)",
        f"maximum change:   {result.overall_max_change:.2%}  (paper: 5%)",
    ]
    report("E3_figure5_bgp_stability", lines)

    assert result.snapshots_taken > 300
    assert 0.002 < result.overall_mean_change < 0.06
    assert result.overall_max_change < 0.5

    # Shape: targets with more peers churn more.  Compare the mean change
    # of the bottom and top halves by peer count.
    points = result.figure5_points()
    half = len(points) // 2
    low = sum(change for _, change in points[:half]) / half
    high = sum(change for _, change in points[half:]) / (len(points) - half)
    assert high >= low
