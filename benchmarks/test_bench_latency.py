"""E11 — Section 6.4 processing latency.

Paper (2004 hardware): Basic InFilter ~0.5 ms per flow; Enhanced InFilter
2-6 ms.  Absolute numbers are hardware-bound; the shape to preserve is
that the Enhanced configuration costs several times the Basic one on
suspect flows (the NNS search overhead).

This module also microbenchmarks the per-stage costs with real
pytest-benchmark rounds.
"""

from _report import report, table

from repro.testbed import ExperimentParams, TestbedConfig, measure_latency
from tests.conftest import make_detector
from repro.flowgen import Dagflow, SubBlockSpace, eia_allocation, synthesize_trace
from repro.util import Prefix, SeededRng

TESTBED = TestbedConfig(training_flows=2000)
PARAMS = ExperimentParams(normal_flows_per_peer=800, runs=2, seed=2011)


def test_e11_pipeline_latency(benchmark):
    latency = benchmark.pedantic(
        measure_latency,
        kwargs=dict(testbed_config=TESTBED, base_params=PARAMS),
        rounds=1,
        iterations=1,
    )
    ratio = latency["enhanced"] / latency["basic"] if latency["basic"] else 0.0
    report(
        "E11_latency",
        table(
            ["configuration", "paper (2004 hw)", "measured mean/flow"],
            [
                ["Basic InFilter", "~0.5 ms", f"{latency['basic'] * 1000:.4f} ms"],
                ["Enhanced InFilter", "2-6 ms", f"{latency['enhanced'] * 1000:.4f} ms"],
                ["EI / BI ratio", "~4-12x", f"{ratio:.1f}x"],
            ],
        ),
    )
    assert latency["enhanced"] > latency["basic"]


def _suspect_stream():
    space = SubBlockSpace()
    plan = eia_allocation(space)
    rng = SeededRng(2012)
    target = Prefix.parse("198.18.0.0/16")
    detector = make_detector(plan, target, seed=2013)
    foreign = [b for p, blocks in plan.items() if p != 0 for b in blocks]
    dagflow = Dagflow(
        "susp", target_prefix=target, udp_port=9000,
        source_blocks=foreign, rng=rng,
    )
    trace = synthesize_trace(400, rng=rng.fork("t"))
    records = [lr.record.with_key(input_if=0) for lr in dagflow.replay(trace)]
    return detector, records


def test_e11_enhanced_suspect_path_microbench(benchmark):
    detector, records = _suspect_stream()
    state = {"i": 0}

    def process_one():
        record = records[state["i"] % len(records)]
        state["i"] += 1
        return detector.process(record)

    benchmark(process_one)
    # Suspect flows traverse EIA + Scan + NNS; just assert it ran.
    assert detector.stats.processed > 0
