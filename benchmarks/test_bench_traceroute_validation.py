"""E1/E2 — Section 3.1.1: Looking-Glass last-hop stability.

Paper results:
  24-hour run @ 30 min: 4.8% raw changes, 0.4% after aggregation.
  4-day run  @ 60 min: 6.4% raw changes, 0.6% after aggregation.

Shape to reproduce: aggregation collapses the change rate by an order of
magnitude, and the longer sampling period sees more changes per reading.
"""

from _report import report, table

from repro.util.timebase import DAY, HOUR, MINUTE
from repro.validation import TracerouteStudyConfig, run_traceroute_study


def test_e1_24_hour_run(benchmark):
    config = TracerouteStudyConfig(
        n_sites=24, n_targets=20, period_s=30 * MINUTE, duration_s=24 * HOUR
    )
    result = benchmark.pedantic(
        run_traceroute_study, args=(config,), rounds=1, iterations=1
    )
    report(
        "E1_traceroute_24h",
        table(
            ["metric", "paper", "measured"],
            [
                ["samples", "~10,000", result.samples],
                ["raw change rate", "4.8%", f"{result.raw_change_rate:.2%}"],
                ["/24-smoothed", "(not reported)", f"{result.subnet_change_rate:.2%}"],
                ["aggregated (FQDN)", "0.4%", f"{result.fqdn_change_rate:.2%}"],
            ],
        ),
    )
    assert result.samples > 5_000
    assert 0.01 < result.raw_change_rate < 0.15
    assert result.fqdn_change_rate < 0.02
    assert result.fqdn_change_rate < result.raw_change_rate / 4


def test_e2_4_day_run(benchmark):
    config = TracerouteStudyConfig(
        n_sites=24, n_targets=20, period_s=60 * MINUTE, duration_s=4 * DAY, seed=37
    )
    result = benchmark.pedantic(
        run_traceroute_study, args=(config,), rounds=1, iterations=1
    )
    report(
        "E2_traceroute_4day",
        table(
            ["metric", "paper", "measured"],
            [
                ["samples", "~31,000", result.samples],
                ["raw change rate", "6.4%", f"{result.raw_change_rate:.2%}"],
                ["/24-smoothed", "(not reported)", f"{result.subnet_change_rate:.2%}"],
                ["aggregated (FQDN)", "0.6%", f"{result.fqdn_change_rate:.2%}"],
            ],
        ),
    )
    assert result.samples > 20_000
    assert 0.02 < result.raw_change_rate < 0.2
    assert result.fqdn_change_rate < 0.03
    assert result.fqdn_change_rate < result.raw_change_rate / 4
