"""E8 — Figure 17: Basic InFilter false positives vs route instability.

Paper: BI false-positive rate grows with route-change volume (reaching
~7.4% at 8% instability) and is insensitive to attack volume; detection
stays at ~100% throughout.
"""

from _report import report, table

from repro.testbed import ExperimentParams, TestbedConfig, experiment_route_changes

VOLUMES = (0.02, 0.04, 0.08)
CHANGES = (1, 2, 4, 8)
TESTBED = TestbedConfig(training_flows=2500)
PARAMS = ExperimentParams(normal_flows_per_peer=1200, runs=3, seed=1707)


def _run():
    return experiment_route_changes(
        volumes=VOLUMES,
        route_changes=CHANGES,
        enhanced=False,
        testbed_config=TESTBED,
        base_params=PARAMS,
    )


def test_e8_figure17_bi_false_positives(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)

    rows = []
    for change in CHANGES:
        rows.append(
            [f"{change}%"]
            + [f"{results[(v, change)].false_positive_rate:.2%}" for v in VOLUMES]
        )
    lines = table(
        ["route change", *(f"{v:.0%} attacks" for v in VOLUMES)], rows
    )
    lines += [
        "",
        "paper: FP grows ~linearly with route change (to ~7.4% at 8%);",
        "BI detection stays ~100%:"
        f" measured {min(results[key].detection_rate for key in results):.1%} minimum",
    ]
    report("E8_figure17_bi_route_change", lines)

    for volume in VOLUMES:
        fp = [results[(volume, change)].false_positive_rate for change in CHANGES]
        assert fp[-1] > fp[0]            # grows with instability
        assert 0.04 < fp[-1] < 0.12      # ~7.4% band at 8%
    for key in results:
        assert results[key].detection_rate == 1.0
