"""A2 — InFilter vs the Section 2 related-work baselines.

Quantifies the paper's qualitative comparisons on one common workload:
uRPF (asymmetry false positives), history-based filtering (blind to
spoofing from legitimate space, volume-gated), and a signature IDS with
a pre-outbreak database (misses the stealthy set entirely).
"""

from _report import report, table

from repro.baselines import compare_baselines
from repro.testbed import ExperimentParams, TestbedConfig

TESTBED = TestbedConfig(training_flows=2000)
PARAMS = ExperimentParams(
    attack_volume=0.06, normal_flows_per_peer=1000, runs=2, seed=2302
)


def test_a2_baseline_comparison(benchmark):
    results = benchmark.pedantic(
        compare_baselines, args=(TESTBED, PARAMS), rounds=1, iterations=1
    )

    rows = [
        [
            name,
            f"{series.detection_rate:.1%}",
            f"{series.false_positive_rate:.2%}",
        ]
        for name, series in results.items()
    ]
    report("A2_baselines", table(["detector", "detection", "false positives"], rows))

    ei = results["enhanced_infilter"]
    # InFilter's selling point: detection near the BI ceiling with FPs an
    # order of magnitude below uRPF's asymmetry penalty.
    assert results["basic_infilter"].detection_rate == 1.0
    assert ei.detection_rate > 0.6
    assert ei.false_positive_rate < results["urpf"].false_positive_rate / 3
    assert results["signature_ids"].detection_rate < ei.detection_rate
