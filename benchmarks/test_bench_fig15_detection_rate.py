"""E6 — Figure 15: attack detection rate.

Paper: ~83% of launched attacks detected with a single attack set at
2/4/8% attack volume, dropping to ~70% under the 10-attack-set stress
load; volume itself barely moves the rate.
"""

from _report import report, table

from repro.testbed import (
    ExperimentParams,
    TestbedConfig,
    experiment_spoofed_attacks,
    experiment_stress,
)

VOLUMES = (0.02, 0.04, 0.08)
TESTBED = TestbedConfig(training_flows=2500)
PARAMS = ExperimentParams(normal_flows_per_peer=1200, runs=3)


def _run():
    single = experiment_spoofed_attacks(
        VOLUMES, testbed_config=TESTBED, base_params=PARAMS
    )
    stress = experiment_stress(
        VOLUMES, testbed_config=TESTBED, base_params=PARAMS
    )
    return single, stress


def test_e6_figure15_detection_rate(benchmark):
    single, stress = benchmark.pedantic(_run, rounds=1, iterations=1)

    rows = []
    for volume in VOLUMES:
        rows.append(
            [
                f"{volume:.0%}",
                f"{single[volume].detection_rate:.1%}",
                f"{stress[volume].detection_rate:.1%}",
            ]
        )
    lines = table(
        ["attack volume", "single set (paper ~83%)", "10 sets (paper ~70%)"], rows
    )
    lines.append("")
    lines += table(
        ["attack type", "detected/launched (single set, all volumes)"],
        [
            [name, f"{d}/{t}"]
            for name, (d, t) in _merge_types(single).items()
        ],
    )
    report("E6_figure15_detection_rate", lines)

    for volume in VOLUMES:
        assert single[volume].detection_rate > 0.6
        assert stress[volume].detection_rate > 0.5
        # The stress load degrades detection (paper: ~83% -> ~70%).
        assert (
            stress[volume].detection_rate
            <= single[volume].detection_rate + 0.05
        )
    # Volume does not materially change the single-set rate (paper: flat).
    rates = [single[v].detection_rate for v in VOLUMES]
    assert max(rates) - min(rates) < 0.25


def _merge_types(results):
    merged = {}
    for series in results.values():
        for name, (detected, total) in series.by_type().items():
            have = merged.get(name, (0, 0))
            merged[name] = (have[0] + detected, have[1] + total)
    return dict(sorted(merged.items()))
