"""Benchmark-suite configuration: make the repo root importable so the
benches can reuse the test-suite factories (``tests.conftest``)."""

import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
if str(ROOT) not in sys.path:
    sys.path.insert(0, str(ROOT))
