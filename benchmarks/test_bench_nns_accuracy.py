"""A4 — NNS accuracy vs its parameters (Section 4.2).

The paper: "The level of accuracy of the search depends on the values of
these quantities [M1, M2, M3] as inferred from [KOR]."  This bench
quantifies that on a fixed training cluster: for a grid of (M2, M3) the
approximate search's mean distance ratio against the exact nearest
neighbour, plus the recall of exact matches.
"""

from _report import report, table

from repro.core.config import FeatureSpec, NNSConfig
from repro.core.encoding import UnaryEncoder
from repro.core.nns import NNSStructure, TrainingFlow
from repro.netflow.records import FlowStats
from repro.util.rng import SeededRng

GRID = ((8, 2), (12, 3), (16, 4))  # (M2, M3); (12, 3) is the paper's


def _stats(v):
    return FlowStats(
        octets=v * 1_000,
        packets=v,
        duration_ms=v * 100,
        bit_rate=v * 800.0,
        packet_rate=v * 1.0,
    )


def _evaluate(m2, m3):
    config = NNSConfig(m1=1, m2=m2, m3=m3)
    encoder = UnaryEncoder(config.features)
    rng = SeededRng(2404, f"nns-{m2}-{m3}")
    flows = [
        TrainingFlow(index=i, stats=_stats(v), encoded=encoder.encode(_stats(v)))
        for i, v in enumerate(range(2, 400, 4))
    ]
    structure = NNSStructure(encoder, config, flows, rng=rng)
    ratios = []
    found = 0
    probes = 0
    for v in range(1, 400, 3):
        probes += 1
        query = encoder.encode(_stats(v))
        approx = structure.nearest(query)
        exact = structure.nearest_exact(query)
        if approx is None:
            continue
        found += 1
        if exact.distance == 0:
            ratios.append(1.0 if approx.distance == 0 else 2.0)
        else:
            ratios.append(approx.distance / exact.distance)
    mean_ratio = sum(ratios) / len(ratios) if ratios else float("inf")
    return mean_ratio, found / probes, structure.scales_built


def _sweep():
    return {pair: _evaluate(*pair) for pair in GRID}


def test_a4_nns_parameter_accuracy(benchmark):
    results = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    rows = [
        [
            f"M2={m2}, M3={m3}" + ("  (paper)" if (m2, m3) == (12, 3) else ""),
            f"{ratio:.2f}x",
            f"{recall:.1%}",
            scales,
        ]
        for (m2, m3), (ratio, recall, scales) in results.items()
    ]
    report(
        "A4_nns_accuracy",
        table(
            ["parameters", "mean dist ratio vs exact", "answer rate", "scales built"],
            rows,
        ),
    )

    paper_ratio, paper_recall, _ = results[(12, 3)]
    # The paper's parameters give a good approximation on realistic data.
    assert paper_ratio < 2.0
    assert paper_recall > 0.95
