"""A1 — ablations over the design choices DESIGN.md calls out.

Not a paper figure: quantifies what each Enhanced InFilter stage and
parameter buys, on the 8%-instability workload where the stages matter
most.

* Scan Analysis on/off — how much of the detection/FP behaviour the scan
  stage carries;
* NNS threshold slack — the FP/detection trade-off of the per-cluster
  distance thresholds;
* EIA learning threshold — route-change adaptation speed.
"""

from dataclasses import replace

from _report import report, table

from repro.testbed import ExperimentParams, TestbedConfig, run_point

TESTBED = TestbedConfig(training_flows=2000)
BASE = ExperimentParams(
    attack_volume=0.04,
    normal_flows_per_peer=1000,
    runs=2,
    rotate_allocations=True,
    route_change_blocks=8,
    seed=2201,
)


def _sweep():
    points = {}
    points["baseline (EI)"] = run_point(TESTBED, BASE)
    points["scan disabled"] = run_point(TESTBED, replace(BASE, scan_enabled=False))
    for slack in (1.0, 2.0, 4.0):
        points[f"nns slack {slack}"] = run_point(
            TESTBED, replace(BASE, nns_threshold_slack=slack)
        )
    for threshold in (3, 30):
        points[f"eia learn {threshold}"] = run_point(
            TESTBED, replace(BASE, eia_learning_threshold=threshold)
        )
    for granularity in (8, 16):
        points[f"eia granularity /{granularity}"] = run_point(
            TESTBED, replace(BASE, eia_granularity=granularity)
        )
    return points


def test_a1_ablations(benchmark):
    points = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    rows = [
        [
            name,
            f"{series.detection_rate:.1%}",
            f"{series.false_positive_rate:.2%}",
        ]
        for name, series in points.items()
    ]
    report("A1_ablation", table(["variant", "detection", "false positives"], rows))

    baseline = points["baseline (EI)"]
    # Disabling Scan Analysis must not increase false positives (the scan
    # stage can only add flags) and must hurt scan-type detection.
    assert (
        points["scan disabled"].false_positive_rate
        <= baseline.false_positive_rate + 0.005
    )
    # Looser NNS thresholds clear more suspects: FP falls monotonically.
    assert (
        points["nns slack 4.0"].false_positive_rate
        <= points["nns slack 1.0"].false_positive_rate
    )
    # Faster EIA learning absorbs route changes sooner: fewer FPs.
    assert (
        points["eia learn 3"].false_positive_rate
        <= points["eia learn 30"].false_positive_rate + 0.005
    )
