"""E15 — vectorized zero-copy fastpath vs the serial baseline.

Two planes of ``repro.fastpath`` are measured against the serial
record-at-a-time implementations they shadow, on the same suspect-heavy
flood E19 uses (so the serial flows/sec baseline is directly comparable
across the two experiments):

* **decode** — whole v5 datagrams through ``struct.iter_unpack`` over a
  ``memoryview`` (:func:`repro.fastpath.columnar.decode_v5_columnar`)
  vs ``decode_datagram``'s per-record loop, with decoded-record
  equality asserted on every datagram;
* **verdicts** — ``process_batch`` with the cross-batch EIA verdict
  memo (``enable_fastpath``) vs serial ``process_all`` on an
  identically built detector, with the full decision stream compared
  signature by signature.

The acceptance floor is the design issue's: the fastpath verdict plane
must clear **10x** the serial baseline's flows/sec.  Equivalence is
asserted unconditionally; the throughput floor only in full runs.

Set ``INFILTER_BENCH_QUICK=1`` to run a reduced trace (CI smoke: checks
decode and verdict equivalence, not the speedup ratio).
"""

import os
import time

from _report import report, table

from repro.core import EIAConfig, PipelineConfig
from repro.fastpath.columnar import decode_v5_columnar
from repro.flowgen import SubBlockSpace, eia_allocation
from repro.netflow.records import FlowKey, FlowRecord
from repro.netflow.v5 import MAX_RECORDS_PER_DATAGRAM, decode_datagram, encode_datagram
from repro.util import Prefix, SeededRng
from tests.conftest import make_detector

QUICK = os.environ.get("INFILTER_BENCH_QUICK", "") not in ("", "0")

#: Enough flows that per-flow Python cost, not warm-up, dominates both
#: timings; the quick run only checks machinery and equivalence.
_FLOWS = 2_000 if QUICK else 20_000
_SEED = 20150
_BATCH = 512

#: The flood's repeated flow shapes: (packets, octets, duration_ms) —
#: the same archetype mix as E19, so the serial baselines line up.
_SHAPES = [
    (1, 40 + 24 * i, 1 + 7 * (i % 5)) for i in range(8)
] + [
    (2 + i, 90 * (2 + i), 40 + 11 * i) for i in range(8)
]


def _build_detector(plan, target):
    config = PipelineConfig(eia=EIAConfig())
    return make_detector(plan, target, seed=_SEED, config=config, n_train=1200)


def _suspect_heavy_trace(plan, target):
    """A spoofed single-victim UDP flood arriving at the wrong ingress."""
    rng = SeededRng(2015, "fastpath-bench")
    foreign = [b for peer, blocks in plan.items() if peer != 0 for b in blocks]
    victim = target.network + 0x99
    records = []
    for i in range(_FLOWS):
        block = foreign[i % len(foreign)]
        src = block.network + rng.randint(1, max(block.size() - 2, 1))
        packets, octets, duration = _SHAPES[i % len(_SHAPES)]
        first = i * 3
        records.append(
            FlowRecord(
                key=FlowKey(
                    src_addr=src,
                    dst_addr=victim,
                    protocol=17,
                    src_port=1024 + (i % 32_000),
                    dst_port=9999,
                    input_if=0,
                ),
                packets=packets,
                octets=octets,
                first=first,
                last=first + duration,
            )
        )
    return records


def _verdicts(detector):
    stats = detector.stats
    return (stats.processed, stats.legal, stats.benign, stats.attacks,
            stats.absorbed)


def _signature(decision):
    return (
        decision.verdict,
        decision.stage,
        decision.eia,
        decision.absorbed,
        decision.protocol_class,
    )


def test_e15_columnar_decode_vs_serial():
    space = SubBlockSpace()
    plan = eia_allocation(space)
    target = Prefix.parse("198.18.0.0/16")
    records = _suspect_heavy_trace(plan, target)
    datagrams = [
        encode_datagram(
            records[start:start + MAX_RECORDS_PER_DATAGRAM],
            sys_uptime=1, unix_secs=2, flow_sequence=start,
        )
        for start in range(0, len(records), MAX_RECORDS_PER_DATAGRAM)
    ]

    start = time.perf_counter()
    serial_decoded = [decode_datagram(data) for data in datagrams]
    serial_s = time.perf_counter() - start

    start = time.perf_counter()
    columnar_decoded = [decode_v5_columnar(data) for data in datagrams]
    columnar_s = time.perf_counter() - start

    # Equivalence first: the columnar plane must produce the identical
    # header and record stream for every datagram.
    for (s_header, s_records), (c_header, batch) in zip(
        serial_decoded, columnar_decoded
    ):
        assert c_header == s_header
        assert batch.records() == s_records

    n = len(records)
    serial_rps = n / serial_s if serial_s else 0.0
    columnar_rps = n / columnar_s if columnar_s else 0.0
    speedup = columnar_rps / serial_rps if serial_rps else 0.0
    report(
        "E15_fastpath_decode",
        table(
            ["path", "datagrams", "records", "elapsed", "records/sec"],
            [
                ["serial decode_datagram", len(datagrams), n,
                 f"{serial_s:.3f}s", f"{serial_rps:,.0f}"],
                ["columnar iter_unpack", len(datagrams), n,
                 f"{columnar_s:.3f}s", f"{columnar_rps:,.0f}"],
                ["speedup", "", "", "", f"{speedup:.2f}x"],
            ],
        ),
    )
    if not QUICK:
        assert speedup >= 1.5, (
            f"columnar decode speedup {speedup:.2f}x below the 1.5x floor"
        )


def test_e15_fastpath_verdict_throughput_vs_serial():
    space = SubBlockSpace()
    plan = eia_allocation(space)
    target = Prefix.parse("198.18.0.0/16")
    records = _suspect_heavy_trace(plan, target)

    serial_detector = _build_detector(plan, target)
    start = time.perf_counter()
    serial_decisions = serial_detector.process_all(records)
    serial_s = time.perf_counter() - start

    fast_detector = _build_detector(plan, target)
    fast_detector.enable_fastpath()
    fast_decisions = []
    start = time.perf_counter()
    for begin in range(0, len(records), _BATCH):
        result = fast_detector.process_batch(records[begin:begin + _BATCH])
        fast_decisions.extend(result.decisions)
    fast_s = time.perf_counter() - start

    # Zero verdict changes: the entire decision stream must match the
    # serial reference, not just the aggregate counters.
    assert list(map(_signature, fast_decisions)) == list(
        map(_signature, serial_decisions)
    )
    assert _verdicts(fast_detector) == _verdicts(serial_detector)

    assert fast_detector.fastpath is not None
    memo = fast_detector.fastpath.stats()
    serial_fps = len(records) / serial_s if serial_s else 0.0
    fast_fps = len(records) / fast_s if fast_s else 0.0
    speedup = fast_fps / serial_fps if serial_fps else 0.0
    report(
        "E15_fastpath_throughput",
        table(
            ["path", "flows", "elapsed", "flows/sec"],
            [
                ["serial process_all", len(records), f"{serial_s:.3f}s",
                 f"{serial_fps:,.0f}"],
                [f"fastpath batches={_BATCH}", len(records), f"{fast_s:.3f}s",
                 f"{fast_fps:,.0f}"],
                ["speedup", "", "", f"{speedup:.2f}x"],
                ["memo hits", memo["hits"], "", ""],
                ["memo misses", memo["misses"], "", ""],
            ],
        ),
    )
    if not QUICK:
        assert speedup >= 10.0, (
            f"fastpath speedup {speedup:.2f}x below the 10x acceptance floor"
            f" (serial {serial_fps:,.0f} fps, fastpath {fast_fps:,.0f} fps)"
        )
