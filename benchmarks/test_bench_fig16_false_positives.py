"""E7 — Figure 16: false-positive rate, single vs replicated attack sets.

Paper: ~1.25% false positives with a single attack set, rising to ~4%
under the 10-set stress load (spoofed flows contaminate the scan buffers
and the EIA learning rule, dragging legitimate route-shifted traffic
into alerts).
"""

from _report import report, table

from repro.testbed import (
    ExperimentParams,
    TestbedConfig,
    experiment_spoofed_attacks,
    experiment_stress,
)

VOLUMES = (0.02, 0.04, 0.08)
TESTBED = TestbedConfig(training_flows=2500)
PARAMS = ExperimentParams(normal_flows_per_peer=1200, runs=3, seed=1606)


def _run():
    single = experiment_spoofed_attacks(
        VOLUMES, testbed_config=TESTBED, base_params=PARAMS
    )
    stress = experiment_stress(
        VOLUMES, testbed_config=TESTBED, base_params=PARAMS
    )
    return single, stress


def test_e7_figure16_false_positive_rate(benchmark):
    single, stress = benchmark.pedantic(_run, rounds=1, iterations=1)

    rows = [
        [
            f"{volume:.0%}",
            f"{single[volume].false_positive_rate:.2%}",
            f"{stress[volume].false_positive_rate:.2%}",
        ]
        for volume in VOLUMES
    ]
    report(
        "E7_figure16_false_positives",
        table(
            ["attack volume", "single set (paper ~1.25%)", "10 sets (paper ~4%)"],
            rows,
        ),
    )

    for volume in VOLUMES:
        # The Section 6.2 baseline (2% of normal traffic route-shifted)
        # keeps single-set FPs low but nonzero (paper: ~1.25%).
        assert 0.0 < single[volume].false_positive_rate < 0.04
        # Stress: stays in the same band.  NOTE: the paper reports a rise
        # to ~4%, which exceeds the 2% route-shifted baseline — its
        # prototype must have flagged EIA-legal flows under load.  Our
        # idealised pipeline only ever flags EIA-suspect flows, so the
        # stress FP is capped by the baseline; see EXPERIMENTS.md.
        assert (
            stress[volume].false_positive_rate
            >= single[volume].false_positive_rate * 0.5
        )
        assert stress[volume].false_positive_rate < 0.05
