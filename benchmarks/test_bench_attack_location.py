"""A3 — sensitivity to the location of attack sources (Section 6.3).

The paper lists "sensitivity to location of attack sources" among the
experiment design goals.  The InFilter check is symmetric across peers by
construction (every peer has an EIA set of the same shape), so detection
should not depend on *which* border router the spoofed traffic enters.
This bench verifies that: the same attack mix is injected through each
peer in turn and the detection spread across ingress choices must be
small.
"""

from dataclasses import replace

from _report import report, table

from repro.testbed import ExperimentParams, TestbedConfig, run_point

TESTBED = TestbedConfig(training_flows=2000)
BASE = ExperimentParams(
    attack_volume=0.06, normal_flows_per_peer=800, runs=2, seed=2403
)
INGRESSES = (0, 3, 6, 9)


def _sweep():
    return {
        peer: run_point(TESTBED, replace(BASE, attack_peers=(peer,)))
        for peer in INGRESSES
    }


def test_a3_attack_location_sensitivity(benchmark):
    results = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    rows = [
        [
            f"peer AS{peer + 1}",
            f"{series.detection_rate:.1%}",
            f"{series.false_positive_rate:.2%}",
        ]
        for peer, series in results.items()
    ]
    report(
        "A3_attack_location",
        table(["attack ingress", "detection", "false positives"], rows)
        + ["", "expected: detection independent of the ingress choice"],
    )

    rates = [series.detection_rate for series in results.values()]
    assert max(rates) - min(rates) < 0.25
    assert min(rates) > 0.5
