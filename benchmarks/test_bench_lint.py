"""E16 — full-tree lint wall-clock: serial vs parallel vs incremental.

PR 8 turned ``repro.analysis`` into a two-phase whole-program analyzer
and gave the runner a parallel file phase (``jobs``) and a content-hash
incremental cache (``cache_dir``).  Those are performance knobs only —
all modes must produce identical sorted findings — so this bench pins
both halves of the claim on the repository's own tree: equivalence
always, and a >= 3x wall-clock win for a warm incremental lint over the
cold serial baseline.

The warm win does not depend on core count: a warm lint replays
per-file findings from content-hash hits and the project phase from the
graph fingerprint, parsing nothing.  Parallel numbers are reported but
carry no floor — on a single-core runner the pool is pure overhead.

Set ``INFILTER_BENCH_QUICK=1`` to skip the timing floor (CI smoke:
checks mode equivalence, not the speedup).
"""

import os
import shutil
import time
from pathlib import Path

from _report import report, table

from repro.analysis import run

QUICK = os.environ.get("INFILTER_BENCH_QUICK", "") not in ("", "0")

_REPO_ROOT = Path(__file__).resolve().parents[1]
_LINT_PATHS = [str(_REPO_ROOT / "src"), str(_REPO_ROOT / "tests")]


def _timed(**kwargs):
    started = time.perf_counter()
    findings = run(_LINT_PATHS, **kwargs)
    return findings, time.perf_counter() - started


def test_lint_modes_equivalent_and_incremental_fast(tmp_path):
    cache_dir = tmp_path / "lint-cache"

    serial, serial_s = _timed()
    parallel, parallel_s = _timed(jobs=0)
    cold, cold_s = _timed(cache_dir=cache_dir)
    warm, warm_s = _timed(cache_dir=cache_dir)
    warm_parallel, warm_parallel_s = _timed(cache_dir=cache_dir, jobs=0)

    # The load-bearing equality: every mode yields the same findings in
    # the same order (the tree is lint-clean, so that's [] == [] — but
    # the assertion holds for any tree state).
    assert serial == parallel == cold == warm == warm_parallel

    speedup = serial_s / warm_s if warm_s > 0 else float("inf")
    rows = [
        ("serial (baseline)", f"{serial_s * 1000:.0f}", "1.00x"),
        ("parallel --jobs 0", f"{parallel_s * 1000:.0f}",
         f"{serial_s / parallel_s:.2f}x"),
        ("incremental cold", f"{cold_s * 1000:.0f}",
         f"{serial_s / cold_s:.2f}x"),
        ("incremental warm", f"{warm_s * 1000:.0f}", f"{speedup:.2f}x"),
        ("incremental warm + parallel", f"{warm_parallel_s * 1000:.0f}",
         f"{serial_s / warm_parallel_s:.2f}x"),
    ]
    report(
        "E16_lint_incremental",
        [
            f"full-tree lint of src+tests, findings identical in all modes"
            f" ({len(serial)} findings)",
            "",
            *table(("mode", "wall ms", "vs serial"), rows),
            "",
            f"warm incremental speedup over cold serial: {speedup:.1f}x"
            " (floor: 3x)",
        ],
    )
    shutil.rmtree(cache_dir, ignore_errors=True)
    if not QUICK:
        assert speedup >= 3.0, (
            f"warm incremental lint only {speedup:.2f}x over serial"
        )
