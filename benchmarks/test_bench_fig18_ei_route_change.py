"""E9 — Figure 18: Enhanced InFilter false positives vs route instability.

Paper: same growth shape as Figure 17 but consistently lower than the
Basic InFilter (topping out a little over 5.25% at 8% instability), with
detection staying around 80%.
"""

from _report import report, table

from repro.testbed import ExperimentParams, TestbedConfig, experiment_route_changes

VOLUMES = (0.02, 0.04, 0.08)
CHANGES = (1, 2, 4, 8)
TESTBED = TestbedConfig(training_flows=2500)
PARAMS = ExperimentParams(normal_flows_per_peer=1200, runs=3, seed=1808)


def _run():
    return experiment_route_changes(
        volumes=VOLUMES,
        route_changes=CHANGES,
        enhanced=True,
        testbed_config=TESTBED,
        base_params=PARAMS,
    )


def test_e9_figure18_ei_false_positives(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)

    rows = []
    for change in CHANGES:
        rows.append(
            [f"{change}%"]
            + [f"{results[(v, change)].false_positive_rate:.2%}" for v in VOLUMES]
        )
    lines = table(
        ["route change", *(f"{v:.0%} attacks" for v in VOLUMES)], rows
    )
    detection = [results[key].detection_rate for key in results]
    lines += [
        "",
        "paper: FP grows with route change to ~5.25% at 8%;",
        f"EI detection ~80%: measured mean"
        f" {sum(detection) / len(detection):.1%}",
    ]
    report("E9_figure18_ei_route_change", lines)

    for volume in VOLUMES:
        fp = [results[(volume, change)].false_positive_rate for change in CHANGES]
        assert fp[-1] > fp[0]
        assert 0.02 < fp[-1] < 0.09      # ~5.25% band at 8%
    assert 0.6 < sum(detection) / len(detection) <= 1.0
