"""E14 — serving-daemon loopback throughput and ingest-to-verdict latency.

The ``repro.serve`` daemon is the live deployment of the paper's
Figure 9 collector: v5 export datagrams arrive on a real UDP socket,
pass the sequence/loss accounting, a bounded queue, and the
micro-batching commit worker.  This bench measures what the whole
chain sustains on loopback — records per second from first datagram to
drained report — and the ingest-to-verdict latency distribution the
commit worker samples per record (time from queue admission to the
batch commit that produced its verdict).

Latency percentiles come from :meth:`CommitWorker.latency_percentile`,
i.e. the same reservoir the ``/metrics`` endpoint exports, so the bench
doubles as a check that the operator-facing numbers are plumbed.

Set ``INFILTER_BENCH_QUICK=1`` to run a reduced trace (CI smoke: checks
the machinery and the reconciliation, not the throughput floor).
"""

import os
import socket
import time

import asyncio

from _report import report, table

from repro.flowgen import Dagflow, SubBlockSpace, eia_allocation, synthesize_trace
from repro.netflow.v5 import datagrams_for
from repro.obs import MetricsRegistry
from repro.serve import ServeConfig, ServeDaemon
from repro.util import Prefix, SeededRng
from tests.conftest import make_detector

QUICK = os.environ.get("INFILTER_BENCH_QUICK", "") not in ("", "0")

#: Enough records that steady-state batch commits, not daemon start-up,
#: dominate the wall clock; the quick run only checks the machinery.
_RECORDS = 3_000 if QUICK else 30_000
_SEED = 20130


def _legal_trace(eia_plan, target_prefix):
    rng = SeededRng(_SEED, "serve-bench")
    dagflow = Dagflow(
        "bench",
        target_prefix=target_prefix,
        udp_port=9000,
        source_blocks=eia_plan[0],
        rng=rng.fork("df"),
    )
    trace = synthesize_trace(_RECORDS, rng=rng.fork("trace"))
    return [lr.record.with_key(input_if=0) for lr in dagflow.replay(trace)]


def test_e14_serve_loopback_throughput():
    space = SubBlockSpace()
    eia_plan = eia_allocation(space)
    target_prefix = Prefix.parse("198.18.0.0/16")
    records = _legal_trace(eia_plan, target_prefix)
    detector = make_detector(
        eia_plan, target_prefix, seed=_SEED, n_train=600
    )
    config = ServeConfig(
        port=0,
        queue_capacity=65_536,
        batch_size=512,
        max_records=len(records),
        idle_exit_s=2.0,
    )

    async def main():
        daemon = ServeDaemon(detector, config, registry=MetricsRegistry())
        task = asyncio.ensure_future(daemon.run())
        await asyncio.wait_for(daemon.wait_started(), timeout=10)
        assert daemon.address is not None
        sock_info = daemon._transport.get_extra_info("socket")  # noqa: SLF001
        if sock_info is not None:
            sock_info.setsockopt(
                socket.SOL_SOCKET, socket.SO_RCVBUF, 8 * 1024 * 1024
            )
        sender = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        start = time.perf_counter()
        try:
            count = 0
            for datagram in datagrams_for(records, sys_uptime=0, unix_secs=0):
                sender.sendto(datagram, daemon.address)
                count += 1
                if count % 8 == 0:
                    await asyncio.sleep(0)
        finally:
            sender.close()
        run_report = await asyncio.wait_for(task, timeout=300)
        elapsed = time.perf_counter() - start
        return daemon, run_report, elapsed

    daemon, run_report, elapsed = asyncio.run(main())

    # Machinery: every record has exactly one fate, and the daemon drained.
    assert run_report.records_collected + run_report.lost_flows == len(records)
    assert (
        run_report.records_committed
        == run_report.records_enqueued - run_report.records_shed
    )
    assert run_report.cursor == run_report.records_committed
    assert run_report.records_committed > 0

    fps = run_report.records_committed / elapsed if elapsed else 0.0
    p50 = daemon.worker.latency_percentile(0.50)
    p99 = daemon.worker.latency_percentile(0.99)
    assert 0.0 <= p50 <= p99

    report(
        "E14_serve_throughput",
        [
            *table(
                ["metric", "value"],
                [
                    ["records sent", len(records)],
                    ["records committed", run_report.records_committed],
                    ["lost in transport", run_report.lost_flows],
                    ["shed at queue", run_report.records_shed],
                    ["batches", run_report.batches],
                    ["wall clock", f"{elapsed:.3f}s"],
                    ["throughput", f"{fps:,.0f} records/s"],
                ],
            ),
            "",
            *table(
                ["latency (ingest -> verdict)", "seconds"],
                [
                    ["p50", f"{p50:.6f}"],
                    ["p99", f"{p99:.6f}"],
                ],
            ),
        ],
    )
    if not QUICK:
        # Loopback on a warm detector comfortably clears 10k records/s;
        # regressions an order of magnitude below that are real bugs,
        # not noise.
        assert fps >= 10_000, (
            f"serve throughput {fps:,.0f} records/s below the 10k floor"
        )
