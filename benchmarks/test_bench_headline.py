"""E12 — the abstract's headline numbers.

"Our implementation had a detection rate of about 80% and a false
positive rate of about 2% in testbed experiments using Internet traffic
and real cyber-attacks."

This benchmark runs the standard (6.3.1-style) workload at the middle
attack volume and checks both headline figures.
"""

from _report import report, table

from repro.testbed import ExperimentParams, TestbedConfig, run_point

TESTBED = TestbedConfig(training_flows=2500)
PARAMS = ExperimentParams(
    attack_volume=0.04,
    normal_flows_per_peer=1500,
    runs=5,                      # the paper averages 5 runs per point
    rotate_allocations=True,     # include live route instability
    route_change_blocks=2,
    seed=2112,
)


def test_e12_headline_numbers(benchmark):
    series = benchmark.pedantic(
        run_point, args=(TESTBED, PARAMS), rounds=1, iterations=1
    )
    report(
        "E12_headline",
        table(
            ["metric", "paper", "measured (5 runs)"],
            [
                ["detection rate", "~80%", f"{series.detection_rate:.1%}"
                 f" (std {series.detection_rate_std:.1%})"],
                ["false positives", "~2%", f"{series.false_positive_rate:.2%}"
                 f" (std {series.false_positive_rate_std:.2%})"],
                ["flow-level detection", "(not reported)",
                 f"{series.flow_detection_rate:.1%}"],
            ],
        ),
    )
    assert 0.6 < series.detection_rate <= 1.0
    assert series.false_positive_rate < 0.05
