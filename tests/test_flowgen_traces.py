"""Tests for the synthetic normal-traffic generator."""

import pytest

from repro.flowgen.traces import DEFAULT_PROFILE, TraceFlow, synthesize_trace
from repro.netflow.records import PORT_DNS, PORT_HTTP, PROTO_ICMP, PROTO_TCP, PROTO_UDP
from repro.util.errors import ConfigError
from repro.util.rng import SeededRng


class TestTraceFlow:
    def test_rejects_zero_packets(self):
        with pytest.raises(ConfigError):
            TraceFlow(
                start_ms=0, protocol=PROTO_UDP, src_port=1, dst_port=2,
                packets=0, octets=100, duration_ms=0, dst_host=0,
            )

    def test_rejects_impossible_octets(self):
        with pytest.raises(ConfigError):
            TraceFlow(
                start_ms=0, protocol=PROTO_UDP, src_port=1, dst_port=2,
                packets=10, octets=100, duration_ms=0, dst_host=0,
            )

    def test_rejects_negative_duration(self):
        with pytest.raises(ConfigError):
            TraceFlow(
                start_ms=0, protocol=PROTO_UDP, src_port=1, dst_port=2,
                packets=1, octets=100, duration_ms=-1, dst_host=0,
            )

    def test_label_defaults_to_normal(self):
        flow = TraceFlow(
            start_ms=0, protocol=PROTO_UDP, src_port=1, dst_port=2,
            packets=1, octets=100, duration_ms=0, dst_host=0,
        )
        assert not flow.is_attack


class TestSynthesize:
    def test_count(self):
        trace = synthesize_trace(500, rng=SeededRng(1))
        assert len(trace) == 500

    def test_empty(self):
        assert synthesize_trace(0, rng=SeededRng(1)) == []

    def test_rejects_negative(self):
        with pytest.raises(ConfigError):
            synthesize_trace(-1, rng=SeededRng(1))

    def test_deterministic(self):
        a = synthesize_trace(100, rng=SeededRng(5))
        b = synthesize_trace(100, rng=SeededRng(5))
        assert a == b

    def test_start_times_nondecreasing(self):
        trace = synthesize_trace(300, rng=SeededRng(2))
        starts = [f.start_ms for f in trace]
        assert starts == sorted(starts)

    def test_all_flows_normal_labelled(self):
        trace = synthesize_trace(200, rng=SeededRng(3))
        assert all(f.label == "normal" for f in trace)

    def test_protocol_mix_roughly_matches_profile(self):
        trace = synthesize_trace(4000, rng=SeededRng(4))
        http = sum(
            1 for f in trace if f.protocol == PROTO_TCP and f.dst_port == PORT_HTTP
        )
        dns = sum(
            1 for f in trace if f.protocol == PROTO_UDP and f.dst_port == PORT_DNS
        )
        icmp = sum(1 for f in trace if f.protocol == PROTO_ICMP)
        assert 0.35 < http / len(trace) < 0.58
        assert 0.08 < dns / len(trace) < 0.25
        assert 0.005 < icmp / len(trace) < 0.08

    def test_heavy_tail_present(self):
        trace = synthesize_trace(4000, rng=SeededRng(6))
        octets = sorted(f.octets for f in trace)
        # A heavy-tailed distribution: the top flow dwarfs the median.
        assert octets[-1] > 20 * octets[len(octets) // 2]

    def test_dst_hosts_within_profile(self):
        trace = synthesize_trace(500, rng=SeededRng(7))
        assert all(0 <= f.dst_host < DEFAULT_PROFILE.n_hosts for f in trace)

    def test_single_packet_flows_have_zero_duration(self):
        trace = synthesize_trace(2000, rng=SeededRng(8))
        singles = [f for f in trace if f.packets == 1]
        assert singles
        assert all(f.duration_ms == 0 for f in singles)

    def test_start_offset(self):
        trace = synthesize_trace(10, rng=SeededRng(9), start_ms=5000)
        assert all(f.start_ms >= 5000 for f in trace)
