"""Tests for the signature-IDS baseline."""

import pytest

from repro.baselines.signature_ids import SignatureIDS, default_signatures
from repro.flowgen.attacks import ATTACK_NAMES, STEALTHY_ATTACKS, generate_attack
from repro.flowgen.dagflow import Dagflow
from repro.flowgen.traces import synthesize_trace
from repro.util.errors import ConfigError
from repro.util.ip import Prefix
from repro.util.rng import SeededRng

TARGET = Prefix.parse("198.18.0.0/16")


def records_for(attack, seed=1):
    rng = SeededRng(seed)
    dagflow = Dagflow(
        "atk", target_prefix=TARGET, udp_port=9000,
        source_blocks=[Prefix.parse("24.0.0.0/11")], rng=rng,
    )
    return [lr.record for lr in dagflow.replay(generate_attack(attack, rng=rng.fork("a")))]


def normal_records(count=400, seed=2):
    rng = SeededRng(seed)
    dagflow = Dagflow(
        "bg", target_prefix=TARGET, udp_port=9000,
        source_blocks=[Prefix.parse("24.0.0.0/11")], rng=rng,
    )
    return [lr.record for lr in dagflow.replay(synthesize_trace(count, rng=rng.fork("t")))]


class TestDatabase:
    def test_library_covers_all_attacks(self):
        assert set(default_signatures()) == set(ATTACK_NAMES)

    def test_default_database_excludes_stealthy(self):
        ids = SignatureIDS()
        assert ids.database == frozenset(ATTACK_NAMES) - frozenset(STEALTHY_ATTACKS)

    def test_publish_extends_database(self):
        ids = SignatureIDS()
        assert "slammer" not in ids.database
        ids.publish("slammer")
        assert "slammer" in ids.database

    def test_unknown_names_rejected(self):
        with pytest.raises(ConfigError):
            SignatureIDS(known_attacks=["made_up"])
        with pytest.raises(ConfigError):
            SignatureIDS().publish("made_up")


class TestDetection:
    @pytest.mark.parametrize("attack", sorted(set(ATTACK_NAMES) - set(STEALTHY_ATTACKS)))
    def test_known_attacks_detected(self, attack):
        ids = SignatureIDS()
        hits = sum(ids.is_suspect(r) for r in records_for(attack))
        assert hits > 0, attack

    @pytest.mark.parametrize("attack", STEALTHY_ATTACKS)
    def test_stealthy_attacks_missed_pre_publication(self, attack):
        ids = SignatureIDS()
        hits = sum(ids.is_suspect(r) for r in records_for(attack))
        assert hits == 0, attack

    @pytest.mark.parametrize("attack", STEALTHY_ATTACKS)
    def test_stealthy_attacks_caught_after_publication(self, attack):
        ids = SignatureIDS(known_attacks=[attack])
        hits = sum(ids.is_suspect(r) for r in records_for(attack))
        assert hits > 0, attack

    def test_low_false_positives_on_normal_traffic(self):
        ids = SignatureIDS(known_attacks=ATTACK_NAMES)
        records = normal_records()
        fp = sum(ids.is_suspect(r) for r in records)
        assert fp / len(records) < 0.05

    def test_match_counter(self):
        ids = SignatureIDS(known_attacks=["tfn2k"])
        for record in records_for("tfn2k"):
            ids.is_suspect(record)
        assert ids.matches_by_signature.get("tfn2k", 0) > 0
