"""One place asserting every numeric constant the paper publishes.

If a refactor drifts a default away from the paper's configuration,
this module is the tripwire.
"""

from repro.core.config import EIAConfig, NNSConfig, ScanConfig
from repro.flowgen.addressing import PUBLIC_SLASH8_BLOCKS, SubBlockSpace
from repro.flowgen.attacks import ATTACK_NAMES
from repro.netflow.v5 import (
    HEADER_LEN,
    MAX_RECORDS_PER_DATAGRAM,
    NETFLOW_V5_VERSION,
    RECORD_LEN,
)
from repro.testbed.emulation import TestbedConfig


class TestSection4Constants:
    """NNS parameters (Section 4.2) and the scan buffer (Section 4.1)."""

    def test_nns_dimension_is_720(self):
        assert NNSConfig().dimension == 720

    def test_nns_m_parameters(self):
        config = NNSConfig()
        assert config.m1 == 1
        assert config.m2 == 12
        assert config.m3 == 3

    def test_m3_ball_size_is_79_entries(self):
        # C(12,0) + C(12,1) + C(12,2) table entries per inserted flow.
        from repro.core.nns import _ball_deltas

        assert len(_ball_deltas(12, 3)) == 79

    def test_scan_buffer_is_about_200_flows(self):
        assert ScanConfig().buffer_size == 200

    def test_five_flow_characteristics(self):
        # Section 5.1.2: byte count, packet count, duration, bit rate,
        # packet rate.
        from repro.netflow.records import FlowStats

        assert FlowStats.FEATURE_NAMES == (
            "octets",
            "packets",
            "duration_ms",
            "bit_rate",
            "packet_rate",
        )


class TestSection5Constants:
    """NetFlow v5 wire facts (Section 5.1.1)."""

    def test_version_5(self):
        assert NETFLOW_V5_VERSION == 5

    def test_record_and_header_sizes(self):
        assert HEADER_LEN == 24
        assert RECORD_LEN == 48
        assert MAX_RECORDS_PER_DATAGRAM == 30

    def test_seven_flow_key_fields(self):
        # Figure 10: src, dst, proto, sport, dport, TOS, input interface.
        import dataclasses

        from repro.netflow.records import FlowKey

        assert len(dataclasses.fields(FlowKey)) == 7


class TestSection6Constants:
    """Testbed address plan (Section 6.2, Tables 1-3)."""

    def test_143_public_slash8s(self):
        assert len(PUBLIC_SLASH8_BLOCKS) == 143

    def test_1144_defined_sub_blocks_1000_used(self):
        space = SubBlockSpace()
        assert space.total_defined == 1144
        assert len(space) == 1000

    def test_10_peers_100_blocks_each(self):
        config = TestbedConfig()
        assert config.n_peers == 10
        assert config.blocks_per_peer == 100

    def test_12_unique_attacks(self):
        assert len(ATTACK_NAMES) == 12

    def test_eia_default_granularity_matches_sub_blocks(self):
        assert EIAConfig().granularity == 11
