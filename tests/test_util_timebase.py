"""Tests for the simulated clock and periodic sampling."""

import pytest

from repro.util.timebase import DAY, HOUR, MINUTE, SimClock, periodic


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0.0

    def test_custom_start(self):
        assert SimClock(5.0).now == 5.0

    def test_rejects_negative_start(self):
        with pytest.raises(ValueError):
            SimClock(-1.0)

    def test_advance_accumulates(self):
        clock = SimClock()
        clock.advance(1.5)
        clock.advance(2.5)
        assert clock.now == 4.0

    def test_advance_rejects_negative(self):
        with pytest.raises(ValueError):
            SimClock().advance(-0.1)

    def test_advance_to(self):
        clock = SimClock()
        clock.advance_to(10.0)
        assert clock.now == 10.0
        with pytest.raises(ValueError):
            clock.advance_to(9.0)

    def test_millis(self):
        clock = SimClock(1.25)
        assert clock.millis() == 1250


class TestPeriodic:
    def test_inclusive_endpoint(self):
        instants = list(periodic(0, 30 * MINUTE, 2 * HOUR))
        assert len(instants) == 5
        assert instants[0] == 0
        assert instants[-1] == pytest.approx(2 * HOUR)

    def test_paper_24h_run_sample_count(self):
        # 30-minute period over 24 hours: 49 sampling instants per pair.
        assert len(list(periodic(0, 30 * MINUTE, 24 * HOUR))) == 49

    def test_paper_30day_run_sample_count(self):
        # 2-hour period over 30 days: 361 instants (the paper kept 346
        # after missing data).
        assert len(list(periodic(0, 2 * HOUR, 30 * DAY))) == 361

    def test_rejects_nonpositive_period(self):
        with pytest.raises(ValueError):
            list(periodic(0, 0, 10))

    def test_offset_start(self):
        instants = list(periodic(100.0, 50.0, 250.0))
        assert instants == [100.0, 150.0, 200.0, 250.0]
