"""Tests for the metrics registry (counters, gauges, histograms, labels)."""

from __future__ import annotations

import pytest

from repro.obs import (
    LATENCY_BUCKETS_S,
    MetricError,
    MetricsRegistry,
    Stopwatch,
    get_registry,
    render_json,
    render_prometheus,
    set_registry,
    time_into,
    use_registry,
)
from repro.util import SeededRng


@pytest.fixture
def registry() -> MetricsRegistry:
    return MetricsRegistry()


class TestCounter:
    def test_starts_at_zero_and_increments(self, registry):
        counter = registry.counter("c_total", "help")
        assert counter.value == 0
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_cannot_decrease(self, registry):
        counter = registry.counter("c_total")
        with pytest.raises(MetricError):
            counter.inc(-1)

    def test_label_children_are_independent(self, registry):
        counter = registry.counter("c_total", "", ("verdict",))
        counter.labels(verdict="legal").inc(2)
        counter.labels(verdict="attack").inc()
        assert counter.labels(verdict="legal").value == 2
        assert counter.labels(verdict="attack").value == 1

    def test_labelled_family_rejects_direct_inc(self, registry):
        counter = registry.counter("c_total", "", ("verdict",))
        with pytest.raises(MetricError):
            counter.inc()

    def test_wrong_label_names_rejected(self, registry):
        counter = registry.counter("c_total", "", ("verdict",))
        with pytest.raises(MetricError):
            counter.labels(stage="eia")

    def test_unlabelled_family_rejects_labels(self, registry):
        counter = registry.counter("c_total")
        with pytest.raises(MetricError):
            counter.labels(verdict="legal")


class TestGauge:
    def test_set_inc_dec(self, registry):
        gauge = registry.gauge("g")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(2)
        assert gauge.value == 13

    def test_can_go_negative(self, registry):
        gauge = registry.gauge("g")
        gauge.dec(3)
        assert gauge.value == -3


class TestHistogram:
    def test_observations_land_in_correct_buckets(self, registry):
        hist = registry.histogram("h", buckets=(1.0, 2.0, 5.0))
        for value in (0.5, 1.0, 1.5, 4.0, 99.0):
            hist.observe(value)
        # bucket_counts are per-bin: <=1, <=2, <=5, overflow
        assert hist.bucket_counts == [2, 1, 1, 1]
        assert hist.count == 5
        assert hist.sum == pytest.approx(106.0)

    def test_edge_values_are_inclusive(self, registry):
        hist = registry.histogram("h", buckets=(1.0, 2.0))
        hist.observe(2.0)
        assert hist.bucket_counts == [0, 1, 0]

    def test_buckets_must_increase(self, registry):
        with pytest.raises(MetricError):
            registry.histogram("h", buckets=(2.0, 1.0))
        with pytest.raises(MetricError):
            registry.histogram("h2", buckets=())

    def test_default_buckets_cover_paper_latencies(self, registry):
        # Section 6.4: BI ~0.5 ms, EI 2-6 ms — both must fall inside the
        # finite edges, not in the overflow bin.
        assert LATENCY_BUCKETS_S[0] < 0.0005 < LATENCY_BUCKETS_S[-1]
        assert LATENCY_BUCKETS_S[0] < 0.006 < LATENCY_BUCKETS_S[-1]

    def test_labelled_histogram(self, registry):
        hist = registry.histogram("h", "", ("stage",), buckets=(1.0,))
        hist.labels(stage="eia").observe(0.5)
        hist.labels(stage="nns").observe(2.0)
        assert hist.labels(stage="eia").bucket_counts == [1, 0]
        assert hist.labels(stage="nns").bucket_counts == [0, 1]


class TestRegistration:
    def test_get_or_create_is_idempotent(self, registry):
        first = registry.counter("c_total", "help", ("a",))
        second = registry.counter("c_total", "help", ("a",))
        assert first is second
        assert len(registry) == 1

    def test_type_conflict_rejected(self, registry):
        registry.counter("m")
        with pytest.raises(MetricError):
            registry.gauge("m")

    def test_label_conflict_rejected(self, registry):
        registry.counter("m", "", ("a",))
        with pytest.raises(MetricError):
            registry.counter("m", "", ("b",))

    def test_bucket_conflict_rejected(self, registry):
        registry.histogram("h", buckets=(1.0, 2.0))
        with pytest.raises(MetricError):
            registry.histogram("h", buckets=(1.0, 3.0))

    def test_invalid_names_rejected(self, registry):
        with pytest.raises(MetricError):
            registry.counter("9starts_with_digit")
        with pytest.raises(MetricError):
            registry.counter("has space")
        with pytest.raises(MetricError):
            registry.counter("ok_total", "", ("bad-label",))

    def test_reset_zeroes_but_keeps_registrations(self, registry):
        counter = registry.counter("c_total", "", ("k",))
        counter.labels(k="x").inc(7)
        hist = registry.histogram("h", buckets=(1.0,))
        hist.observe(0.5)
        registry.reset()
        assert counter.labels(k="x").value == 0
        assert hist.count == 0 and hist.bucket_counts == [0, 0]
        assert "c_total" in registry and "h" in registry


class TestDefaultRegistry:
    def test_use_registry_swaps_and_restores(self):
        original = get_registry()
        scoped = MetricsRegistry()
        with use_registry(scoped) as active:
            assert active is scoped
            assert get_registry() is scoped
        assert get_registry() is original

    def test_set_registry_returns_previous(self):
        original = get_registry()
        replacement = MetricsRegistry()
        previous = set_registry(replacement)
        try:
            assert previous is original
            assert get_registry() is replacement
        finally:
            set_registry(original)


class TestDeterminism:
    def _run_workload(self, seed: int) -> str:
        """A SeededRng-driven workload; identical seeds must render
        byte-identical snapshots."""
        rng = SeededRng(seed, "obs-workload")
        registry = MetricsRegistry()
        flows = registry.counter("flows_total", "", ("verdict", "stage"))
        latency = registry.histogram("latency_seconds", "", ("stage",))
        verdicts = ["legal", "benign", "attack"]
        stages = ["eia", "scan", "nns"]
        for _ in range(500):
            verdict = rng.choice(verdicts)
            stage = rng.choice(stages)
            flows.labels(verdict=verdict, stage=stage).inc()
            latency.labels(stage=stage).observe(rng.random() * 0.01)
        return render_prometheus(registry) + render_json(registry)

    def test_identical_seeds_identical_snapshots(self):
        assert self._run_workload(11) == self._run_workload(11)

    def test_different_seeds_differ(self):
        assert self._run_workload(11) != self._run_workload(12)

    def test_insertion_order_does_not_matter(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        a.counter("one_total").inc()
        a.gauge("two").set(2)
        b.gauge("two").set(2)
        b.counter("one_total").inc()
        assert render_prometheus(a) == render_prometheus(b)
        assert render_json(a) == render_json(b)


class TestTiming:
    def test_stopwatch_elapsed_monotone(self):
        watch = Stopwatch()
        first = watch.elapsed_s()
        second = watch.elapsed_s()
        assert 0 <= first <= second

    def test_restart_rearms(self):
        watch = Stopwatch()
        elapsed = watch.restart()
        assert elapsed >= 0
        assert watch.elapsed_s() <= elapsed + 1.0  # fresh epoch

    def test_lap_into_observes_and_rearms(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", buckets=(10.0,))
        watch = Stopwatch()
        watch.lap_into(hist)
        watch.lap_into(hist)
        assert hist.count == 2
        assert hist.bucket_counts[-1] == 0  # both laps well under 10 s

    def test_time_into_context_manager(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", buckets=(10.0,))
        with time_into(hist):
            pass
        assert hist.count == 1

    def test_time_into_records_on_exception(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", buckets=(10.0,))
        with pytest.raises(RuntimeError):
            with time_into(hist):
                raise RuntimeError("boom")
        assert hist.count == 1
