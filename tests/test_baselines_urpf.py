"""Tests for the strict uRPF baseline."""

import pytest

from repro.baselines.urpf import UrpfFilter, asymmetric_fib
from repro.netflow.records import FlowKey, FlowRecord
from repro.util.ip import Prefix, PrefixTrie
from repro.util.rng import SeededRng

BLOCK_A = Prefix.parse("24.0.0.0/11")
BLOCK_B = Prefix.parse("144.0.0.0/11")


def record(src, iface):
    return FlowRecord(
        key=FlowKey(src_addr=src, dst_addr=1, protocol=6, input_if=iface),
        packets=1,
        octets=40,
        first=0,
        last=0,
    )


class TestUrpfFilter:
    def make(self):
        urpf = UrpfFilter()
        urpf.install(BLOCK_A, 0)
        urpf.install(BLOCK_B, 1)
        return urpf

    def test_symmetric_traffic_passes(self):
        urpf = self.make()
        assert not urpf.is_suspect(record(BLOCK_A.nth_address(5), 0))
        assert not urpf.is_suspect(record(BLOCK_B.nth_address(5), 1))

    def test_wrong_interface_suspect(self):
        urpf = self.make()
        assert urpf.is_suspect(record(BLOCK_B.nth_address(5), 0))

    def test_unrouted_source_suspect(self):
        urpf = self.make()
        assert urpf.is_suspect(record(Prefix.parse("203.0.113.0/24").nth_address(1), 0))

    def test_egress_lookup(self):
        urpf = self.make()
        assert urpf.egress_for(BLOCK_A.nth_address(1)) == 0
        assert urpf.egress_for(0) is None


class TestAsymmetricFib:
    def plan(self):
        return {0: [BLOCK_A], 1: [BLOCK_B]}

    def test_zero_asymmetry_matches_ingress(self):
        fib = asymmetric_fib(self.plan(), asymmetry=0.0, rng=SeededRng(1))
        urpf = UrpfFilter(fib)
        assert not urpf.is_suspect(record(BLOCK_A.nth_address(1), 0))
        assert not urpf.is_suspect(record(BLOCK_B.nth_address(1), 1))

    def test_full_asymmetry_breaks_urpf_for_legit_traffic(self):
        fib = asymmetric_fib(self.plan(), asymmetry=1.0, rng=SeededRng(1))
        urpf = UrpfFilter(fib)
        # All legitimate traffic now looks suspect: the Section 2 argument.
        assert urpf.is_suspect(record(BLOCK_A.nth_address(1), 0))
        assert urpf.is_suspect(record(BLOCK_B.nth_address(1), 1))

    def test_partial_asymmetry_fraction(self):
        blocks = list(Prefix.parse("24.0.0.0/8").subnets(15))  # 128 subnets
        plan = {0: blocks[:64], 1: blocks[64:128]}
        fib = asymmetric_fib(plan, asymmetry=0.25, rng=SeededRng(2))
        urpf = UrpfFilter(fib)
        flipped = sum(
            urpf.is_suspect(record(block.nth_address(1), peer))
            for peer, peer_blocks in plan.items()
            for block in peer_blocks
        )
        assert 10 <= flipped <= 55  # ~32 expected of 128

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            asymmetric_fib(self.plan(), asymmetry=1.5, rng=SeededRng(1))
