"""Tests for prefix-preserving anonymization."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netflow.anonymize import PrefixPreservingAnonymizer
from repro.netflow.records import FlowKey, FlowRecord
from repro.util.errors import ConfigError
from repro.util.ip import MAX_IPV4, parse_ipv4

addresses = st.integers(min_value=0, max_value=MAX_IPV4)


def anonymizer(key=b"a-test-key-16byte"):
    return PrefixPreservingAnonymizer(key)


class TestBasics:
    def test_key_length_enforced(self):
        with pytest.raises(ConfigError):
            PrefixPreservingAnonymizer(b"short")

    def test_deterministic_per_key(self):
        addr = parse_ipv4("24.7.7.7")
        assert anonymizer().anonymize(addr) == anonymizer().anonymize(addr)

    def test_different_keys_differ(self):
        addr = parse_ipv4("24.7.7.7")
        a = PrefixPreservingAnonymizer(b"key-number-one!!").anonymize(addr)
        b = PrefixPreservingAnonymizer(b"key-number-two!!").anonymize(addr)
        assert a != b

    def test_range_checked(self):
        with pytest.raises(ConfigError):
            anonymizer().anonymize(-1)

    def test_record_anonymization(self):
        record = FlowRecord(
            key=FlowKey(
                src_addr=parse_ipv4("24.1.2.3"),
                dst_addr=parse_ipv4("198.18.0.1"),
                protocol=6,
                dst_port=80,
            ),
            packets=3,
            octets=300,
            first=0,
            last=10,
        )
        anon = anonymizer().anonymize_record(record)
        assert anon.key.src_addr != record.key.src_addr
        assert anon.key.dst_addr != record.key.dst_addr
        # Everything except the addresses is untouched.
        assert anon.key.dst_port == 80
        assert anon.packets == 3

    def test_shared_prefix_length_helper(self):
        helper = PrefixPreservingAnonymizer.shared_prefix_length
        assert helper(0, 0) == 32
        assert helper(0b1 << 31, 0) == 0
        assert helper(parse_ipv4("10.0.0.0"), parse_ipv4("10.0.0.1")) == 31


class TestPrefixPreservation:
    @given(addresses, addresses)
    @settings(max_examples=80)
    def test_shared_prefix_lengths_preserved(self, a, b):
        anon = anonymizer()
        before = PrefixPreservingAnonymizer.shared_prefix_length(a, b)
        after = PrefixPreservingAnonymizer.shared_prefix_length(
            anon.anonymize(a), anon.anonymize(b)
        )
        assert before == after

    @given(st.lists(addresses, min_size=2, max_size=30, unique=True))
    @settings(max_examples=40)
    def test_injective(self, addrs):
        anon = anonymizer()
        mapped = [anon.anonymize(a) for a in addrs]
        assert len(set(mapped)) == len(addrs)

    def test_subnet_structure_survives_for_eia(self):
        """An anonymized trace still trains consistent EIA sets."""
        from repro.core.eia import BasicInFilter
        from repro.core.config import EIAConfig
        from repro.util.ip import Prefix

        anon = anonymizer()
        block = Prefix.parse("24.32.0.0/11")
        originals = [block.nth_address(i * 1000) for i in range(50)]
        mapped = [anon.anonymize(a) for a in originals]
        # All fifty mapped addresses still share one /11.
        first_block = Prefix.from_address(mapped[0], 11)
        assert all(first_block.contains(m) for m in mapped)
        # And the EIA machinery treats them coherently.
        infilter = BasicInFilter(EIAConfig(granularity=11))
        records = [
            FlowRecord(
                key=FlowKey(src_addr=m, dst_addr=1, protocol=6, input_if=0),
                packets=1, octets=40, first=0, last=0,
            )
            for m in mapped
        ]
        infilter.initialize_from_flows(records[:25])
        assert all(not infilter.check(r).suspect for r in records[25:])
