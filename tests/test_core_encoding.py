"""Tests for the unary flow encoding, including its metric property."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import FeatureSpec, NNSConfig
from repro.core.encoding import UnaryEncoder, hamming, parity_inner_product
from repro.netflow.records import FlowStats
from repro.util.errors import ConfigError


def stats(octets=1000, packets=10, duration=1000, bit_rate=8000.0, packet_rate=10.0):
    return FlowStats(
        octets=octets,
        packets=packets,
        duration_ms=duration,
        bit_rate=bit_rate,
        packet_rate=packet_rate,
    )


def default_encoder():
    return UnaryEncoder(NNSConfig().features)


class TestPrimitives:
    def test_hamming(self):
        assert hamming(0b1010, 0b0110) == 2
        assert hamming(0, 0) == 0

    def test_parity_inner_product(self):
        assert parity_inner_product(0b1010, 0b1010) == 0  # two shared ones
        assert parity_inner_product(0b1000, 0b1010) == 1


class TestFeatureSpec:
    def test_rejects_empty_range(self):
        with pytest.raises(ConfigError):
            FeatureSpec("x", 5.0, 5.0, 4)

    def test_rejects_zero_bits(self):
        with pytest.raises(ConfigError):
            FeatureSpec("x", 0.0, 1.0, 0)


class TestEncoder:
    def test_dimension_is_720_by_default(self):
        assert default_encoder().dimension == 720

    def test_feature_order_enforced(self):
        with pytest.raises(ConfigError):
            UnaryEncoder(
                (
                    FeatureSpec("packets", 0, 10, 4),
                    FeatureSpec("octets", 0, 10, 4),
                    FeatureSpec("duration_ms", 0, 10, 4),
                    FeatureSpec("bit_rate", 0, 10, 4),
                    FeatureSpec("packet_rate", 0, 10, 4),
                )
            )

    def test_paper_worked_example(self):
        # The paper: X1=3 in [0,5] with 5 bits -> 11100; X2=6 in [0,10]
        # with 10 bits -> 1111110000; concatenated d=15.
        encoder = UnaryEncoder(
            (
                FeatureSpec("octets", 0, 5, 5),
                FeatureSpec("packets", 0, 10, 10),
                FeatureSpec("duration_ms", 0, 1, 1),
                FeatureSpec("bit_rate", 0, 1, 1),
                FeatureSpec("packet_rate", 0, 1, 1),
            )
        )
        encoded = encoder.encode(stats(octets=3, packets=6, duration=0,
                                       bit_rate=0.0, packet_rate=0.0))
        indices = encoder.decode_indices(encoded)
        assert indices[0] == 3
        assert indices[1] == 6

    def test_min_encodes_all_zeros_max_all_ones(self):
        encoder = default_encoder()
        low = encoder.encode(stats(octets=0, packets=0, duration=0,
                                   bit_rate=0.0, packet_rate=0.0))
        assert low == 0
        spec = NNSConfig().features
        high = encoder.encode(
            stats(
                octets=int(spec[0].high) + 1,
                packets=int(spec[1].high) + 1,
                duration=int(spec[2].high) + 1,
                bit_rate=spec[3].high + 1,
                packet_rate=spec[4].high + 1,
            )
        )
        assert high == (1 << encoder.dimension) - 1

    def test_clamping_above_range(self):
        encoder = default_encoder()
        huge = encoder.encode(stats(octets=10**12))
        indices = encoder.decode_indices(huge)
        assert indices[0] == NNSConfig().features[0].bits

    def test_valid_unary_structure(self):
        encoder = default_encoder()
        encoded = encoder.encode(stats())
        assert encoder.is_valid_unary(encoded)

    def test_invalid_unary_detected(self):
        encoder = default_encoder()
        assert not encoder.is_valid_unary(0b10)   # gap in lane 0
        assert not encoder.is_valid_unary(1 << encoder.dimension)

    def test_monotone_in_each_feature(self):
        encoder = default_encoder()
        small = encoder.encode(stats(octets=100))
        large = encoder.encode(stats(octets=100_000))
        # Unary: the larger value's lane is a superset of the smaller's.
        assert small & large == small

    @given(
        st.integers(min_value=0, max_value=2_000_000),
        st.integers(min_value=0, max_value=2_000_000),
    )
    @settings(max_examples=60)
    def test_hamming_equals_l1_of_interval_indices(self, a_octets, b_octets):
        encoder = default_encoder()
        a = encoder.encode(stats(octets=a_octets))
        b = encoder.encode(stats(octets=b_octets))
        ia = encoder.decode_indices(a)
        ib = encoder.decode_indices(b)
        l1 = sum(abs(x - y) for x, y in zip(ia, ib))
        assert hamming(a, b) == l1

    @given(
        st.tuples(
            st.floats(min_value=0, max_value=2e6, allow_nan=False),
            st.floats(min_value=0, max_value=2e3, allow_nan=False),
            st.floats(min_value=0, max_value=2e5, allow_nan=False),
            st.floats(min_value=0, max_value=2e7, allow_nan=False),
            st.floats(min_value=0, max_value=2e4, allow_nan=False),
        )
    )
    @settings(max_examples=60)
    def test_every_encoding_is_valid_unary(self, values):
        encoder = default_encoder()
        flow = stats(
            octets=int(values[0]),
            packets=int(values[1]),
            duration=int(values[2]),
            bit_rate=values[3],
            packet_rate=values[4],
        )
        assert encoder.is_valid_unary(encoder.encode(flow))

    def test_max_distance(self):
        assert default_encoder().max_distance() == 720
