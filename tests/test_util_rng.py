"""Tests for the deterministic RNG wrapper."""

import pytest

from repro.util.rng import SeededRng, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "a", "b") == derive_seed(42, "a", "b")

    def test_name_sensitivity(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_seed_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_path_depth_matters(self):
        assert derive_seed(42, "a", "b") != derive_seed(42, "ab")


class TestSeededRng:
    def test_same_seed_same_stream(self):
        a = SeededRng(7)
        b = SeededRng(7)
        assert [a.randint(0, 100) for _ in range(20)] == [
            b.randint(0, 100) for _ in range(20)
        ]

    def test_fork_streams_are_independent(self):
        root = SeededRng(7)
        child_a = root.fork("a")
        # Drawing from one child must not perturb a sibling created later.
        draws_before = [child_a.randint(0, 10**9) for _ in range(5)]
        root2 = SeededRng(7)
        _ = [root2.fork("unrelated").random() for _ in range(3)]
        child_a2 = root2.fork("a")
        assert draws_before == [child_a2.randint(0, 10**9) for _ in range(5)]

    def test_fork_names_compose(self):
        rng = SeededRng(7).fork("x").fork("y")
        assert rng.name == "root/x/y"

    def test_randint_bounds(self):
        rng = SeededRng(3)
        values = {rng.randint(2, 4) for _ in range(200)}
        assert values == {2, 3, 4}

    def test_bernoulli_extremes(self):
        rng = SeededRng(3)
        assert not any(rng.bernoulli(0.0) for _ in range(50))
        assert all(rng.bernoulli(1.0) for _ in range(50))

    def test_bit_probability(self):
        rng = SeededRng(3)
        ones = sum(rng.bit(0.25) for _ in range(4000))
        assert 800 < ones < 1200

    def test_choice_and_sample(self):
        rng = SeededRng(3)
        items = list(range(10))
        assert rng.choice(items) in items
        sample = rng.sample(items, 4)
        assert len(sample) == len(set(sample)) == 4
        assert set(sample) <= set(items)

    def test_shuffle_is_permutation(self):
        rng = SeededRng(3)
        items = list(range(20))
        shuffled = list(items)
        rng.shuffle(shuffled)
        assert sorted(shuffled) == items

    def test_weighted_index_distribution(self):
        rng = SeededRng(3)
        counts = [0, 0, 0]
        for _ in range(3000):
            counts[rng.weighted_index([1.0, 2.0, 1.0])] += 1
        assert counts[1] > counts[0]
        assert counts[1] > counts[2]

    def test_weighted_index_rejects_nonpositive_total(self):
        with pytest.raises(ValueError):
            SeededRng(3).weighted_index([0.0, 0.0])

    def test_pareto_is_heavy_tailed_and_bounded_below(self):
        rng = SeededRng(3)
        values = [rng.pareto(1.5, 10.0) for _ in range(500)]
        assert min(values) >= 10.0
        assert max(values) > 50.0

    def test_expovariate_positive(self):
        rng = SeededRng(3)
        assert all(rng.expovariate(2.0) > 0 for _ in range(100))
