"""Tests for composable flow filters and the filter expression language."""

import pytest

from repro.netflow.filters import FlowFilter, parse_filter_expression
from repro.netflow.records import PROTO_TCP, PROTO_UDP, TCP_ACK, TCP_SYN, FlowKey, FlowRecord
from repro.util.errors import ConfigError
from repro.util.ip import Prefix, parse_ipv4


def record(src="24.0.0.1", dst="198.18.0.1", proto=PROTO_TCP, sport=1000,
           dport=80, packets=10, octets=1000, flags=0, iface=0):
    return FlowRecord(
        key=FlowKey(
            src_addr=parse_ipv4(src),
            dst_addr=parse_ipv4(dst),
            protocol=proto,
            src_port=sport,
            dst_port=dport,
            input_if=iface,
        ),
        packets=packets,
        octets=octets,
        first=0,
        last=0,
        tcp_flags=flags,
    )


class TestConstructors:
    def test_src_in(self):
        f = FlowFilter.src_in(Prefix.parse("24.0.0.0/8"))
        assert f(record(src="24.9.9.9"))
        assert not f(record(src="25.0.0.1"))

    def test_dst_in(self):
        f = FlowFilter.dst_in(Prefix.parse("198.18.0.0/16"))
        assert f(record())
        assert not f(record(dst="10.0.0.1"))

    def test_ports_and_proto(self):
        assert FlowFilter.dst_port(80)(record())
        assert not FlowFilter.dst_port(443)(record())
        assert FlowFilter.src_port(1000)(record())
        assert FlowFilter.protocol(PROTO_TCP)(record())
        assert not FlowFilter.protocol(PROTO_UDP)(record())

    def test_size_bounds(self):
        assert FlowFilter.min_packets(10)(record())
        assert not FlowFilter.min_packets(11)(record())
        assert FlowFilter.max_packets(10)(record())
        assert FlowFilter.min_octets(500)(record())

    def test_flags(self):
        f = FlowFilter.tcp_flags_set(TCP_SYN)
        assert f(record(flags=TCP_SYN | TCP_ACK))
        assert not f(record(flags=TCP_ACK))

    def test_input_if(self):
        assert FlowFilter.input_if(3)(record(iface=3))


class TestComposition:
    def test_and_or_not(self):
        tcp80 = FlowFilter.protocol(PROTO_TCP) & FlowFilter.dst_port(80)
        assert tcp80(record())
        assert not tcp80(record(proto=PROTO_UDP))
        either = FlowFilter.dst_port(80) | FlowFilter.dst_port(443)
        assert either(record(dport=443))
        assert not (~either)(record(dport=443))

    def test_apply(self):
        records = [record(dport=80), record(dport=53), record(dport=80)]
        kept = list(FlowFilter.dst_port(80).apply(records))
        assert len(kept) == 2

    def test_description_composes(self):
        f = ~(FlowFilter.protocol(6) & FlowFilter.dst_port(80))
        assert "proto 6" in f.description
        assert "not" in f.description


class TestExpressionLanguage:
    def test_slammer_slice(self):
        f = parse_filter_expression("proto=17 dport=1434 dst=198.18.0.0/16")
        assert f(record(proto=PROTO_UDP, dport=1434))
        assert not f(record(proto=PROTO_UDP, dport=53))
        assert not f(record(proto=PROTO_UDP, dport=1434, dst="10.0.0.1"))

    def test_negation(self):
        f = parse_filter_expression("proto=6 !dport=80")
        assert not f(record())
        assert f(record(dport=8080))

    def test_hex_flags(self):
        f = parse_filter_expression("flags=0x02")
        assert f(record(flags=TCP_SYN))
        assert not f(record(flags=TCP_ACK))

    def test_packet_bounds(self):
        f = parse_filter_expression("minpkts=5 maxpkts=20")
        assert f(record(packets=10))
        assert not f(record(packets=2))
        assert not f(record(packets=50))

    @pytest.mark.parametrize(
        "bad",
        ["", "nonsense", "key=", "=value", "dport=notaport", "src=300.0.0.0/8"],
    )
    def test_malformed_expressions_rejected(self, bad):
        with pytest.raises(ConfigError):
            parse_filter_expression(bad)
