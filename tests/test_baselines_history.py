"""Tests for the Peng-style history-based IP filter."""

import pytest

from repro.baselines.history_filter import HistoryFilter, HistoryFilterConfig
from repro.netflow.records import FlowKey, FlowRecord
from repro.util.errors import ConfigError
from repro.util.ip import Prefix


def record(src, ts=0):
    return FlowRecord(
        key=FlowKey(src_addr=src, dst_addr=1, protocol=6, input_if=0),
        packets=1,
        octets=40,
        first=ts,
        last=ts,
    )


KNOWN = Prefix.parse("24.0.0.0/11")
UNKNOWN = Prefix.parse("144.0.0.0/11")


class TestConfig:
    def test_rejects_bad_values(self):
        with pytest.raises(ConfigError):
            HistoryFilterConfig(granularity=0)
        with pytest.raises(ConfigError):
            HistoryFilterConfig(admission_count=0)
        with pytest.raises(ConfigError):
            HistoryFilterConfig(overload_flows=0)


class TestHistory:
    def test_learn_and_lookup(self):
        hf = HistoryFilter()
        hf.learn(record(KNOWN.nth_address(5)))
        assert hf.in_history(KNOWN.nth_address(900))   # same /11 block
        assert not hf.in_history(UNKNOWN.nth_address(5))

    def test_admission_count(self):
        config = HistoryFilterConfig(admission_count=3)
        hf = HistoryFilter(config)
        hf.learn(record(KNOWN.nth_address(1)))
        hf.learn(record(KNOWN.nth_address(2)))
        assert not hf.in_history(KNOWN.nth_address(3))
        hf.learn(record(KNOWN.nth_address(3)))
        assert hf.in_history(KNOWN.nth_address(4))


class TestOverloadGate:
    def quiet_config(self):
        return HistoryFilterConfig(overload_flows=5, overload_window_ms=1000)

    def test_everything_admitted_when_quiet(self):
        hf = HistoryFilter(self.quiet_config())
        # Flows spaced far apart: never overloaded, all admitted+learned.
        for index in range(10):
            assert not hf.is_suspect(record(UNKNOWN.nth_address(index), ts=index * 10_000))
        assert hf.overload_activations == 0

    def test_quiet_operation_learns_sources(self):
        hf = HistoryFilter(self.quiet_config())
        hf.is_suspect(record(KNOWN.nth_address(1), ts=0))
        assert hf.in_history(KNOWN.nth_address(2))

    def test_overload_blocks_unknown_sources(self):
        hf = HistoryFilter(self.quiet_config())
        hf.learn(record(KNOWN.nth_address(1)))
        # Trip the overload gate with *known* traffic first, so the
        # attacker's sources never get a chance to be learned...
        for index in range(10):
            hf.is_suspect(record(KNOWN.nth_address(index), ts=index))
        # ...then sources outside the history are rejected.
        verdicts = [
            hf.is_suspect(record(UNKNOWN.nth_address(index), ts=10 + index))
            for index in range(10)
        ]
        assert all(verdicts)
        assert hf.overload_activations > 0

    def test_pre_overload_ramp_learns_attacker(self):
        # The flip side: sources that appear *before* the overload gate
        # closes are admitted into the history — the filter can be warmed
        # up by a patient attacker.
        hf = HistoryFilter(self.quiet_config())
        verdicts = [
            hf.is_suspect(record(UNKNOWN.nth_address(index), ts=index))
            for index in range(20)
        ]
        assert not any(verdicts)

    def test_overload_admits_known_sources(self):
        hf = HistoryFilter(self.quiet_config())
        hf.learn(record(KNOWN.nth_address(1)))
        for index in range(20):
            assert not hf.is_suspect(record(KNOWN.nth_address(index + 2), ts=index))

    def test_blind_spot_spoofed_known_space(self):
        # The paper's criticism: spoofing an address the history has seen
        # passes even under overload.
        hf = HistoryFilter(self.quiet_config())
        hf.learn(record(KNOWN.nth_address(1)))
        spoofed = [record(KNOWN.nth_address(50 + i), ts=i) for i in range(20)]
        assert not any(hf.is_suspect(r) for r in spoofed)
