"""Tests for the trace-back extension."""

import pytest

from repro.core.alerts import IdmefAlert
from repro.core.traceback import TracebackAnalyzer
from repro.util.ip import Prefix, parse_ipv4


def alert(peer=0, claimed=1, victim="198.18.0.1", when=0, classification="spoofed-source"):
    return IdmefAlert(
        ident=f"a-{peer}-{when}",
        classification=classification,
        stage="eia",
        source_address=parse_ipv4("24.0.0.1"),
        target_address=parse_ipv4(victim),
        target_port=80,
        protocol=6,
        observed_peer=peer,
        expected_peer=claimed,
        detect_time_ms=when,
    )


class TestReport:
    def make(self):
        analyzer = TracebackAnalyzer()
        # Attack enters through peers 2 and 5; sources claim 8 peers.
        for index in range(40):
            analyzer.consume(
                alert(
                    peer=2 if index % 2 == 0 else 5,
                    claimed=index % 8,
                    when=index * 10,
                )
            )
        # One stray alert at peer 7.
        analyzer.consume(alert(peer=7, when=500))
        return analyzer

    def test_ingress_attribution(self):
        report = self.make().report()
        assert report.total_alerts == 41
        assert report.by_ingress[2] == 20
        assert report.by_ingress[5] == 20
        assert report.by_ingress[7] == 1

    def test_attack_ingresses_filters_noise(self):
        report = self.make().report()
        assert report.attack_ingresses(min_share=0.05) == [2, 5]

    def test_spoofing_spread_vs_real_ingress(self):
        report = self.make().report()
        assert report.spoofing_spread() == 8
        assert len(report.attack_ingresses()) == 2

    def test_time_window(self):
        report = self.make().report(since_ms=300)
        assert report.total_alerts < 41
        assert all(count > 0 for count in report.by_ingress.values())

    def test_classification_filter(self):
        analyzer = self.make()
        analyzer.consume(alert(peer=9, classification="network_scan"))
        report = analyzer.report(classification="network_scan")
        assert report.total_alerts == 1
        assert report.by_ingress == {9: 1}

    def test_top_victims(self):
        analyzer = TracebackAnalyzer()
        for index in range(10):
            analyzer.consume(alert(victim="198.18.0.1", when=index))
        analyzer.consume(alert(victim="198.18.0.2"))
        top = analyzer.report().top_victims(1)
        assert top == [("198.18.0.1", 10)]

    def test_empty_report(self):
        report = TracebackAnalyzer().report()
        assert report.total_alerts == 0
        assert report.attack_ingresses() == []
        assert report.top_victims() == []

    def test_victim_prefix_report(self):
        analyzer = TracebackAnalyzer()
        analyzer.consume(alert(victim="198.18.0.1"))
        analyzer.consume(alert(victim="198.18.0.77"))
        analyzer.consume(alert(victim="198.18.5.1"))
        by_prefix = analyzer.victim_prefix_report(24)
        assert by_prefix[Prefix.parse("198.18.0.0/24")] == 2
        assert by_prefix[Prefix.parse("198.18.5.0/24")] == 1

    def test_summary_text(self):
        text = self.make().report().summary()
        assert "41 alerts" in text
        assert "real ingress peers" in text


class TestIntegrationWithDetector:
    def test_traceback_from_pipeline_alerts(self, eia_plan, target_prefix):
        from tests.conftest import make_detector
        from repro.flowgen import Dagflow, generate_attack
        from repro.util import SeededRng

        detector = make_detector(eia_plan, target_prefix, seed=909)
        rng = SeededRng(910)
        foreign = [b for p, blocks in eia_plan.items() if p != 3 for b in blocks]
        spoofer = Dagflow(
            "spoof", target_prefix=target_prefix, udp_port=9003,
            source_blocks=foreign, rng=rng,
        )
        for labelled in spoofer.replay(generate_attack("tfn2k", rng=rng.fork("a"))):
            detector.process(labelled.record.with_key(input_if=3))
        analyzer = TracebackAnalyzer()
        analyzer.consume_all(detector.alert_sink.alerts)
        report = analyzer.report()
        assert report.attack_ingresses() == [3]
        assert report.spoofing_spread() >= 3
