"""Tests for the Enhanced InFilter pipeline orchestration."""

import pytest

from repro.core import (
    EIAConfig,
    EnhancedInFilter,
    PipelineConfig,
    ScanConfig,
    Stage,
    Verdict,
)
from repro.flowgen import Dagflow, generate_attack, synthesize_trace
from repro.util import Prefix, SeededRng
from repro.util.errors import TrainingError

from tests.conftest import make_detector

TARGET = Prefix.parse("198.18.0.0/16")


def spoofed_records(eia_plan, *, into_peer=0, attack="slammer", seed=9):
    rng = SeededRng(seed, "spoof")
    foreign = [
        block
        for peer, blocks in eia_plan.items()
        if peer != into_peer
        for block in blocks
    ]
    dagflow = Dagflow(
        "spoof", target_prefix=TARGET, udp_port=9000,
        source_blocks=foreign, rng=rng,
    )
    flows = generate_attack(attack, rng=rng.fork("atk"))
    return [lr.record.with_key(input_if=into_peer) for lr in dagflow.replay(flows)]


def legit_records(eia_plan, peer=1, count=200, seed=10):
    rng = SeededRng(seed, "legit")
    dagflow = Dagflow(
        "legit", target_prefix=TARGET, udp_port=9001,
        source_blocks=eia_plan[peer], rng=rng,
    )
    trace = synthesize_trace(count, rng=rng.fork("trace"))
    return [lr.record.with_key(input_if=peer) for lr in dagflow.replay(trace)]


class TestBasicConfiguration:
    def test_basic_flags_every_suspect(self, eia_plan, target_prefix):
        detector = EnhancedInFilter(PipelineConfig.basic())
        for peer, blocks in eia_plan.items():
            detector.preload_eia(peer, blocks)
        for record in spoofed_records(eia_plan):
            decision = detector.process(record)
            assert decision.is_attack
            assert decision.stage == Stage.EIA

    def test_basic_needs_no_training(self, eia_plan):
        detector = EnhancedInFilter(PipelineConfig.basic())
        for peer, blocks in eia_plan.items():
            detector.preload_eia(peer, blocks)
        decision = detector.process(legit_records(eia_plan)[0])
        assert decision.verdict == Verdict.LEGAL

    def test_basic_emits_alerts(self, eia_plan):
        detector = EnhancedInFilter(PipelineConfig.basic())
        for peer, blocks in eia_plan.items():
            detector.preload_eia(peer, blocks)
        records = spoofed_records(eia_plan)
        for record in records:
            detector.process(record)
        assert len(detector.alert_sink) == len(records)
        assert detector.alert_sink.alerts[0].classification == "spoofed-source"


class TestEnhancedConfiguration:
    def test_enhanced_requires_training_for_suspects(self, eia_plan):
        detector = EnhancedInFilter(PipelineConfig())
        for peer, blocks in eia_plan.items():
            detector.preload_eia(peer, blocks)
        # Disable scan stage contribution by sending one lone flow.
        with pytest.raises(TrainingError):
            detector.process(spoofed_records(eia_plan, attack="dns_exploit")[0])

    def test_legal_flow_skips_analysis_even_untrained(self, eia_plan):
        detector = EnhancedInFilter(PipelineConfig())
        for peer, blocks in eia_plan.items():
            detector.preload_eia(peer, blocks)
        decision = detector.process(legit_records(eia_plan)[0])
        assert decision.verdict == Verdict.LEGAL
        assert decision.stage == Stage.EIA

    def test_scan_stage_catches_sweep(self, eia_plan, target_prefix):
        detector = make_detector(eia_plan, target_prefix)
        decisions = [
            detector.process(record)
            for record in spoofed_records(eia_plan, attack="network_scan")
        ]
        scan_hits = [d for d in decisions if d.is_attack and d.stage == Stage.SCAN]
        assert scan_hits
        assert scan_hits[0].alert.classification in ("network_scan", "host_scan")

    def test_nns_stage_catches_anomalous_exploit(self, eia_plan, target_prefix):
        detector = make_detector(eia_plan, target_prefix)
        decisions = [
            detector.process(record)
            for record in spoofed_records(eia_plan, attack="http_exploit")
        ]
        assert any(d.is_attack and d.stage == Stage.NNS for d in decisions)

    def test_benign_suspect_cleared_by_nns(self, eia_plan, target_prefix):
        detector = make_detector(eia_plan, target_prefix)
        # Normal-looking traffic arriving via the wrong peer: suspect but
        # most flows should be cleared as benign by the NNS stage.
        records = legit_records(eia_plan, peer=1)
        wrong_peer = [r.with_key(input_if=2) for r in records]
        decisions = [detector.process(r) for r in wrong_peer]
        benign = [d for d in decisions if d.verdict == Verdict.BENIGN]
        assert benign
        assert all(d.stage == Stage.NNS for d in benign)

    def test_absorption_learns_route_change(self, eia_plan, target_prefix):
        config = PipelineConfig(eia=EIAConfig(learning_threshold=3))
        detector = make_detector(eia_plan, target_prefix, config=config)
        block = eia_plan[1][0]
        # Persistent benign flows from one /11 block at the wrong peer.
        base = legit_records(eia_plan, peer=1, count=120)
        from_block = [
            r.with_key(
                src_addr=block.nth_address(5 + i), input_if=2
            )
            for i, r in enumerate(base)
        ]
        absorbed = False
        for record in from_block:
            decision = detector.process(record)
            absorbed = absorbed or decision.absorbed
            if decision.verdict == Verdict.LEGAL:
                break
        assert absorbed
        assert detector.stats.absorbed >= 1

    def test_unmodelled_class_flagged_by_default(self, eia_plan, target_prefix):
        detector = make_detector(eia_plan, target_prefix)
        # GRE (protocol 47) has no training subcluster; the default is to
        # treat suspects without a model as attacks.
        from repro.netflow.records import FlowKey, FlowRecord
        gre = FlowRecord(
            key=FlowKey(
                src_addr=eia_plan[1][0].nth_address(1),
                dst_addr=target_prefix.nth_address(1),
                protocol=47,
                input_if=0,
            ),
            packets=3,
            octets=300,
            first=0,
            last=10,
        )
        decision = detector.process(gre)
        assert decision.is_attack

    def test_unmodelled_class_passes_when_configured(self, eia_plan, target_prefix):
        config = PipelineConfig(flag_unmodelled_classes=False)
        detector = make_detector(eia_plan, target_prefix, config=config)
        from repro.netflow.records import FlowKey, FlowRecord
        gre = FlowRecord(
            key=FlowKey(src_addr=eia_plan[1][0].nth_address(1), dst_addr=1,
                        protocol=47, input_if=0),
            packets=3,
            octets=300,
            first=0,
            last=10,
        )
        decision = detector.process(gre)
        assert decision.verdict == Verdict.BENIGN


class TestStats:
    def test_counters_consistent(self, eia_plan, target_prefix):
        detector = make_detector(eia_plan, target_prefix)
        records = legit_records(eia_plan) + spoofed_records(eia_plan)
        for record in records:
            detector.process(record)
        stats = detector.stats
        assert stats.processed == len(records)
        assert stats.legal + stats.suspects == stats.processed
        assert stats.benign + stats.attacks == stats.suspects
        assert sum(stats.attacks_by_stage.values()) == stats.attacks

    def test_latency_recorded(self, eia_plan, target_prefix):
        detector = make_detector(eia_plan, target_prefix)
        for record in legit_records(eia_plan)[:50]:
            detector.process(record)
        assert detector.stats.mean_latency_s > 0
        assert detector.stats.latency_max_s >= detector.stats.mean_latency_s

    def test_latency_percentiles(self, eia_plan, target_prefix):
        detector = make_detector(eia_plan, target_prefix)
        for record in legit_records(eia_plan)[:50]:
            detector.process(record)
        stats = detector.stats
        p50 = stats.latency_percentile(0.5)
        p99 = stats.latency_percentile(0.99)
        assert 0 < p50 <= p99 <= stats.latency_max_s
        with pytest.raises(ValueError):
            stats.latency_percentile(1.5)

    def test_latency_percentile_empty(self):
        from repro.core.pipeline import PipelineStats

        assert PipelineStats().latency_percentile(0.5) == 0.0

    def test_process_all(self, eia_plan, target_prefix):
        detector = make_detector(eia_plan, target_prefix)
        decisions = detector.process_all(legit_records(eia_plan)[:20])
        assert len(decisions) == 20
