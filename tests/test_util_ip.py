"""Tests for IPv4 parsing, Prefix arithmetic, and the prefix trie."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.errors import AddressError
from repro.util.ip import MAX_IPV4, Prefix, PrefixTrie, format_ipv4, parse_ipv4

addresses = st.integers(min_value=0, max_value=MAX_IPV4)
prefix_lengths = st.integers(min_value=0, max_value=32)


@st.composite
def prefixes(draw):
    length = draw(prefix_lengths)
    address = draw(addresses)
    return Prefix.from_address(address, length)


class TestParseFormat:
    def test_parse_dotted_quad(self):
        assert parse_ipv4("4.2.101.20") == (4 << 24) + (2 << 16) + (101 << 8) + 20

    def test_format_known_value(self):
        assert format_ipv4(parse_ipv4("141.142.12.1")) == "141.142.12.1"

    def test_zero_and_max(self):
        assert parse_ipv4("0.0.0.0") == 0
        assert parse_ipv4("255.255.255.255") == MAX_IPV4

    @pytest.mark.parametrize(
        "bad", ["1.2.3", "1.2.3.4.5", "256.1.1.1", "a.b.c.d", "1..2.3", ""]
    )
    def test_parse_rejects_malformed(self, bad):
        with pytest.raises(AddressError):
            parse_ipv4(bad)

    @pytest.mark.parametrize("bad", [-1, MAX_IPV4 + 1])
    def test_format_rejects_out_of_range(self, bad):
        with pytest.raises(AddressError):
            format_ipv4(bad)

    @given(addresses)
    def test_round_trip(self, value):
        assert parse_ipv4(format_ipv4(value)) == value


class TestPrefix:
    def test_parse_with_length(self):
        p = Prefix.parse("4.2.101.0/24")
        assert p.network == parse_ipv4("4.2.101.0")
        assert p.length == 24

    def test_parse_bare_address_is_host_route(self):
        assert Prefix.parse("1.2.3.4").length == 32

    def test_parse_rejects_host_bits(self):
        with pytest.raises(AddressError):
            Prefix.parse("4.2.101.1/24")

    def test_parse_classful(self):
        assert Prefix.parse_classful("4.0.0.0") == Prefix.parse("4.0.0.0/8")
        assert Prefix.parse_classful("141.142.0.0") == Prefix.parse("141.142.0.0/16")
        assert Prefix.parse_classful("203.0.113.0") == Prefix.parse("203.0.113.0/24")

    def test_contains_boundaries(self):
        p = Prefix.parse("10.0.0.0/8")
        assert p.contains(parse_ipv4("10.0.0.0"))
        assert p.contains(parse_ipv4("10.255.255.255"))
        assert not p.contains(parse_ipv4("11.0.0.0"))
        assert not p.contains(parse_ipv4("9.255.255.255"))

    def test_covers(self):
        big = Prefix.parse("10.0.0.0/8")
        small = Prefix.parse("10.32.0.0/11")
        assert big.covers(small)
        assert not small.covers(big)
        assert big.covers(big)

    def test_size_and_addresses(self):
        p = Prefix.parse("192.168.4.0/30")
        assert p.size() == 4
        assert p.first_address() == parse_ipv4("192.168.4.0")
        assert p.last_address() == parse_ipv4("192.168.4.3")
        assert p.nth_address(2) == parse_ipv4("192.168.4.2")

    def test_nth_address_bounds(self):
        p = Prefix.parse("192.168.4.0/30")
        with pytest.raises(AddressError):
            p.nth_address(4)
        with pytest.raises(AddressError):
            p.nth_address(-1)

    def test_subnets(self):
        p = Prefix.parse("214.0.0.0/8")
        subs = list(p.subnets(11))
        assert len(subs) == 8
        assert subs[1] == Prefix.parse("214.32.0.0/11")
        assert subs[-1] == Prefix.parse("214.224.0.0/11")

    def test_subnets_rejects_coarser(self):
        with pytest.raises(AddressError):
            list(Prefix.parse("10.0.0.0/16").subnets(8))

    def test_dunder_contains(self):
        p = Prefix.parse("10.0.0.0/8")
        assert parse_ipv4("10.1.2.3") in p
        assert Prefix.parse("10.0.0.0/16") in p

    def test_str(self):
        assert str(Prefix.parse("4.2.101.0/24")) == "4.2.101.0/24"

    def test_ordering_is_total(self):
        a = Prefix.parse("4.0.0.0/8")
        b = Prefix.parse("4.0.0.0/16")
        assert sorted([b, a]) == [a, b]

    @given(prefixes())
    def test_subnet_split_partitions(self, prefix):
        if prefix.length > 28:
            return
        subs = list(prefix.subnets(prefix.length + 2))
        assert len(subs) == 4
        assert subs[0].first_address() == prefix.first_address()
        assert subs[-1].last_address() == prefix.last_address()
        for first, second in zip(subs, subs[1:]):
            assert first.last_address() + 1 == second.first_address()

    @given(prefixes(), addresses)
    def test_contains_matches_range(self, prefix, address):
        expected = prefix.first_address() <= address <= prefix.last_address()
        assert prefix.contains(address) == expected


class TestPrefixTrie:
    def test_empty(self):
        trie = PrefixTrie()
        assert len(trie) == 0
        assert not trie
        assert trie.longest_match(0) is None

    def test_insert_get_exact(self):
        trie = PrefixTrie()
        p = Prefix.parse("10.0.0.0/8")
        trie.insert(p, "ten")
        assert trie.get(p) == "ten"
        assert p in trie
        assert Prefix.parse("10.0.0.0/9") not in trie

    def test_longest_match_prefers_specific(self):
        trie = PrefixTrie()
        trie.insert(Prefix.parse("4.0.0.0/8"), "eight")
        trie.insert(Prefix.parse("4.2.101.0/24"), "twentyfour")
        match = trie.longest_match(parse_ipv4("4.2.101.20"))
        assert match == (Prefix.parse("4.2.101.0/24"), "twentyfour")
        match = trie.longest_match(parse_ipv4("4.9.9.9"))
        assert match == (Prefix.parse("4.0.0.0/8"), "eight")

    def test_default_route(self):
        trie = PrefixTrie()
        trie.insert(Prefix(0, 0), "default")
        assert trie.longest_match(parse_ipv4("203.0.113.7"))[1] == "default"

    def test_remove(self):
        trie = PrefixTrie()
        p = Prefix.parse("10.0.0.0/8")
        trie.insert(p, 1)
        assert trie.remove(p)
        assert not trie.remove(p)
        assert trie.longest_match(parse_ipv4("10.0.0.1")) is None

    def test_replace_value(self):
        trie = PrefixTrie()
        p = Prefix.parse("10.0.0.0/8")
        trie.insert(p, 1)
        trie.insert(p, 2)
        assert len(trie) == 1
        assert trie.get(p) == 2

    def test_covering_match(self):
        trie = PrefixTrie()
        trie.insert(Prefix.parse("10.0.0.0/8"), "big")
        found = trie.covering_match(Prefix.parse("10.32.0.0/11"))
        assert found == (Prefix.parse("10.0.0.0/8"), "big")
        assert trie.covering_match(Prefix.parse("11.0.0.0/11")) is None

    def test_items_in_network_order(self):
        trie = PrefixTrie()
        entries = [
            Prefix.parse("192.0.2.0/24"),
            Prefix.parse("4.0.0.0/8"),
            Prefix.parse("4.2.101.0/24"),
            Prefix.parse("10.0.0.0/8"),
        ]
        for index, prefix in enumerate(entries):
            trie.insert(prefix, index)
        listed = trie.prefixes()
        assert listed == sorted(entries)

    def test_host_route(self):
        trie = PrefixTrie()
        host = Prefix.from_address(parse_ipv4("1.2.3.4"), 32)
        trie.insert(host, "host")
        assert trie.longest_match(parse_ipv4("1.2.3.4"))[1] == "host"
        assert trie.longest_match(parse_ipv4("1.2.3.5")) is None

    def test_longest_match_rejects_bad_address(self):
        with pytest.raises(AddressError):
            PrefixTrie().longest_match(-5)

    @given(st.lists(st.tuples(prefixes(), st.integers()), max_size=40), addresses)
    @settings(max_examples=60)
    def test_longest_match_agrees_with_linear_scan(self, entries, probe):
        trie = PrefixTrie()
        reference = {}
        for prefix, value in entries:
            trie.insert(prefix, value)
            reference[prefix] = value
        expected = None
        for prefix, value in reference.items():
            if prefix.contains(probe):
                if expected is None or prefix.length > expected[0].length:
                    expected = (prefix, value)
        assert trie.longest_match(probe) == expected

    @given(st.lists(prefixes(), unique=True, max_size=30))
    @settings(max_examples=60)
    def test_insert_then_iterate_round_trips(self, entry_list):
        trie = PrefixTrie()
        for index, prefix in enumerate(entry_list):
            trie.insert(prefix, index)
        assert len(trie) == len(entry_list)
        assert dict(trie.items()) == {
            prefix: index for index, prefix in enumerate(entry_list)
        }
