"""Tests for the datagram emission layer (``repro.netflow.emit``).

The emitter is the router's export process: it owns the cumulative
``flow_sequence`` counter, packs records into v5 datagrams, and hands
them to a pluggable target.  The loopback test at the bottom runs the
full real-socket path — exporter cache → emitter → UDP socket →
collector — and checks that sequence/loss accounting works over it
exactly as it does over the simulated channel.
"""

from __future__ import annotations

import socket

import pytest

from repro.netflow.collector import FlowCollector
from repro.netflow.emit import ChannelTarget, DatagramEmitter, SocketTarget
from repro.netflow.exporter import ExporterConfig, FlowExporter, Packet
from repro.netflow.records import PROTO_UDP, FlowKey, FlowRecord
from repro.netflow.transport import ChannelConfig, UdpChannel
from repro.netflow.v5 import MAX_RECORDS_PER_DATAGRAM, decode_datagram
from repro.obs import MetricsRegistry
from repro.util.errors import ConfigError, NetFlowError
from repro.util.rng import SeededRng


def record(index=0, *, last=1_000):
    return FlowRecord(
        key=FlowKey(
            src_addr=index + 1, dst_addr=9, protocol=PROTO_UDP, dst_port=9_000
        ),
        packets=1,
        octets=64,
        first=0,
        last=last,
    )


def capture_emitter(**kwargs):
    """An emitter writing into a list, plus the list."""
    datagrams = []
    emitter = DatagramEmitter(
        datagrams.append, registry=MetricsRegistry(), **kwargs
    )
    return emitter, datagrams


class TestDatagramEmitter:
    def test_buffers_until_datagram_fills(self):
        emitter, datagrams = capture_emitter(max_records=3)
        assert emitter.emit([record(0), record(1)]) == 0
        assert emitter.buffered == 2
        assert datagrams == []
        assert emitter.emit([record(2)]) == 1
        assert emitter.buffered == 0
        assert len(datagrams) == 1

    def test_flush_emits_partial_tail_once(self):
        emitter, datagrams = capture_emitter(max_records=5)
        emitter.emit([record(0)])
        assert emitter.flush() == 1
        assert emitter.flush() == 0
        header, records = decode_datagram(datagrams[0])
        assert len(records) == 1

    def test_sequence_is_cumulative_across_datagrams(self):
        emitter, datagrams = capture_emitter(max_records=2, initial_sequence=40)
        emitter.emit([record(i) for i in range(4)])
        sequences = [decode_datagram(d)[0].flow_sequence for d in datagrams]
        assert sequences == [40, 42]
        assert emitter.flow_sequence == 44

    def test_header_times_come_from_flow_time(self):
        emitter, datagrams = capture_emitter()
        emitter.emit([record(0, last=7_500), record(1, last=12_345)])
        emitter.flush()
        header, _records = decode_datagram(datagrams[0])
        assert header.sys_uptime == 12_345
        assert header.unix_secs == 12

    def test_counts_and_metrics(self):
        registry = MetricsRegistry()
        datagrams = []
        emitter = DatagramEmitter(
            datagrams.append, max_records=2, registry=registry
        )
        emitter.emit([record(i) for i in range(5)])
        emitter.flush()
        assert emitter.datagrams_emitted == 3
        assert emitter.records_emitted == 5
        sample = {
            (family.name, labels): child.value
            for family in registry.collect()
            for labels, child in family.samples()
        }
        assert sample[("infilter_exporter_datagrams_total", ())] == 3
        assert sample[("infilter_exporter_emitted_records_total", ())] == 5

    def test_rejects_bad_config(self):
        with pytest.raises(ConfigError):
            capture_emitter(max_records=0)
        with pytest.raises(ConfigError):
            capture_emitter(max_records=MAX_RECORDS_PER_DATAGRAM + 1)
        with pytest.raises(ConfigError):
            capture_emitter(initial_sequence=-1)


class TestSocketTarget:
    def test_rejects_bad_port(self):
        with pytest.raises(ConfigError):
            SocketTarget("127.0.0.1", 0)
        with pytest.raises(ConfigError):
            SocketTarget("127.0.0.1", 70_000)

    def test_send_failure_wrapped_as_netflow_error(self):
        # An unresolvable host fails inside sendto; the OSError must
        # surface as the repo's own error taxonomy.
        with SocketTarget("256.256.256.256", 9) as target:
            with pytest.raises(NetFlowError):
                target(b"\x00")

    def test_loopback_delivery_counts_sends(self):
        with socket.socket(socket.AF_INET, socket.SOCK_DGRAM) as sink:
            sink.bind(("127.0.0.1", 0))
            sink.settimeout(5.0)
            _host, port = sink.getsockname()
            with SocketTarget("127.0.0.1", port) as target:
                target(b"ping")
                assert target.sent == 1
            assert sink.recv(64) == b"ping"


class TestChannelTarget:
    def test_lossless_channel_reaches_collector_intact(self):
        registry = MetricsRegistry()
        collector = FlowCollector(registry=registry)
        channel = UdpChannel(
            ChannelConfig(), rng=SeededRng(7, "emit-test"), registry=registry
        )
        emitter = DatagramEmitter(
            ChannelTarget(channel, collector.receive),
            max_records=4,
            registry=registry,
        )
        emitter.emit([record(i) for i in range(10)])
        emitter.flush()
        assert collector.stats.records == 10
        assert collector.stats.lost_flows == 0

    def test_lossy_channel_shows_up_in_sequence_accounting(self):
        registry = MetricsRegistry()
        collector = FlowCollector(registry=registry)
        channel = UdpChannel(
            ChannelConfig(loss_probability=0.3),
            rng=SeededRng(11, "emit-test"),
            registry=registry,
        )
        emitter = DatagramEmitter(
            ChannelTarget(channel, collector.receive),
            max_records=5,
            registry=registry,
        )
        emitter.emit([record(i) for i in range(200)])
        emitter.flush()
        assert channel.stats.lost > 0
        # Every record the collector never saw is visible as a sequence
        # gap: emitted == received + lost (in flow-record units).
        assert (
            emitter.records_emitted
            == collector.stats.records + collector.stats.lost_flows
        )


class TestExporterEmitterWiring:
    @staticmethod
    def packet(ts, *, src=1, size=100):
        return Packet(
            key=FlowKey(
                src_addr=src,
                dst_addr=2,
                protocol=PROTO_UDP,
                src_port=10,
                dst_port=20,
            ),
            length=size,
            timestamp_ms=ts,
        )

    def test_exported_records_reach_the_emitter(self):
        emitter, datagrams = capture_emitter(max_records=2)
        exporter = FlowExporter(
            ExporterConfig(idle_timeout_ms=1_000), emitter=emitter
        )
        for src in range(4):
            exporter.observe(self.packet(0, src=src + 1))
        # Everything idles out at t=10s; two full datagrams emit.
        exporter.sweep(10_000)
        assert len(datagrams) == 2
        assert emitter.records_emitted == 4

    def test_flush_drains_the_emitter_tail(self):
        emitter, datagrams = capture_emitter(max_records=30)
        exporter = FlowExporter(emitter=emitter)
        exporter.observe(self.packet(0))
        records = exporter.flush()
        assert len(records) == 1
        assert emitter.buffered == 0
        assert len(datagrams) == 1

    def test_exporter_without_emitter_still_exports(self):
        exporter = FlowExporter(ExporterConfig(idle_timeout_ms=1_000))
        exporter.observe(self.packet(0))
        assert len(exporter.sweep(10_000)) == 1


class TestRealSocketLoopback:
    def test_exporter_to_collector_over_real_udp(self):
        """Full deployment path: flow cache → emitter → UDP → collector.

        The receiving side reads the raw datagrams off a bound socket and
        feeds them to a :class:`FlowCollector`; sequence accounting must
        report zero loss on loopback, and an artificially skipped datagram
        must show up as exactly its record count in ``lost_flows``.
        """
        registry = MetricsRegistry()
        collector = FlowCollector(registry=registry)
        with socket.socket(socket.AF_INET, socket.SOCK_DGRAM) as sink:
            sink.bind(("127.0.0.1", 0))
            sink.settimeout(5.0)
            _host, port = sink.getsockname()
            with SocketTarget("127.0.0.1", port) as target:
                emitter = DatagramEmitter(
                    target, max_records=10, registry=registry
                )
                exporter = FlowExporter(
                    ExporterConfig(idle_timeout_ms=1_000),
                    emitter=emitter,
                )
                for src in range(40):
                    exporter.observe(
                        TestExporterEmitterWiring.packet(0, src=src + 1)
                    )
                exporter.sweep(10_000)
                exporter.flush()
                for _ in range(emitter.datagrams_emitted):
                    collector.receive(sink.recv(65_536), source=port)
        assert collector.stats.records == 40
        assert collector.stats.lost_flows == 0

    def test_dropped_datagram_is_accounted_as_loss(self):
        registry = MetricsRegistry()
        collector = FlowCollector(registry=registry)
        with socket.socket(socket.AF_INET, socket.SOCK_DGRAM) as sink:
            sink.bind(("127.0.0.1", 0))
            sink.settimeout(5.0)
            _host, port = sink.getsockname()
            with SocketTarget("127.0.0.1", port) as target:
                emitter = DatagramEmitter(
                    target, max_records=5, registry=registry
                )
                emitter.emit([record(i) for i in range(15)])
                arrived = [
                    sink.recv(65_536)
                    for _ in range(emitter.datagrams_emitted)
                ]
        # Deliver the first and third datagrams; the middle one "never
        # arrives" — its five records must appear as a sequence gap.
        collector.receive(arrived[0], source=port)
        collector.receive(arrived[2], source=port)
        assert collector.stats.records == 10
        assert collector.stats.lost_flows == 5
