"""Tests for the ``infilter`` command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.flowgen import SubBlockSpace, eia_allocation


@pytest.fixture
def plan_file(tmp_path):
    space = SubBlockSpace()
    plan = eia_allocation(space)
    path = tmp_path / "plan.txt"
    lines = ["# peer prefix"]
    for peer, blocks in plan.items():
        lines.extend(f"{peer} {block}" for block in blocks)
    path.write_text("\n".join(lines) + "\n")
    return str(path)


@pytest.fixture
def normal_file(tmp_path):
    path = tmp_path / "normal.bin"
    assert main(["synth", str(path), "--flows", "400"]) == 0
    return str(path)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_attack_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["synth", "x.bin", "--attack", "nope"])


class TestSynth:
    def test_normal_traffic(self, tmp_path, capsys):
        path = tmp_path / "flows.bin"
        assert main(["synth", str(path), "--flows", "50"]) == 0
        assert "wrote 50 flow records" in capsys.readouterr().out
        assert path.exists()

    def test_attack_traffic_ascii(self, tmp_path):
        path = tmp_path / "atk.txt"
        assert main(["synth", str(path), "--attack", "slammer", "--ascii"]) == 0
        text = path.read_text()
        assert text.startswith("#src_addr")
        assert ",1434," in text

    def test_deterministic_given_seed(self, tmp_path):
        a = tmp_path / "a.bin"
        b = tmp_path / "b.bin"
        main(["--seed", "77", "synth", str(a), "--flows", "30"])
        main(["--seed", "77", "synth", str(b), "--flows", "30"])
        assert a.read_bytes() == b.read_bytes()


class TestReport:
    def test_grouping(self, normal_file, capsys):
        assert main(["report", normal_file, "--group-by", "protocol"]) == 0
        out = capsys.readouterr().out
        assert "protocol" in out
        assert "400 flows" in out

    def test_bad_group_field(self, normal_file, capsys):
        # An unknown grouping field is a ConfigError, which main() turns
        # into the CLI error exit code rather than a traceback.
        assert main(["report", normal_file, "--group-by", "bogus"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_csv_format(self, normal_file, capsys):
        assert main(["report", normal_file, "--format", "csv"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("dst_port,flows,")

    def test_json_format(self, normal_file, capsys):
        import json

        assert main(["report", normal_file, "--format", "json", "--top", "3"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload) == 3


class TestDetect:
    def test_spoofed_attack_flagged(self, tmp_path, plan_file, normal_file, capsys):
        attack = tmp_path / "atk.bin"
        main(["synth", str(attack), "--attack", "tfn2k", "--spoof"])
        assert (
            main(
                [
                    "detect",
                    str(attack),
                    plan_file,
                    "--training-file",
                    normal_file,
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "flagged as attacks" in out
        assert "0 legal" in out
        assert "trace-back" in out

    def test_legal_traffic_passes(self, plan_file, normal_file, capsys):
        assert (
            main(["detect", normal_file, plan_file, "--training-file", normal_file])
            == 0
        )
        out = capsys.readouterr().out
        assert "0 suspect" in out.replace("400 legal, 0 suspect", "400 legal, 0 suspect")
        assert "400 legal" in out

    def test_basic_mode_needs_no_training(self, tmp_path, plan_file, capsys):
        attack = tmp_path / "atk.bin"
        main(["synth", str(attack), "--attack", "slammer", "--spoof"])
        assert main(["detect", str(attack), plan_file, "--basic"]) == 0
        out = capsys.readouterr().out
        assert "flagged as attacks" in out

    def test_idmef_output(self, tmp_path, plan_file, capsys):
        attack = tmp_path / "atk.bin"
        main(["synth", str(attack), "--attack", "slammer", "--spoof"])
        assert main(["detect", str(attack), plan_file, "--basic", "--idmef"]) == 0
        out = capsys.readouterr().out
        assert "<IDMEF-Message" in out

    def test_bad_plan_file(self, tmp_path, normal_file, capsys):
        bad = tmp_path / "bad.txt"
        bad.write_text("not a plan\n")
        assert main(["detect", normal_file, str(bad)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_plan_required_without_state(self, normal_file, capsys):
        assert main(["detect", normal_file]) == 2
        assert "EIA plan" in capsys.readouterr().err

    def test_save_and_load_state(self, tmp_path, plan_file, normal_file, capsys):
        state = tmp_path / "state.json"
        attack = tmp_path / "atk.bin"
        main(["synth", str(attack), "--attack", "slammer", "--spoof"])
        assert (
            main(
                [
                    "detect", str(attack), plan_file,
                    "--training-file", normal_file,
                    "--save-state", str(state),
                ]
            )
            == 0
        )
        first_out = capsys.readouterr().out
        assert "state saved" in first_out
        assert (
            main(["detect", str(attack), "--load-state", str(state)]) == 0
        )
        second_out = capsys.readouterr().out
        assert "flagged as attacks" in second_out


class TestCheckpointResume:
    def test_checkpoint_every_needs_save_state(self, plan_file, normal_file, capsys):
        assert (
            main(
                ["detect", normal_file, plan_file, "--basic",
                 "--checkpoint-every", "10"]
            )
            == 2
        )
        assert "--save-state" in capsys.readouterr().err

    def test_checkpoint_every_must_be_positive(
        self, tmp_path, plan_file, normal_file, capsys
    ):
        state = tmp_path / "state.json"
        assert (
            main(
                ["detect", normal_file, plan_file, "--basic",
                 "--save-state", str(state), "--checkpoint-every", "0"]
            )
            == 2
        )
        assert "--checkpoint-every" in capsys.readouterr().err

    def test_resume_needs_load_state(self, plan_file, normal_file, capsys):
        assert (
            main(["detect", normal_file, plan_file, "--basic", "--resume"])
            == 2
        )
        assert "--load-state" in capsys.readouterr().err

    def test_resume_needs_a_cursor(
        self, tmp_path, plan_file, normal_file, capsys
    ):
        state = tmp_path / "state.json"
        # A plain save (no --checkpoint-every) carries no cursor.
        assert (
            main(
                ["detect", normal_file, plan_file, "--basic",
                 "--save-state", str(state)]
            )
            == 0
        )
        capsys.readouterr()
        assert (
            main(
                ["detect", normal_file, "--load-state", str(state), "--resume"]
            )
            == 2
        )
        assert "no cursor" in capsys.readouterr().err

    def test_checkpointed_run_resumes_to_completion(
        self, tmp_path, plan_file, normal_file, capsys
    ):
        state = tmp_path / "state.json"
        assert (
            main(
                ["detect", normal_file, plan_file, "--basic",
                 "--save-state", str(state), "--checkpoint-every", "64"]
            )
            == 0
        )
        capsys.readouterr()
        # The run completed, so its final checkpoint covers the whole
        # file and a --resume restart has nothing left to process.
        assert (
            main(
                ["detect", normal_file, "--load-state", str(state), "--resume"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "resuming at record 400 of 400" in out
        assert "processed 0 flows" in out

    def test_engine_checkpoint_run_reports_checkpoints(
        self, tmp_path, plan_file, normal_file, capsys
    ):
        state = tmp_path / "state.json"
        assert (
            main(
                ["detect", normal_file, plan_file, "--basic",
                 "--shards", "2", "--batch-size", "50",
                 "--save-state", str(state), "--checkpoint-every", "2"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "checkpoints:" in out
        from repro.core.persistence import load_checkpoint

        _detector, cursor = load_checkpoint(state)
        assert cursor == 400

    def test_second_run_reports_per_run_counts(
        self, tmp_path, plan_file, normal_file, capsys
    ):
        """A restored detector's cumulative stats must not leak into the
        next run's summary — in either execution path."""
        state = tmp_path / "state.json"
        attack = tmp_path / "atk.bin"
        main(["synth", str(attack), "--attack", "slammer", "--spoof"])
        assert (
            main(
                ["detect", str(attack), plan_file,
                 "--training-file", normal_file,
                 "--save-state", str(state)]
            )
            == 0
        )
        first_out = capsys.readouterr().out
        assert "flagged as attacks" in first_out
        # Second run sees only legal traffic; with per-run counting both
        # the inline and the engine paths report zero attacks.
        for extra in ([], ["--shards", "2"]):
            assert (
                main(
                    ["detect", normal_file, "--load-state", str(state)] + extra
                )
                == 0
            )
            out = capsys.readouterr().out
            assert "processed 400 flows" in out
            assert "0 flagged as attacks" in out


class TestStateInspect:
    def test_inspect_text_output(self, tmp_path, plan_file, normal_file, capsys):
        state = tmp_path / "state.json"
        assert (
            main(
                ["detect", normal_file, plan_file,
                 "--training-file", normal_file,
                 "--save-state", str(state), "--checkpoint-every", "100"]
            )
            == 0
        )
        capsys.readouterr()
        assert main(["state", "inspect", str(state)]) == 0
        out = capsys.readouterr().out
        assert "format: v2" in out
        assert "cursor: 400" in out
        assert "trained: yes" in out
        assert "peers:" in out
        assert "stats: processed=400" in out

    def test_inspect_json_output(self, tmp_path, plan_file, normal_file, capsys):
        import json

        state = tmp_path / "state.json"
        assert (
            main(
                ["detect", normal_file, plan_file, "--basic",
                 "--save-state", str(state)]
            )
            == 0
        )
        capsys.readouterr()
        assert main(["state", "inspect", str(state), "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["format"] == 2
        assert payload["cursor"] is None
        assert payload["trained"] is False

    def test_inspect_missing_file_errors(self, tmp_path, capsys):
        assert main(["state", "inspect", str(tmp_path / "nope.json")]) == 2
        assert "error:" in capsys.readouterr().err


class TestConvert:
    def test_binary_to_ascii_round_trip(self, tmp_path, normal_file, capsys):
        ascii_path = tmp_path / "flows.txt"
        binary_path = tmp_path / "back.bin"
        assert main(["convert", normal_file, str(ascii_path), "--ascii"]) == 0
        assert main(["convert", str(ascii_path), str(binary_path)]) == 0
        from repro.netflow.files import read_flow_file

        assert read_flow_file(normal_file) == read_flow_file(str(binary_path))


class TestSampleExpandAggregate:
    def test_sampling_drops_records(self, tmp_path, normal_file, capsys):
        out = tmp_path / "sampled.bin"
        assert (
            main(["sample", normal_file, str(out), "--interval", "10"]) == 0
        )
        from repro.netflow.files import read_flow_file

        assert len(read_flow_file(str(out))) < len(read_flow_file(normal_file))

    def test_expand_aggregate_conserves_totals(self, tmp_path, normal_file):
        dag = tmp_path / "trace.dag"
        back = tmp_path / "back.bin"
        assert main(["expand", normal_file, str(dag)]) == 0
        assert main(["aggregate", str(dag), str(back), "--peer", "4"]) == 0
        from repro.netflow.files import read_flow_file

        original = read_flow_file(normal_file)
        restored = read_flow_file(str(back))
        assert sum(r.packets for r in restored) == sum(r.packets for r in original)
        assert sum(r.octets for r in restored) == sum(r.octets for r in original)
        assert all(r.key.input_if == 4 for r in restored)


class TestFilter:
    def test_filter_keeps_matching_records(self, tmp_path, normal_file, capsys):
        out = tmp_path / "web.bin"
        assert (
            main(["filter", normal_file, str(out), "proto=6 dport=80"]) == 0
        )
        from repro.netflow.files import read_flow_file

        kept = read_flow_file(str(out))
        assert kept
        assert all(r.key.protocol == 6 and r.key.dst_port == 80 for r in kept)
        assert "kept" in capsys.readouterr().out

    def test_negated_term(self, tmp_path, normal_file):
        out = tmp_path / "notweb.bin"
        assert main(["filter", normal_file, str(out), "!dport=80"]) == 0
        from repro.netflow.files import read_flow_file

        assert all(r.key.dst_port != 80 for r in read_flow_file(str(out)))

    def test_bad_expression(self, tmp_path, normal_file, capsys):
        out = tmp_path / "x.bin"
        assert main(["filter", normal_file, str(out), "wat=1"]) == 2
        assert "error:" in capsys.readouterr().err


class TestAnonymize:
    def test_prefix_preserving_rewrite(self, tmp_path, normal_file):
        out = tmp_path / "anon.bin"
        assert (
            main(["anonymize", normal_file, str(out), "--key", "sixteen-byte-key"])
            == 0
        )
        from repro.netflow.files import read_flow_file

        original = read_flow_file(normal_file)
        mapped = read_flow_file(str(out))
        assert len(mapped) == len(original)
        assert all(
            m.key.src_addr != o.key.src_addr for m, o in zip(mapped, original)
        )
        # Non-address fields untouched.
        assert all(m.octets == o.octets for m, o in zip(mapped, original))

    def test_deterministic_per_key(self, tmp_path, normal_file):
        a = tmp_path / "a.bin"
        b = tmp_path / "b.bin"
        main(["anonymize", normal_file, str(a), "--key", "sixteen-byte-key"])
        main(["anonymize", normal_file, str(b), "--key", "sixteen-byte-key"])
        assert a.read_bytes() == b.read_bytes()

    def test_short_key_rejected(self, tmp_path, normal_file, capsys):
        out = tmp_path / "anon.bin"
        assert main(["anonymize", normal_file, str(out), "--key", "short"]) == 2
        assert "error:" in capsys.readouterr().err


class TestValidate:
    def test_traceroute_study_smoke(self, capsys):
        assert (
            main(
                [
                    "--seed",
                    "5",
                    "validate",
                    "traceroute",
                    "--sites",
                    "3",
                    "--targets",
                    "3",
                    "--duration-hours",
                    "2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "raw=" in out and "fqdn=" in out

    def test_stability_study_smoke(self, capsys):
        assert (
            main(["--seed", "5", "validate", "stability", "--duration-hours", "6"])
            == 0
        )
        assert "%" in capsys.readouterr().out


class TestExperiment:
    def test_small_point(self, capsys):
        assert (
            main(
                [
                    "experiment",
                    "--flows",
                    "200",
                    "--training-flows",
                    "800",
                    "--runs",
                    "1",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "detection=" in out
        assert "false_positives=" in out

    def test_metrics_out_publishes_experiment_gauges(self, tmp_path, capsys):
        metrics = tmp_path / "exp.prom"
        assert (
            main(
                [
                    "experiment",
                    "--flows", "200",
                    "--training-flows", "800",
                    "--runs", "1",
                    "--metrics-out", str(metrics),
                ]
            )
            == 0
        )
        text = metrics.read_text()
        assert "infilter_experiment_detection_rate" in text
        assert "infilter_experiment_false_positive_rate" in text
        assert "infilter_pipeline_flows_total" in text


class TestStatsAndMetricsOut:
    def test_detect_writes_prometheus_metrics(
        self, tmp_path, plan_file, normal_file, capsys
    ):
        attack = tmp_path / "atk.bin"
        metrics = tmp_path / "metrics.prom"
        main(["synth", str(attack), "--attack", "slammer", "--spoof"])
        assert (
            main(
                [
                    "detect", str(attack), plan_file, "--basic",
                    "--metrics-out", str(metrics),
                ]
            )
            == 0
        )
        text = metrics.read_text()
        assert "# TYPE infilter_pipeline_flows_total counter" in text
        assert 'verdict="attack"' in text
        assert "infilter_pipeline_flow_latency_seconds_bucket" in text

    def test_detect_writes_json_metrics(self, tmp_path, plan_file, capsys):
        import json

        attack = tmp_path / "atk.bin"
        metrics = tmp_path / "metrics.json"
        main(["synth", str(attack), "--attack", "slammer", "--spoof"])
        assert (
            main(
                [
                    "detect", str(attack), plan_file, "--basic",
                    "--metrics-out", str(metrics),
                ]
            )
            == 0
        )
        document = json.loads(metrics.read_text())
        assert document["version"] == 1
        names = {entry["name"] for entry in document["metrics"]}
        assert "infilter_pipeline_flows_total" in names

    def test_stats_rerenders_saved_snapshot(self, tmp_path, plan_file, capsys):
        attack = tmp_path / "atk.bin"
        metrics = tmp_path / "metrics.json"
        main(["synth", str(attack), "--attack", "slammer", "--spoof"])
        main(
            [
                "detect", str(attack), plan_file, "--basic",
                "--metrics-out", str(metrics),
            ]
        )
        capsys.readouterr()
        assert main(["stats", str(metrics)]) == 0
        out = capsys.readouterr().out
        assert "# TYPE infilter_pipeline_flows_total counter" in out
        assert main(["stats", str(metrics), "--format", "json"]) == 0
        import json

        document = json.loads(capsys.readouterr().out)
        assert document == json.loads(metrics.read_text())

    def test_stats_missing_snapshot_errors(self, tmp_path, capsys):
        assert main(["stats", str(tmp_path / "nope.json")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_stats_without_snapshot_uses_process_registry(self, capsys):
        from repro.obs import get_registry

        get_registry().counter(
            "infilter_cli_test_total", "test counter"
        ).inc()
        try:
            assert main(["stats"]) == 0
            assert "infilter_cli_test_total 1" in capsys.readouterr().out
        finally:
            get_registry().unregister_all()


class TestServeValidation:
    """The ``infilter serve`` argument-validation branches (all exit 2).

    The daemon's happy paths — loopback ingest, SIGTERM drain, warm
    restart through a real subprocess — live in
    ``tests/test_serve_daemon.py``; these tests only pin the CLI's
    refusal messages, which must fire before any socket is bound.
    """

    def test_checkpoint_every_must_be_positive(self, plan_file, capsys):
        assert main(["serve", plan_file, "--checkpoint-every", "0"]) == 2
        assert "--checkpoint-every must be >= 1" in capsys.readouterr().err

    def test_checkpoint_every_needs_save_state(self, plan_file, capsys):
        assert main(["serve", plan_file, "--checkpoint-every", "5"]) == 2
        assert "needs --save-state" in capsys.readouterr().err

    def test_resume_needs_load_state(self, plan_file, capsys):
        assert main(["serve", plan_file, "--resume"]) == 2
        assert "--resume needs --load-state" in capsys.readouterr().err

    def test_plan_required_without_load_state(self, capsys):
        assert main(["serve"]) == 2
        assert "EIA plan file is required" in capsys.readouterr().err

    def test_enhanced_needs_training_file(self, plan_file, capsys):
        assert main(["serve", plan_file]) == 2
        assert "needs --training-file" in capsys.readouterr().err

    def test_resume_needs_checkpoint_cursor(self, tmp_path, capsys):
        from repro.core import EnhancedInFilter, PipelineConfig
        from repro.core.persistence import save_detector

        state = tmp_path / "state.json"
        save_detector(EnhancedInFilter(PipelineConfig.basic()), state)
        assert main(["serve", "--load-state", str(state), "--resume"]) == 2
        assert "no cursor to resume from" in capsys.readouterr().err

    def test_bad_listen_address_rejected(self, plan_file, capsys):
        code = main(
            ["serve", plan_file, "--basic", "--listen", "not-an-address"]
        )
        assert code == 2
        assert "error" in capsys.readouterr().err.lower()


class TestEnsembleFlags:
    """``--detectors``/``--ensemble-policy`` validation and behaviour.

    Malformed compositions are ConfigErrors from ``PipelineConfig``
    itself, so every refusal is one ``error:`` line with the available
    names — on ``detect`` and ``serve`` alike, before any work happens.
    """

    def test_unknown_detector_rejected(self, plan_file, normal_file, capsys):
        code = main(
            ["detect", normal_file, plan_file, "--basic",
             "--detectors", "infilter,zeta"]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "unknown detector 'zeta'" in err
        assert "available: infilter, ttl_profile, bogon" in err

    def test_empty_composition_rejected(self, plan_file, normal_file, capsys):
        code = main(
            ["detect", normal_file, plan_file, "--basic", "--detectors", ""]
        )
        assert code == 2
        assert "composition is empty" in capsys.readouterr().err

    def test_duplicate_detectors_rejected(self, plan_file, normal_file, capsys):
        code = main(
            ["detect", normal_file, plan_file, "--basic",
             "--detectors", "infilter,bogon,bogon"]
        )
        assert code == 2
        assert "duplicate detector name(s) bogon" in capsys.readouterr().err

    def test_missing_anchor_rejected(self, plan_file, normal_file, capsys):
        code = main(
            ["detect", normal_file, plan_file, "--basic",
             "--detectors", "ttl_profile,bogon"]
        )
        assert code == 2
        assert "must include 'infilter'" in capsys.readouterr().err

    def test_unknown_policy_rejected(self, plan_file, normal_file, capsys):
        code = main(
            ["detect", normal_file, plan_file, "--basic",
             "--ensemble-policy", "quorum"]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "unknown ensemble policy 'quorum'" in err
        assert "any, majority, weighted" in err

    def test_serve_rejects_unknown_detector(self, plan_file, capsys):
        code = main(
            ["serve", plan_file, "--basic", "--detectors", "infilter,nope"]
        )
        assert code == 2
        assert "unknown detector 'nope'" in capsys.readouterr().err

    def test_serve_rejects_unknown_policy(self, plan_file, capsys):
        code = main(
            ["serve", plan_file, "--basic", "--ensemble-policy", "most"]
        )
        assert code == 2
        assert "unknown ensemble policy 'most'" in capsys.readouterr().err

    def test_ensemble_detect_runs_clean(
        self, tmp_path, plan_file, normal_file, capsys
    ):
        attack = tmp_path / "atk.bin"
        main(["synth", str(attack), "--attack", "slammer", "--spoof"])
        code = main(
            ["detect", str(attack), plan_file,
             "--training-file", normal_file,
             "--detectors", "infilter,ttl_profile,bogon",
             "--ensemble-policy", "weighted"]
        )
        assert code == 0
        assert "flagged as attacks" in capsys.readouterr().out

    def test_load_state_notes_composition_comes_from_checkpoint(
        self, tmp_path, plan_file, normal_file, capsys
    ):
        state = tmp_path / "state.json"
        assert main(
            ["detect", normal_file, plan_file, "--basic",
             "--save-state", str(state)]
        ) == 0
        capsys.readouterr()
        assert main(
            ["detect", normal_file, "--load-state", str(state),
             "--detectors", "infilter,bogon"]
        ) == 0
        assert "comes from the checkpoint" in capsys.readouterr().err
